# Developer entry points. `make check` is the one-stop health check
# (tier-1 tests + quality gate + quick perf); it delegates to
# `graphalytics selfcheck` so the CLI and the Makefile cannot drift.

PYTHON ?= python
export PYTHONPATH := src

COVERAGE_FLOOR := $(shell cat .coverage-floor 2>/dev/null || echo 0)

.PHONY: check test test-fast quality perf coverage

check:
	$(PYTHON) -m repro.cli selfcheck

test:
	$(PYTHON) -m pytest -x -q

test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

quality:
	$(PYTHON) -m repro.cli quality --check --baseline .quality-baseline.json

perf:
	$(PYTHON) -m repro.cli perf --quick

# Line-coverage report with a checked-in floor (.coverage-floor, in
# percent). pytest-cov is an optional dependency: when it is not
# installed (this repo's pinned environment ships without it), the
# target reports that and exits zero instead of failing the build.
coverage:
	@if $(PYTHON) -c "import pytest_cov" 2>/dev/null; then \
		$(PYTHON) -m pytest -q -m "not slow" \
			--cov=repro --cov-report=term \
			--cov-fail-under=$(COVERAGE_FLOOR); \
	else \
		echo "coverage: pytest-cov not installed; skipping" \
		     "(floor when available: $(COVERAGE_FLOOR)%)"; \
	fi
