# Developer entry points. `make check` is the one-stop health check
# (tier-1 tests + quality gate + quick perf); it delegates to
# `graphalytics selfcheck` so the CLI and the Makefile cannot drift.

PYTHON ?= python
export PYTHONPATH := src

COVERAGE_FLOOR := $(shell cat .coverage-floor 2>/dev/null || echo 0)

.PHONY: check test test-fast differential quality quality-fixtures \
	audit audit-fixtures perf trace-smoke whatif-smoke coverage

check:
	$(PYTHON) -m repro.cli selfcheck

test:
	$(PYTHON) -m pytest -x -q

test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

# Full differential sweep: every platform x every pooled graph against
# the reference implementations, including the slow LDBC cells
# (8 platforms x 20 weighted graphs x PR/SSSP/LCC) and the fault-retry
# sweep. CI runs this as its own named step.
differential:
	$(PYTHON) -m pytest -x -q tests/differential

quality:
	$(PYTHON) -m repro.cli quality --check --baseline .quality-baseline.json

# Regenerate the expected-findings goldens for the analysis fixture
# corpus, including auto-discovered sub-corpora (audit/, units/) that
# ship their own regen.py; review the diff like any golden update.
quality-fixtures:
	$(PYTHON) tests/analysis/fixtures/regen.py

# Benchmark self-audit: SoK fault-taxonomy rules over the shipped
# experiment configuration, gated against the committed baseline.
audit:
	$(PYTHON) -m repro.cli audit configs --check --baseline .audit-baseline.json

audit-fixtures:
	$(PYTHON) tests/analysis/fixtures/audit/regen.py

# Quick harness for a local signal, then the tracked floors (frontier
# and all-active PageRank kernels, the columnar MapReduce shuffle,
# scale-18 datagen, and mmap graph load) — the same suite CI's
# "Performance floors" step runs.
perf:
	$(PYTHON) -m repro.cli perf --quick
	$(PYTHON) -m pytest -x -q benchmarks/perf

# End-to-end observability smoke: run one tiny traced benchmark,
# summarize the trace, and self-compare it under the regression gate
# (any flagged regression against itself is a tracing bug).
TRACE_SMOKE_DIR := .trace-smoke
trace-smoke:
	rm -rf $(TRACE_SMOKE_DIR)
	$(PYTHON) -m repro.cli run --platforms giraph --graphs graph500-8 \
		--algorithms BFS --trace $(TRACE_SMOKE_DIR) \
		--report $(TRACE_SMOKE_DIR)/report.txt >/dev/null
	$(PYTHON) -m repro.cli trace $(TRACE_SMOKE_DIR)/giraph_graph500-8_BFS.jsonl
	$(PYTHON) -m repro.cli analyze --check \
		$(TRACE_SMOKE_DIR)/giraph_graph500-8_BFS.jsonl \
		$(TRACE_SMOKE_DIR)/giraph_graph500-8_BFS.jsonl
	rm -rf $(TRACE_SMOKE_DIR)

# Hardware what-if smoke: execute giraph BFS once, re-cost it under
# the network-tier profiles, and render the sweep table. Exercises the
# profile registry, the exact re-coster, and dominant-component
# attribution in one command.
whatif-smoke:
	$(PYTHON) -m repro.cli whatif --platforms giraph --graphs graph500-8 \
		--algorithms BFS --profiles paper-1gbe,10gbe,rdma

# Line-coverage report with a checked-in floor (.coverage-floor, in
# percent). pytest-cov is an optional dependency: when it is not
# installed (this repo's pinned environment ships without it), the
# target reports that and exits zero instead of failing the build.
coverage:
	@if $(PYTHON) -c "import pytest_cov" 2>/dev/null; then \
		$(PYTHON) -m pytest -q -m "not slow" \
			--cov=repro --cov-report=term \
			--cov-fail-under=$(COVERAGE_FLOOR); \
	else \
		echo "coverage: pytest-cov not installed; skipping" \
		     "(floor when available: $(COVERAGE_FLOOR)%)"; \
	fi
