"""Tests for the one-call convenience API."""

import pytest

import repro
from repro.core.workload import Algorithm
from repro.graph.generators import rmat_graph


def test_run_benchmark_with_catalog_names():
    suite = repro.run_benchmark(
        ["graph500-7"], platforms=["giraph"], algorithms=["BFS"]
    )
    assert len(suite.results) == 1
    assert suite.results[0].succeeded
    assert suite.results[0].algorithm is Algorithm.BFS


def test_run_benchmark_with_graph_objects():
    graph = rmat_graph(6, seed=2)
    suite = repro.run_benchmark(
        {"mine": graph}, platforms=["neo4j"], algorithms=[Algorithm.CONN]
    )
    (result,) = suite.results
    assert result.graph_name == "mine"
    assert result.succeeded


def test_render_report():
    suite = repro.run_benchmark(
        ["graph500-7"], platforms=["giraph"], algorithms=["STATS"]
    )
    text = repro.render_report(suite, configuration={"run": "api-test"})
    assert "Graphalytics benchmark report" in text
    assert "run = api-test" in text


def test_time_limit_flows_through():
    suite = repro.run_benchmark(
        ["graph500-7"],
        platforms=["giraph"],
        algorithms=["BFS"],
        time_limit_seconds=1e-6,
    )
    (result,) = suite.results
    assert result.failure_reason == "time-limit"


def test_unknown_algorithm_rejected():
    with pytest.raises(ValueError, match="unknown algorithm"):
        repro.run_benchmark(["graph500-7"], algorithms=["pagerank"])
