"""Tests for the dataset catalog and Table 1 stand-ins."""

import pytest

from repro.datasets import (
    TABLE1_PAPER_VALUES,
    graph500_graph,
    load_dataset,
    snb_graph,
    standin_graph,
    standin_names,
)
from repro.graph.properties import graph_characteristics


class TestCatalog:
    def test_graph500_name(self):
        graph = load_dataset("graph500-8")
        assert graph.num_vertices == 256

    def test_snb_name(self):
        graph = load_dataset("snb-500")
        assert graph.num_vertices == 500

    def test_standin_names_resolve(self):
        for name in standin_names():
            assert load_dataset(name) is not None
            break  # one is enough here; the full set is tested below

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("twitter")

    def test_malformed_scale(self):
        with pytest.raises(ValueError, match="integer"):
            load_dataset("graph500-big")

    def test_deterministic(self):
        assert load_dataset("graph500-8") == load_dataset("graph500-8")
        assert snb_graph(400, seed=1) == snb_graph(400, seed=1)
        assert graph500_graph(8, seed=1) != graph500_graph(8, seed=2)


class TestStandins:
    def test_five_standins(self):
        assert standin_names() == [
            "amazon",
            "livejournal",
            "patents",
            "wikipedia",
            "youtube",
        ]

    def test_unknown_standin(self):
        with pytest.raises(ValueError, match="unknown stand-in"):
            standin_graph("facebook")

    def test_scale_divisor_validation(self):
        with pytest.raises(ValueError):
            standin_graph("amazon", scale_divisor=0)

    @pytest.mark.parametrize("name", ["amazon", "youtube", "wikipedia"])
    def test_structural_signature(self, name):
        """Stand-ins land in the paper's region of the config space."""
        spec = TABLE1_PAPER_VALUES[name]
        graph = standin_graph(name, scale_divisor=512)
        row = graph_characteristics(graph, name)
        # Edge density preserved within a factor of two.
        paper_density = spec.edges_millions / spec.nodes_millions
        density = row.num_edges / row.num_vertices
        assert 0.5 * paper_density < density < 2.0 * paper_density
        # Clustering within the right magnitude band.
        assert 0.4 * spec.average_clustering < row.average_clustering
        assert row.average_clustering < 2.5 * spec.average_clustering

    def test_configuration_space_heterogeneous(self):
        """The paper's core Table 1 observation, on our stand-ins."""
        rows = {
            name: graph_characteristics(standin_graph(name, scale_divisor=512))
            for name in standin_names()
        }
        clusterings = [r.average_clustering for r in rows.values()]
        # High-clustering and low-clustering graphs both present.
        assert max(clusterings) > 5 * min(clusterings)
        # Both assortativity signs present.
        signs = {r.assortativity > 0 for r in rows.values()}
        assert signs == {True, False}
        # Amazon has the highest clustering, as in the paper.
        assert rows["amazon"].average_clustering == max(clusterings)


class TestDatasetCache:
    """Content-addressed cache of generated graphs (mmap transport)."""

    def _graph(self, seed=3):
        from repro.graph.generators import rmat_graph

        return rmat_graph(scale=5, edge_factor=4, seed=seed, directed=True)

    def test_key_deterministic_and_order_insensitive(self):
        from repro.datasets import dataset_key

        key = dataset_key("rmat", {"scale": 5, "edge_factor": 4}, 3)
        assert key == dataset_key("rmat", {"edge_factor": 4, "scale": 5}, 3)
        assert key != dataset_key("rmat", {"scale": 6, "edge_factor": 4}, 3)
        assert key != dataset_key("rmat", {"scale": 5, "edge_factor": 4}, 4)
        assert key != dataset_key("grid", {"scale": 5, "edge_factor": 4}, 3)

    def test_store_then_load(self, tmp_path):
        from repro.datasets import DatasetCache

        cache = DatasetCache(tmp_path / "store")
        graph = self._graph()
        assert not cache.contains("k1")
        cache.store("k1", graph)
        assert cache.contains("k1")
        assert cache.load("k1", mmap=True) == graph
        assert cache.load("k1", mmap=False) == graph

    def test_store_is_idempotent(self, tmp_path):
        from repro.datasets import DatasetCache

        cache = DatasetCache(tmp_path / "store")
        graph = self._graph()
        first = cache.store("k1", graph)
        second = cache.store("k1", graph)
        assert first == second
        assert cache.load("k1") == graph

    def test_store_leaves_no_staging_debris(self, tmp_path):
        from repro.datasets import DatasetCache

        cache = DatasetCache(tmp_path / "store")
        cache.store("k1", self._graph())
        leftovers = [p.name for p in (tmp_path / "store").iterdir()
                     if p.name.startswith(".tmp-")]
        assert leftovers == []

    def test_get_or_generate_builds_once(self, tmp_path):
        from repro.datasets import DatasetCache

        cache = DatasetCache(tmp_path / "store")
        calls = []

        def build():
            calls.append(1)
            return self._graph()

        params = {"scale": 5, "edge_factor": 4, "directed": True}
        first = cache.get_or_generate("rmat", params, 3, build)
        second = cache.get_or_generate("rmat", params, 3, build)
        assert len(calls) == 1
        assert first == second == self._graph()

    def test_get_or_generate_serves_mmap_arrays(self, tmp_path):
        import numpy as np

        from repro.datasets import DatasetCache

        cache = DatasetCache(tmp_path / "store")
        graph = cache.get_or_generate(
            "rmat", {"scale": 5}, 3, self._graph, mmap=True
        )
        assert isinstance(graph._targets, np.memmap)
