"""Unit tests for the block runtime and Figure 3 cost model."""

import pytest

from repro.datagen.runtime import (
    CLUSTER_4_NODES,
    SINGLE_NODE,
    BlockRuntime,
    TaskResult,
    estimate_generation_time,
)


def _task(task_id, num_edges, cpu_work):
    def run():
        return TaskResult(
            task_id=task_id,
            edges=[(i, i + 1) for i in range(num_edges)],
            cpu_work=cpu_work,
        )

    return run


class TestBlockRuntime:
    def test_executes_all_tasks(self):
        runtime = BlockRuntime(SINGLE_NODE)
        jobs = [[_task((0, i), 10, 100.0) for i in range(5)]]
        report = runtime.run(jobs)
        assert report.num_tasks == 5
        assert report.num_edges == 50
        assert report.profile == "single"

    def test_startup_charged_per_job(self):
        runtime = BlockRuntime(CLUSTER_4_NODES)
        one_job = runtime.run([[_task((0, 0), 1, 1.0)]])
        three_jobs = runtime.run([[_task((j, 0), 1, 1.0)] for j in range(3)])
        assert three_jobs.startup_seconds == pytest.approx(
            3 * one_job.startup_seconds
        )

    def test_makespan_uses_parallelism(self):
        # 16 equal tasks on 16 cores take one task's time; on fewer
        # cores they stack.
        tasks = [[_task((0, i), 0, 1e6) for i in range(16)]]
        single = BlockRuntime(SINGLE_NODE).run(tasks)  # 16 cores
        tasks2 = [[_task((0, i), 0, 1e6) for i in range(16)]]
        cluster = BlockRuntime(CLUSTER_4_NODES).run(tasks2)  # 8 cores
        assert cluster.cpu_seconds > 1.5 * single.cpu_seconds

    def test_empty_jobs(self):
        report = BlockRuntime(SINGLE_NODE).run([])
        assert report.num_tasks == 0
        assert report.simulated_seconds == 0.0


class TestEstimate:
    def test_breakdown_sums_to_total(self):
        estimate = estimate_generation_time(1e8, SINGLE_NODE)
        assert estimate["total"] == pytest.approx(
            estimate["cpu"] + estimate["io"] + estimate["startup"]
        )

    def test_negative_edges_rejected(self):
        with pytest.raises(ValueError):
            estimate_generation_time(-1, SINGLE_NODE)

    def test_figure3_shape_single_wins_small(self):
        small = 100e6
        assert (
            estimate_generation_time(small, SINGLE_NODE)["total"]
            < estimate_generation_time(small, CLUSTER_4_NODES)["total"]
        )

    def test_figure3_shape_cluster_wins_large(self):
        large = 5000e6
        assert (
            estimate_generation_time(large, CLUSTER_4_NODES)["total"]
            < estimate_generation_time(large, SINGLE_NODE)["total"]
        )

    def test_paper_absolute_scale(self):
        # "It can generate a 1.3B edge graph in about 3 hours" on the
        # single node; accept a generous band around that.
        total = estimate_generation_time(1.3e9, SINGLE_NODE)["total"]
        assert 1.5 * 3600 < total < 4.5 * 3600

    def test_io_becomes_dominant_at_scale(self):
        small = estimate_generation_time(50e6, SINGLE_NODE)
        large = estimate_generation_time(5e9, SINGLE_NODE)
        assert small["io"] / small["total"] < large["io"] / large["total"]
