"""Unit and property-based tests for hill-climbing rewiring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.rewiring import rewire_to_target
from repro.graph.generators import erdos_renyi_graph, watts_strogatz_graph
from repro.graph.graph import Graph
from repro.graph.properties import (
    average_clustering_coefficient,
    degree_assortativity,
)


class TestTargets:
    def test_lower_clustering(self):
        base = watts_strogatz_graph(300, 8, 0.02, seed=1)
        before = average_clustering_coefficient(base)
        result = rewire_to_target(
            base, target_clustering=before / 3, max_swaps=15000, seed=1
        )
        assert result.final_clustering < before * 0.6
        assert result.swaps_accepted > 0

    def test_raise_clustering(self):
        base = erdos_renyi_graph(150, 0.06, seed=2)
        before = average_clustering_coefficient(base)
        result = rewire_to_target(
            base, target_clustering=min(before + 0.05, 1.0), max_swaps=20000, seed=2
        )
        assert result.final_clustering > before

    def test_assortativity_sign_positive(self):
        base = erdos_renyi_graph(200, 0.05, seed=3)
        result = rewire_to_target(base, assortativity_sign=1, max_swaps=15000, seed=3)
        assert result.final_assortativity > 0

    def test_assortativity_sign_negative(self):
        base = erdos_renyi_graph(200, 0.05, seed=4)
        result = rewire_to_target(base, assortativity_sign=-1, max_swaps=15000, seed=4)
        assert result.final_assortativity < 0

    def test_no_targets_is_noop(self, small_rmat):
        result = rewire_to_target(small_rmat, max_swaps=1000, seed=5)
        assert result.converged
        assert result.swaps_accepted == 0
        assert result.graph == small_rmat.to_undirected()

    def test_already_converged(self):
        base = erdos_renyi_graph(100, 0.05, seed=6)
        current = average_clustering_coefficient(base)
        result = rewire_to_target(
            base, target_clustering=current, tolerance=0.01, seed=6
        )
        assert result.converged
        assert result.swaps_attempted == 0


class TestInvariants:
    def test_degrees_preserved(self):
        base = erdos_renyi_graph(150, 0.07, seed=7)
        result = rewire_to_target(
            base, target_clustering=0.3, max_swaps=5000, seed=7
        )
        assert result.graph.degrees() == base.degrees()

    def test_reported_statistics_match_graph(self):
        base = erdos_renyi_graph(120, 0.08, seed=8)
        result = rewire_to_target(
            base, target_clustering=0.2, max_swaps=3000, seed=8
        )
        assert average_clustering_coefficient(result.graph) == pytest.approx(
            result.final_clustering, abs=1e-9
        )
        assert degree_assortativity(result.graph) == pytest.approx(
            result.final_assortativity, abs=1e-9
        )

    def test_input_not_mutated(self):
        base = erdos_renyi_graph(100, 0.06, seed=9)
        edges_before = [tuple(e) for e in base.edges]
        rewire_to_target(base, target_clustering=0.3, max_swaps=2000, seed=9)
        assert [tuple(e) for e in base.edges] == edges_before


class TestValidation:
    def test_invalid_clustering_target(self, small_rmat):
        with pytest.raises(ValueError):
            rewire_to_target(small_rmat, target_clustering=1.5)

    def test_invalid_sign(self, small_rmat):
        with pytest.raises(ValueError):
            rewire_to_target(small_rmat, assortativity_sign=2)


@given(
    st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 20)),
        min_size=4,
        max_size=60,
    ),
    st.floats(0.0, 1.0),
)
@settings(max_examples=30, deadline=None)
def test_property_degrees_always_preserved(edges, target):
    graph = Graph.from_edges(edges)
    if graph.num_edges < 2:
        return
    result = rewire_to_target(
        graph, target_clustering=target, max_swaps=200, seed=1
    )
    assert result.graph.degrees() == graph.degrees()
    assert result.graph.num_edges == graph.num_edges


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_property_deterministic_per_seed(seed):
    base = erdos_renyi_graph(60, 0.1, seed=11)
    a = rewire_to_target(base, target_clustering=0.2, max_swaps=300, seed=seed)
    b = rewire_to_target(base, target_clustering=0.2, max_swaps=300, seed=seed)
    assert a.graph == b.graph
    assert a.swaps_accepted == b.swaps_accepted
