"""Unit tests for windowed correlated edge generation."""

import numpy as np
import pytest

from repro.datagen.distributions import GeometricDistribution
from repro.datagen.knows import KnowsGenerator, correlation_dimensions
from repro.datagen.persons import generate_persons


def _persons(n=2000, seed=1, p=0.2):
    rng = np.random.default_rng(seed)
    degrees = GeometricDistribution(p).sample(n, rng)
    return generate_persons(n, degrees, seed=seed)


class TestParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            KnowsGenerator(window_size=0)
        with pytest.raises(ValueError):
            KnowsGenerator(decay=0.0)
        with pytest.raises(ValueError):
            KnowsGenerator(block_size=1)
        with pytest.raises(ValueError):
            KnowsGenerator(dimension_shares=(0.5, 0.5, 0.5))
        with pytest.raises(ValueError):
            KnowsGenerator(dimension_shares=(1.0,))

    def test_three_dimensions(self):
        assert KnowsGenerator().num_dimensions == 3
        assert len(correlation_dimensions()) == 3


class TestGeneration:
    def test_deterministic(self):
        persons = _persons()
        a = KnowsGenerator(seed=5).generate(persons)
        b = KnowsGenerator(seed=5).generate(persons)
        assert a == b

    def test_seed_changes_output(self):
        persons = _persons()
        a = KnowsGenerator(seed=5).generate(persons)
        b = KnowsGenerator(seed=6).generate(persons)
        assert a != b

    def test_block_size_invariant_to_worker_count(self):
        # The same block size yields the same graph regardless of how
        # blocks would be scheduled; different block sizes may differ.
        persons = _persons(1000)
        a = KnowsGenerator(seed=2, block_size=256).generate(persons)
        b = KnowsGenerator(seed=2, block_size=256).generate(persons)
        assert a == b

    def test_degrees_do_not_exceed_targets(self):
        persons = _persons(1500, seed=3)
        graph = KnowsGenerator(seed=3).generate(persons)
        targets = {p.person_id: p.target_degree for p in persons}
        for vertex, degree in graph.degrees().items():
            assert degree <= targets[vertex]

    def test_mean_degree_close_to_target(self):
        persons = _persons(3000, seed=4, p=0.15)
        graph = KnowsGenerator(seed=4).generate(persons)
        target_mean = float(np.mean([p.target_degree for p in persons]))
        actual_mean = 2 * graph.num_edges / graph.num_vertices
        assert actual_mean > 0.85 * target_mean

    def test_all_persons_become_vertices(self):
        persons = _persons(500)
        graph = KnowsGenerator().generate(persons)
        assert graph.num_vertices == 500

    def test_university_homophily(self):
        # Edges connect same-university persons far more often than a
        # random pairing would (the correlated-generation property).
        persons = _persons(2000, seed=6)
        graph = KnowsGenerator(seed=6).generate(persons)
        university = {p.person_id: p.university for p in persons}
        same = sum(
            1 for s, t in graph.iter_edges() if university[s] == university[t]
        )
        assert same / graph.num_edges > 0.25  # random baseline is ~5%

    def test_degree_homophily_raises_assortativity(self):
        from repro.graph.properties import degree_assortativity

        persons = _persons(3000, seed=7)
        plain = KnowsGenerator(seed=7).generate(persons)
        homophilous = KnowsGenerator(
            seed=7, degree_homophily=True, dimension_shares=(0.25, 0.25, 0.5)
        ).generate(persons)
        assert degree_assortativity(homophilous) > degree_assortativity(plain)


class TestBlocks:
    def test_dimension_blocks_partition_everyone(self):
        persons = _persons(1000)
        generator = KnowsGenerator(block_size=300)
        blocks = generator.dimension_blocks(persons, 0)
        assert sum(len(b) for b in blocks) == 1000
        assert len(blocks) == 4  # ceil(1000 / 300)

    def test_generate_block_matches_generate(self):
        # Assembling all block outputs reproduces generate() exactly.
        from repro.graph.graph import GraphBuilder

        persons = _persons(800, seed=8)
        generator = KnowsGenerator(seed=8, block_size=200)
        builder = GraphBuilder()
        for person in persons:
            builder.add_vertex(person.person_id)
        for dim in range(generator.num_dimensions):
            for index, block in enumerate(generator.dimension_blocks(persons, dim)):
                builder.add_edges(generator.generate_block(block, dim, index))
        assert builder.build() == generator.generate(persons)
