"""Unit tests for person generation."""

import numpy as np
import pytest

from repro.datagen.persons import (
    NUM_INTERESTS,
    NUM_LOCATIONS,
    NUM_UNIVERSITIES,
    generate_persons,
)


def test_basic_shape():
    degrees = np.full(100, 5)
    persons = generate_persons(100, degrees, seed=1)
    assert len(persons) == 100
    assert [p.person_id for p in persons] == list(range(100))
    assert all(p.target_degree == 5 for p in persons)


def test_attribute_ranges():
    degrees = np.ones(500, dtype=np.int64)
    persons = generate_persons(500, degrees, seed=2)
    assert all(0 <= p.university < NUM_UNIVERSITIES for p in persons)
    assert all(0 <= p.interest < NUM_INTERESTS for p in persons)
    assert all(0 <= p.location < NUM_LOCATIONS for p in persons)
    assert all(0 <= p.birthday < 365 * 40 for p in persons)


def test_deterministic():
    degrees = np.arange(50)
    assert generate_persons(50, degrees, seed=3) == generate_persons(
        50, degrees, seed=3
    )
    assert generate_persons(50, degrees, seed=3) != generate_persons(
        50, degrees, seed=4
    )


def test_interest_university_correlation():
    # Persons at the same university share interests far more often
    # than persons at different universities (the S3G2 correlation).
    degrees = np.ones(4000, dtype=np.int64)
    persons = generate_persons(4000, degrees, seed=5)
    by_university: dict[int, list[int]] = {}
    for person in persons:
        by_university.setdefault(person.university, []).append(person.interest)
    same = 0
    total = 0
    for interests in by_university.values():
        if len(interests) < 2:
            continue
        for a, b in zip(interests, interests[1:]):
            total += 1
            same += a == b
    assert total > 100
    assert same / total > 0.3  # ~0.36 expected from 0.6^2; chance is ~0.01


def test_degree_array_validation():
    with pytest.raises(ValueError):
        generate_persons(10, np.ones(5), seed=0)
    with pytest.raises(ValueError):
        generate_persons(3, np.array([1, -1, 2]), seed=0)
