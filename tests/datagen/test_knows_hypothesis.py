"""Property-based tests for the windowed knows generation (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.knows import KnowsGenerator
from repro.datagen.persons import generate_persons


def _persons(n, degree_cap, seed):
    rng = np.random.default_rng(seed)
    degrees = rng.integers(0, degree_cap + 1, size=n)
    return generate_persons(n, degrees, seed=seed)


@given(
    st.integers(10, 120),
    st.integers(0, 12),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_degrees_never_exceed_targets(n, degree_cap, seed):
    persons = _persons(n, degree_cap, seed)
    graph = KnowsGenerator(seed=seed).generate(persons)
    targets = {p.person_id: p.target_degree for p in persons}
    for vertex, degree in graph.degrees().items():
        assert degree <= targets[vertex]


@given(st.integers(10, 100), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_generation_deterministic(n, seed):
    persons = _persons(n, 6, seed)
    first = KnowsGenerator(seed=seed).generate(persons)
    second = KnowsGenerator(seed=seed).generate(persons)
    assert first == second


@given(st.integers(20, 100), st.integers(2, 16), st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_block_decomposition_covers_all_persons(n, block_size, seed):
    persons = _persons(n, 4, seed)
    generator = KnowsGenerator(seed=seed, block_size=max(block_size, 2))
    for dim in range(generator.num_dimensions):
        blocks = generator.dimension_blocks(persons, dim)
        flattened = [p.person_id for block in blocks for p in block]
        assert sorted(flattened) == list(range(n))


@given(st.integers(10, 80), st.integers(0, 500))
@settings(max_examples=25, deadline=None)
def test_zero_targets_produce_no_edges(n, seed):
    persons = generate_persons(n, np.zeros(n, dtype=np.int64), seed=seed)
    graph = KnowsGenerator(seed=seed).generate(persons)
    assert graph.num_edges == 0
    assert graph.num_vertices == n
