"""Unit and integration tests for the Datagen facade."""

import numpy as np
import pytest

from repro.datagen.datagen import Datagen, DatagenConfig
from repro.datagen.distributions import GeometricDistribution
from repro.datagen.runtime import CLUSTER_4_NODES, SINGLE_NODE
from repro.graph.properties import average_clustering_coefficient, degree_assortativity


class TestConfig:
    def test_named_distribution_resolution(self):
        config = DatagenConfig(degree_distribution="zeta",
                               distribution_params={"alpha": 2.0})
        assert config.resolve_distribution().alpha == 2.0

    def test_instance_distribution_passthrough(self):
        dist = GeometricDistribution(0.2)
        config = DatagenConfig(degree_distribution=dist)
        assert config.resolve_distribution() is dist

    def test_invalid_person_count(self):
        with pytest.raises(ValueError):
            Datagen(DatagenConfig(num_persons=0))


class TestGeneration:
    def test_deterministic(self):
        config = DatagenConfig(num_persons=800, seed=3)
        assert Datagen(config).generate() == Datagen(config).generate()

    def test_person_count(self):
        graph = Datagen(DatagenConfig(num_persons=700, seed=1)).generate()
        assert graph.num_vertices == 700

    def test_degrees_capped_by_population(self):
        config = DatagenConfig(
            num_persons=50,
            degree_distribution="facebook",
            distribution_params={"median_degree": 500.0},
            seed=2,
        )
        persons = Datagen(config).generate_persons()
        assert max(p.target_degree for p in persons) <= 49

    def test_runtime_produces_identical_graph(self):
        config = DatagenConfig(num_persons=1200, seed=4, block_size=256)
        direct = Datagen(config).generate()
        on_single, report_single = Datagen(config).generate_on(SINGLE_NODE)
        on_cluster, report_cluster = Datagen(config).generate_on(CLUSTER_4_NODES)
        assert direct == on_single == on_cluster
        # Hardware changes cost, never output.
        assert report_single.simulated_seconds != pytest.approx(
            report_cluster.simulated_seconds
        )

    def test_report_counts_real_work(self):
        config = DatagenConfig(num_persons=1000, seed=5)
        graph, report = Datagen(config).generate_on(SINGLE_NODE)
        # Tasks may produce duplicate candidate edges across
        # dimensions, so the task total is an upper bound.
        assert report.num_edges >= graph.num_edges
        assert report.num_tasks == 3  # one block per dimension here


class TestPostProcessing:
    def test_rewiring_toward_clustering(self):
        base_config = DatagenConfig(num_persons=600, seed=6)
        base_cc = average_clustering_coefficient(Datagen(base_config).generate())
        target = max(base_cc - 0.05, 0.0)
        shaped_config = DatagenConfig(
            num_persons=600, seed=6, target_clustering=target, rewiring_swaps=4000
        )
        shaped_cc = average_clustering_coefficient(
            Datagen(shaped_config).generate()
        )
        assert abs(shaped_cc - target) <= abs(base_cc - target)

    def test_rewiring_preserves_degrees(self):
        plain = DatagenConfig(num_persons=500, seed=7)
        shaped = DatagenConfig(
            num_persons=500, seed=7, assortativity_sign=1, rewiring_swaps=3000
        )
        graph_plain = Datagen(plain).generate()
        graph_shaped = Datagen(shaped).generate()
        assert graph_plain.degrees() == graph_shaped.degrees()

    def test_assortativity_sign_request(self):
        plain = DatagenConfig(num_persons=800, seed=8)
        shaped = DatagenConfig(
            num_persons=800, seed=8, assortativity_sign=1, rewiring_swaps=8000
        )
        before = degree_assortativity(Datagen(plain).generate())
        after = degree_assortativity(Datagen(shaped).generate())
        # Hill climbing moves assortativity toward positive; full sign
        # flips can need more swaps than a unit test budget allows.
        assert after > before


class TestFigure1Fidelity:
    """The Figure 1 property: generated degrees track the model."""

    @pytest.mark.parametrize(
        "name,params",
        [("zeta", {"alpha": 1.7}), ("geometric", {"p": 0.12})],
    )
    def test_distribution_reproduced(self, name, params):
        config = DatagenConfig(
            num_persons=8000, degree_distribution=name,
            distribution_params=params, seed=9,
        )
        datagen = Datagen(config)
        graph = datagen.generate()
        degrees = graph.degree_sequence()
        positive = degrees[degrees >= 1]
        dist = config.resolve_distribution()
        ks = np.arange(1, 21)
        expected = dist.expected_pmf(ks) * positive.size
        observed = np.array([int(np.sum(positive == k)) for k in ks])
        # Compare frequencies where the expectation is large enough
        # for the ratio to be statistically meaningful.
        meaningful = expected > 30
        ratio = observed[meaningful] / expected[meaningful]
        assert np.all(ratio > 0.55)
        assert np.all(ratio < 1.8)
