"""Unit tests for the degree-distribution plugins."""

import numpy as np
import pytest

from repro.datagen.distributions import (
    EmpiricalDistribution,
    FacebookDistribution,
    GeometricDistribution,
    ZetaDistribution,
    distribution_from_name,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestZeta:
    def test_support_and_shape(self, rng):
        dist = ZetaDistribution(alpha=1.7, max_degree=500)
        sample = dist.sample(20000, rng)
        assert sample.min() >= 1
        assert sample.max() <= 500
        # Heavy tail: far more 1s than 10s.
        ones = int(np.sum(sample == 1))
        tens = int(np.sum(sample == 10))
        assert ones > 10 * tens

    def test_expected_pmf_matches_theory(self):
        dist = ZetaDistribution(alpha=2.0)
        pmf = dist.expected_pmf(np.array([1, 2, 4]))
        assert pmf[0] / pmf[1] == pytest.approx(4.0)
        assert pmf[0] / pmf[2] == pytest.approx(16.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ZetaDistribution(alpha=1.0)
        with pytest.raises(ValueError):
            ZetaDistribution(max_degree=0)

    def test_mean_is_finite(self):
        assert ZetaDistribution(alpha=1.7, max_degree=100).mean() > 1.0


class TestGeometric:
    def test_sample_mean(self, rng):
        dist = GeometricDistribution(p=0.12)
        sample = dist.sample(20000, rng)
        assert float(sample.mean()) == pytest.approx(dist.mean(), rel=0.05)

    def test_expected_pmf_sums_to_one(self):
        dist = GeometricDistribution(p=0.3)
        assert dist.expected_pmf(np.arange(1, 500)).sum() == pytest.approx(1.0)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            GeometricDistribution(p=0.0)
        with pytest.raises(ValueError):
            GeometricDistribution(p=1.5)


class TestFacebook:
    def test_median_near_parameter(self, rng):
        dist = FacebookDistribution(median_degree=30.0)
        sample = dist.sample(20000, rng)
        assert float(np.median(sample)) == pytest.approx(30.0, rel=0.1)

    def test_capped(self, rng):
        dist = FacebookDistribution(median_degree=100.0, sigma=2.0, max_degree=500)
        sample = dist.sample(5000, rng)
        assert sample.max() <= 500
        assert sample.min() >= 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FacebookDistribution(median_degree=0)
        with pytest.raises(ValueError):
            FacebookDistribution(sigma=-1)


class TestEmpirical:
    def test_reproduces_histogram(self, rng):
        observed = [1] * 700 + [2] * 200 + [10] * 100
        dist = EmpiricalDistribution(observed)
        sample = dist.sample(50000, rng)
        fractions = {
            value: float(np.mean(sample == value)) for value in (1, 2, 10)
        }
        assert fractions[1] == pytest.approx(0.7, abs=0.02)
        assert fractions[2] == pytest.approx(0.2, abs=0.02)
        assert fractions[10] == pytest.approx(0.1, abs=0.02)
        assert set(np.unique(sample)) <= {1, 2, 10}

    def test_mean(self):
        dist = EmpiricalDistribution([2, 2, 8])
        assert dist.mean() == pytest.approx(4.0)

    def test_expected_pmf_zero_off_support(self):
        dist = EmpiricalDistribution([3, 3, 5])
        pmf = dist.expected_pmf(np.array([3, 4, 5]))
        assert pmf[1] == 0.0
        assert pmf[0] == pytest.approx(2 / 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution([])


class TestRegistry:
    def test_all_names(self):
        for name in ("zeta", "geometric", "facebook"):
            assert distribution_from_name(name).name == name
        empirical = distribution_from_name("empirical", observed_degrees=[1, 2])
        assert empirical.name == "empirical"

    def test_params_forwarded(self):
        dist = distribution_from_name("zeta", alpha=2.5)
        assert dist.alpha == 2.5

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown degree distribution"):
            distribution_from_name("pareto")


def test_sampling_is_deterministic_per_seed():
    dist = ZetaDistribution(alpha=1.7)
    a = dist.sample(100, np.random.default_rng(3))
    b = dist.sample(100, np.random.default_rng(3))
    assert np.array_equal(a, b)


class TestWeibull:
    def test_mean_near_theory(self, rng):
        from repro.datagen.distributions import WeibullDistribution

        dist = WeibullDistribution(shape=1.4, scale=12.0)
        sample = dist.sample(20000, rng)
        assert float(sample.mean()) == pytest.approx(dist.mean(), rel=0.05)
        assert sample.min() >= 1

    def test_fitting_recovers_parameters(self, rng):
        from repro.datagen.distributions import WeibullDistribution
        from repro.graph.fitting import fit_weibull

        dist = WeibullDistribution(shape=1.5, scale=15.0)
        sample = dist.sample(20000, rng)
        fit = fit_weibull(sample)
        assert fit.params["shape"] == pytest.approx(1.5, rel=0.15)

    def test_expected_pmf_normalized(self):
        from repro.datagen.distributions import WeibullDistribution

        dist = WeibullDistribution(shape=1.2, scale=8.0)
        pmf = dist.expected_pmf(np.arange(1, 500))
        assert 0.95 < float(pmf.sum()) <= 1.0

    def test_registry_name(self):
        from repro.datagen.distributions import distribution_from_name

        dist = distribution_from_name("weibull", shape=2.0, scale=5.0)
        assert dist.name == "weibull"
        assert dist.shape == 2.0

    def test_invalid_params(self):
        from repro.datagen.distributions import WeibullDistribution

        with pytest.raises(ValueError):
            WeibullDistribution(shape=0.0)
        with pytest.raises(ValueError):
            WeibullDistribution(scale=-1.0)
