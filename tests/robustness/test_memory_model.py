"""Unit tests for the memory-footprint model and ``--mem-limit``."""

import pytest

from repro.core.cost import ClusterSpec
from repro.graph.generators import rmat_graph
from repro.platforms.pregel.driver import GiraphPlatform
from repro.platforms.registry import available_platforms
from repro.robustness.memory import (
    PLATFORM_MEMORY_MODELS,
    apply_mem_limit,
    estimate_footprint,
    parse_bytes,
)


class TestParseBytes:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0", 0.0),
            ("65536", 65536.0),
            ("64K", 64 * 2 ** 10),
            ("64KB", 64 * 2 ** 10),
            ("512m", 512 * 2 ** 20),
            ("1.5G", 1.5 * 2 ** 30),
            ("2T", 2 * 2 ** 40),
            (" 8 K ", 8 * 2 ** 10),
        ],
    )
    def test_accepts(self, text, expected):
        assert parse_bytes(text) == expected

    @pytest.mark.parametrize("text", ["", "abc", "12Q", "-1", "1..5G"])
    def test_rejects(self, text):
        with pytest.raises(ValueError):
            parse_bytes(text)


class TestFootprintModel:
    def test_every_platform_has_a_model(self):
        assert set(PLATFORM_MEMORY_MODELS) == set(available_platforms())

    def test_estimate_scales_with_graph(self):
        small = rmat_graph(6, edge_factor=8, seed=3)
        large = rmat_graph(8, edge_factor=8, seed=3)
        for platform in PLATFORM_MEMORY_MODELS:
            lo = estimate_footprint(platform, small, num_workers=10)
            hi = estimate_footprint(platform, large, num_workers=10)
            assert hi.bytes_per_worker > lo.bytes_per_worker

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError, match="no memory model"):
            estimate_footprint("spark-4.0", rmat_graph(5, 4, seed=1))

    def test_single_machine_platforms_ignore_worker_count(self):
        graph = rmat_graph(7, edge_factor=8, seed=5)
        one = estimate_footprint("neo4j", graph, num_workers=1)
        ten = estimate_footprint("neo4j", graph, num_workers=10)
        assert one.bytes_per_worker == ten.bytes_per_worker

    def test_paper_failure_ordering_of_footprints(self):
        """Neo4j's floor beats GraphX's beats Giraph's — the Figure 4
        ordering a shared ``--mem-limit`` reproduces."""
        graph = rmat_graph(8, edge_factor=8, seed=21)
        workers = ClusterSpec.paper_distributed().num_workers
        neo4j = estimate_footprint("neo4j", graph, workers).bytes_per_worker
        graphx = estimate_footprint("graphx", graph, workers).bytes_per_worker
        giraph = estimate_footprint("giraph", graph, workers).bytes_per_worker
        assert neo4j > graphx > giraph

    def test_fits(self):
        graph = rmat_graph(6, edge_factor=4, seed=2)
        estimate = estimate_footprint("giraph", graph, num_workers=10)
        assert estimate.fits(estimate.bytes_per_worker)
        assert not estimate.fits(estimate.bytes_per_worker - 1)


class TestApplyMemLimit:
    def test_rebinds_cluster_spec(self):
        platform = GiraphPlatform(ClusterSpec.paper_distributed())
        returned = apply_mem_limit(platform, 1234.0)
        assert returned is platform
        assert platform.cluster.memory_bytes_per_worker == 1234.0
        # Everything else is untouched.
        assert platform.cluster.num_workers == 10

    def test_rejects_nonpositive(self):
        platform = GiraphPlatform(ClusterSpec.paper_distributed())
        with pytest.raises(ValueError, match="positive"):
            apply_mem_limit(platform, 0)
