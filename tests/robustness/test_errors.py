"""The typed failure envelope: hierarchy and re-export contracts."""

import pytest

from repro.core import errors as core_errors
from repro.robustness import errors as robustness_errors
from repro.robustness.errors import (
    SimulatedFault,
    SimulatedMessageLoss,
    SimulatedOOM,
    SimulatedTimeout,
    SimulatedWorkerCrash,
)


def test_simulated_limits_are_the_core_types():
    """Robustness re-exports the core types — one class, two imports,
    so `except SimulatedOOM` catches both sides."""
    assert robustness_errors.SimulatedOOM is core_errors.SimulatedOOM
    assert robustness_errors.SimulatedTimeout is core_errors.SimulatedTimeout


def test_every_simulated_failure_is_a_platform_failure():
    failures = [
        SimulatedOOM("giraph", "budget"),
        SimulatedTimeout("giraph", 12.0, 10.0),
        SimulatedWorkerCrash("giraph", 0, 1),
        SimulatedMessageLoss("giraph", 0, 1, 2),
    ]
    for failure in failures:
        assert isinstance(failure, core_errors.PlatformFailure)
        assert isinstance(failure, core_errors.GraphalyticsError)
        assert failure.platform == "giraph"
        assert failure.reason


def test_reasons_are_stable_identifiers():
    """Report labels and retry logic key on these exact strings."""
    assert SimulatedOOM("p").reason == "out-of-memory"
    assert SimulatedTimeout("p", 2.0, 1.0).reason == "timeout"
    assert SimulatedWorkerCrash("p", 0, 0).reason == "worker-crash"
    assert SimulatedMessageLoss("p", 0, 1, 0).reason == "message-loss"


def test_transient_flag_defaults_and_overrides():
    assert not SimulatedOOM("p").transient
    assert not SimulatedWorkerCrash("p", 0, 0).transient
    assert SimulatedWorkerCrash("p", 0, 0, transient=True).transient
    assert SimulatedFault("p", "synthetic", transient=True).transient


def test_timeout_message_names_both_budget_and_actual():
    failure = SimulatedTimeout("mapreduce", 4521.7, 3600.0)
    assert "4521.7" in str(failure)
    assert "3600.0" in str(failure)
    assert failure.simulated_seconds == 4521.7
    assert failure.budget_seconds == 3600.0


def test_message_loss_names_the_channel():
    failure = SimulatedMessageLoss("giraph", 3, 7, round_index=2)
    assert failure.src_worker == 3
    assert failure.dst_worker == 7
    assert "3->7" in str(failure)


def test_typed_failures_are_catchable_without_bare_except():
    with pytest.raises(core_errors.PlatformFailure):
        raise SimulatedWorkerCrash("giraph", 1, 4)
