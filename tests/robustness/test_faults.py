"""Unit tests for the fault plan, its parser, and the injector."""

import pytest

from repro.core.cost import CostMeter
from repro.robustness.errors import SimulatedMessageLoss, SimulatedWorkerCrash
from repro.robustness.faults import FaultInjector, FaultPlan


class TestFaultPlan:
    def test_defaults_are_inert(self):
        plan = FaultPlan()
        assert plan.straggler_workers == ()
        assert plan.message_loss_rate == 0.0
        assert plan.crash_round is None
        assert not plan.transient

    def test_transient_property(self):
        assert FaultPlan(transient_attempts=1).transient
        assert not FaultPlan(transient_attempts=0).transient

    def test_crash_fields_must_pair(self):
        with pytest.raises(ValueError, match="together"):
            FaultPlan(crash_worker=2)
        with pytest.raises(ValueError, match="together"):
            FaultPlan(crash_round=5)

    def test_validation(self):
        with pytest.raises(ValueError, match="straggler_factor"):
            FaultPlan(straggler_factor=0.5)
        with pytest.raises(ValueError, match="message_loss_rate"):
            FaultPlan(message_loss_rate=1.5)
        with pytest.raises(ValueError, match="transient_attempts"):
            FaultPlan(transient_attempts=-1)


class TestFaultPlanParse:
    def test_full_spec(self):
        plan = FaultPlan.parse(
            "straggler:workers=0|3,factor=4;crash:worker=2,round=5;"
            "msgloss:rate=0.01,seed=7;transient:attempts=1"
        )
        assert plan.straggler_workers == (0, 3)
        assert plan.straggler_factor == 4.0
        assert plan.crash_worker == 2
        assert plan.crash_round == 5
        assert plan.message_loss_rate == 0.01
        assert plan.seed == 7
        assert plan.transient_attempts == 1

    def test_single_clause(self):
        plan = FaultPlan.parse("crash:worker=0,round=1")
        assert plan.crash_worker == 0
        assert plan.crash_round == 1
        assert not plan.transient

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("meteor:impact=1")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown options"):
            FaultPlan.parse("crash:worker=0,round=1,color=red")

    def test_missing_option_rejected(self):
        with pytest.raises(ValueError, match="missing option"):
            FaultPlan.parse("crash:worker=0")


class TestFaultInjector:
    def test_crash_fires_at_configured_round(self):
        injector = FaultInjector(
            FaultPlan(crash_worker=2, crash_round=3), "giraph"
        )
        injector.begin_attempt()
        for benign_round in (0, 1, 2):
            injector.on_round_begin(benign_round)
        with pytest.raises(SimulatedWorkerCrash) as failure:
            injector.on_round_begin(3)
        assert failure.value.worker == 2
        assert failure.value.round_index == 3
        assert failure.value.reason == "worker-crash"
        assert not failure.value.transient

    def test_transient_crash_stops_after_budget(self):
        plan = FaultPlan(crash_worker=0, crash_round=0, transient_attempts=1)
        injector = FaultInjector(plan, "giraph")
        injector.begin_attempt()
        with pytest.raises(SimulatedWorkerCrash) as failure:
            injector.on_round_begin(0)
        assert failure.value.transient
        injector.begin_attempt()  # second attempt: fault is spent
        injector.on_round_begin(0)

    def test_message_loss_is_seeded_and_remote_only(self):
        plan = FaultPlan(message_loss_rate=0.5, seed=11)
        outcomes = []
        for _trial in range(2):
            injector = FaultInjector(plan, "giraph")
            injector.begin_attempt()
            trial = []
            for step in range(50):
                try:
                    injector.on_messages(0, 1, round_index=0, count=1)
                    trial.append(False)
                except SimulatedMessageLoss:
                    trial.append(True)
            outcomes.append(tuple(trial))
        # Deterministic: both trials see the identical loss schedule.
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0])
        # Local traffic never raises, whatever the RNG says.
        injector = FaultInjector(plan, "giraph")
        injector.begin_attempt()
        for _step in range(50):
            injector.on_messages(3, 3, round_index=0, count=10)

    def test_bulk_loss_probability_grows_with_count(self):
        plan = FaultPlan(message_loss_rate=0.01, seed=3)
        injector = FaultInjector(plan, "giraph")
        injector.begin_attempt()
        with pytest.raises(SimulatedMessageLoss):
            # One charge of a million messages is near-certain to trip.
            injector.on_messages(0, 1, round_index=0, count=1_000_000)

    def test_straggler_penalty_scales_worst_worker(self):
        plan = FaultPlan(straggler_workers=(1,), straggler_factor=3.0)
        injector = FaultInjector(plan, "giraph")
        injector.begin_attempt()
        penalty = injector.straggler_penalty_seconds(
            ops_per_worker=[100.0, 200.0],
            random_accesses_per_worker=[0.0, 0.0],
            ops_per_second=100.0,
            random_access_seconds=0.0,
        )
        # Worker 1 takes 2 s at full speed; 3x slower adds 4 s.
        assert penalty == pytest.approx(4.0)

    def test_straggler_ignores_out_of_range_workers(self):
        plan = FaultPlan(straggler_workers=(9,), straggler_factor=2.0)
        injector = FaultInjector(plan, "giraph")
        injector.begin_attempt()
        assert injector.straggler_penalty_seconds(
            [1.0], [0.0], 1.0, 0.0
        ) == 0.0

    def test_inert_plan_never_fires(self):
        injector = FaultInjector(FaultPlan(), "giraph")
        injector.begin_attempt()
        injector.on_round_begin(0)
        injector.on_messages(0, 1, round_index=0, count=100)
        assert injector.straggler_penalty_seconds([1.0], [1.0], 1.0, 1.0) == 0.0


class TestShuffleFaultPath:
    """Shuffle traffic must consult the injector like messages do.

    Regression tests: ``charge_shuffle`` used to bypass
    ``on_messages`` entirely, so ``--inject`` message loss never
    touched MapReduce/dataflow/RDD shuffles.
    """

    def _armed_meter(self, spec, rate=1.0):
        injector = FaultInjector(
            FaultPlan(message_loss_rate=rate, seed=5), "mapreduce"
        )
        injector.begin_attempt()
        return CostMeter(spec, faults=injector)

    def test_shuffle_bytes_consult_message_loss(self, cluster_spec):
        meter = self._armed_meter(cluster_spec)
        meter.begin_round("shuffle-0")
        with pytest.raises(SimulatedMessageLoss):
            meter.charge_shuffle(1024.0, count=10)

    def test_byte_only_shuffle_still_consults(self, cluster_spec):
        # count=0 shuffles still move remote bytes; the loss decision
        # charges at least one record's worth of traffic.
        meter = self._armed_meter(cluster_spec)
        meter.begin_round("shuffle-0")
        with pytest.raises(SimulatedMessageLoss):
            meter.charge_shuffle(4096.0)

    def test_empty_shuffle_is_lossless(self, cluster_spec):
        meter = self._armed_meter(cluster_spec)
        meter.begin_round("shuffle-0")
        meter.charge_shuffle(0.0, count=0)
        record = meter.end_round()
        assert record.remote_bytes == 0.0

    def test_single_worker_shuffle_is_lossless(self, single_node_spec):
        # One-worker clusters never put shuffle traffic on the wire:
        # the messages stay local, so the loss injector is never
        # consulted and nothing is charged as remote.
        meter = self._armed_meter(single_node_spec)
        meter.begin_round("scan")
        meter.charge_shuffle(10_000.0, count=100)
        record = meter.end_round()
        assert record.remote_bytes == 0.0
        assert record.remote_messages == 0
        assert record.local_messages == 100

    def test_zero_rate_shuffle_charges_normally(self, cluster_spec):
        meter = self._armed_meter(cluster_spec, rate=0.0)
        meter.begin_round("shuffle-0")
        meter.charge_shuffle(2048.0, count=7)
        record = meter.end_round()
        assert record.remote_bytes == 2048.0
        assert record.remote_messages == 7

    def test_mapreduce_inject_records_message_loss_cell(self, small_rmat):
        # End-to-end: MapReduce jobs communicate through shuffles only,
        # so before the fix an injected msgloss plan could never fail a
        # MapReduce cell.
        from repro.core.benchmark import BenchmarkCore
        from repro.core.cost import ClusterSpec
        from repro.core.workload import Algorithm, BenchmarkRunSpec
        from repro.platforms.mapreduce.driver import MapReducePlatform

        core = BenchmarkCore(
            [MapReducePlatform(ClusterSpec.paper_distributed())],
            {"tiny": small_rmat},
            fault_plan=FaultPlan(message_loss_rate=1.0, seed=2),
        )
        suite = core.run(BenchmarkRunSpec(algorithms=[Algorithm.BFS]))
        (result,) = suite.results
        assert not result.succeeded
        assert result.failure_reason.startswith("message-loss")
