"""Acceptance test: the paper's qualitative failure ordering.

Figure 4 of the paper reports that the graph database cannot process
graphs beyond one machine's memory, and that GraphX runs out of
memory before Giraph on the same cluster. With a single shared
``--mem-limit``, the reproduction shows the same ordering as
deterministic ``FAILED(out-of-memory)`` cells: Neo4j fails first (on
both graph sizes), GraphX fails on the larger graph only, Giraph on
neither — and the rendered failure matrix is bit-identical across
consecutive runs.
"""

import pytest

from repro.core.benchmark import BenchmarkCore
from repro.core.cost import ClusterSpec
from repro.core.report import ReportGenerator
from repro.core.workload import Algorithm, BenchmarkRunSpec
from repro.graph.generators import rmat_graph
from repro.platforms.registry import create_platform_fleet
from repro.robustness import apply_mem_limit, estimate_footprint

#: Shared per-worker budget separating the three platforms on the two
#: graphs below (between GraphX's ~89 KiB and Neo4j's ~91 KiB peak on
#: the small graph; far under both on the large one).
MEM_LIMIT = 90_000.0

PLATFORMS = ["giraph", "graphx", "neo4j"]


def _graphs():
    return {
        "small": rmat_graph(8, edge_factor=8, seed=21),
        "large": rmat_graph(9, edge_factor=8, seed=21),
    }


def _run_suite():
    fleet = create_platform_fleet(
        ClusterSpec.paper_distributed(), names=PLATFORMS
    )
    for platform in fleet:
        apply_mem_limit(platform, MEM_LIMIT)
    core = BenchmarkCore(fleet, _graphs())
    return core.run(BenchmarkRunSpec(algorithms=[Algorithm.BFS]))


@pytest.fixture(scope="module")
def suite():
    return _run_suite()


def _status(suite, platform, graph):
    result = suite.lookup(platform, graph, Algorithm.BFS)
    assert result is not None
    return result


class TestPaperFailureOrdering:
    def test_graphdb_fails_first(self, suite):
        """Neo4j's single machine holds the whole record store: it is
        the first platform past the budget, on both graph sizes."""
        for graph in ("small", "large"):
            result = _status(suite, "neo4j", graph)
            assert not result.succeeded
            assert "out-of-memory" in result.failure_reason

    def test_rddgraph_fails_before_pregel(self, suite):
        """GraphX's fat RDD records die on the large graph while
        Giraph's primitive adjacency still fits."""
        assert _status(suite, "graphx", "small").succeeded
        large = _status(suite, "graphx", "large")
        assert not large.succeeded
        assert "out-of-memory" in large.failure_reason

    def test_pregel_survives_both(self, suite):
        for graph in ("small", "large"):
            assert _status(suite, "giraph", graph).succeeded

    def test_footprint_model_predicts_the_ordering(self):
        """The declarative model ranks the platforms the same way the
        executed suite does — it is usable for choosing limits."""
        workers = ClusterSpec.paper_distributed().num_workers
        for graph in _graphs().values():
            floors = {
                name: estimate_footprint(name, graph, workers).bytes_per_worker
                for name in PLATFORMS
            }
            assert floors["neo4j"] > floors["graphx"] > floors["giraph"]


def test_failure_matrix_bit_identical_across_runs():
    """The full acceptance property: two consecutive suite executions
    render the same report, byte for byte, failure cells included."""
    generator = ReportGenerator(
        configuration={"mem-limit": f"{int(MEM_LIMIT)} bytes/worker"}
    )
    first = generator.render(_run_suite())
    second = generator.render(_run_suite())
    assert first == second
    assert "OOM" in first
