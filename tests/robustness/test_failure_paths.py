"""Failure-path tests: typed failures and the golden failure matrix.

Every simulated limit raises a *typed* exception (never a bare
``Exception``), and a failure matrix renders bit-identically across
consecutive runs — failures are first-class, reproducible results.
"""

import pytest

from repro.core.benchmark import FAILED, BenchmarkCore
from repro.core.cost import ClusterSpec
from repro.core.errors import (
    GraphalyticsError,
    PlatformFailure,
    SimulatedOOM,
    SimulatedTimeout,
)
from repro.core.report import ReportGenerator
from repro.core.workload import Algorithm, BenchmarkRunSpec
from repro.graph.generators import rmat_graph
from repro.platforms.registry import available_platforms, create_platform_fleet
from repro.robustness import FaultPlan, apply_mem_limit
from repro.robustness.errors import SimulatedWorkerCrash


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(7, edge_factor=8, seed=13)


#: MapReduce streams from disk and shrinks its sort buffer to fit the
#: budget — in the paper it fails by *time* limit, never by memory.
_OOM_PLATFORMS = sorted(set(available_platforms()) - {"mapreduce"})


@pytest.mark.parametrize("platform_name", _OOM_PLATFORMS)
def test_every_platform_raises_typed_oom(platform_name, graph):
    """A starved platform fails with SimulatedOOM, wherever it trips."""
    (platform,) = create_platform_fleet(
        ClusterSpec.paper_distributed(), names=[platform_name]
    )
    apply_mem_limit(platform, 2048.0)
    with pytest.raises(SimulatedOOM) as failure:
        handle = platform.upload_graph("g", graph)
        platform.run_algorithm(handle, Algorithm.BFS)
    assert failure.value.platform == platform_name
    assert failure.value.reason == "out-of-memory"
    # The typed envelope: a platform limit is always a PlatformFailure
    # (and so a GraphalyticsError), catchable without bare excepts.
    assert isinstance(failure.value, PlatformFailure)
    assert isinstance(failure.value, GraphalyticsError)
    assert not failure.value.transient


def test_mapreduce_streams_under_memory_pressure(graph):
    """MapReduce shrinks its sort buffer instead of dying — the
    paper's MapReduce survives every graph and fails only by time."""
    (platform,) = create_platform_fleet(
        ClusterSpec.paper_distributed(), names=["mapreduce"]
    )
    apply_mem_limit(platform, 2048.0)
    handle = platform.upload_graph("g", graph)
    run = platform.run_algorithm(handle, Algorithm.BFS)
    assert run.simulated_seconds > 0


def test_oom_is_deterministic_across_runs(graph):
    """The same starved combo dies at the same allocation every time."""
    messages = []
    for _run in range(2):
        (platform,) = create_platform_fleet(
            ClusterSpec.paper_distributed(), names=["giraph"]
        )
        apply_mem_limit(platform, 4096.0)
        with pytest.raises(SimulatedOOM) as failure:
            handle = platform.upload_graph("g", graph)
            platform.run_algorithm(handle, Algorithm.BFS)
        messages.append(str(failure.value))
    assert messages[0] == messages[1]


def test_timeout_is_typed(graph):
    (platform,) = create_platform_fleet(
        ClusterSpec.paper_distributed(), names=["giraph"]
    )
    platform.timeout_seconds = 1e-9
    handle = platform.upload_graph("g", graph)
    with pytest.raises(SimulatedTimeout) as failure:
        platform.run_algorithm(handle, Algorithm.BFS)
    assert failure.value.reason == "timeout"
    assert failure.value.simulated_seconds > failure.value.budget_seconds
    assert isinstance(failure.value, PlatformFailure)


def test_injected_crash_is_typed(graph):
    (platform,) = create_platform_fleet(
        ClusterSpec.paper_distributed(), names=["giraph"]
    )
    core = BenchmarkCore(
        [platform],
        {"g": graph},
        fault_plan=FaultPlan(crash_worker=2, crash_round=1),
    )
    suite = core.run(BenchmarkRunSpec(algorithms=[Algorithm.BFS]))
    (result,) = suite.results
    assert result.status == FAILED
    assert result.failure_reason == "worker-crash"


def test_crash_exception_carries_context():
    with pytest.raises(SimulatedWorkerCrash) as failure:
        raise SimulatedWorkerCrash("giraph", worker=3, round_index=7)
    assert failure.value.worker == 3
    assert failure.value.round_index == 7
    assert "worker 3" in str(failure.value)


def _starved_suite(graph):
    """One benchmark run with a mem-limit that fails two platforms."""
    fleet = create_platform_fleet(
        ClusterSpec.paper_distributed(), names=["giraph", "graphx", "neo4j"]
    )
    for platform in fleet:
        apply_mem_limit(platform, 64 * 2 ** 10)
    core = BenchmarkCore(fleet, {"rmat-8": graph})
    return core.run(BenchmarkRunSpec(algorithms=[Algorithm.BFS]))


def _render(suite):
    generator = ReportGenerator(configuration={"mem-limit": "64K"})
    return generator.render(suite), generator.render_html(suite)


@pytest.fixture(scope="module")
def starved_graph():
    return rmat_graph(8, edge_factor=8, seed=21)


def test_failure_matrix_renders_deterministically(starved_graph):
    """Golden property: two consecutive runs render byte-identically,
    failure cells included — text and HTML."""
    first_text, first_html = _render(_starved_suite(starved_graph))
    second_text, second_html = _render(_starved_suite(starved_graph))
    assert first_text == second_text
    assert first_html == second_html
    # The matrix actually contains failure cells, not just successes.
    assert "OOM" in first_text
    assert 'class="failure"' in first_html


def test_failure_cells_keep_reasons(starved_graph):
    suite = _starved_suite(starved_graph)
    failed = {r.platform: r for r in suite.results if not r.succeeded}
    assert set(failed) == {"graphx", "neo4j"}
    assert all("out-of-memory" in r.failure_reason for r in failed.values())
    # Giraph's lean adjacency still fits: the suite kept running after
    # the failures and recorded its success.
    success = suite.lookup("giraph", "rmat-8", Algorithm.BFS)
    assert success is not None and success.succeeded
