"""End-to-end integration: the full paper workflow in miniature.

Reproduces the paper's Section 2.3 user journey: generate/add graphs,
configure platforms, choose a workload, run the benchmark, and get the
report — then checks the paper's headline result shapes on the small
scale the test budget allows.
"""

import pytest

from repro.core.benchmark import BenchmarkCore
from repro.core.chokepoints import analyze_profile
from repro.core.config import load_benchmark_config
from repro.core.cost import ClusterSpec
from repro.core.report import ReportGenerator
from repro.core.results_db import ResultsDatabase
from repro.core.validation import OutputValidator
from repro.core.workload import Algorithm
from repro.datagen.datagen import Datagen, DatagenConfig
from repro.graph.generators import rmat_graph
from repro.platforms.registry import create_platform


@pytest.fixture(scope="module")
def suite_and_graphs():
    distributed = ClusterSpec.paper_distributed()
    platforms = [
        create_platform("giraph", distributed),
        create_platform("mapreduce", distributed),
        create_platform("graphx", distributed),
        create_platform("neo4j", ClusterSpec.paper_single_node()),
    ]
    graphs = {
        "graph500-8": rmat_graph(8, edge_factor=8, seed=2),
        "snb-tiny": Datagen(DatagenConfig(num_persons=400, seed=3)).generate(),
    }
    core = BenchmarkCore(platforms, graphs, validator=OutputValidator())
    return core.run(), graphs


def test_everything_succeeds_and_validates(suite_and_graphs):
    suite, graphs = suite_and_graphs
    assert len(suite.results) == 4 * 2 * len(Algorithm)
    assert not suite.failures()


def test_figure4_shape_mapreduce_slowest(suite_and_graphs):
    """MapReduce is far slower than the in-memory platforms."""
    suite, _graphs = suite_and_graphs
    for graph in ("graph500-8", "snb-tiny"):
        for algorithm in (Algorithm.BFS, Algorithm.CONN):
            mapreduce = suite.lookup("mapreduce", graph, algorithm)
            giraph = suite.lookup("giraph", graph, algorithm)
            assert mapreduce.runtime_seconds > 2.5 * giraph.runtime_seconds


def test_figure4_shape_neo4j_fast_when_it_fits(suite_and_graphs):
    """Single-node performance beats the distributed stack at small scale."""
    suite, _graphs = suite_and_graphs
    for algorithm in Algorithm:
        neo4j = suite.lookup("neo4j", "graph500-8", algorithm)
        giraph = suite.lookup("giraph", "graph500-8", algorithm)
        assert neo4j.runtime_seconds < giraph.runtime_seconds


def test_report_and_database_flow(suite_and_graphs, tmp_path):
    suite, _graphs = suite_and_graphs
    report_path = ReportGenerator().write(suite, tmp_path / "report.txt")
    text = report_path.read_text()
    for platform in ("giraph", "mapreduce", "graphx", "neo4j"):
        assert platform in text
    db = ResultsDatabase(tmp_path / "db.jsonl")
    assert db.submit(suite) == len(suite.results)
    assert db.best_runtime("giraph", "graph500-8", "BFS") is not None


def test_chokepoint_indicators_available(suite_and_graphs):
    suite, _graphs = suite_and_graphs
    stats_run = suite.lookup("giraph", "graph500-8", Algorithm.STATS)
    report = analyze_profile(stats_run.run.profile)
    # STATS ships adjacency lists: the network choke point dominates.
    assert report.total_remote_bytes > 0
    bfs_run = suite.lookup("giraph", "graph500-8", Algorithm.BFS)
    bfs_report = analyze_profile(bfs_run.run.profile)
    assert bfs_report.total_remote_bytes < report.total_remote_bytes


def test_config_file_driven_run(tmp_path):
    config_path = tmp_path / "bench.ini"
    config_path.write_text(
        "[benchmark]\n"
        "platforms = giraph\n"
        "algorithms = BFS\n"
        "time_limit_seconds = 100000\n"
    )
    spec, time_limit = load_benchmark_config(config_path)
    core = BenchmarkCore(
        [create_platform("giraph", ClusterSpec.paper_distributed())],
        {"g": rmat_graph(7, seed=4)},
        validator=OutputValidator(),
        time_limit_seconds=time_limit,
    )
    suite = core.run(spec)
    assert len(suite.results) == 1
    assert suite.results[0].succeeded
