"""Cross-platform differential harness (faults disabled).

Every platform must compute outputs equal to the reference
implementation on every fuzzed graph — the strongest cross-platform
equivalence statement the reproduction makes: eight execution models,
twenty adversarial graphs, four deterministic algorithms, zero
disagreements.
"""

import pytest

from repro.core.validation import OutputValidator
from repro.core.workload import Algorithm, AlgorithmParams

from tests.differential.conftest import (
    FUZZED_GRAPHS,
    FUZZED_WEIGHTED_GRAPHS,
    PLATFORM_FACTORIES,
)

#: EVO is excluded: forest-fire sampling is seeded but its reference
#: is distributional, not exact — the differential contract covers
#: the four deterministic kernels.
ALGORITHMS = [Algorithm.BFS, Algorithm.CONN, Algorithm.CD, Algorithm.STATS]

#: The LDBC-parity algorithms run over the *weighted* pool (SSSP needs
#: edge weights; PR and LCC ignore them). SSSP and LCC compare exactly,
#: PR per vertex within the validator's tolerance.
LDBC_ALGORITHMS = [Algorithm.PR, Algorithm.SSSP, Algorithm.LCC]

PARAMS = AlgorithmParams(cd_max_iterations=6)


@pytest.fixture(scope="module")
def validator():
    return OutputValidator()


@pytest.mark.slow
@pytest.mark.parametrize("graph_name", sorted(FUZZED_GRAPHS))
@pytest.mark.parametrize("platform_name", sorted(PLATFORM_FACTORIES))
def test_platform_matches_reference_on_fuzzed_graphs(
    platform_name, graph_name, validator
):
    """One platform, one fuzzed graph, all four algorithms: the
    platform's outputs equal the reference's."""
    platform = PLATFORM_FACTORIES[platform_name]()
    graph = FUZZED_GRAPHS[graph_name]
    handle = platform.upload_graph(graph_name, graph)
    try:
        for algorithm in ALGORITHMS:
            run = platform.run_algorithm(handle, algorithm, PARAMS)
            validator.validate(graph, algorithm, PARAMS, run.output)
    finally:
        platform.delete_graph(handle)


@pytest.mark.slow
@pytest.mark.parametrize("graph_name", sorted(FUZZED_WEIGHTED_GRAPHS))
@pytest.mark.parametrize("platform_name", sorted(PLATFORM_FACTORIES))
def test_platform_matches_reference_on_ldbc_algorithms(
    platform_name, graph_name, validator
):
    """One platform, one fuzzed weighted graph, the three LDBC-parity
    algorithms: the platform's outputs equal the reference's (PR
    within the per-vertex tolerance, SSSP and LCC exactly)."""
    platform = PLATFORM_FACTORIES[platform_name]()
    graph = FUZZED_WEIGHTED_GRAPHS[graph_name]
    handle = platform.upload_graph(graph_name, graph)
    try:
        for algorithm in LDBC_ALGORITHMS:
            run = platform.run_algorithm(handle, algorithm, PARAMS)
            validator.validate(graph, algorithm, PARAMS, run.output)
    finally:
        platform.delete_graph(handle)


def test_weighted_pool_has_positive_distinct_weights():
    """The weighted pool is genuinely fuzzed: every graph carries
    strictly positive weights, assignments differ across graphs, and
    every graph has at least one edge (all-active PR needs one)."""
    weight_sets = set()
    for graph in FUZZED_WEIGHTED_GRAPHS.values():
        triples = list(graph.iter_weighted_edges())
        assert triples, "weighted fuzz graphs must have at least one edge"
        assert all(weight > 0 for _s, _t, weight in triples)
        weight_sets.add(tuple(round(w, 12) for _s, _t, w in triples))
    assert len(weight_sets) == len(FUZZED_WEIGHTED_GRAPHS)


def test_fuzzed_pool_covers_the_edge_cases():
    """The pool itself exercises what it promises: multiple components,
    singletons, and a spread of sizes."""
    components = set()
    sizes = set()
    singleton_graphs = 0
    for graph in FUZZED_GRAPHS.values():
        undirected = graph.to_undirected()
        degrees = {int(v): 0 for v in undirected.vertices}
        for u, v in undirected.iter_edges():
            degrees[u] += 1
            degrees[v] += 1
        if any(count == 0 for count in degrees.values()):
            singleton_graphs += 1
        sizes.add(undirected.num_vertices)
        components.add(undirected.num_vertices - undirected.num_edges >= 1)
    assert len(FUZZED_GRAPHS) == 20
    assert singleton_graphs >= 5
    assert len(sizes) >= 8
