"""Differential pinning of the hardware-profile refactor.

``golden_pre_hardware.json`` snapshots the full 8-platform x 3-algorithm
suite on graph500-8 as the flat-constant cost model produced it, one
commit before hardware profiles landed. The refactor's contract:

* **Charges are invariant** — every counter (messages, bytes, disk
  traffic, round counts) matches the golden bit-for-bit. Profiles
  change how charges are *priced*, never what is charged.
* **Local-only platforms are bit-identical** — with no remote traffic
  the NIC latency/queueing fix cannot fire, and no other term moved.
* **The legacy reconstruction is exact** — re-summing each run as
  ``startup + sum(compute + transfer + disk + barrier)`` (the old
  model's terms, in the old accumulation order) reproduces the golden
  seconds bit-for-bit on *every* cell, proving the only change to
  priced time is the deliberate per-message overhead.
"""

import json
from pathlib import Path

import pytest

from repro.api import run_benchmark

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_pre_hardware.json").read_text()
)

CHARGE_FIELDS = (
    "remote_bytes",
    "remote_messages",
    "local_messages",
    "disk_read_bytes",
    "disk_write_bytes",
    "num_rounds",
)


@pytest.fixture(scope="module")
def suite_by_cell():
    suite = run_benchmark(
        ["graph500-8"], algorithms=["BFS", "CONN", "PR"], validate=False
    )
    cells = {}
    for result in suite.results:
        assert result.succeeded, (result.platform, result.error)
        cells[(result.platform, result.algorithm.value)] = result.run.profile
    return cells


def golden_cells():
    for platform, algorithms in GOLDEN.items():
        for algorithm, expected in algorithms.items():
            yield platform, algorithm, expected


def test_golden_covers_the_full_matrix():
    assert len(list(golden_cells())) == 24


def test_charges_are_hardware_invariant(suite_by_cell):
    for platform, algorithm, expected in golden_cells():
        profile = suite_by_cell[(platform, algorithm)]
        observed = {
            "remote_bytes": profile.total_remote_bytes,
            "remote_messages": sum(
                r.remote_messages for r in profile.rounds
            ),
            "local_messages": sum(r.local_messages for r in profile.rounds),
            "disk_read_bytes": sum(
                r.disk_read_bytes for r in profile.rounds
            ),
            "disk_write_bytes": sum(
                r.disk_write_bytes for r in profile.rounds
            ),
            "num_rounds": profile.num_rounds,
        }
        for field in CHARGE_FIELDS:
            assert observed[field] == expected[field], (
                platform,
                algorithm,
                field,
            )


def test_startup_seconds_unchanged(suite_by_cell):
    for platform, algorithm, expected in golden_cells():
        profile = suite_by_cell[(platform, algorithm)]
        assert profile.startup_seconds == expected["startup_seconds"], (
            platform,
            algorithm,
        )


def test_local_only_cells_bit_identical(suite_by_cell):
    checked = 0
    for platform, algorithm, expected in golden_cells():
        if expected["remote_messages"] or expected["remote_bytes"]:
            continue
        profile = suite_by_cell[(platform, algorithm)]
        assert profile.simulated_seconds == expected["simulated_seconds"], (
            platform,
            algorithm,
        )
        checked += 1
    # The three single-machine platforms, three algorithms each.
    assert checked == 9


def test_legacy_reconstruction_is_exact(suite_by_cell):
    # The old model's network time was the transfer term alone and its
    # disk formula pooled all bytes at aggregate bandwidth — which the
    # striped path reproduces for the balanced charges these workloads
    # make. Re-summing the old terms in the old order must therefore
    # hit the golden float on every cell, remote traffic included.
    for platform, algorithm, expected in golden_cells():
        profile = suite_by_cell[(platform, algorithm)]
        legacy = profile.startup_seconds + sum(
            r.compute_seconds
            + r.network_transfer_seconds
            + r.disk_seconds
            + r.barrier_seconds
            for r in profile.rounds
        )
        assert legacy == expected["simulated_seconds"], (platform, algorithm)


def test_remote_cells_gain_only_message_overhead(suite_by_cell):
    checked = 0
    for platform, algorithm, expected in golden_cells():
        if not expected["remote_messages"]:
            continue
        profile = suite_by_cell[(platform, algorithm)]
        overhead = sum(
            r.network_latency_seconds + r.network_queueing_seconds
            for r in profile.rounds
        )
        assert overhead > 0.0, (platform, algorithm)
        assert profile.simulated_seconds > expected["simulated_seconds"]
        assert profile.simulated_seconds == pytest.approx(
            expected["simulated_seconds"] + overhead, rel=1e-12
        ), (platform, algorithm)
        checked += 1
    # The five distributed platforms, three algorithms each.
    assert checked == 15
