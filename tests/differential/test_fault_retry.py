"""Differential harness with transient fault injection and retry.

The acceptance property for the resilience layer: with a transient
worker crash injected into every first attempt and one bounded retry,
the whole matrix still completes successfully — and the validated
outputs are unchanged, so recovery is invisible in the results.
"""

import pytest

from repro.core.benchmark import BenchmarkCore
from repro.core.cost import ClusterSpec
from repro.core.validation import OutputValidator
from repro.core.workload import Algorithm, BenchmarkRunSpec
from repro.platforms.registry import create_platform_fleet
from repro.robustness import FaultPlan

from tests.differential.conftest import fuzzed_graph

#: First attempt of every cell crashes worker 0 when its first round
#: opens; the fault is spent after that attempt, so one retry wins.
TRANSIENT_CRASH = FaultPlan(
    crash_worker=0, crash_round=0, transient_attempts=1
)

ALGORITHMS = [Algorithm.BFS, Algorithm.CONN, Algorithm.CD, Algorithm.STATS]


def _run(fault_plan=None, max_retries=0):
    fleet = create_platform_fleet(ClusterSpec.paper_distributed())
    core = BenchmarkCore(
        fleet,
        {"fuzz": fuzzed_graph(5)},
        validator=OutputValidator(),
        fault_plan=fault_plan,
        max_retries=max_retries,
    )
    return core.run(BenchmarkRunSpec(algorithms=ALGORITHMS))


@pytest.mark.slow
def test_transient_crash_with_retry_completes_the_matrix():
    suite = _run(fault_plan=TRANSIENT_CRASH, max_retries=1)
    assert suite.results
    for result in suite.results:
        assert result.succeeded, (
            f"{result.platform}/{result.algorithm.value}: "
            f"{result.failure_reason}"
        )
        # Every cell needed exactly one retry and paid its backoff.
        assert result.attempts == 2
        assert result.backoff_seconds > 0


@pytest.mark.slow
def test_transient_crash_without_retry_fails_the_matrix():
    suite = _run(fault_plan=TRANSIENT_CRASH, max_retries=0)
    for result in suite.results:
        assert not result.succeeded
        assert result.failure_reason == "worker-crash"
        assert result.attempts == 1


@pytest.mark.slow
def test_recovered_runs_match_fault_free_runs():
    """Retry recovery is invisible: runtimes and outputs of the
    recovered suite equal the fault-free suite's."""
    recovered = _run(fault_plan=TRANSIENT_CRASH, max_retries=1)
    clean = _run()
    assert len(recovered.results) == len(clean.results)
    for with_fault, without in zip(recovered.results, clean.results):
        assert with_fault.platform == without.platform
        assert with_fault.algorithm == without.algorithm
        assert with_fault.runtime_seconds == without.runtime_seconds
        assert repr(with_fault.run.output) == repr(without.run.output)
