"""Fixtures for the cross-platform differential harness.

A seeded fuzzer produces a pool of small adversarial graphs —
directed and undirected construction, disconnected components,
self-loops, duplicate edges, singleton vertices — on which every
platform must reproduce the reference outputs exactly.
"""

from __future__ import annotations

import random

from repro.core.cost import ClusterSpec
from repro.graph.graph import Graph
from repro.platforms.columnar.driver import VirtuosoPlatform
from repro.platforms.dataflow.driver import StratospherePlatform
from repro.platforms.gas.driver import GraphLabPlatform
from repro.platforms.gpu.driver import MedusaPlatform
from repro.platforms.graphdb.driver import Neo4jPlatform
from repro.platforms.mapreduce.driver import MapReducePlatform
from repro.platforms.pregel.driver import GiraphPlatform
from repro.platforms.rddgraph.driver import GraphXPlatform

PLATFORM_FACTORIES = {
    "giraph": lambda: GiraphPlatform(ClusterSpec.paper_distributed()),
    "graphlab": lambda: GraphLabPlatform(ClusterSpec.paper_distributed()),
    "graphx": lambda: GraphXPlatform(ClusterSpec.paper_distributed()),
    "mapreduce": lambda: MapReducePlatform(ClusterSpec.paper_distributed()),
    "medusa": lambda: MedusaPlatform(),
    "neo4j": lambda: Neo4jPlatform(),
    "stratosphere": lambda: StratospherePlatform(ClusterSpec.paper_distributed()),
    "virtuoso": lambda: VirtuosoPlatform(),
}

#: Number of fuzzed graphs in the differential pool.
NUM_FUZZED_GRAPHS = 20


def fuzzed_graph(index: int) -> Graph:
    """Deterministic adversarial graph number ``index``.

    Every structural edge case the builder and the platforms must
    agree on is exercised across the pool: the fuzzer mixes dense and
    sparse random graphs, splits some graphs into disconnected
    clusters, sprinkles self-loops (dropped by the builder) and
    duplicate edges (deduplicated), and appends isolated vertices.
    """
    rng = random.Random(0xD1FF ^ index)
    num_clusters = 1 + index % 3  # 1, 2, or 3 components
    edges: list[tuple[int, int]] = []
    base = 0
    for _cluster in range(num_clusters):
        size = rng.randint(3, 8)
        density = rng.choice([0.25, 0.5, 0.9])
        for u in range(size):
            for v in range(u + 1, size):
                if rng.random() < density:
                    if index % 2:  # exercise both arc orientations
                        edges.append((base + v, base + u))
                    else:
                        edges.append((base + u, base + v))
        # A spanning path keeps each cluster connected (so components
        # match cluster count and BFS has nontrivial depth).
        for u in range(size - 1):
            edges.append((base + u, base + u + 1))
        base += size + rng.randint(0, 2)  # id gaps between clusters
    # Self-loops: dropped by the graph builder, platforms never see them.
    for _ in range(index % 4):
        vertex = rng.randrange(base) if base else 0
        edges.append((vertex, vertex))
    # Duplicate edges: deduplicated by the builder.
    for _ in range(index % 3):
        if edges:
            edges.append(rng.choice(edges))
    rng.shuffle(edges)
    # Singleton vertices (never mentioned by any edge).
    singletons = [base + 100 + i for i in range(index % 3)]
    return Graph.from_edges(edges, vertices=singletons)


FUZZED_GRAPHS = {
    f"fuzz-{index:02d}": fuzzed_graph(index)
    for index in range(NUM_FUZZED_GRAPHS)
}


def fuzzed_weighted_graph(index: int) -> Graph:
    """Weighted variant of adversarial graph number ``index``.

    Same structural pool, with per-edge weights drawn from a seed that
    differs per graph — so the weighted sweep exercises both the
    structural edge cases and distinct weight assignments. (Every
    fuzzed graph has at least one edge: each cluster carries its
    spanning path, which the all-active PageRank rounds rely on.)
    """
    return fuzzed_graph(index).with_uniform_weights(seed=0xBEEF ^ index)


FUZZED_WEIGHTED_GRAPHS = {
    f"wfuzz-{index:02d}": fuzzed_weighted_graph(index)
    for index in range(NUM_FUZZED_GRAPHS)
}
