"""Behavioural tests for the SoK audit rule family and the runner."""

from __future__ import annotations

import pytest

from repro.analysis import AnalysisConfig, audit_paths, audit_spec
from repro.core.workload import BenchmarkRunSpec

RIGOROUS = """\
[benchmark]
platforms = giraph, graphx
graphs = graph500-12, patents, road-16
algorithms = BFS
time_limit_seconds = 10000
validate = true
repetitions = 5
warmup = 1
"""


def _rules(report):
    return sorted(finding.rule for _, finding in report.iter_findings())


def _audit_text(tmp_path, text, name="benchmark.ini", config=None):
    (tmp_path / name).write_text(text, encoding="utf-8")
    return audit_paths([tmp_path], config)


class TestSingleRun:
    def test_threshold_is_configurable(self, tmp_path):
        text = RIGOROUS.replace("repetitions = 5", "repetitions = 4")
        report = _audit_text(tmp_path, text)
        assert "single-run" not in _rules(report)
        strict = AnalysisConfig(min_repetitions=10)
        report = _audit_text(tmp_path, text, config=strict)
        assert "single-run" in _rules(report)

    def test_error_severity(self, tmp_path):
        text = RIGOROUS.replace("repetitions = 5", "repetitions = 1")
        report = _audit_text(tmp_path, text)
        (finding,) = [
            finding
            for _, finding in report.iter_findings()
            if finding.rule == "single-run"
        ]
        assert finding.severity == "error"


class TestSuppressions:
    def test_inline_suppression_counts(self, tmp_path):
        text = RIGOROUS.replace(
            "validate = true",
            "validate = false   ; audit: ignore[validation-off]",
        )
        report = _audit_text(tmp_path, text)
        assert "validation-off" not in _rules(report)
        assert report.total_suppressed == 1

    def test_stale_suppression_reported(self, tmp_path):
        text = RIGOROUS.replace(
            "validate = true",
            "validate = true   ; audit: ignore[validation-off]",
        )
        report = _audit_text(tmp_path, text)
        assert "stale-ignore" in _rules(report)

    def test_disabled_rule_does_not_fire(self, tmp_path):
        text = RIGOROUS.replace("warmup = 1", "warmup = 0")
        config = AnalysisConfig(disabled=frozenset({"no-warmup"}))
        report = _audit_text(tmp_path, text, config=config)
        assert "no-warmup" not in _rules(report)

    def test_standalone_comment_attaches_to_next_line(self, tmp_path):
        text = RIGOROUS.replace(
            "validate = true",
            "; audit: ignore[validation-off]\nvalidate = false",
        )
        report = _audit_text(tmp_path, text)
        assert "validation-off" not in _rules(report)
        assert report.total_suppressed == 1

    def test_jsonl_comment_suppresses_record_finding(self, tmp_path):
        (tmp_path / "results.jsonl").write_text(
            "# audit: ignore[unexplained-failure]\n"
            '{"platform": "giraph", "graph": "graph500-12",'
            ' "algorithm": "BFS", "status": "failed"}\n',
            encoding="utf-8",
        )
        report = _audit_text(tmp_path, RIGOROUS)
        assert "unexplained-failure" not in _rules(report)
        assert report.total_suppressed == 1

    def test_stale_jsonl_comment_anchors_on_comment_line(self, tmp_path):
        (tmp_path / "results.jsonl").write_text(
            "# audit: ignore[unexplained-failure]\n"
            '{"platform": "giraph", "graph": "graph500-12",'
            ' "algorithm": "BFS", "status": "success",'
            ' "makespan_seconds": 1.0}\n',
            encoding="utf-8",
        )
        report = _audit_text(tmp_path, RIGOROUS)
        stale = [
            (artifact, finding)
            for artifact, finding in report.iter_findings()
            if finding.rule == "stale-ignore"
        ]
        assert len(stale) == 1
        file_report, finding = stale[0]
        assert file_report.path.endswith("results.jsonl")
        assert finding.line == 1


class TestShapeBias:
    def test_single_dataset_flagged(self, tmp_path):
        text = RIGOROUS.replace(
            "graphs = graph500-12, patents, road-16",
            "graphs = graph500-12",
        )
        report = _audit_text(tmp_path, text)
        assert "dataset-shape-bias" in _rules(report)

    def test_same_scale_flagged(self, tmp_path):
        # road-16 (256 vertices) and graph500-8 (256): scales collide,
        # though the shapes differ.
        text = RIGOROUS.replace(
            "graphs = graph500-12, patents, road-16",
            "graphs = graph500-8, road-16",
        )
        report = _audit_text(tmp_path, text)
        assert "dataset-shape-bias" in _rules(report)

    def test_diverse_suite_clean(self, tmp_path):
        report = _audit_text(tmp_path, RIGOROUS)
        assert _rules(report) == []

    def test_unrecognized_names_not_guessed(self, tmp_path):
        text = RIGOROUS.replace(
            "graphs = graph500-12, patents, road-16",
            "graphs = mystery-a, mystery-b",
        )
        report = _audit_text(tmp_path, text)
        assert "dataset-shape-bias" not in _rules(report)


class TestSeedMonoculture:
    def test_distinct_seeds_clean(self, tmp_path):
        (tmp_path / "a.ini").write_text(
            "[graph]\nname = a\ncatalog = graph500-8\nseed = 1\n"
        )
        (tmp_path / "b.ini").write_text(
            "[graph]\nname = b\ncatalog = road-16\nseed = 2\n"
        )
        (tmp_path / "benchmark.ini").write_text(RIGOROUS)
        report = audit_paths([tmp_path])
        assert "seed-monoculture" not in _rules(report)


class TestAuditSpec:
    def test_rigorous_spec_clean(self):
        spec = BenchmarkRunSpec(
            repetitions=5, warmup_runs=1, validate_outputs=True
        )
        file_report = audit_spec(spec, time_limit=1000.0)
        assert file_report.findings == []

    def test_lax_spec_flagged(self):
        spec = BenchmarkRunSpec(
            repetitions=1, warmup_runs=0, validate_outputs=False
        )
        file_report = audit_spec(spec)
        rules = {finding.rule for finding in file_report.findings}
        assert {
            "single-run", "no-warmup", "validation-off", "no-time-limit",
        } <= rules
        assert file_report.error_findings()


class TestGateIntegration:
    def test_report_feeds_quality_gate(self, tmp_path):
        from repro.analysis import quality_gate, save_baseline, load_baseline

        clean = _audit_text(tmp_path, RIGOROUS)
        baseline_path = tmp_path / "baseline.json"
        save_baseline(clean, baseline_path)
        baseline = load_baseline(baseline_path)
        assert quality_gate(clean, baseline).passed

        worse = _audit_text(
            tmp_path, RIGOROUS.replace("repetitions = 5", "repetitions = 1")
        )
        gate = quality_gate(worse, baseline)
        assert not gate.passed
        assert any("single-run" in str(r) for r in gate.regressions)

    def test_reporters_render_artifact_findings(self, tmp_path):
        from repro.analysis import render_json, render_text

        report = _audit_text(
            tmp_path, RIGOROUS.replace("validate = true", "validate = false")
        )
        assert "validation-off" in render_text(report)
        assert "validation-off" in render_json(report)


class TestParseErrors:
    def test_unreadable_artifact_is_error_finding(self, tmp_path):
        (tmp_path / "broken.ini").write_text("[graph]\nname = g\n")
        report = audit_paths([tmp_path])
        assert "parse-error" in _rules(report)
        assert report.error_findings()
