"""Unit tests for the BSP race detector."""

import textwrap
from pathlib import Path

from repro.analysis import analyze_file, analyze_source

PROGRAMS_PATH = "src/repro/platforms/fake/programs.py"

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _findings(code: str):
    report = analyze_source(textwrap.dedent(code), PROGRAMS_PATH)
    return [f for f in report.findings if f.rule == "bsp-race"]


class TestSharedProgramState:
    def test_self_attribute_write_flagged(self):
        findings = _findings(
            """
            class Counting(VertexProgram):
                def compute(self, ctx, messages):
                    self.invocations += 1
                    ctx.vote_to_halt()
            """
        )
        assert len(findings) == 1
        assert "shared program state" in findings[0].message

    def test_self_container_mutation_flagged(self):
        findings = _findings(
            """
            class Caching(VertexProgram):
                def compute(self, ctx, messages):
                    self.seen.add(ctx.vertex)
                    ctx.vote_to_halt()
            """
        )
        assert len(findings) == 1

    def test_self_subscript_write_flagged(self):
        findings = _findings(
            """
            class Tabulating(VertexProgram):
                def compute(self, ctx, messages):
                    self.table[ctx.vertex] = len(messages)
            """
        )
        assert len(findings) == 1

    def test_self_reads_allowed(self):
        findings = _findings(
            """
            class Parametrized(VertexProgram):
                def compute(self, ctx, messages):
                    if ctx.vertex == self.source:
                        ctx.value = 0
                    ctx.vote_to_halt()
            """
        )
        assert findings == []


class TestClosureState:
    def test_closure_mutation_flagged(self):
        findings = _findings(
            """
            def make_program(results):
                class Leaky(VertexProgram):
                    def compute(self, ctx, messages):
                        results.append(ctx.vertex)
                return Leaky()
            """
        )
        assert len(findings) == 1
        assert "captured state" in findings[0].message

    def test_global_declaration_write_flagged(self):
        findings = _findings(
            """
            total = 0
            class Summing(VertexProgram):
                def compute(self, ctx, messages):
                    global total
                    total += len(messages)
            """
        )
        assert len(findings) == 1
        assert "global" in findings[0].message

    def test_closure_subscript_write_flagged(self):
        findings = _findings(
            """
            def make_program(table):
                class Writing(VertexProgram):
                    def compute(self, ctx, messages):
                        table[ctx.vertex] = 1
                return Writing()
            """
        )
        assert len(findings) == 1


class TestEngineInternals:
    def test_private_context_access_flagged(self):
        findings = _findings(
            """
            class Peeking(VertexProgram):
                def compute(self, ctx, messages):
                    neighbor_value = ctx._engine.values[0]
            """
        )
        assert len(findings) == 1
        assert "engine internals" in findings[0].message


class TestSanctionedPatterns:
    def test_ctx_api_and_locals_allowed(self):
        findings = _findings(
            """
            class WellBehaved(VertexProgram):
                def compute(self, ctx, messages):
                    burned = ctx.value
                    best: dict[int, float] = {}
                    for label, score in messages:
                        best[label] = max(best.get(label, 0.0), score)
                    burned.add(ctx.superstep)
                    if best:
                        ctx.value = min(best)
                        ctx.send_to_neighbors(ctx.value)
                    ctx.aggregate("changes", 1)
                    ctx.vote_to_halt()
            """
        )
        assert findings == []

    def test_gas_kernels_analyzed(self):
        findings = _findings(
            """
            class BadGather(GASProgram):
                def gather(self, vertex, value, neighbor, nv, nd):
                    self.partials[vertex] = nv
                    return nv
            """
        )
        assert len(findings) == 1

    def test_non_program_classes_untouched(self):
        findings = _findings(
            """
            class Engine:
                def compute(self, ctx, messages):
                    self.state[0] = 1
            """
        )
        assert findings == []

    def test_non_kernel_methods_untouched(self):
        findings = _findings(
            """
            class Configured(VertexProgram):
                def configure(self, value):
                    self.value = value
            """
        )
        assert findings == []


class TestShippedPrograms:
    def test_pregel_programs_race_free(self):
        report = analyze_file(
            REPO_ROOT / "src/repro/platforms/pregel/programs.py"
        )
        assert [f for f in report.findings if f.rule == "bsp-race"] == []

    def test_gas_programs_race_free(self):
        report = analyze_file(
            REPO_ROOT / "src/repro/platforms/gas/programs.py"
        )
        assert [f for f in report.findings if f.rule == "bsp-race"] == []
