"""Line-accuracy tests: findings anchor where a reader (and a
suppression comment) would look — the ``def`` line for functions, the
statement line for multi-line statements."""

import textwrap

from repro.analysis import AnalysisConfig, analyze_source


def _analyze(code: str, config=None):
    return analyze_source(
        textwrap.dedent(code), "src/repro/platforms/fake/engine.py", config
    )


class TestFunctionAnchors:
    def test_decorated_function_metrics_anchor_at_def_line(self):
        report = _analyze(
            """
            import functools


            @functools.lru_cache(maxsize=None)
            @functools.wraps(print)
            def cached(x):
                return x
            """
        )
        metrics = {m.name: m for m in report.functions}
        # Line 7 is the `def cached` line, below both decorators.
        assert metrics["cached"].line == 7

    def test_high_complexity_anchors_at_def_not_decorator(self):
        report = _analyze(
            """
            import functools


            @functools.lru_cache(maxsize=None)
            def branchy(a, b, c):
                if a:
                    pass
                if b:
                    pass
                if c:
                    pass
                return 0
            """,
            config=AnalysisConfig(max_complexity=2),
        )
        findings = [f for f in report.findings if f.rule == "high-complexity"]
        assert [f.line for f in findings] == [6]

    def test_suppression_on_def_line_works_for_decorated_function(self):
        report = _analyze(
            """
            import functools


            @functools.lru_cache(maxsize=None)
            def branchy(a, b, c):  # quality: ignore[high-complexity]
                if a:
                    pass
                if b:
                    pass
                if c:
                    pass
                return 0
            """,
            config=AnalysisConfig(max_complexity=2),
        )
        assert [f for f in report.findings if f.rule == "high-complexity"] == []
        assert report.suppressed == 1


class TestMultiLineStatementAnchors:
    def test_mutable_default_in_multiline_signature_anchors_at_def(self):
        report = _analyze(
            """
            def configure(
                name,
                *,
                tags={},
            ):
                return name
            """
        )
        findings = [f for f in report.findings if f.rule == "mutable-default"]
        # The default itself sits on line 5; the finding must point at
        # the def line (2), where the suppression comment would live.
        assert [f.line for f in findings] == [2]

    def test_suppression_on_def_line_silences_multiline_default(self):
        report = _analyze(
            """
            def configure(  # quality: ignore[mutable-default]
                name,
                *,
                tags={},
            ):
                return name
            """
        )
        assert report.findings == []
        assert report.suppressed == 1

    def test_cost_protocol_exit_leak_anchors_at_def_line(self):
        report = _analyze(
            """
            import functools


            @functools.wraps(print)
            def leaky(meter, flag):
                meter.begin_round("r")
                if flag:
                    meter.end_round()
            """
        )
        findings = [f for f in report.findings if f.rule == "cost-protocol"]
        assert [f.line for f in findings] == [6]


class TestDeferredBodyAnchors:
    """Findings inside lambda/comprehension bodies anchor on the
    enclosing statement line, where a suppression comment can live."""

    def test_lambda_body_anchors_at_enclosing_statement(self):
        report = _analyze(
            """
            import time


            def jitter(tasks):
                delays = sorted(
                    tasks,
                    key=lambda task: (
                        time.time()
                    ),
                )
                return delays
            """
        )
        findings = [f for f in report.findings if f.rule == "determinism"]
        # The banned clock sits on line 10 inside the lambda; the
        # finding must point at the assignment statement (line 6).
        assert [f.line for f in findings] == [6]

    def test_nested_comprehension_anchors_at_enclosing_statement(self):
        report = _analyze(
            """
            import random


            def shuffle_all(partitions):
                return [
                    [
                        random.random()
                        for _ in partition
                    ]
                    for partition in partitions
                ]
            """
        )
        findings = [f for f in report.findings if f.rule == "determinism"]
        # random.random() sits on line 8 inside nested comprehensions;
        # the finding anchors on the return statement (line 6).
        assert [f.line for f in findings] == [6]

    def test_suppression_on_statement_line_silences_lambda_finding(self):
        report = _analyze(
            """
            import time


            def jitter(tasks):
                delays = sorted(  # quality: ignore[determinism]
                    tasks,
                    key=lambda task: (
                        time.time()
                    ),
                )
                return delays
            """
        )
        assert [f for f in report.findings if f.rule == "determinism"] == []
        assert report.suppressed == 1
