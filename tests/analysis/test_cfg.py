"""Unit tests for the intraprocedural CFG builder."""

import ast
import textwrap

from repro.analysis.dataflow import (
    CFG,
    EXCEPTION,
    NORMAL,
    build_cfg,
    node_calls,
    node_exprs,
)


def _cfg(code: str) -> CFG:
    tree = ast.parse(textwrap.dedent(code))
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func)


def _succs(cfg: CFG, index: int, kind: str | None = None):
    return [
        target
        for target, edge in cfg.nodes[index].succs
        if kind is None or edge == kind
    ]


def _node_of(cfg: CFG, needle: str):
    # Shortest matching dump = most specific node (a compound head's
    # dump contains its whole subtree, so it would shadow body nodes).
    matches = [
        node
        for node in cfg.statement_nodes()
        if node.stmt is not None and needle in ast.dump(node.stmt)
    ]
    if not matches:
        raise AssertionError(f"no CFG node matching {needle!r}")
    return min(matches, key=lambda node: len(ast.dump(node.stmt)))


def _reaches(cfg: CFG, start: int, goal: int, kinds=(NORMAL, EXCEPTION)) -> bool:
    seen = set()
    stack = [start]
    while stack:
        index = stack.pop()
        if index == goal:
            return True
        if index in seen:
            continue
        seen.add(index)
        stack.extend(
            target
            for target, edge in cfg.nodes[index].succs
            if edge in kinds
        )
    return False


class TestLinearAndBranches:
    def test_straight_line_reaches_exit(self):
        cfg = _cfg("def f():\n    x = 1\n    y = 2\n")
        assert _reaches(cfg, CFG.ENTRY, CFG.EXIT)

    def test_if_without_else_has_fallthrough_edge(self):
        cfg = _cfg(
            """
            def f(a):
                if a:
                    x = 1
                y = 2
            """
        )
        head = _node_of(cfg, "If")
        after = _node_of(cfg, "'y'")
        assert after.index in _succs(cfg, head.index, NORMAL)

    def test_both_if_arms_connect_to_join(self):
        cfg = _cfg(
            """
            def f(a):
                if a:
                    x = 1
                else:
                    x = 2
                y = x
            """
        )
        join = _node_of(cfg, "'y'")
        arm1 = _node_of(cfg, "value=Constant(value=1)")
        arm2 = _node_of(cfg, "value=Constant(value=2)")
        assert join.index in _succs(cfg, arm1.index)
        assert join.index in _succs(cfg, arm2.index)


class TestLoops:
    def test_while_has_back_edge_and_exit_edge(self):
        cfg = _cfg(
            """
            def f(n):
                while n:
                    n -= 1
                return n
            """
        )
        head = _node_of(cfg, "While")
        body = _node_of(cfg, "AugAssign")
        assert head.index in _succs(cfg, body.index)  # back edge
        after = _node_of(cfg, "Return")
        assert after.index in _succs(cfg, head.index)

    def test_break_jumps_past_loop_else(self):
        cfg = _cfg(
            """
            def f(items):
                for item in items:
                    if item:
                        break
                else:
                    other = 1
                after = 2
            """
        )
        brk = _node_of(cfg, "Break")
        after = _node_of(cfg, "'after'")
        other = _node_of(cfg, "'other'")
        assert after.index in _succs(cfg, brk.index)
        assert after.index not in _succs(cfg, brk.index, EXCEPTION)
        assert not _reaches(cfg, brk.index, other.index)

    def test_continue_returns_to_loop_head(self):
        cfg = _cfg(
            """
            def f(items):
                for item in items:
                    if item:
                        continue
                    x = 1
            """
        )
        head = _node_of(cfg, "For")
        cont = _node_of(cfg, "Continue")
        assert head.index in _succs(cfg, cont.index)


class TestEarlyReturnsAndRaises:
    def test_return_goes_straight_to_exit(self):
        cfg = _cfg(
            """
            def f(a):
                if a:
                    return 1
                return 2
            """
        )
        first = _node_of(cfg, "value=Constant(value=1)")
        assert _succs(cfg, first.index) == [CFG.EXIT]

    def test_uncaught_raise_goes_to_raise_exit(self):
        cfg = _cfg("def f():\n    raise ValueError()\n")
        raise_node = _node_of(cfg, "Raise")
        assert CFG.RAISE_EXIT in _succs(cfg, raise_node.index, EXCEPTION)
        assert not _reaches(cfg, raise_node.index, CFG.EXIT)

    def test_plain_statement_has_no_exception_edge_outside_try(self):
        cfg = _cfg("def f():\n    x = 1\n")
        node = _node_of(cfg, "Assign")
        assert _succs(cfg, node.index, EXCEPTION) == []


class TestTryExceptFinally:
    def test_try_body_statement_may_raise_into_handler(self):
        cfg = _cfg(
            """
            def f():
                try:
                    risky()
                except ValueError:
                    handled = 1
                after = 2
            """
        )
        risky = _node_of(cfg, "'risky'")
        handled = _node_of(cfg, "'handled'")
        assert _reaches(cfg, risky.index, handled.index)
        after = _node_of(cfg, "'after'")
        assert _reaches(cfg, handled.index, after.index)

    def test_return_in_try_traverses_finally(self):
        cfg = _cfg(
            """
            def f():
                try:
                    return work()
                except ValueError:
                    pass
                finally:
                    cleanup()
            """
        )
        ret = _node_of(cfg, "Return")
        cleanup = _node_of(cfg, "'cleanup'")
        # The return must NOT bypass the finally region.
        assert _succs(cfg, ret.index, NORMAL) != [CFG.EXIT]
        assert _reaches(cfg, ret.index, cleanup.index)
        assert _reaches(cfg, cleanup.index, CFG.EXIT)

    def test_handler_raise_traverses_finally_then_propagates(self):
        cfg = _cfg(
            """
            def f():
                try:
                    risky()
                except ValueError:
                    raise
                finally:
                    cleanup()
            """
        )
        cleanup = _node_of(cfg, "'cleanup'")
        assert _reaches(cfg, cleanup.index, CFG.RAISE_EXIT)

    def test_finally_without_handlers_catches_body_raise_path(self):
        cfg = _cfg(
            """
            def f(meter):
                meter.begin_round()
                try:
                    work()
                finally:
                    meter.end_round()
            """
        )
        work = _node_of(cfg, "'work'")
        end = _node_of(cfg, "'end_round'")
        assert _reaches(cfg, work.index, end.index)
        # Exceptional continuation exists past the finally.
        assert _reaches(cfg, end.index, CFG.RAISE_EXIT)
        assert _reaches(cfg, end.index, CFG.EXIT)

    def test_break_inside_try_finally_reaches_loop_after(self):
        cfg = _cfg(
            """
            def f(items):
                for item in items:
                    try:
                        break
                    finally:
                        cleanup()
                after = 1
            """
        )
        brk = _node_of(cfg, "Break")
        cleanup = _node_of(cfg, "'cleanup'")
        after = _node_of(cfg, "'after'")
        assert _reaches(cfg, brk.index, cleanup.index)
        assert _reaches(cfg, cleanup.index, after.index)


class TestWithAndMatch:
    def test_with_body_is_sequential(self):
        cfg = _cfg(
            """
            def f(path):
                with open(path) as handle:
                    data = handle.read()
                return data
            """
        )
        head = _node_of(cfg, "With")
        body = _node_of(cfg, "'read'")
        assert body.index in _succs(cfg, head.index)

    def test_match_fans_out_to_cases_and_fallthrough(self):
        cfg = _cfg(
            """
            def f(x):
                match x:
                    case 1:
                        a = 1
                    case 2:
                        b = 2
                after = 3
            """
        )
        head = _node_of(cfg, "Match")
        case_a = _node_of(cfg, "'a'")
        case_b = _node_of(cfg, "'b'")
        after = _node_of(cfg, "'after'")
        succs = _succs(cfg, head.index)
        assert case_a.index in succs
        assert case_b.index in succs
        assert after.index in succs  # no case may match


class TestNodeExprs:
    def test_compound_headers_exclude_body_expressions(self):
        cfg = _cfg(
            """
            def f(items):
                for item in items:
                    body_call()
            """
        )
        head = _node_of(cfg, "For")
        assert "body_call" not in "".join(
            ast.dump(e) for e in node_exprs(head)
        )

    def test_node_calls_in_document_order(self):
        cfg = _cfg("def f():\n    x = first() + second()\n")
        node = _node_of(cfg, "Assign")
        names = [ast.dump(c.func) for c in node_calls(node)]
        assert "first" in names[0] and "second" in names[1]
