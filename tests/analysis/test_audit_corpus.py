"""Golden-file runner for the audit fixture corpus.

Each directory under ``tests/analysis/fixtures/audit/`` is a small
experiment-artifact suite seeded with exactly one SoK fault (or none,
for ``clean_suite``); its ``expected.json`` golden records the exact
``(file, rule, line)`` findings the audit must produce. Regenerate
with ``make audit-fixtures`` after an intentional rule change, and
review the diff.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import audit_paths
from repro.analysis.targets import registered_artifact_rules

CORPUS = Path(__file__).parent / "fixtures" / "audit"
CASES = sorted(path for path in CORPUS.iterdir() if path.is_dir())


def _findings_of(case_dir: Path) -> list[dict]:
    report = audit_paths([case_dir])
    findings = [
        {
            "file": Path(file_report.path).name,
            "rule": finding.rule,
            "line": finding.line,
        }
        for file_report, finding in report.iter_findings()
    ]
    return sorted(
        findings, key=lambda entry: (entry["file"], entry["rule"], entry["line"])
    )


def test_corpus_covers_every_rule() -> None:
    """Every registered audit rule has at least one failing fixture."""
    flagged: set[str] = set()
    for case_dir in CASES:
        flagged.update(entry["rule"] for entry in _findings_of(case_dir))
    assert set(registered_artifact_rules()) <= flagged


def test_clean_suite_is_clean() -> None:
    """The passing golden: a rigorous suite yields zero findings."""
    assert _findings_of(CORPUS / "clean_suite") == []


@pytest.mark.parametrize("case_dir", CASES, ids=lambda p: p.name)
def test_case_matches_golden(case_dir: Path) -> None:
    golden_path = case_dir / "expected.json"
    assert golden_path.exists(), (
        f"{case_dir.name} has no golden; run "
        "tests/analysis/fixtures/audit/regen.py"
    )
    golden = json.loads(golden_path.read_text())
    expected = sorted(
        golden["findings"],
        key=lambda entry: (entry["file"], entry["rule"], entry["line"]),
    )
    assert _findings_of(case_dir) == expected, (
        f"{case_dir.name}: findings diverged from golden"
    )
