"""Unit tests for the project call-graph builder."""

import ast
import textwrap

from repro.analysis.engine import AnalysisConfig, ModuleContext, ProjectContext
from repro.analysis.dataflow import build_call_graph, project_call_graph
from repro.analysis.dataflow.callgraph import module_name


def _module(code: str, path: str) -> ModuleContext:
    source = textwrap.dedent(code)
    return ModuleContext(
        path=path,
        tree=ast.parse(source),
        lines=source.splitlines(),
        config=AnalysisConfig(),
    )


def _call_in(graph, caller_qualname: str, func_fragment: str):
    info = graph.functions[caller_qualname]
    for call, callee in graph.calls_of(info):
        if func_fragment in ast.dump(call.func):
            return callee
    raise AssertionError(f"no call matching {func_fragment!r}")


class TestModuleName:
    def test_anchored_at_src(self):
        assert module_name("src/repro/core/cost.py") == "repro.core.cost"

    def test_init_maps_to_package(self):
        assert module_name("src/repro/analysis/__init__.py") == "repro.analysis"

    def test_bare_file_uses_stem(self):
        assert module_name("scratch.py") == "scratch"


class TestDirectCalls:
    def test_module_level_call_resolves(self):
        graph = build_call_graph(
            [
                _module(
                    """
                    def helper():
                        return 1

                    def caller():
                        return helper()
                    """,
                    "src/repro/a.py",
                )
            ]
        )
        callee = _call_in(graph, "repro.a.caller", "helper")
        assert callee is not None and callee.qualname == "repro.a.helper"

    def test_nested_function_resolves_within_parent(self):
        graph = build_call_graph(
            [
                _module(
                    """
                    def outer():
                        def inner():
                            return 1
                        return inner()
                    """,
                    "src/repro/a.py",
                )
            ]
        )
        callee = _call_in(graph, "repro.a.outer", "inner")
        assert callee is not None and callee.qualname == "repro.a.outer.inner"

    def test_local_alias_resolves_one_level(self):
        graph = build_call_graph(
            [
                _module(
                    """
                    def helper():
                        return 1

                    def caller():
                        g = helper
                        return g()
                    """,
                    "src/repro/a.py",
                )
            ]
        )
        callee = _call_in(graph, "repro.a.caller", "'g'")
        assert callee is not None and callee.qualname == "repro.a.helper"

    def test_unknown_callee_resolves_to_none(self):
        graph = build_call_graph(
            [
                _module(
                    "def caller(obj):\n    return obj.method()\n",
                    "src/repro/a.py",
                )
            ]
        )
        assert _call_in(graph, "repro.a.caller", "method") is None


class TestMethods:
    def test_self_method_resolves(self):
        graph = build_call_graph(
            [
                _module(
                    """
                    class Engine:
                        def step(self):
                            return 1

                        def run(self):
                            return self.step()
                    """,
                    "src/repro/a.py",
                )
            ]
        )
        callee = _call_in(graph, "repro.a.Engine.run", "step")
        assert callee is not None and callee.qualname == "repro.a.Engine.step"

    def test_inherited_method_resolves_through_base(self):
        graph = build_call_graph(
            [
                _module(
                    """
                    class Base:
                        def shared(self):
                            return 1

                    class Child(Base):
                        def run(self):
                            return self.shared()
                    """,
                    "src/repro/a.py",
                )
            ]
        )
        callee = _call_in(graph, "repro.a.Child.run", "shared")
        assert callee is not None and callee.qualname == "repro.a.Base.shared"


class TestImports:
    def test_from_import_resolves_across_modules(self):
        provider = _module(
            "def exported():\n    return 1\n", "src/repro/util.py"
        )
        consumer = _module(
            """
            from repro.util import exported

            def caller():
                return exported()
            """,
            "src/repro/app.py",
        )
        graph = build_call_graph([provider, consumer])
        callee = _call_in(graph, "repro.app.caller", "exported")
        assert callee is not None and callee.qualname == "repro.util.exported"

    def test_import_alias_chain_resolves(self):
        provider = _module(
            "def exported():\n    return 1\n", "src/repro/util.py"
        )
        consumer = _module(
            """
            import repro.util as u

            def caller():
                return u.exported()
            """,
            "src/repro/app.py",
        )
        graph = build_call_graph([provider, consumer])
        callee = _call_in(graph, "repro.app.caller", "exported")
        assert callee is not None and callee.qualname == "repro.util.exported"

    def test_relative_import_resolves(self):
        provider = _module(
            "def exported():\n    return 1\n", "src/repro/pkg/util.py"
        )
        consumer = _module(
            """
            from .util import exported

            def caller():
                return exported()
            """,
            "src/repro/pkg/app.py",
        )
        graph = build_call_graph([provider, consumer])
        callee = _call_in(graph, "repro.pkg.app.caller", "exported")
        assert callee is not None
        assert callee.qualname == "repro.pkg.util.exported"


class TestProjectCache:
    def test_graph_is_cached_on_the_project_context(self):
        module = _module("def f():\n    pass\n", "src/repro/a.py")
        project = ProjectContext(modules=[module], config=AnalysisConfig())
        first = project_call_graph(project)
        second = project_call_graph(project)
        assert first is second
