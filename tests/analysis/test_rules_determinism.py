"""Unit tests for the determinism and cost-accounting rules."""

import textwrap

from repro.analysis import analyze_source

ENGINE_PATH = "src/repro/platforms/fake/engine.py"
CORE_PATH = "src/repro/core/fake.py"
OUT_OF_SCOPE_PATH = "src/repro/datagen/fake.py"


def _rules(code: str, path: str):
    report = analyze_source(textwrap.dedent(code), path)
    return [f.rule for f in report.findings]


class TestDeterminism:
    def test_time_time_flagged_in_platforms(self):
        code = "import time\ndef f():\n    return time.time()\n"
        assert _rules(code, ENGINE_PATH) == ["determinism"]

    def test_perf_counter_from_import_flagged(self):
        code = "from time import perf_counter\ndef f():\n    return perf_counter()\n"
        assert _rules(code, CORE_PATH) == ["determinism"]

    def test_datetime_now_flagged(self):
        code = (
            "from datetime import datetime\n"
            "def f():\n    return datetime.now()\n"
        )
        assert _rules(code, ENGINE_PATH) == ["determinism"]

    def test_module_level_random_flagged(self):
        code = "import random\ndef f():\n    return random.random()\n"
        assert _rules(code, ENGINE_PATH) == ["determinism"]

    def test_unseeded_numpy_random_flagged(self):
        code = "import numpy as np\ndef f():\n    return np.random.rand(3)\n"
        assert _rules(code, ENGINE_PATH) == ["determinism"]

    def test_unseeded_default_rng_flagged(self):
        code = (
            "import numpy as np\n"
            "def f():\n    return np.random.default_rng()\n"
        )
        assert _rules(code, ENGINE_PATH) == ["determinism"]

    def test_seeded_default_rng_allowed(self):
        code = (
            "import numpy as np\n"
            "def f(seed):\n    return np.random.default_rng(seed)\n"
        )
        assert _rules(code, ENGINE_PATH) == []

    def test_seeded_random_instance_allowed(self):
        code = "import random\ndef f(seed):\n    return random.Random(seed)\n"
        assert _rules(code, ENGINE_PATH) == []

    def test_injected_rng_calls_allowed(self):
        code = "def f(rng):\n    return rng.random()\n"
        assert _rules(code, ENGINE_PATH) == []

    def test_out_of_scope_paths_untouched(self):
        code = "import random\ndef f():\n    return random.random()\n"
        assert _rules(code, OUT_OF_SCOPE_PATH) == []
        assert _rules(code, "<string>") == []


UNCHARGED_LOOP = """
def expand(self):
    total = 0
    for neighbor in self.adjacency[0]:
        total += neighbor
    return total
"""

CHARGED_LOOP = """
def expand(self, meter):
    total = 0
    for neighbor in self.adjacency[0]:
        meter.charge_compute(0, 1)
        total += neighbor
    return total
"""


class TestCostAccounting:
    def test_uncharged_adjacency_loop_flagged(self):
        assert _rules(UNCHARGED_LOOP, ENGINE_PATH) == ["cost-accounting"]

    def test_charged_loop_allowed(self):
        assert _rules(CHARGED_LOOP, ENGINE_PATH) == []

    def test_uncharged_message_loop_flagged(self):
        code = """
        def drain(self):
            for message in self.inbox:
                self.handle(message)
        """
        assert _rules(code, "src/repro/platforms/fake/driver.py") == [
            "cost-accounting"
        ]

    def test_memory_accounting_counts(self):
        code = """
        def load(self, meter):
            for vertex, neighbors in self.adjacency.items():
                meter.allocate_memory(0, 56.0)
        """
        assert _rules(code, ENGINE_PATH) == []

    def test_sending_counts_as_accounting(self):
        code = """
        def flood(self, ctx):
            for neighbor in self.adjacency[0]:
                ctx.send(neighbor, 1)
        """
        assert _rules(code, ENGINE_PATH) == []

    def test_init_exempt(self):
        code = """
        class Engine:
            def __init__(self, graph):
                self.adjacency = {}
                for source, target in graph.iter_edges():
                    self.adjacency.setdefault(source, []).append(target)
        """
        assert _rules(code, ENGINE_PATH) == []

    def test_non_engine_modules_untouched(self):
        # Vertex programs loop over messages freely; the engine
        # charges per message digested.
        assert _rules(
            UNCHARGED_LOOP, "src/repro/platforms/fake/programs.py"
        ) == []

    def test_uncosted_loops_untouched(self):
        code = """
        def tally(self):
            for worker in range(self.num_workers):
                self.totals[worker] = 0
        """
        assert _rules(code, ENGINE_PATH) == []

    def test_bulk_charges_count_as_accounting(self):
        # The batched CostMeter APIs discharge the contract exactly
        # like their scalar counterparts.
        code = """
        def expand(self, meter):
            for worker, ops in enumerate(self.frontier_ops):
                meter.charge_compute_bulk(worker, ops)
        """
        assert _rules(code, ENGINE_PATH) == []
        code = """
        def exchange(self, meter):
            for pair in self.message_pairs:
                meter.charge_messages_bulk(pair[0], pair[1], 10, 8.0)
        """
        assert _rules(code, ENGINE_PATH) == []

    def test_bulk_modules_in_scope(self):
        # The vectorized kernel modules are engine code: an uncharged
        # frontier loop there is a finding too.
        bulk_path = "src/repro/platforms/fake/bulk.py"
        assert _rules(UNCHARGED_LOOP, bulk_path) == ["cost-accounting"]
        code = """
        def expand(self, meter):
            for chunk in self.frontier_chunks:
                meter.charge_compute_bulk(0, float(chunk.size))
        """
        assert _rules(code, bulk_path) == []
