"""Tests for the ``cost-protocol`` typestate rule."""

import textwrap

from repro.analysis import analyze_source

ENGINE_PATH = "src/repro/platforms/fake/engine.py"


def _findings(code: str, rule: str = "cost-protocol"):
    report = analyze_source(textwrap.dedent(code), ENGINE_PATH)
    return [f for f in report.findings if f.rule == rule]


class TestBalancedPaths:
    def test_straight_line_pair_is_clean(self):
        assert _findings(
            """
            def run(meter):
                meter.begin_round("r")
                meter.charge_compute(0, 1.0)
                meter.end_round()
            """
        ) == []

    def test_try_finally_pair_is_clean(self):
        assert _findings(
            """
            def run(self, meter):
                meter.begin_round("r")
                try:
                    self.step()
                finally:
                    meter.end_round()
            """
        ) == []

    def test_branch_missing_end_on_one_path_is_flagged(self):
        findings = _findings(
            """
            def run(meter, flag):
                meter.begin_round("r")
                if flag:
                    meter.end_round()
            """
        )
        assert len(findings) == 1
        assert "round still open" in findings[0].message

    def test_swallowed_exception_leaves_round_open(self):
        # The handler swallows an error raised mid-round: the function
        # then returns with the meter still open — PR-fixture shape
        # "unmatched begin_round on an exception path".
        findings = _findings(
            """
            def run(self, meter):
                meter.begin_round("r")
                try:
                    self.step()
                    meter.end_round()
                except ValueError:
                    pass
            """
        )
        assert len(findings) == 1
        assert "exception" in findings[0].message

    def test_loop_with_pair_per_iteration_is_clean(self):
        assert _findings(
            """
            def run(meter, steps):
                for _ in range(steps):
                    meter.begin_round("r")
                    meter.charge_compute(0, 1.0)
                    meter.end_round()
            """
        ) == []


class TestProtocolViolations:
    def test_double_begin_is_flagged(self):
        findings = _findings(
            """
            def run(meter):
                meter.begin_round("a")
                meter.begin_round("b")
                meter.end_round()
                meter.end_round()
            """
        )
        assert any("already be open" in f.message for f in findings)

    def test_end_without_begin_is_flagged(self):
        findings = _findings(
            "def run(meter):\n    meter.end_round()\n"
        )
        assert len(findings) == 1
        assert "no round open" in findings[0].message

    def test_charge_after_close_is_flagged(self):
        findings = _findings(
            """
            def run(meter):
                meter.begin_round("r")
                meter.end_round()
                meter.charge_message(0, 1, 8.0)
            """
        )
        assert len(findings) == 1
        assert "charge_message" in findings[0].message

    def test_startup_charges_are_exempt(self):
        # charge_startup / allocate_memory / release_memory are legal
        # outside rounds (they do not require an open RoundRecord).
        assert _findings(
            """
            def load(meter):
                meter.charge_startup(0, 3.5)
                meter.allocate_memory(0, 1024.0)
                meter.release_memory(0, 1024.0)
            """
        ) == []


class TestClosedRecordWrites:
    def test_pr4_gpu_mutation_shape_is_flagged(self):
        # The exact bug PR 4 fixed by hand: mutating the RoundRecord
        # returned by end_round instead of passing the override in.
        findings = _findings(
            """
            def superstep(self, meter, compute_set):
                meter.begin_round("kernel")
                record = meter.end_round(active_vertices=len(compute_set))
                record.barrier_seconds = 0.0005
            """
        )
        assert len(findings) == 1
        assert "closed round record" in findings[0].message

    def test_passing_override_to_end_round_is_clean(self):
        assert _findings(
            """
            def superstep(self, meter, compute_set):
                meter.begin_round("kernel")
                meter.end_round(
                    active_vertices=len(compute_set),
                    barrier_seconds=0.0005,
                )
            """
        ) == []

    def test_rebound_name_is_not_a_closed_record(self):
        # The name is reassigned to something else afterwards, so the
        # later write does not touch a closed record.
        assert _findings(
            """
            def run(self, meter):
                meter.begin_round("r")
                record = meter.end_round()
                record = self.fresh_record()
                record.barrier_seconds = 1.0
            """
        ) == []

    def test_mutator_call_on_closed_record_is_flagged(self):
        findings = _findings(
            """
            def run(meter, extra):
                meter.begin_round("r")
                record = meter.end_round()
                record.events.append(extra)
            """
        )
        assert len(findings) == 1


class TestInterprocedural:
    def test_charge_inside_helper_needs_callers_round(self):
        findings = _findings(
            """
            class Engine:
                def _charge(self, meter, ops):
                    meter.charge_compute(0, ops)

                def run(self, meter):
                    meter.begin_round("r")
                    self._charge(meter, 1.0)
                    meter.end_round()
                    self._charge(meter, 2.0)
            """
        )
        assert len(findings) == 1
        assert "'_charge'" in findings[0].message

    def test_opener_helper_summary_applies_at_caller(self):
        # A helper that opens a round leaves the caller at depth 1;
        # a second local begin_round is then a double-begin.
        findings = _findings(
            """
            class Engine:
                def _open(self, meter):
                    meter.begin_round("stage")

                def run(self, meter):
                    self._open(meter)
                    meter.begin_round("again")
                    meter.end_round()
                    meter.end_round()
            """
        )
        assert any("already be open" in f.message for f in findings)

    def test_suppression_on_def_line_silences_opener_helper(self):
        report = analyze_source(
            textwrap.dedent(
                """
                class Engine:
                    def _open(self, meter):  # quality: ignore[cost-protocol]
                        meter.begin_round("stage")
                """
            ),
            ENGINE_PATH,
        )
        assert [f for f in report.findings if f.rule == "cost-protocol"] == []
        assert report.suppressed == 1
