"""Unit tests for the text/JSON reporters and report integration."""

import json

from repro.analysis import QualityReport, analyze_source, render_json, render_text

BUGGY = "def f(x=[]):\n    return x\n"
SUPPRESSED = "def f(x):\n    return x == None  # quality: ignore[eq-none]\n"


def _report() -> QualityReport:
    return QualityReport(
        files=[
            analyze_source(BUGGY, "buggy.py"),
            analyze_source(SUPPRESSED, "quiet.py"),
        ]
    )


class TestTextReporter:
    def test_contains_summary_and_findings(self):
        text = render_text(_report())
        assert "potential-bugs=1" in text
        assert "buggy.py:1: warning [mutable-default]" in text

    def test_reports_suppressed_count(self):
        text = render_text(_report())
        assert "1 finding(s) suppressed" in text

    def test_errors_sort_first(self):
        racy = (
            "class Bad(VertexProgram):\n"
            "    def compute(self, ctx, messages):\n"
            "        self.count += 1\n"
        )
        report = QualityReport(
            files=[
                analyze_source(BUGGY, "a_buggy.py"),
                analyze_source(racy, "src/repro/platforms/z/programs.py"),
            ]
        )
        text = render_text(report)
        assert text.index("[bsp-race]") < text.index("[mutable-default]")


class TestJsonReporter:
    def test_round_trips_through_json(self):
        document = json.loads(render_json(_report()))
        assert document["summary"]["total_findings"] == 1
        assert document["summary"]["suppressed_findings"] == 1
        by_path = {entry["path"]: entry for entry in document["files"]}
        assert by_path["buggy.py"]["findings"][0]["rule"] == "mutable-default"
        assert by_path["quiet.py"]["suppressed"] == 1


class TestBenchmarkReportIntegration:
    def test_render_embeds_quality_section(self):
        from repro.core.benchmark import BenchmarkCore
        from repro.core.cost import ClusterSpec
        from repro.core.report import ReportGenerator
        from repro.core.workload import Algorithm, BenchmarkRunSpec
        from repro.graph.generators import rmat_graph
        from repro.platforms.pregel.driver import GiraphPlatform

        core = BenchmarkCore(
            [GiraphPlatform(ClusterSpec.paper_distributed())],
            {"tiny": rmat_graph(5, edge_factor=3, seed=3)},
        )
        suite = core.run(BenchmarkRunSpec(algorithms=[Algorithm.BFS]))
        generator = ReportGenerator()
        text = generator.render(suite, quality=_report())
        assert "Code quality (Section 3.5):" in text
        assert "potential-bugs=1" in text
        assert "[mutable-default]" in text
        # Without a quality report the section is absent.
        assert "Code quality" not in generator.render(suite)
