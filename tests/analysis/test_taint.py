"""Tests for the ``nondeterminism-flow`` taint rule."""

import textwrap

from repro.analysis import analyze_source

ENGINE_PATH = "src/repro/platforms/fake/engine.py"
OUT_OF_SCOPE_PATH = "src/repro/perf/fake.py"


def _findings(code: str, path: str = ENGINE_PATH):
    report = analyze_source(textwrap.dedent(code), path)
    return [f for f in report.findings if f.rule == "nondeterminism-flow"]


class TestSources:
    def test_set_iteration_to_message_is_flagged(self):
        findings = _findings(
            """
            def flood(ctx):
                frontier = {1, 2, 3}
                for vertex in frontier:
                    ctx.send(vertex, 1)
            """
        )
        assert len(findings) == 1
        assert "iteration order" in findings[0].message
        assert "message emission" in findings[0].message

    def test_dict_iteration_to_message_is_flagged(self):
        findings = _findings(
            """
            def flood(ctx, pairs):
                state = dict(pairs)
                for vertex in state:
                    ctx.send(vertex, 1)
            """
        )
        assert len(findings) == 1

    def test_listdir_to_partition_key_is_flagged(self):
        findings = _findings(
            """
            import os

            def assign(partitioner):
                for name in os.listdir("/data"):
                    partitioner.partition_for(name)
            """
        )
        assert len(findings) == 1
        assert "filesystem order" in findings[0].message

    def test_time_to_charge_is_flagged(self):
        findings = _findings(
            """
            import time

            def run(meter):
                meter.begin_round("r")
                meter.charge_compute(0, time.perf_counter())
                meter.end_round()
            """
        )
        assert any("wall-clock" in f.message for f in findings)

    def test_id_to_result_store_is_flagged(self):
        findings = _findings(
            """
            def finish(vertex, results):
                results[vertex] = id(vertex)
            """
        )
        assert len(findings) == 1
        assert "object address" in findings[0].message

    def test_list_iteration_is_clean(self):
        assert _findings(
            """
            def flood(ctx):
                frontier = [1, 2, 3]
                for vertex in frontier:
                    ctx.send(vertex, 1)
            """
        ) == []

    def test_instance_attribute_iteration_is_not_inferred(self):
        # Locals-only type inference: self.adjacency may well be a
        # dict, but the analysis deliberately does not guess.
        assert _findings(
            """
            class Engine:
                def flood(self, ctx):
                    for vertex in self.adjacency:
                        ctx.send(vertex, 1)
            """
        ) == []


class TestSanitizers:
    def test_sorted_kills_iteration_taint(self):
        assert _findings(
            """
            def flood(ctx):
                frontier = {1, 2, 3}
                for vertex in sorted(frontier):
                    ctx.send(vertex, 1)
            """
        ) == []

    def test_len_of_set_is_order_independent(self):
        assert _findings(
            """
            def measure(meter):
                frontier = {1, 2, 3}
                meter.begin_round("r")
                meter.charge_compute(0, len(frontier))
                meter.end_round()
            """
        ) == []

    def test_reassignment_kills_taint(self):
        assert _findings(
            """
            def flood(ctx):
                frontier = {1, 2}
                for vertex in frontier:
                    payload = vertex
                payload = 0
                ctx.send(0, payload)
            """
        ) == []


class TestInterprocedural:
    def test_taint_through_helper_return_and_sink(self):
        # Source in one function, sink in another, flow through a
        # third: the report lands at the caller's call site.
        findings = _findings(
            """
            class Engine:
                def collect(self):
                    pending = {1, 2, 3}
                    return pending

                def emit(self, ctx, payload):
                    ctx.send(0, payload)

                def run(self, ctx):
                    for v in self.collect():
                        self.emit(ctx, v)
            """
        )
        assert len(findings) == 1
        assert "'collect'" in findings[0].message
        assert "'emit'" in findings[0].message

    def test_helper_forwarding_params_is_not_reported_itself(self):
        # The helper half of a flow is the caller's defect, not the
        # helper's: a clean project must not flag `emit` alone.
        assert _findings(
            """
            class Engine:
                def emit(self, ctx, payload):
                    ctx.send(0, payload)
            """
        ) == []

    def test_sorted_return_through_helper_is_clean(self):
        assert _findings(
            """
            class Engine:
                def collect(self):
                    pending = {1, 2, 3}
                    return sorted(pending)

                def run(self, ctx):
                    for v in self.collect():
                        ctx.send(0, v)
            """
        ) == []


class TestScope:
    def test_out_of_scope_module_is_not_checked(self):
        assert _findings(
            """
            def flood(ctx):
                frontier = {1, 2, 3}
                for vertex in frontier:
                    ctx.send(vertex, 1)
            """,
            path=OUT_OF_SCOPE_PATH,
        ) == []
