"""Tests for the ``stale-ignore`` postpass."""

import textwrap

from repro.analysis import AnalysisConfig, analyze_source


def _analyze(code: str, config=None):
    return analyze_source(textwrap.dedent(code), "fake.py", config)


def _stale(report):
    return [f for f in report.findings if f.rule == "stale-ignore"]


class TestStaleDetection:
    def test_used_suppression_is_not_stale(self):
        report = _analyze(
            "def f(x):\n    return x == None  # quality: ignore[eq-none]\n"
        )
        assert _stale(report) == []
        assert report.suppressed == 1

    def test_dead_named_suppression_is_reported(self):
        report = _analyze("x = 1  # quality: ignore[eq-none]\n")
        findings = _stale(report)
        assert len(findings) == 1
        assert "eq-none" in findings[0].message
        assert findings[0].severity == "warning"
        assert findings[0].category == "maintainability"

    def test_dead_wildcard_suppression_is_reported(self):
        report = _analyze("x = 1  # quality: ignore\n")
        assert len(_stale(report)) == 1

    def test_unknown_rule_id_is_skipped(self):
        # A suppression naming an unregistered rule could be for a
        # rule added in a newer revision; not judged.
        report = _analyze("x = 1  # quality: ignore[not-a-rule]\n")
        assert _stale(report) == []

    def test_disabled_rule_suppression_is_skipped(self):
        # The vouched-for rule did not run, so the comment cannot be
        # proven dead.
        config = AnalysisConfig(disabled=frozenset({"eq-none"}))
        report = _analyze(
            "def f(x):\n    return x == None  # quality: ignore[eq-none]\n",
            config=config,
        )
        assert _stale(report) == []


class TestSelfSuppression:
    def test_wildcard_cannot_vouch_for_itself(self):
        # A dead wildcard must not silence its own staleness report.
        report = _analyze("x = 1  # quality: ignore\n")
        assert len(_stale(report)) == 1

    def test_explicit_opt_out_is_honoured(self):
        report = _analyze("x = 1  # quality: ignore[stale-ignore]\n")
        assert _stale(report) == []


class TestCommentsOnly:
    def test_mention_inside_docstring_is_not_a_suppression(self):
        report = _analyze(
            '''
            def f():
                """Uses ``# quality: ignore[eq-none]`` syntax docs."""
                return 1
            '''
        )
        assert _stale(report) == []

    def test_mention_mid_comment_is_not_a_suppression(self):
        report = _analyze(
            "x = 1  # the syntax is: quality: ignore[eq-none]\n"
        )
        assert _stale(report) == []

    def test_mid_comment_mention_does_not_suppress_findings(self):
        report = _analyze(
            "def f(x):\n"
            "    return x == None  # see docs for quality: ignore[eq-none]\n"
        )
        assert [f.rule for f in report.findings] == ["eq-none"]
