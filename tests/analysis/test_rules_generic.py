"""Dedicated tests for the generic rules and complexity metrics."""

import textwrap

from repro.analysis import AnalysisConfig, analyze_source


def _analyze(code: str, config=None):
    return analyze_source(textwrap.dedent(code), "fake.py", config)


def _complexity(code: str, name: str) -> int:
    report = _analyze(code)
    return {m.name: m for m in report.functions}[name].complexity


class TestComplexityEdgeCases:
    def test_match_cases_each_add_one(self):
        code = """
        def dispatch(x):
            match x:
                case 1:
                    return "one"
                case 2:
                    return "two"
                case _:
                    return "many"
        """
        # base 1 + three case arms.
        assert _complexity(code, "dispatch") == 4

    def test_match_inside_nested_def_not_counted_into_enclosing(self):
        code = """
        def outer(x):
            def inner(y):
                match y:
                    case 1:
                        return 1
                    case _:
                        return 0
            return inner(x)
        """
        assert _complexity(code, "outer") == 1
        assert _complexity(code, "inner") == 3

    def test_boolop_chain_counts_operands_not_nodes(self):
        code = """
        def f(a, b, c, d):
            return (a and b) or (c and d)
        """
        # base 1 + or adds 1 + two ands add 1 each.
        assert _complexity(code, "f") == 4

    def test_ternary_adds_one(self):
        assert _complexity("def f(a):\n    return 1 if a else 2\n", "f") == 2

    def test_except_handlers_each_add_one(self):
        code = """
        def f():
            try:
                return 1
            except ValueError:
                return 2
            except KeyError:
                return 3
        """
        assert _complexity(code, "f") == 3

    def test_deeply_nested_defs_stay_independent(self):
        code = """
        def a(x):
            def b(y):
                def c(z):
                    if z:
                        return 1
                    return 0
                if y:
                    return c(y)
                return 0
            return b(x)
        """
        assert _complexity(code, "a") == 1
        assert _complexity(code, "b") == 2
        assert _complexity(code, "c") == 2


class TestParseErrorResilience:
    def test_rules_do_not_run_on_broken_source(self):
        report = _analyze("def broken(:\n    x ==== None\n")
        assert [f.rule for f in report.findings] == ["parse-error"]
        assert report.functions == []

    def test_tab_space_mix_is_a_parse_error_not_a_crash(self):
        report = analyze_source("def f():\n\tif 1:\n        pass\n", "bad.py")
        assert [f.rule for f in report.findings] == ["parse-error"]


class TestGenericRules:
    def test_kwonly_mutable_default_is_flagged(self):
        report = _analyze("def f(*, cache={}):\n    return cache\n")
        assert [f.rule for f in report.findings] == ["mutable-default"]

    def test_none_default_kwonly_is_clean(self):
        report = _analyze("def f(*, cache=None):\n    return cache\n")
        assert report.findings == []

    def test_chained_comparison_with_none_is_flagged(self):
        report = _analyze("def f(a, b):\n    return a == b == None\n")
        assert [f.rule for f in report.findings] == ["eq-none"]

    def test_is_none_comparison_is_clean(self):
        report = _analyze("def f(a):\n    return a is None\n")
        assert report.findings == []

    def test_bare_except_inside_nested_def_is_flagged(self):
        report = _analyze(
            """
            def outer():
                def inner():
                    try:
                        return 1
                    except:
                        return 2
                return inner()
            """
        )
        assert [f.rule for f in report.findings] == ["bare-except"]
