"""Unit tests for baseline snapshots, regressions, and the gate."""

import json

import pytest

from repro.analysis import (
    QualityReport,
    analyze_source,
    compare_to_baseline,
    detect_regressions,
    load_baseline,
    quality_gate,
    save_baseline,
    snapshot,
)

CLEAN = "def f():\n    \"\"\"Doc.\"\"\"\n    return 1\n"
BUGGY = "def f(x=[]):\n    return x\n"
RACY_PROGRAM = (
    "class Bad(VertexProgram):\n"
    "    def compute(self, ctx, messages):\n"
    "        self.count += 1\n"
)


def _report(*sources_and_paths) -> QualityReport:
    return QualityReport(
        files=[analyze_source(source, path) for source, path in sources_and_paths]
    )


class TestBaselineRoundTrip:
    def test_save_and_load(self, tmp_path):
        report = _report((CLEAN, "a.py"))
        path = save_baseline(report, tmp_path / "baseline.json")
        baseline = load_baseline(path)
        assert baseline == snapshot(report)
        assert baseline["total_findings"] == 0

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)

    def test_snapshot_counts_by_rule_and_severity(self):
        report = _report(
            (BUGGY, "a.py"),
            (RACY_PROGRAM, "src/repro/platforms/fake/programs.py"),
        )
        data = snapshot(report)
        assert data["findings_by_rule"] == {
            "bsp-race": 1,
            "mutable-default": 1,
        }
        assert data["findings_by_severity"]["error"] == 1
        assert data["findings_by_severity"]["warning"] == 1


class TestRegressions:
    def test_new_rule_findings_signalled_with_rule_id(self):
        before = _report((CLEAN, "a.py"))
        after = _report((BUGGY, "a.py"))
        regressions = compare_to_baseline(snapshot(before), after)
        assert any(r.rule == "mutable-default" for r in regressions)

    def test_error_severity_increase_signalled_as_error(self):
        before = _report((CLEAN, "a.py"))
        after = _report(
            (RACY_PROGRAM, "src/repro/platforms/fake/programs.py")
        )
        regressions = compare_to_baseline(snapshot(before), after)
        assert any(r.severity == "error" for r in regressions)

    def test_compat_string_api(self):
        before = _report((CLEAN, "a.py"))
        after = _report((BUGGY, "a.py"))
        signals = detect_regressions(before, after)
        assert any("potential bugs" in s for s in signals)

    def test_doc_coverage_drop_signalled(self):
        before = _report((CLEAN, "a.py"))
        after = _report(("def f():\n    return 1\n", "a.py"))
        signals = detect_regressions(before, after)
        assert any("documentation" in s for s in signals)

    def test_unchanged_report_clean(self):
        report = _report((CLEAN, "a.py"))
        assert compare_to_baseline(snapshot(report), report) == []


class TestGate:
    def test_gate_passes_against_matching_baseline(self):
        report = _report((CLEAN, "a.py"))
        gate = quality_gate(report, snapshot(report))
        assert gate.passed
        assert gate.exit_code == 0

    def test_gate_fails_on_regression(self):
        before = _report((CLEAN, "a.py"))
        after = _report((BUGGY, "a.py"))
        gate = quality_gate(after, snapshot(before))
        assert not gate.passed
        assert gate.exit_code == 1
        assert any(r.rule == "mutable-default" for r in gate.regressions)

    def test_gate_without_baseline_fails_on_errors_only(self):
        warnings_only = _report((BUGGY, "a.py"))
        assert quality_gate(warnings_only).passed
        with_errors = _report(
            (RACY_PROGRAM, "src/repro/platforms/fake/programs.py")
        )
        gate = quality_gate(with_errors)
        assert not gate.passed
        assert any(r.rule == "bsp-race" for r in gate.regressions)
