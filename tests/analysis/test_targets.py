"""Tests for the artifact-target abstraction (analysis/targets.py)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.targets import (
    ArtifactContext,
    BenchmarkManifest,
    GraphManifest,
    ResultsArtifact,
    TraceArtifact,
    discover_artifacts,
    load_artifact,
    registered_artifact_rules,
)


def _write(path, text):
    path.write_text(text, encoding="utf-8")
    return path


class TestIniSniffing:
    def test_benchmark_config_kind(self, tmp_path):
        path = _write(
            tmp_path / "bench.ini",
            "[benchmark]\nplatforms = giraph\nrepetitions = 5\n",
        )
        artifact = load_artifact(path)
        assert artifact.kind == "benchmark-config"
        assert artifact.error is None
        assert isinstance(artifact.data, BenchmarkManifest)
        assert artifact.data.spec.repetitions == 5

    def test_graph_config_kind(self, tmp_path):
        path = _write(
            tmp_path / "g.ini",
            "[graph]\nname = g\ncatalog = graph500-8\nseed = 3\n",
        )
        artifact = load_artifact(path)
        assert artifact.kind == "graph-config"
        assert isinstance(artifact.data, GraphManifest)
        assert artifact.data.config.seed == 3

    def test_broken_config_is_parse_error(self, tmp_path):
        path = _write(tmp_path / "bad.ini", "[graph]\nname = g\n")
        artifact = load_artifact(path)
        assert artifact.error is not None
        assert artifact.data is None

    def test_loading_never_emits_warnings(self, tmp_path, recwarn):
        path = _write(
            tmp_path / "bench.ini",
            "[benchmark]\nrepetition = 5\n",  # misspelled on purpose
        )
        load_artifact(path)
        assert not [w for w in recwarn.list if w.category is UserWarning]


class TestJsonlSniffing:
    def test_results_rows(self, tmp_path):
        path = _write(
            tmp_path / "results.jsonl",
            '{"platform": "a", "graph": "g", "algorithm": "BFS", '
            '"status": "success"}\n',
        )
        artifact = load_artifact(path)
        assert artifact.kind == "results"
        assert isinstance(artifact.data, ResultsArtifact)
        assert artifact.data.rows[0].line == 1

    def test_trace_events(self, tmp_path):
        path = _write(
            tmp_path / "trace.jsonl",
            '{"event": "run-begin", "platform": "a", "graph": "g", '
            '"algorithm": "BFS", "attempt": 1}\n',
        )
        artifact = load_artifact(path)
        assert artifact.kind == "trace"
        assert isinstance(artifact.data, TraceArtifact)
        assert artifact.data.attempts[0].status == "incomplete"

    def test_submission_document(self, tmp_path):
        document = {
            "schema": "graphalytics-results-v1",
            "results": [
                {"platform": "a", "graph": "g", "algorithm": "BFS",
                 "status": "success"}
            ],
        }
        path = _write(tmp_path / "submission.json", json.dumps(document))
        artifact = load_artifact(path)
        assert artifact.kind == "results"
        assert len(artifact.data.rows) == 1

    def test_invalid_json_submission_is_error(self, tmp_path):
        path = _write(tmp_path / "broken.json", "{nope")
        artifact = load_artifact(path)
        assert artifact.error is not None


class TestDiscovery:
    def test_directory_picks_ini_and_jsonl_only(self, tmp_path):
        _write(tmp_path / "bench.ini", "[benchmark]\n")
        _write(tmp_path / "results.jsonl", "{}")
        _write(tmp_path / "expected.json", "{}")  # golden: not audited
        _write(tmp_path / "notes.txt", "hello")
        artifacts = discover_artifacts([tmp_path])
        names = {a.path.rsplit("/", 1)[-1] for a in artifacts}
        assert names == {"bench.ini", "results.jsonl"}

    def test_explicit_json_file_is_loaded(self, tmp_path):
        path = _write(
            tmp_path / "submission.json", json.dumps({"results": []})
        )
        artifacts = discover_artifacts([path])
        assert len(artifacts) == 1
        assert artifacts[0].error is None

    def test_missing_file_becomes_error_artifact(self, tmp_path):
        artifacts = discover_artifacts([tmp_path / "absent.ini"])
        assert artifacts[0].error is not None


class TestLineOf:
    def test_anchors_section_and_key(self):
        artifact = ArtifactContext(
            path="x.ini",
            kind="benchmark-config",
            lines=[
                "; comment",
                "[benchmark]",
                "platforms = giraph",
                "repetitions = 5",
            ],
            data=None,
        )
        assert artifact.line_of("benchmark") == 2
        assert artifact.line_of("benchmark", "repetitions") == 4

    def test_missing_key_falls_back_to_line_one(self):
        artifact = ArtifactContext(
            path="x.ini", kind="benchmark-config",
            lines=["[benchmark]"], data=None,
        )
        assert artifact.line_of("benchmark", "warmup") == 1


class TestRegistry:
    def test_builtin_rules_registered(self):
        rules = registered_artifact_rules()
        assert {
            "single-run", "no-warmup", "validation-off", "no-time-limit",
            "dataset-shape-bias", "seed-monoculture", "missing-variance",
            "unexplained-failure", "overlapping-ci", "config-unknown-key",
        } <= set(rules)

    def test_rule_ids_unique_versus_quality_registry(self):
        from repro.analysis import registered_project_rules, registered_rules

        audit_ids = set(registered_artifact_rules())
        quality_ids = set(registered_rules()) | set(registered_project_rules())
        assert not audit_ids & quality_ids

    def test_registering_without_id_rejected(self):
        from repro.analysis.targets import ArtifactRule, register_artifact_rule

        class Nameless(ArtifactRule):
            id = ""

        with pytest.raises(ValueError):
            register_artifact_rule(Nameless)
