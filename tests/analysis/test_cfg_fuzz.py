"""Fuzzing the CFG builder and worklist solver with random programs.

A seeded generator grows random-but-valid function bodies out of the
control-flow grammar the CFG supports — ``if``/``elif``/``else``,
``while`` and ``for`` (with ``break``/``continue``), ``try`` with
``except``/``else``/``finally``, ``return``, ``raise``, ``with`` — and
every generated function must (a) build a CFG without crashing, (b)
reach a solver fixpoint within the step bound under a genuinely
joining analysis, and (c) keep basic structural invariants (edges
point at real nodes, reachable statement nodes carry statements).

Seeds are fixed, so a failure reproduces: rerun the failing seed and
print ``_generate_program(random.Random(seed))``.
"""

from __future__ import annotations

import ast
import random

import pytest

from repro.analysis.dataflow.cfg import CFG, build_cfg
from repro.analysis.dataflow.solver import ForwardAnalysis, solve_forward

SEEDS = range(50)

#: Maximum nesting depth of generated compound statements.
_MAX_DEPTH = 4


def _simple_statement(rng: random.Random, in_loop: bool) -> list[str]:
    choices = [
        "x = x + 1",
        "y = x * 2",
        "x, y = y, x",
        "x += y",
        "total = helper(x, y)",
        "pass",
        "return x",
        "raise ValueError(x)",
    ]
    if in_loop:
        choices += ["break", "continue"]
    return [rng.choice(choices)]


def _indent(lines: list[str]) -> list[str]:
    return ["    " + line for line in lines]


def _block(rng: random.Random, depth: int, in_loop: bool) -> list[str]:
    lines: list[str] = []
    for _ in range(rng.randint(1, 3)):
        lines.extend(_statement(rng, depth, in_loop))
    return lines


def _statement(rng: random.Random, depth: int, in_loop: bool) -> list[str]:
    if depth >= _MAX_DEPTH or rng.random() < 0.5:
        return _simple_statement(rng, in_loop)
    kind = rng.choice(["if", "while", "for", "try", "with"])
    inner = depth + 1
    if kind == "if":
        lines = ["if x > 0:"] + _indent(_block(rng, inner, in_loop))
        if rng.random() < 0.5:
            lines += ["elif y > 0:"] + _indent(_block(rng, inner, in_loop))
        if rng.random() < 0.5:
            lines += ["else:"] + _indent(_block(rng, inner, in_loop))
        return lines
    if kind == "while":
        lines = ["while x < 10:"] + _indent(_block(rng, inner, True))
        if rng.random() < 0.3:
            lines += ["else:"] + _indent(_block(rng, inner, in_loop))
        return lines
    if kind == "for":
        lines = ["for i in range(x):"] + _indent(_block(rng, inner, True))
        if rng.random() < 0.3:
            lines += ["else:"] + _indent(_block(rng, inner, in_loop))
        return lines
    if kind == "with":
        return ["with helper(x) as handle:"] + _indent(
            _block(rng, inner, in_loop)
        )
    lines = ["try:"] + _indent(_block(rng, inner, in_loop))
    handlers = rng.randint(0, 2)
    for index in range(handlers):
        exc = ["ValueError", "KeyError"][index]
        lines += [f"except {exc}:"] + _indent(_block(rng, inner, in_loop))
    if handlers and rng.random() < 0.3:
        lines += ["else:"] + _indent(_block(rng, inner, in_loop))
    if not handlers or rng.random() < 0.5:
        lines += ["finally:"] + _indent(_block(rng, inner, in_loop))
    return lines


def _generate_program(rng: random.Random) -> str:
    body = _indent(_block(rng, 0, in_loop=False))
    return "\n".join(["def fuzzed(x, y, helper):"] + body) + "\n"


class _BoundNames(ForwardAnalysis):
    """May-be-bound names: a small powerset lattice that joins."""

    def initial_state(self):
        return frozenset({"x", "y", "helper"})

    def join(self, a, b):
        return a | b

    def transfer(self, node, state):
        stmt = node.stmt
        if stmt is None:
            return state
        bound = set()
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                for child in ast.walk(target):
                    if isinstance(child, ast.Name):
                        bound.add(child.id)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            for child in ast.walk(stmt.target):
                if isinstance(child, ast.Name):
                    bound.add(child.id)
        return state | frozenset(bound)


@pytest.mark.parametrize("seed", SEEDS)
def test_random_program_builds_and_converges(seed):
    rng = random.Random(seed)
    source = _generate_program(rng)
    tree = ast.parse(source)
    func = tree.body[0]
    assert isinstance(func, ast.FunctionDef)

    cfg = build_cfg(func)

    # Structural invariants: every edge lands on a real node, and the
    # synthetic entry/exit indices exist.
    assert len(cfg.nodes) >= 3
    for node in cfg.nodes:
        for target, _edge in node.succs:
            assert 0 <= target < len(cfg.nodes)

    in_states = solve_forward(cfg, _BoundNames())

    # The solver reached a fixpoint: entry is present, and every
    # reachable node's state includes the function's parameters.
    assert CFG.ENTRY in in_states
    for index, state in in_states.items():
        assert {"x", "y", "helper"} <= state
        assert 0 <= index < len(cfg.nodes)


@pytest.mark.parametrize("seed", range(10))
def test_fuzzed_programs_are_deterministic(seed):
    first = _generate_program(random.Random(seed))
    second = _generate_program(random.Random(seed))
    assert first == second
