"""Unit tests for the rule engine: metrics, suppression, config, errors."""

import textwrap

import pytest

from repro.analysis import (
    AnalysisConfig,
    Rule,
    analyze_file,
    analyze_source,
    analyze_tree,
    register_rule,
    registered_rules,
)


def _analyze(code: str, path: str = "<string>", config=None):
    return analyze_source(textwrap.dedent(code), path, config)


class TestComplexity:
    def test_nested_function_branches_not_counted_into_enclosing(self):
        report = _analyze(
            """
            def outer(x):
                def closure(y):
                    if y > 0:
                        for i in range(y):
                            if i % 2:
                                pass
                    return y
                return closure(x)
            """
        )
        by_name = {m.name: m for m in report.functions}
        assert by_name["outer"].complexity == 1
        assert by_name["closure"].complexity == 4
        assert by_name["closure"].nested

    def test_boolop_counts_extra_operands(self):
        report = _analyze(
            """
            def f(a, b, c):
                if a or b or c:
                    return 1
                return 0
            """
        )
        # base + if + (3-operand BoolOp adds 2)
        assert report.functions[0].complexity == 4

    def test_two_operand_boolop_adds_one(self):
        report = _analyze("def f(a, b):\n    return a and b\n")
        assert report.functions[0].complexity == 2

    def test_lambda_body_excluded(self):
        report = _analyze(
            "def f(items):\n    return sorted(items, key=lambda x: x if x else 0)\n"
        )
        assert report.functions[0].complexity == 1


class TestParseErrors:
    def test_syntax_error_becomes_finding(self):
        report = _analyze("def broken(:\n")
        assert [f.rule for f in report.findings] == ["parse-error"]
        assert report.findings[0].severity == "error"

    def test_null_bytes_become_finding(self):
        report = analyze_source("x = 1\x00", "bad.py")
        assert [f.rule for f in report.findings] == ["parse-error"]

    def test_non_utf8_file_becomes_finding(self, tmp_path):
        path = tmp_path / "latin.py"
        path.write_bytes("x = '\xe9'\n".encode("latin-1"))
        report = analyze_file(path)
        assert [f.rule for f in report.findings] == ["parse-error"]

    def test_tree_analysis_survives_broken_files(self, tmp_path):
        (tmp_path / "good.py").write_text("def f():\n    pass\n")
        (tmp_path / "bad.py").write_text("def broken(:\n")
        report = analyze_tree(tmp_path)
        assert len(report.files) == 2
        assert report.findings_by_rule() == {"parse-error": 1}


class TestSuppression:
    def test_same_line_rule_suppression(self):
        report = _analyze(
            "def f(x):\n    return x == None  # quality: ignore[eq-none]\n"
        )
        assert report.findings == []
        assert report.suppressed == 1

    def test_bare_ignore_suppresses_all_rules(self):
        report = _analyze("def f(x):\n    return x == None  # quality: ignore\n")
        assert report.findings == []
        assert report.suppressed == 1

    def test_wrong_rule_id_does_not_suppress(self):
        report = _analyze(
            "def f(x):\n    return x == None  # quality: ignore[bare-except]\n"
        )
        # The finding escapes the mismatched suppression, and the
        # suppression itself is reported as stale.
        assert sorted(f.rule for f in report.findings) == [
            "eq-none",
            "stale-ignore",
        ]

    def test_multiple_rule_ids(self):
        report = _analyze(
            "def f(x):\n"
            "    return x == None  # quality: ignore[bare-except, eq-none]\n"
        )
        assert report.findings == []


class TestConfig:
    def test_disable_rule(self):
        config = AnalysisConfig(disabled=frozenset({"eq-none"}))
        report = _analyze("def f(x):\n    return x == None\n", config=config)
        assert report.findings == []

    def test_enabled_only(self):
        config = AnalysisConfig(enabled_only=frozenset({"bare-except"}))
        report = _analyze(
            """
            def f(x=[]):
                try:
                    return x == None
                except:
                    pass
            """,
            config=config,
        )
        assert [f.rule for f in report.findings] == ["bare-except"]

    def test_high_complexity_ceiling(self):
        config = AnalysisConfig(max_complexity=2)
        report = _analyze(
            """
            def branchy(x):
                if x > 0:
                    for i in range(x):
                        if i % 2:
                            pass
                return x
            """,
            config=config,
        )
        assert [f.rule for f in report.findings] == ["high-complexity"]


class TestRegistry:
    def test_builtin_rules_registered(self):
        rules = registered_rules()
        for rule_id in (
            "bare-except",
            "mutable-default",
            "eq-none",
            "high-complexity",
            "determinism",
            "cost-accounting",
            "bsp-race",
        ):
            assert rule_id in rules

    def test_duplicate_registration_rejected(self):
        class Duplicate(Rule):
            id = "eq-none"

        with pytest.raises(ValueError, match="duplicate"):
            register_rule(Duplicate)

    def test_missing_id_rejected(self):
        class Anonymous(Rule):
            pass

        with pytest.raises(ValueError, match="no rule id"):
            register_rule(Anonymous)


class TestParallelAndProfile:
    """``analyze_tree(jobs=N)`` and per-rule timing collection."""

    @staticmethod
    def _seed_tree(tmp_path):
        (tmp_path / "clean.py").write_text(
            '"""A module."""\n\nX = 1\n', encoding="utf-8"
        )
        (tmp_path / "buggy.py").write_text(
            '"""A module."""\n\n\ndef f(x=[]):\n    """Doc."""\n'
            "    try:\n        return x\n    except:\n        pass\n",
            encoding="utf-8",
        )
        (tmp_path / "broken.py").write_text("def (", encoding="utf-8")

    @staticmethod
    def _snapshot(report):
        return [
            (f.path, [(x.rule, x.line) for x in f.findings], f.suppressed)
            for f in report.files
        ]

    def test_parallel_matches_serial(self, tmp_path):
        self._seed_tree(tmp_path)
        serial = analyze_tree(tmp_path)
        parallel = analyze_tree(tmp_path, jobs=2)
        assert self._snapshot(serial) == self._snapshot(parallel)

    def test_rule_timings_collected(self, tmp_path):
        self._seed_tree(tmp_path)
        timings = {}
        analyze_tree(tmp_path, rule_timings=timings)
        assert "bare-except" in timings
        assert all(seconds >= 0.0 for seconds in timings.values())

    def test_rule_timings_collected_in_parallel(self, tmp_path):
        self._seed_tree(tmp_path)
        timings = {}
        analyze_tree(tmp_path, jobs=2, rule_timings=timings)
        assert "bare-except" in timings
