"""Unmatched ``begin_round`` on an exception path.

The handler swallows an error raised mid-round and execution falls off
the end of the function with the meter still open — the next
``begin_round`` anywhere downstream raises at runtime. The balanced
variant shows the accepted shape: ``end_round`` in a ``finally``.
"""


class LeakyEngine:
    def run_superstep(self, meter):
        meter.begin_round("superstep")
        try:
            self.compute()
            meter.end_round()
        except ValueError:
            pass

    def run_balanced(self, meter):
        meter.begin_round("superstep")
        try:
            self.compute()
        finally:
            meter.end_round()

    def compute(self):
        raise ValueError("mid-round failure")
