"""A taint path crossing two function boundaries.

The source (set construction) lives in ``collect_dirty``, the sink
(message emission) lives in ``emit``, and the flow happens in ``run``
— which is where the finding must land, naming both helpers.
"""


class PropagatingEngine:
    def collect_dirty(self, changed):
        dirty = {vertex for vertex in changed}
        return dirty

    def emit(self, ctx, vertex):
        ctx.send(vertex, 1)

    def run(self, ctx, changed):
        for vertex in self.collect_dirty(changed):
            self.emit(ctx, vertex)
