"""Dict-iteration order flowing into message emission.

The vertex order of the frontier dict depends on construction order;
sending messages in that order makes message traces (and any
tie-breaking downstream) irreproducible. Sorting the keys first is the
sanctioned fix — the second method shows it and must stay clean.
"""


class FrontierEngine:
    def flood(self, ctx, updates):
        frontier = dict(updates)
        for vertex in frontier:
            ctx.send(vertex, 1)

    def flood_sorted(self, ctx, updates):
        frontier = dict(updates)
        for vertex in sorted(frontier):
            ctx.send(vertex, 1)
