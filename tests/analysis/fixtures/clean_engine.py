"""A well-behaved engine: every rule must stay silent here.

Deterministic iteration (sorted), balanced rounds through
``try``/``finally``, charges only inside rounds, overrides passed to
``end_round`` instead of mutating the returned record.
"""


class CleanEngine:
    def run_superstep(self, meter, ctx, frontier_set):
        meter.begin_round("superstep")
        try:
            for vertex in sorted(frontier_set):
                meter.charge_compute(0, 1.0)
                ctx.send(vertex, 1)
        finally:
            meter.end_round(barrier_seconds=0.001)

    def load(self, meter):
        meter.charge_startup(0, 2.0)
        meter.allocate_memory(0, 4096.0)
