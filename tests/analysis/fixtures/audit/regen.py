"""Regenerate the audit fixture corpus goldens.

Each case directory under ``tests/analysis/fixtures/audit/`` holds a
small experiment-artifact suite seeded with exactly one SoK fault
(plus ``clean_suite``, seeded with none). This script audits every
case and writes its ``expected.json`` golden recording the
``(file, rule, line)`` findings. Run it after an intentional rule
change — ``make audit-fixtures`` — and review the diff like any
golden update.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import audit_paths

CORPUS = Path(__file__).parent


def golden_findings(case_dir: Path) -> list[dict]:
    """The sorted ``(file, rule, line)`` findings of one case."""
    report = audit_paths([case_dir])
    findings = [
        {
            "file": Path(file_report.path).name,
            "rule": finding.rule,
            "line": finding.line,
        }
        for file_report, finding in report.iter_findings()
    ]
    return sorted(
        findings, key=lambda entry: (entry["file"], entry["rule"], entry["line"])
    )


def main() -> None:
    """Rewrite every case's ``expected.json``."""
    for case_dir in sorted(CORPUS.iterdir()):
        if not case_dir.is_dir():
            continue
        golden = {"findings": golden_findings(case_dir)}
        path = case_dir / "expected.json"
        path.write_text(
            json.dumps(golden, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {path} ({len(golden['findings'])} findings)")


if __name__ == "__main__":
    main()
