"""Regenerate golden expected-findings files for the fixture corpus.

Usage::

    PYTHONPATH=src python tests/analysis/fixtures/regen.py [name.py ...]

With no arguments every fixture is regenerated. The virtual analysis
path is kept from the existing ``.expected.json`` when present (it is
part of the fixture's contract), defaulting to an engine path inside
the rules' scope otherwise. Review regenerated files like any golden
diff: a changed line number is fine after an intentional edit, a
disappeared finding usually means a rule regressed.
"""

from __future__ import annotations

import json
import runpy
import sys
from pathlib import Path

from repro.analysis import analyze_source

DEFAULT_PATH = "src/repro/platforms/fixture/engine.py"
FIXTURE_DIR = Path(__file__).parent


def regenerate(fixture: Path) -> None:
    expected_file = fixture.with_suffix(".expected.json")
    virtual_path = DEFAULT_PATH
    if expected_file.exists():
        virtual_path = json.loads(expected_file.read_text())["path"]
    report = analyze_source(fixture.read_text(), virtual_path)
    payload = {
        "path": virtual_path,
        "findings": [
            {"rule": finding.rule, "line": finding.line}
            for finding in sorted(
                report.findings, key=lambda f: (f.line, f.rule)
            )
        ],
    }
    expected_file.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {expected_file.name}: {len(payload['findings'])} finding(s)")


def main(argv: list[str]) -> int:
    names = argv or sorted(
        p.name for p in FIXTURE_DIR.glob("*.py") if p.name != "regen.py"
    )
    for name in names:
        regenerate(FIXTURE_DIR / name)
    if not argv:
        # Sub-corpora (audit/, units/, ...) ship their own regen.py
        # with corpus-specific defaults; discover and run each so
        # `make quality-fixtures` covers every golden in one pass.
        for sub_regen in sorted(FIXTURE_DIR.glob("*/regen.py")):
            try:
                runpy.run_path(str(sub_regen), run_name="__main__")
            except SystemExit as exit_status:
                if exit_status.code:
                    raise
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
