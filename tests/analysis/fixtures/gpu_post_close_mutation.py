"""The GPU-engine bug a previous PR fixed by hand, reduced.

``end_round`` returns a closed :class:`RoundRecord`; assigning to its
``barrier_seconds`` afterwards silently corrupts the recorded profile
(trace replay and profile fingerprints disagree with the meter).
The fix is to pass the override to ``end_round`` itself.
"""

KERNEL_LAUNCH_SECONDS = 0.0005


class GPUPregelEngine:
    def superstep(self, meter, compute_set):
        meter.begin_round("kernel")
        self.run_kernel(compute_set)
        record = meter.end_round(active_vertices=len(compute_set))
        # Kernel launch + host sync replaces the cluster barrier.
        record.barrier_seconds = KERNEL_LAUNCH_SECONDS

    def run_kernel(self, compute_set):
        for _vertex in list(compute_set):
            pass
