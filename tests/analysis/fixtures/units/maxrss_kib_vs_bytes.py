"""Pre-fix host-resource monitor: the PR 4 ``ru_maxrss`` regression.

Linux ``getrusage`` reports ``ru_maxrss`` in kibibytes; the seed
recorded the raw figure as bytes, understating peak memory by 1024x
until a golden test caught it. This fixture freezes that pre-fix
shape so the ``cost-units`` pass must re-derive the bug statically:
``sample`` (the bug) yields two ``cost-units.unconverted`` findings,
``sample_fixed`` (the PR 4 repair, converting at the rusage boundary)
yields none.
"""

import resource


class HostMonitor:
    """Samples process resource usage into a benchmark cost record."""

    def sample(self, record):
        """The pre-fix sampler: records kibibytes as bytes."""
        usage = resource.getrusage(resource.RUSAGE_SELF)
        peak_bytes = float(usage.ru_maxrss)
        record.peak_memory_bytes = peak_bytes
        return peak_bytes

    def sample_fixed(self, record):
        """The repaired sampler: converts at the rusage boundary."""
        usage = resource.getrusage(resource.RUSAGE_SELF)
        peak_bytes = float(usage.ru_maxrss) * 1024
        record.peak_memory_bytes = peak_bytes
        return peak_bytes
