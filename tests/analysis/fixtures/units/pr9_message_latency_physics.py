"""Pre-fix NIC costing: the PR 9 "free message latency" physics bug.

Before the hardware-profile refactor the network model charged no
per-message latency at all — and the two natural one-line repairs are
both dimensionally wrong in ways the ``cost-units`` pass catches:

* charging the NIC's 2 us/message figure as if it were seconds
  (``cost-units.unconverted``: the constant was never scaled), and
* multiplying the transferred bytes by the bandwidth instead of
  dividing (``cost-units.rate-inversion``: bytes^2/second is not a
  time).

``network_seconds_buggy`` commits both; ``network_seconds_fixed`` is
the physics PR 9 actually shipped and must analyze clean.
"""

NIC_MESSAGE_LATENCY = 2.0  # units: microseconds/message
NIC_MESSAGE_LATENCY_SECONDS = 2.0e-6  # units: seconds/message


class PreFixNic:
    """The pre-PR 9 network cost model with its candidate repairs."""

    def __init__(self, bandwidth):
        """Remember the per-worker NIC bandwidth (bytes/second)."""
        self.bandwidth = bandwidth

    def network_seconds_buggy(self, record, num_workers):
        """Both natural-but-wrong repairs of the free-latency bug."""
        transfer_seconds = (
            record.remote_bytes * self.bandwidth / num_workers
        )
        latency_seconds = (
            record.remote_messages * NIC_MESSAGE_LATENCY / num_workers
        )
        return transfer_seconds + latency_seconds

    def network_seconds_fixed(self, record, num_workers):
        """The dimensionally sound physics PR 9 shipped."""
        transfer_seconds = record.remote_bytes / (
            num_workers * self.bandwidth
        )
        latency_seconds = (
            record.remote_messages * NIC_MESSAGE_LATENCY_SECONDS / num_workers
        )
        return transfer_seconds + latency_seconds
