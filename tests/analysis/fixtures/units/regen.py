"""Regenerate goldens for the dimensional-analysis fixture corpus.

Usage::

    PYTHONPATH=src python tests/analysis/fixtures/units/regen.py [name.py ...]

Same contract as the parent corpus regenerator (which discovers and
runs this one): the virtual analysis path is kept from the existing
``.expected.json``; first-time fixtures default to a path inside the
``cost-units`` scope so the dimensional rules actually run.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.analysis import analyze_source

#: First-generation virtual paths, chosen to land each fixture in the
#: part of the cost plumbing it re-enacts.
DEFAULT_PATHS = {
    "maxrss_kib_vs_bytes.py": "src/repro/core/monitor_pre_fix.py",
    "pr9_message_latency_physics.py": "src/repro/hardware/nic_pre_fix.py",
}
DEFAULT_PATH = "src/repro/hardware/fixture_units.py"
FIXTURE_DIR = Path(__file__).parent


def regenerate(fixture: Path) -> None:
    expected_file = fixture.with_suffix(".expected.json")
    virtual_path = DEFAULT_PATHS.get(fixture.name, DEFAULT_PATH)
    if expected_file.exists():
        virtual_path = json.loads(expected_file.read_text())["path"]
    report = analyze_source(fixture.read_text(), virtual_path)
    payload = {
        "path": virtual_path,
        "findings": [
            {"rule": finding.rule, "line": finding.line}
            for finding in sorted(
                report.findings, key=lambda f: (f.line, f.rule)
            )
        ],
    }
    expected_file.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote units/{expected_file.name}: "
          f"{len(payload['findings'])} finding(s)")


def main(argv: list[str]) -> int:
    names = argv or sorted(
        p.name for p in FIXTURE_DIR.glob("*.py") if p.name != "regen.py"
    )
    for name in names:
        regenerate(FIXTURE_DIR / name)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
