"""Behavioural tests for the ``cost-units`` dimensional analysis."""

from __future__ import annotations

import textwrap

from repro.analysis import AnalysisConfig, analyze_source
from repro.analysis.dataflow.units import (
    CONFLICT,
    DIMENSIONLESS,
    UNKNOWN,
    base_unit,
    parse_unit,
    unit_div,
    unit_join,
    unit_mul,
    unit_of_name,
)

IN_SCOPE = "src/repro/hardware/fake_model.py"
OUT_OF_SCOPE = "src/repro/graph/fake_io.py"


def _findings(code: str, path: str = IN_SCOPE, config=None):
    report = analyze_source(textwrap.dedent(code), path, config)
    return [f for f in report.findings if f.rule.startswith("cost-units")]


class TestLattice:
    def test_rates_compose(self):
        seconds = parse_unit("seconds")
        bandwidth = parse_unit("bytes/second")
        assert unit_mul(bandwidth, seconds) == parse_unit("bytes")
        assert unit_div(parse_unit("bytes"), bandwidth) == seconds

    def test_join_widens_disagreement_to_conflict(self):
        assert unit_join(parse_unit("bytes"), parse_unit("bytes")) == parse_unit("bytes")
        assert unit_join(parse_unit("bytes"), parse_unit("seconds")) == CONFLICT
        assert unit_join(parse_unit("bytes"), UNKNOWN) == UNKNOWN

    def test_dimensionless_is_multiplicative_identity(self):
        ops = base_unit("ops")
        assert unit_mul(ops, DIMENSIONLESS) == ops
        assert unit_div(ops, DIMENSIONLESS) == ops

    def test_parse_unit_aliases_and_rejects_unknown(self):
        assert parse_unit("ops/second") == parse_unit("operations / seconds")
        assert parse_unit("1") == DIMENSIONLESS
        assert parse_unit("furlongs") is None

    def test_registry_covers_the_cost_vocabulary(self):
        assert unit_of_name("ru_maxrss") == parse_unit("kibibytes")
        assert unit_of_name("network_bandwidth") == parse_unit("bytes/second")
        assert unit_of_name("message_latency_seconds") == parse_unit(
            "seconds/message"
        )
        assert unit_of_name("bytes_per_worker") == parse_unit("bytes")
        assert unit_of_name("num_workers") == DIMENSIONLESS
        assert unit_of_name("unrelated_thing") is None


class TestFindings:
    def test_mixed_arithmetic_flagged(self):
        findings = _findings(
            """
            def combine(compute_seconds, remote_bytes):
                return compute_seconds + remote_bytes
            """
        )
        assert [f.rule for f in findings] == ["cost-units.mixed-arithmetic"]

    def test_rate_division_is_clean(self):
        findings = _findings(
            """
            def transfer(remote_bytes, network_bandwidth, num_workers):
                return remote_bytes / (num_workers * network_bandwidth)
            """
        )
        assert findings == []

    def test_rate_inversion_flagged(self):
        findings = _findings(
            """
            def transfer(remote_bytes, network_bandwidth):
                return remote_bytes * network_bandwidth
            """
        )
        assert [f.rule for f in findings] == ["cost-units.rate-inversion"]

    def test_unconverted_kib_flagged_with_hint(self):
        findings = _findings(
            """
            def peak(usage):
                peak_bytes = float(usage.ru_maxrss)
                return peak_bytes
            """
        )
        assert [f.rule for f in findings] == ["cost-units.unconverted"]
        assert "multiply by 1024" in findings[0].message

    def test_conversion_literal_is_clean(self):
        findings = _findings(
            """
            def peak(usage):
                peak_bytes = float(usage.ru_maxrss) * 1024
                return peak_bytes
            """
        )
        assert findings == []

    def test_call_argument_mismatch_flagged(self):
        findings = _findings(
            """
            def run(meter, compute_seconds):
                meter.charge_compute(0, compute_seconds)
            """
        )
        assert [f.rule for f in findings] == ["cost-units.call-argument"]

    def test_keyword_swap_flagged(self):
        findings = _findings(
            """
            def penalty(model, cpu, ops_per_worker):
                return model.straggler_penalty_seconds(
                    ops_per_worker,
                    ops_per_worker,
                    worker_ops_per_second=cpu.random_access_seconds,
                    random_access_seconds=cpu.worker_ops_per_second,
                )
            """
        )
        assert [f.rule for f in findings] == ["cost-units.keyword-swap"]

    def test_pragma_overrides_convention(self):
        findings = _findings(
            """
            def stamp(record):
                elapsed = record.compute_seconds  # units: milliseconds
                wall_seconds = elapsed
                return wall_seconds
            """
        )
        assert [f.rule for f in findings] == ["cost-units.unconverted"]
        # The pragma on the assignment wins over the `_seconds`
        # convention, so the seconds-valued RHS needs converting.
        assert "divide by 0.001" in findings[0].message
        assert findings[0].line == 3

    def test_interprocedural_summary_returns_unit(self):
        findings = _findings(
            """
            class Nic:
                def service_seconds(self, remote_bytes, bandwidth):
                    return remote_bytes / bandwidth

                def round_cost(self, remote_bytes, bandwidth):
                    total_bytes = self.service_seconds(
                        remote_bytes, bandwidth
                    )
                    return total_bytes
            """
        )
        # The helper provably returns seconds; binding it to a
        # ``*_bytes`` name is mixed units.
        assert [f.rule for f in findings] == ["cost-units.mixed-arithmetic"]

    def test_out_of_scope_module_is_ignored(self):
        findings = _findings(
            """
            def combine(compute_seconds, remote_bytes):
                return compute_seconds + remote_bytes
            """,
            path=OUT_OF_SCOPE,
        )
        assert findings == []

    def test_family_wildcard_suppression(self):
        findings = _findings(
            """
            def combine(compute_seconds, remote_bytes):
                return compute_seconds + remote_bytes  # quality: ignore[cost-units.*]
            """
        )
        assert findings == []

    def test_family_wildcard_disables_rules(self):
        config = AnalysisConfig(
            disabled=frozenset({"cost-units.*", "stale-ignore"})
        )
        findings = _findings(
            """
            def combine(compute_seconds, remote_bytes):
                return compute_seconds + remote_bytes
            """,
            config=config,
        )
        assert findings == []

    def test_counts_scale_rates_without_noise(self):
        findings = _findings(
            """
            def aggregate(num_workers, network_bandwidth, remote_bytes):
                fleet_bandwidth = num_workers * network_bandwidth
                return remote_bytes / fleet_bandwidth
            """
        )
        assert findings == []

    def test_branches_join_without_false_positives(self):
        findings = _findings(
            """
            def pick(fast, total_bytes, network_bandwidth):
                if fast:
                    wait_seconds = 0.0
                else:
                    wait_seconds = total_bytes / network_bandwidth
                return wait_seconds
            """
        )
        assert findings == []
