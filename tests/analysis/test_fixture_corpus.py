"""Golden-file runner for the fixture corpus.

Each ``<name>.py`` under ``tests/analysis/fixtures/`` pairs with a
``<name>.expected.json`` golden recording the exact ``(rule, line)``
findings the analyzer must produce when the fixture is analyzed under
the golden's virtual path. Regenerate goldens with
``PYTHONPATH=src python tests/analysis/fixtures/regen.py`` after an
intentional change, and review the diff.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import analyze_source

FIXTURE_DIR = Path(__file__).parent / "fixtures"
#: Top-level fixtures plus golden sub-corpora (units/, ...); the
#: audit/ tree is a different artifact format with its own runner.
FIXTURES = sorted(
    path
    for path in FIXTURE_DIR.glob("**/*.py")
    if path.name != "regen.py" and "audit" not in path.parts
)


def _fixture_id(path: Path) -> str:
    return path.relative_to(FIXTURE_DIR).with_suffix("").as_posix()


def test_corpus_covers_required_scenarios() -> None:
    names = {_fixture_id(path) for path in FIXTURES}
    assert {
        "gpu_post_close_mutation",
        "begin_round_exception_leak",
        "dict_iteration_to_message",
        "cross_function_taint",
        "clean_engine",
        "units/maxrss_kib_vs_bytes",
        "units/pr9_message_latency_physics",
    } <= names


@pytest.mark.parametrize("fixture", FIXTURES, ids=_fixture_id)
def test_fixture_matches_golden(fixture: Path) -> None:
    golden_path = fixture.with_suffix(".expected.json")
    assert golden_path.exists(), (
        f"{fixture.name} has no golden; run tests/analysis/fixtures/regen.py"
    )
    golden = json.loads(golden_path.read_text())

    report = analyze_source(fixture.read_text(), golden["path"])
    actual = sorted(
        {"rule": finding.rule, "line": finding.line}.items()
        for finding in report.findings
    )
    expected = sorted(entry.items() for entry in golden["findings"])
    assert [dict(item) for item in actual] == [
        dict(item) for item in expected
    ], f"{fixture.name}: findings diverged from golden"


@pytest.mark.parametrize(
    "golden_path",
    sorted(
        path
        for path in FIXTURE_DIR.glob("**/*.expected.json")
        if "audit" not in path.parts
    ),
    ids=lambda p: p.relative_to(FIXTURE_DIR).as_posix().replace(
        ".expected.json", ""
    ),
)
def test_golden_has_fixture(golden_path: Path) -> None:
    source = golden_path.with_name(golden_path.name.replace(".expected.json", ".py"))
    assert source.exists(), f"{golden_path.name} is orphaned"
