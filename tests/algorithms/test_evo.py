"""Unit tests for forest-fire graph evolution."""

import pytest

from repro.algorithms.evo import (
    ambassador_for,
    burn_budget,
    burn_victims,
    forest_fire_evolution,
    forest_fire_links,
    single_fire,
)
from repro.graph.graph import Graph


class TestKernels:
    def test_ambassador_deterministic_and_in_range(self):
        existing = list(range(100))
        first = ambassador_for(7, 200, existing)
        assert first == ambassador_for(7, 200, existing)
        assert first in existing

    def test_ambassador_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            ambassador_for(0, 1, [])

    def test_burn_budget_deterministic_and_geometric(self):
        budgets = [burn_budget(1, 50, v, 0.3) for v in range(2000)]
        assert budgets == [burn_budget(1, 50, v, 0.3) for v in range(2000)]
        mean = sum(budgets) / len(budgets)
        # Geometric with p=0.3 has mean p/(1-p) ~ 0.43.
        assert 0.3 < mean < 0.6

    def test_burn_budget_zero_probability(self):
        assert burn_budget(1, 2, 3, 0.0) == 0

    def test_burn_budget_invalid_probability(self):
        with pytest.raises(ValueError):
            burn_budget(1, 2, 3, 1.0)

    def test_burn_victims_subset_and_order_independent(self):
        candidates = [5, 3, 9, 1, 7]
        chosen = burn_victims(candidates, 2, 1, 2, 3)
        assert len(chosen) == 2
        assert set(chosen) <= set(candidates)
        assert chosen == burn_victims(list(reversed(candidates)), 2, 1, 2, 3)

    def test_burn_victims_budget_exceeds_candidates(self):
        assert burn_victims([2, 1], 10, 0, 0, 0) == [1, 2]


class TestSingleFire:
    def test_fire_contains_ambassador(self):
        adjacency = {0: [1], 1: [0, 2], 2: [1]}
        burned = single_fire(adjacency, [0, 1, 2], 10, 0.5, 2, seed=3)
        ambassador = ambassador_for(3, 10, [0, 1, 2])
        assert ambassador in burned

    def test_fire_respects_hop_limit(self):
        # A long path: with max_hops=1 the fire burns at most the
        # ambassador's direct neighbors.
        adjacency = {i: [j for j in (i - 1, i + 1) if 0 <= j <= 9] for i in range(10)}
        existing = list(range(10))
        burned = single_fire(adjacency, existing, 99, 0.9, 1, seed=1)
        ambassador = ambassador_for(1, 99, existing)
        assert all(abs(v - ambassador) <= 1 for v in burned)


class TestEvolution:
    def test_links_shape(self, medium_rmat):
        links = forest_fire_links(medium_rmat, 20, seed=5)
        next_id = int(medium_rmat.vertices[-1]) + 1
        assert sorted(links) == list(range(next_id, next_id + 20))
        vertex_set = {int(v) for v in medium_rmat.vertices}
        for targets in links.values():
            assert targets == sorted(targets)
            assert set(targets) <= vertex_set

    def test_evolved_graph_contains_original(self, small_rmat):
        evolved = forest_fire_evolution(small_rmat, 10, seed=2)
        original_edges = set(small_rmat.iter_edges())
        evolved_edges = set(evolved.iter_edges())
        assert original_edges <= evolved_edges
        assert evolved.num_vertices == small_rmat.num_vertices + 10

    def test_deterministic(self, small_rmat):
        assert forest_fire_links(small_rmat, 5, seed=9) == forest_fire_links(
            small_rmat, 5, seed=9
        )
        assert forest_fire_links(small_rmat, 5, seed=9) != forest_fire_links(
            small_rmat, 5, seed=10
        )

    def test_zero_arrivals(self, small_rmat):
        assert forest_fire_links(small_rmat, 0) == {}
        assert forest_fire_evolution(small_rmat, 0) == small_rmat.to_undirected()

    def test_negative_arrivals_rejected(self, small_rmat):
        with pytest.raises(ValueError):
            forest_fire_links(small_rmat, -1)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            forest_fire_links(Graph([], []), 1)

    def test_higher_p_burns_more(self, medium_rmat):
        gentle = forest_fire_links(medium_rmat, 30, p_forward=0.1, seed=4)
        fierce = forest_fire_links(medium_rmat, 30, p_forward=0.6, seed=4)
        assert sum(map(len, fierce.values())) > sum(map(len, gentle.values()))
