"""Unit tests for the STATS reference implementation."""

import pytest

from repro.algorithms.stats import stats
from repro.graph.graph import Graph


def test_counts_and_clustering(triangle_graph):
    result = stats(triangle_graph)
    assert result.num_vertices == 5
    assert result.num_edges == 4
    expected_cc = (1.0 + 1.0 + 1 / 3 + 0.0 + 0.0) / 5
    assert result.mean_local_clustering == pytest.approx(expected_cc)


def test_empty_graph():
    result = stats(Graph([], []))
    assert result.num_vertices == 0
    assert result.num_edges == 0
    assert result.mean_local_clustering == 0.0


def test_directed_graph_counts_arcs():
    directed = Graph.from_edges([(0, 1), (1, 0), (1, 2)], directed=True)
    result = stats(directed)
    assert result.num_edges == 3
    assert result.num_vertices == 3
