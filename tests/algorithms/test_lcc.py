"""Unit and property-based tests for the LCC reference."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.lcc import lcc, lcc_value
from repro.graph.graph import Graph

edge_lists = st.lists(
    st.tuples(st.integers(0, 25), st.integers(0, 25)),
    min_size=0,
    max_size=90,
)


class TestUnits:
    def test_empty_graph(self):
        assert lcc(Graph.from_edges([])) == {}

    def test_low_degree_vertices_are_zero(self):
        graph = Graph.from_edges([(0, 1)], vertices=[9])
        assert lcc(graph) == {0: 0.0, 1: 0.0, 9: 0.0}

    def test_triangle_with_tail(self):
        graph = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        out = lcc(graph)
        assert out[0] == 1.0
        assert out[1] == 1.0
        assert out[2] == lcc_value(1, 3)  # one link among three neighbors
        assert out[3] == 0.0

    def test_lcc_value_formula(self):
        assert lcc_value(0, 5) == 0.0
        assert lcc_value(3, 3) == 1.0
        assert lcc_value(1, 1) == 0.0  # degree < 2 guard


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_coefficients_are_bounded(edges):
    """Every coefficient lies in [0, 1], and degree-<2 vertices are
    exactly 0."""
    graph = Graph.from_edges(edges)
    out = lcc(graph)
    undirected = graph.to_undirected()
    assert set(out) == {int(v) for v in undirected.vertices}
    for vertex, value in out.items():
        assert 0.0 <= value <= 1.0
        if len(list(undirected.neighbors(vertex))) < 2:
            assert value == 0.0


@given(st.integers(3, 12))
@settings(max_examples=10, deadline=None)
def test_clique_is_all_ones(n):
    """In K_n every pair of neighbors is linked: LCC = 1 everywhere."""
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    out = lcc(Graph.from_edges(edges))
    assert out == {vertex: 1.0 for vertex in range(n)}


@given(
    st.lists(st.integers(0, 2 ** 16), min_size=1, max_size=24),
)
@settings(max_examples=40, deadline=None)
def test_tree_is_all_zeros(parent_seeds):
    """Trees have no triangles: LCC = 0 everywhere. Random trees are
    built by attaching vertex i to a pseudo-random earlier vertex."""
    edges = [
        (seed % (i + 1), i + 1) for i, seed in enumerate(parent_seeds)
    ]
    out = lcc(Graph.from_edges(edges))
    assert set(out.values()) == {0.0}
