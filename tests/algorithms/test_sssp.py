"""Unit and property-based tests for the weighted SSSP reference."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.sssp import UNREACHABLE_DISTANCE, sssp
from repro.graph.graph import Graph

edge_lists = st.lists(
    st.tuples(st.integers(0, 25), st.integers(0, 25)),
    min_size=1,
    max_size=90,
)


def _weighted(edges, seed):
    return Graph.from_edges(edges).with_uniform_weights(seed=seed)


class TestUnits:
    def test_source_distance_is_zero(self):
        graph = _weighted([(0, 1), (1, 2)], seed=1)
        assert sssp(graph, 0)[0] == 0.0

    def test_unreachable_is_infinite(self):
        graph = _weighted([(0, 1), (5, 6)], seed=1)
        distances = sssp(graph, 0)
        assert distances[5] == UNREACHABLE_DISTANCE
        assert distances[6] == UNREACHABLE_DISTANCE
        assert math.isinf(UNREACHABLE_DISTANCE)

    def test_picks_lighter_detour(self):
        graph = Graph.from_edges(
            [(0, 1), (1, 2), (0, 2)], weights=[1.0, 1.0, 5.0]
        )
        distances = sssp(graph, 0)
        assert distances[2] == 2.0  # via 1, not the direct 5.0 edge

    def test_unweighted_graph_rejected(self):
        graph = Graph.from_edges([(0, 1)])
        with pytest.raises(ValueError, match="weighted graph"):
            sssp(graph, 0)


@given(edge_lists, st.integers(0, 2 ** 16))
@settings(max_examples=60, deadline=None)
def test_triangle_inequality_over_every_edge(edges, seed):
    """The defining property of shortest-path distances: no single
    edge can shortcut them. For every undirected edge (u, v) with
    weight w, ``dist[v] <= dist[u] + w`` (in both directions)."""
    graph = _weighted(edges, seed)
    if graph.num_vertices == 0:
        return
    source = min(int(v) for v in graph.vertices)
    distances = sssp(graph, source)
    assert distances[source] == 0.0
    undirected = graph.to_undirected()
    for u, v, weight in undirected.iter_weighted_edges():
        assert weight > 0
        if distances[u] < UNREACHABLE_DISTANCE:
            assert distances[v] <= distances[u] + weight + 1e-12
        if distances[v] < UNREACHABLE_DISTANCE:
            assert distances[u] <= distances[v] + weight + 1e-12


@given(edge_lists, st.integers(0, 2 ** 16))
@settings(max_examples=60, deadline=None)
def test_finite_distance_iff_reachable(edges, seed):
    """Finite distances coincide exactly with the source's component;
    every finite distance is witnessed by an in-tree predecessor
    (some neighbor with ``dist[u] + w == dist[v]``)."""
    graph = _weighted(edges, seed)
    if graph.num_vertices == 0:
        return
    source = min(int(v) for v in graph.vertices)
    distances = sssp(graph, source)
    undirected = graph.to_undirected()
    adjacency = {
        v: dict(pairs) for v, pairs in undirected.weighted_adjacency().items()
    }
    # BFS reachability, ignoring weights.
    reachable = {source}
    frontier = [source]
    while frontier:
        vertex = frontier.pop()
        for neighbor in adjacency[vertex]:
            if neighbor not in reachable:
                reachable.add(neighbor)
                frontier.append(neighbor)
    for vertex, distance in distances.items():
        assert (distance < UNREACHABLE_DISTANCE) == (vertex in reachable)
        if vertex in reachable and vertex != source:
            assert any(
                math.isclose(
                    distances[u] + w, distance, rel_tol=0, abs_tol=1e-9
                )
                for u, w in adjacency[vertex].items()
            )
