"""Unit and property-based tests for the PageRank reference."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.pagerank import DEFAULT_DAMPING, pagerank
from repro.graph.graph import Graph

edge_lists = st.lists(
    st.tuples(st.integers(0, 25), st.integers(0, 25)),
    min_size=1,
    max_size=90,
)


class TestUnits:
    def test_empty_graph(self):
        assert pagerank(Graph.from_edges([])) == {}

    def test_zero_iterations_is_uniform(self):
        graph = Graph.from_edges([(0, 1), (1, 2)])
        assert pagerank(graph, iterations=0) == {0: 1 / 3, 1: 1 / 3, 2: 1 / 3}

    def test_symmetric_graph_stays_uniform(self):
        # On a cycle every vertex has degree 2; the uniform vector is
        # the fixpoint, so every iteration reproduces 1/n exactly.
        graph = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        ranks = pagerank(graph)
        assert all(math.isclose(r, 0.25, abs_tol=1e-12) for r in ranks.values())

    def test_isolated_vertex_converges_to_base(self):
        graph = Graph.from_edges([(0, 1)], vertices=[2])
        ranks = pagerank(graph, iterations=5)
        assert math.isclose(ranks[2], (1 - DEFAULT_DAMPING) / 3, abs_tol=1e-12)

    def test_invalid_parameters_rejected(self):
        graph = Graph.from_edges([(0, 1)])
        with pytest.raises(ValueError):
            pagerank(graph, iterations=-1)
        with pytest.raises(ValueError):
            pagerank(graph, damping=1.5)


@given(edge_lists)
@settings(max_examples=50, deadline=None)
def test_rank_mass_is_conserved(edges):
    """Without isolated vertices, ranks sum to exactly 1 (to float
    tolerance); isolated vertices leak their share mass, so the total
    can only shrink, never grow."""
    graph = Graph.from_edges(edges)
    if graph.num_vertices == 0:
        return
    ranks = pagerank(graph)
    total = sum(ranks.values())
    undirected = graph.to_undirected()
    isolated = [
        int(v)
        for v in undirected.vertices
        if not list(undirected.neighbors(int(v)))
    ]
    if not isolated:
        assert math.isclose(total, 1.0, abs_tol=1e-9)
    else:
        assert total <= 1.0 + 1e-9
    base = (1 - DEFAULT_DAMPING) / graph.num_vertices
    assert all(rank >= base - 1e-12 for rank in ranks.values())


@given(edge_lists, st.integers(0, 2 ** 31))
@settings(max_examples=50, deadline=None)
def test_permutation_equivariance(edges, seed):
    """Relabeling vertices permutes the ranks and changes nothing
    else — PageRank depends on structure, not on vertex ids."""
    graph = Graph.from_edges(edges)
    if graph.num_vertices == 0:
        return
    originals = [int(v) for v in graph.vertices]
    rng = random.Random(seed)
    shuffled = list(originals)
    rng.shuffle(shuffled)
    # A scrambled, gappy id space: order changes AND ids change.
    mapping = {old: 1000 + 3 * new for old, new in zip(originals, shuffled)}
    permuted = Graph.from_edges(
        [(mapping[s], mapping[t]) for s, t in graph.iter_edges()],
        vertices=[mapping[v] for v in originals],
        directed=graph.directed,
    )
    ranks = pagerank(graph)
    permuted_ranks = pagerank(permuted)
    assert set(permuted_ranks) == {mapping[v] for v in originals}
    for vertex in originals:
        assert math.isclose(
            ranks[vertex], permuted_ranks[mapping[vertex]], abs_tol=1e-9
        )
