"""Unit tests for the BFS reference implementation."""

import networkx as nx
import pytest

from repro.algorithms.bfs import UNREACHABLE, bfs
from repro.graph.graph import Graph


def test_distances_on_path():
    graph = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
    assert bfs(graph, 0) == {0: 0, 1: 1, 2: 2, 3: 3}


def test_unreachable_marked(two_components_graph):
    distances = bfs(two_components_graph, 0)
    assert distances[10] == UNREACHABLE
    assert distances[11] == UNREACHABLE
    assert distances[2] == 2


def test_source_not_in_graph(triangle_graph):
    with pytest.raises(ValueError):
        bfs(triangle_graph, 99)


def test_isolated_source(triangle_graph):
    distances = bfs(triangle_graph, 4)
    assert distances[4] == 0
    assert all(d == UNREACHABLE for v, d in distances.items() if v != 4)


def test_directed_follows_out_edges():
    graph = Graph.from_edges([(0, 1), (1, 2), (2, 0)], directed=True)
    assert bfs(graph, 0) == {0: 0, 1: 1, 2: 2}
    # From 2, vertex 1 is two hops away (2 -> 0 -> 1).
    assert bfs(graph, 2) == {0: 1, 1: 2, 2: 0}


def test_matches_networkx(medium_rmat):
    source = int(medium_rmat.vertices[0])
    expected = nx.single_source_shortest_path_length(
        nx.Graph(list(medium_rmat.iter_edges())), source
    )
    distances = bfs(medium_rmat, source)
    for vertex, dist in distances.items():
        if dist == UNREACHABLE:
            assert vertex not in expected
        else:
            assert expected[vertex] == dist


def test_every_vertex_appears(medium_rmat):
    distances = bfs(medium_rmat, int(medium_rmat.vertices[0]))
    assert set(distances) == {int(v) for v in medium_rmat.vertices}
