"""Unit tests for community detection (Leung et al. label propagation)."""

from repro.algorithms.cd import community_detection, propagation_step
from repro.graph.graph import Graph


def _two_cliques_with_bridge() -> Graph:
    clique_a = [(i, j) for i in range(4) for j in range(i + 1, 4)]
    clique_b = [(i, j) for i in range(10, 14) for j in range(i + 1, 14)]
    return Graph.from_edges(clique_a + clique_b + [(3, 10)])


def test_two_cliques_get_two_communities():
    graph = _two_cliques_with_bridge()
    labels = community_detection(graph, max_iterations=10)
    community_a = {labels[v] for v in range(4)}
    community_b = {labels[v] for v in range(10, 14)}
    assert len(community_a) == 1
    assert len(community_b) == 1
    assert community_a != community_b


def test_isolated_vertex_keeps_own_label():
    graph = Graph.from_edges([(0, 1)], vertices=[5])
    labels = community_detection(graph)
    assert labels[5] == 5


def test_zero_iterations_identity(triangle_graph):
    labels = community_detection(triangle_graph, max_iterations=0)
    assert labels == {int(v): int(v) for v in triangle_graph.vertices}


def test_negative_iterations_rejected(triangle_graph):
    import pytest

    with pytest.raises(ValueError):
        community_detection(triangle_graph, max_iterations=-1)


def test_deterministic(medium_rmat):
    a = community_detection(medium_rmat, max_iterations=5)
    b = community_detection(medium_rmat, max_iterations=5)
    assert a == b


def test_communities_refine_components(medium_rmat):
    # Labels never cross component boundaries.
    from repro.algorithms.conn import connected_components

    communities = community_detection(medium_rmat, max_iterations=5)
    components = connected_components(medium_rmat)
    label_to_component = {}
    for vertex, label in communities.items():
        component = components[vertex]
        assert label_to_component.setdefault(label, component) == component


def test_propagation_step_counts_changes(triangle_graph):
    graph = triangle_graph.to_undirected()
    labels = {int(v): int(v) for v in graph.vertices}
    scores = {int(v): 1.0 for v in graph.vertices}
    degrees = graph.degrees()
    new_labels, new_scores, changes = propagation_step(
        graph, labels, scores, degrees, 0.1, 0.1
    )
    assert changes > 0
    assert set(new_labels) == set(labels)
    # A changed vertex pays hop attenuation.
    changed = [v for v in labels if new_labels[v] != labels[v]]
    assert all(new_scores[v] <= 1.0 - 0.1 + 1e-12 for v in changed)


def test_converges_and_stops_early():
    # On a tiny star, propagation converges in well under 50 rounds;
    # max_iterations is just an upper bound.
    star = Graph.from_edges([(0, i) for i in range(1, 6)])
    labels = community_detection(star, max_iterations=50)
    assert len(set(labels.values())) <= 2
