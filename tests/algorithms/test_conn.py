"""Unit tests for the connected-components reference implementation."""

import networkx as nx

from repro.algorithms.conn import connected_components
from repro.graph.graph import Graph


def test_single_component(triangle_graph):
    labels = connected_components(triangle_graph)
    assert labels[0] == labels[1] == labels[2] == labels[3] == 0
    assert labels[4] == 4  # isolated vertex is its own component


def test_two_components(two_components_graph):
    labels = connected_components(two_components_graph)
    assert labels[0] == labels[1] == labels[2] == 0
    assert labels[10] == labels[11] == 10


def test_labels_are_minimum_member():
    graph = Graph.from_edges([(5, 9), (9, 3)])
    labels = connected_components(graph)
    assert set(labels.values()) == {3}


def test_directed_graph_weak_components():
    graph = Graph.from_edges([(0, 1), (2, 1)], directed=True)
    labels = connected_components(graph)
    assert labels[0] == labels[1] == labels[2] == 0


def test_matches_networkx(medium_rmat):
    labels = connected_components(medium_rmat)
    nx_graph = nx.Graph(list(medium_rmat.iter_edges()))
    nx_graph.add_nodes_from(int(v) for v in medium_rmat.vertices)
    for component in nx.connected_components(nx_graph):
        expected_label = min(component)
        for vertex in component:
            assert labels[vertex] == expected_label


def test_empty_graph():
    assert connected_components(Graph([], [])) == {}


def test_all_isolated():
    graph = Graph(range(4), [])
    assert connected_components(graph) == {0: 0, 1: 1, 2: 2, 3: 3}
