"""Unit tests for the RDD substrate."""

import pytest

from repro.core.cost import CostMeter
from repro.platforms.rddgraph.rdd import RDD, RDDContext


@pytest.fixture
def context(cluster_spec):
    return RDDContext(cluster_spec)


class TestCreation:
    def test_parallelize_round_robin(self, context):
        rdd = context.parallelize(range(25))
        assert rdd.count() == 25
        assert sorted(rdd.collect()) == list(range(25))
        assert rdd.partitioner is None

    def test_parallelize_pairs_hash_partitioned(self, context):
        rdd = context.parallelize_pairs([(i, i * 2) for i in range(20)])
        assert rdd.partitioner == "hash"
        assert dict(rdd.collect()) == {i: i * 2 for i in range(20)}


class TestNarrow:
    def test_map(self, context):
        rdd = context.parallelize(range(10)).map(lambda x: x * x)
        assert sorted(rdd.collect()) == [x * x for x in range(10)]
        assert rdd.partitioner is None

    def test_map_values_keeps_partitioner(self, context):
        rdd = context.parallelize_pairs([(1, 2), (3, 4)]).map_values(str)
        assert rdd.partitioner == "hash"
        assert dict(rdd.collect()) == {1: "2", 3: "4"}

    def test_filter(self, context):
        rdd = context.parallelize(range(10)).filter(lambda x: x % 2 == 0)
        assert sorted(rdd.collect()) == [0, 2, 4, 6, 8]

    def test_flat_map(self, context):
        rdd = context.parallelize([1, 2]).flat_map(lambda x: [x] * x)
        assert sorted(rdd.collect()) == [1, 2, 2]


class TestWide:
    def test_reduce_by_key(self, context):
        pairs = [(i % 3, 1) for i in range(30)]
        rdd = context.parallelize_pairs(pairs).reduce_by_key(lambda a, b: a + b)
        assert dict(rdd.collect()) == {0: 10, 1: 10, 2: 10}

    def test_group_by_key(self, context):
        pairs = [(1, "a"), (2, "b"), (1, "c")]
        rdd = context.parallelize_pairs(pairs).group_by_key()
        grouped = dict(rdd.collect())
        assert sorted(grouped[1]) == ["a", "c"]
        assert grouped[2] == ["b"]

    def test_join(self, context):
        left = context.parallelize_pairs([(1, "l1"), (2, "l2")])
        right = context.parallelize_pairs([(1, "r1"), (3, "r3")])
        joined = dict(left.join(right).collect())
        assert joined == {1: ("l1", "r1")}

    def test_left_outer_join(self, context):
        left = context.parallelize_pairs([(1, "l1"), (2, "l2")])
        right = context.parallelize_pairs([(1, "r1")])
        joined = dict(left.left_outer_join(right).collect())
        assert joined == {1: ("l1", "r1"), 2: ("l2", None)}

    def test_join_duplicates_multiply(self, context):
        left = context.parallelize_pairs([(1, "a")])
        right = context.parallelize_pairs([(1, "x"), (1, "y")])
        joined = left.join(right).collect()
        assert sorted(v for _k, v in joined) == [("a", "x"), ("a", "y")]

    def test_distinct(self, context):
        rdd = context.parallelize([1, 2, 2, 3, 3, 3]).distinct()
        assert sorted(rdd.collect()) == [1, 2, 3]

    def test_shuffle_skipped_when_copartitioned(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        context = RDDContext(cluster_spec, meter)
        pairs = context.parallelize_pairs([(i, 1) for i in range(100)])
        before = meter.profile.total_remote_bytes
        pairs.reduce_by_key(lambda a, b: a + b)
        # Already hash-partitioned: the reduce needs no network.
        assert meter.profile.total_remote_bytes == before

    def test_shuffle_charged_when_unpartitioned(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        context = RDDContext(cluster_spec, meter)
        pairs = context.parallelize([(i, 1) for i in range(100)])
        before = meter.profile.total_remote_bytes
        pairs.reduce_by_key(lambda a, b: a + b)
        assert meter.profile.total_remote_bytes > before


class TestMemory:
    def test_materialized_rdds_occupy_memory(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        context = RDDContext(cluster_spec, meter)
        rdd = context.parallelize(range(1000))
        held = sum(meter.memory_in_use(w) for w in range(cluster_spec.num_workers))
        assert held > 0
        rdd.unpersist()
        assert all(
            meter.memory_in_use(w) == 0.0
            for w in range(cluster_spec.num_workers)
        )

    def test_unpersist_idempotent(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        context = RDDContext(cluster_spec, meter)
        rdd = context.parallelize(range(10))
        rdd.unpersist()
        rdd.unpersist()  # no error, no double release
        assert all(
            meter.memory_in_use(w) == 0.0
            for w in range(cluster_spec.num_workers)
        )

    def test_generations_stack_until_unpersisted(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        context = RDDContext(cluster_spec, meter)
        first = context.parallelize(range(1000))
        second = first.map(lambda x: x)
        held = sum(meter.memory_in_use(w) for w in range(cluster_spec.num_workers))
        first_bytes = sum(
            48.0 for _ in range(1000)
        )
        assert held >= 2 * first_bytes * 0.9
        first.unpersist()
        second.unpersist()
