"""Unit tests for the columnar MapReduce data plane.

Covers the :mod:`repro.platforms.mapreduce.batch` primitives —
struct-of-arrays round trips, message gather/combine, repr-order
permutations, the vectorized CRC32 partitioner — and the engine-level
contract: running a batch-capable job over a :class:`RecordBatch`
produces the identical output records, counters, and cost profile as
the scalar path over ``batch.to_pairs()``.
"""

import zlib

import numpy as np
import pytest

from repro.core.cost import ClusterSpec, CostMeter
from repro.platforms.mapreduce.batch import (
    RecordBatch,
    combine_min_messages,
    crc32_rows,
    repr_sort_permutation,
    str_key_workers,
)
from repro.platforms.mapreduce.engine import MapReduceEngine
from repro.platforms.mapreduce.jobs import (
    UNREACHABLE,
    BFSIterationJob,
    ConnIterationJob,
)

ADJACENCY = {
    0: (1, 2),
    1: (0, 2, 3),
    2: (0, 1),
    3: (1,),
    4: (),  # isolated
}


def make_batch(**columns):
    return RecordBatch.from_adjacency(ADJACENCY, columns=columns or None)


class TestRecordBatch:
    def test_round_trip_matches_scalar_records(self):
        batch = make_batch(dist=[0, 1, 1, 2, UNREACHABLE])
        assert batch.to_pairs() == [
            (0, ((1, 2), 0)),
            (1, ((0, 2, 3), 1)),
            (2, ((0, 1), 1)),
            (3, ((1,), 2)),
            (4, ((), UNREACHABLE)),
        ]

    def test_degrees_and_total_adjacency(self):
        batch = make_batch()
        assert batch.degrees.tolist() == [2, 3, 2, 1, 0]
        assert batch.total_adjacency == 8

    def test_adjacency_targets_are_row_positions(self):
        # Keys with gaps: positions must resolve through the key
        # column, not act as vertex ids.
        batch = RecordBatch.from_adjacency({10: (30,), 30: (10,)})
        assert batch.keys.tolist() == [10, 30]
        assert batch.adj_targets.tolist() == [1, 0]

    def test_gather_messages_broadcasts_per_neighbor(self):
        batch = make_batch()
        emitters = np.array([True, False, False, True, False])
        values = np.array([5, 0, 0, 7, 0], dtype=np.int64)
        targets, payloads = batch.gather_messages(emitters, values)
        # Row 0 (degree 2) sends 5 to rows 1, 2; row 3 sends 7 to row 1.
        assert targets.tolist() == [1, 2, 1]
        assert payloads.tolist() == [5, 5, 7]

    def test_gather_messages_no_emitters(self):
        batch = make_batch()
        targets, payloads = batch.gather_messages(
            np.zeros(len(batch), dtype=bool), np.zeros(len(batch), dtype=np.int64)
        )
        assert targets.size == 0 and payloads.size == 0

    def test_reorder_permutes_rows_and_remaps_adjacency(self):
        batch = make_batch(dist=[0, 1, 1, 2, 3])
        permutation = np.array([4, 3, 2, 1, 0])
        reordered = batch.reorder(permutation)
        assert reordered.keys.tolist() == [4, 3, 2, 1, 0]
        assert reordered.columns["dist"].tolist() == [3, 2, 1, 1, 0]
        # Scalar view is the same records, just in the new order.
        assert sorted(reordered.to_pairs()) == sorted(batch.to_pairs())

    def test_reorder_identity_returns_self(self):
        batch = make_batch()
        assert batch.reorder(np.arange(len(batch))) is batch


class TestCombineMinMessages:
    def test_matches_scalar_min_grouping(self):
        rng = np.random.default_rng(3)
        targets = rng.integers(0, 20, size=200)
        payloads = rng.integers(-50, 50, size=200)
        minimum, has_message = combine_min_messages(20, targets, payloads)
        expected = {}
        for row, value in zip(targets.tolist(), payloads.tolist()):
            expected[row] = min(expected.get(row, value), value)
        for row in range(20):
            assert has_message[row] == (row in expected)
            if row in expected:
                assert minimum[row] == expected[row]

    def test_empty(self):
        minimum, has_message = combine_min_messages(
            3, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert minimum.tolist() == [0, 0, 0]
        assert not has_message.any()


class TestReprSortPermutation:
    def test_matches_sorted_by_repr(self):
        keys = np.array([0, 1, 2, 10, 11, 100, 20, 3, 9])
        permutation = repr_sort_permutation(keys)
        assert keys[permutation].tolist() == sorted(
            keys.tolist(), key=repr
        )

    def test_random_keys(self):
        rng = np.random.default_rng(11)
        keys = rng.integers(0, 10**6, size=500)
        assert keys[repr_sort_permutation(keys)].tolist() == sorted(
            keys.tolist(), key=repr
        )


class TestVectorizedCrc32:
    def test_crc32_rows_matches_zlib(self):
        rows = [b"hello", b"", b"a", b"longer-key-material", b"\x00\x01\xff"]
        width = max(len(r) for r in rows)
        matrix = np.zeros((len(rows), width), dtype=np.uint8)
        for i, row in enumerate(rows):
            matrix[i, : len(row)] = bytearray(row)
        lengths = np.array([len(r) for r in rows], dtype=np.int64)
        expected = [zlib.crc32(r) for r in rows]
        assert crc32_rows(matrix, lengths).tolist() == expected

    @pytest.mark.parametrize("num_workers", [1, 3, 10])
    def test_str_key_workers_matches_scalar_partitioner(self, num_workers):
        keys = ["alpha", "beta", "", "vertex-123", "Zz 9~!"]
        workers = str_key_workers(keys, num_workers)
        assert workers is not None
        expected = [
            zlib.crc32(repr(key).encode()) % num_workers for key in keys
        ]
        assert workers.tolist() == expected

    @pytest.mark.parametrize(
        "keys",
        [
            ["fine", "has'quote"],
            ["fine", "back\\slash"],
            ["fine", "unié"],
            ["fine", "tab\there"],
            ["fine", "nul\x00byte"],
            [1, 2],
            [],
        ],
        ids=["quote", "backslash", "non-ascii", "control", "nul", "ints", "empty"],
    )
    def test_str_key_workers_declines_general_repr(self, keys):
        # Anything whose repr is not just '<key>' falls back to the
        # scalar partitioner.
        assert str_key_workers(keys, 4) is None


class TestEngineBatchEquivalence:
    """Job-level contract: batch in == scalar records in, bit for bit."""

    def _engines(self):
        spec = ClusterSpec.paper_distributed()
        bulk_engine = MapReduceEngine(spec, CostMeter(spec), bulk=True)
        scalar_engine = MapReduceEngine(spec, CostMeter(spec), bulk=False)
        return bulk_engine, scalar_engine

    def _profile_key(self, meter):
        profile = meter.profile
        return (
            tuple(
                (
                    record.name,
                    tuple(record.ops_per_worker),
                    record.local_messages,
                    record.remote_messages,
                    record.remote_bytes,
                    record.disk_read_bytes,
                    record.disk_write_bytes,
                    record.seconds,
                )
                for record in profile.rounds
            ),
            profile.simulated_seconds,
            profile.total_messages,
        )

    def _assert_equivalent(self, job_factory, columns):
        bulk_engine, scalar_engine = self._engines()
        batch = make_batch(**columns)
        records = batch.to_pairs()
        bulk_result = bulk_engine.run_job(job_factory(), batch)
        scalar_result = scalar_engine.run_job(job_factory(), records)
        assert isinstance(bulk_result.output, RecordBatch)
        assert bulk_result.output.to_pairs() == scalar_result.output
        assert bulk_result.counters == scalar_result.counters
        assert self._profile_key(bulk_engine.meter) == self._profile_key(
            scalar_engine.meter
        )

    def test_bfs_iteration(self):
        self._assert_equivalent(
            lambda: BFSIterationJob(1),
            {"dist": [0, UNREACHABLE, UNREACHABLE, UNREACHABLE, UNREACHABLE]},
        )

    def test_bfs_iteration_no_frontier(self):
        self._assert_equivalent(
            lambda: BFSIterationJob(5),
            {"dist": [0, 1, 1, 2, UNREACHABLE]},
        )

    def test_conn_iteration(self):
        self._assert_equivalent(
            lambda: ConnIterationJob(1),
            {"label": [0, 1, 2, 3, 4]},
        )

    def test_batch_requires_bulk_engine(self):
        spec = ClusterSpec.paper_distributed()
        engine = MapReduceEngine(spec, CostMeter(spec), bulk=False)
        with pytest.raises(TypeError, match="cannot run columnar"):
            engine.run_job(BFSIterationJob(1), make_batch(dist=[0, 1, 1, 2, 3]))

    def test_batch_requires_batch_capable_job(self):
        from repro.platforms.mapreduce.jobs import StatsTriangleJob

        spec = ClusterSpec.paper_distributed()
        engine = MapReduceEngine(spec, CostMeter(spec), bulk=True)
        with pytest.raises(TypeError, match="cannot run columnar"):
            engine.run_job(StatsTriangleJob(), make_batch())
