"""Unit tests for the Gather-Apply-Scatter engine (GraphLab model)."""

import pytest

from repro.core.cost import CostMeter
from repro.graph.generators import rmat_graph
from repro.graph.graph import Graph
from repro.platforms.gas.engine import GASEngine, GASProgram, edge_partition_of
from repro.platforms.gas.programs import GASBFSProgram, GASConnProgram


class _DegreeProgram(GASProgram):
    """One round: every vertex counts its incident edges via gather."""

    def initial_value(self, vertex, degree):
        """Start at zero."""
        return 0

    def initially_active(self, vertex):
        """Single full round."""
        return True

    def gather(self, vertex, value, neighbor, neighbor_value, neighbor_degree):
        """Each edge contributes one."""
        return 1

    def gather_sum(self, left, right):
        """Count."""
        return left + right

    def apply(self, vertex, value, gathered):
        """Adopt the count."""
        return gathered or 0

    def scatter(self, vertex, old_value, new_value, neighbor):
        """Stop after one round."""
        return False


class _ForeverProgram(_DegreeProgram):
    """Never quiesces (scatter always activates)."""

    def max_rounds(self):
        """Small bound so the engine aborts quickly."""
        return 4

    def scatter(self, vertex, old_value, new_value, neighbor):
        """Always re-activate."""
        return True


@pytest.fixture
def path_graph():
    return Graph.from_edges([(0, 1), (1, 2), (2, 3)])


class TestEnginePlumbing:
    def test_gather_counts_degrees(self, path_graph, cluster_spec):
        engine = GASEngine(path_graph, cluster_spec)
        result = engine.run(_DegreeProgram())
        assert result.values == {0: 1, 1: 2, 2: 2, 3: 1}
        assert result.rounds == 1

    def test_runaway_aborts(self, path_graph, cluster_spec):
        engine = GASEngine(path_graph, cluster_spec)
        with pytest.raises(RuntimeError, match="exceeded"):
            engine.run(_ForeverProgram())

    def test_memory_loaded_and_released(self, cluster_spec):
        graph = rmat_graph(7, seed=2)
        meter = CostMeter(cluster_spec)
        engine = GASEngine(graph, cluster_spec, meter)
        engine.run(_DegreeProgram())
        assert meter.profile.peak_memory > 0
        assert all(
            meter.memory_in_use(w) == 0.0
            for w in range(cluster_spec.num_workers)
        )

    def test_rounds_recorded(self, path_graph, cluster_spec):
        meter = CostMeter(cluster_spec)
        engine = GASEngine(path_graph, cluster_spec, meter)
        engine.run(GASConnProgram())
        assert meter.profile.num_rounds >= 2
        assert meter.profile.rounds[0].name == "gas-0"


class TestVertexCut:
    def test_edge_partition_symmetric_and_stable(self):
        assert edge_partition_of(3, 9, 10) == edge_partition_of(9, 3, 10)
        assert edge_partition_of(3, 9, 10) == edge_partition_of(3, 9, 10)

    def test_replication_factor_bounds(self, cluster_spec):
        graph = rmat_graph(9, seed=5)
        engine = GASEngine(graph, cluster_spec, CostMeter(cluster_spec))
        factor = engine.replication_factor
        assert 1.0 <= factor <= cluster_spec.num_workers

    def test_hubs_replicate_more_than_leaves(self, cluster_spec):
        star = Graph.from_edges([(0, i) for i in range(1, 200)])
        engine = GASEngine(star, cluster_spec, CostMeter(cluster_spec))
        hub_replicas = len(engine.topology[0].replicas)
        leaf_replicas = max(
            len(engine.topology[v].replicas) for v in range(1, 200)
        )
        assert hub_replicas == cluster_spec.num_workers
        assert leaf_replicas <= 2

    def test_hub_network_scales_with_replicas_not_degree(self, cluster_spec):
        # The PowerGraph claim: one partial sum per mirror crosses the
        # network, not one message per edge.
        star = Graph.from_edges([(0, i) for i in range(1, 500)])
        meter = CostMeter(cluster_spec)
        engine = GASEngine(star, cluster_spec, meter)
        engine.run(GASBFSProgram(source=0))
        # Round 1: all 499 leaves gather from the hub; the hub's
        # earlier apply broadcast is per-mirror. Remote messages stay
        # far below the edge count.
        total_messages = sum(
            r.remote_messages + r.local_messages for r in meter.profile.rounds
        )
        assert total_messages < 2 * 499  # not O(edges * rounds)


class TestProgramsOnEdgeCases:
    def test_bfs_single_vertex(self, cluster_spec):
        graph = Graph([7], [])
        engine = GASEngine(graph, cluster_spec)
        result = engine.run(GASBFSProgram(source=7))
        assert result.values == {7: 0}

    def test_conn_two_components(self, cluster_spec, two_components_graph):
        engine = GASEngine(two_components_graph, cluster_spec)
        result = engine.run(GASConnProgram())
        assert result.values == {0: 0, 1: 0, 2: 0, 10: 10, 11: 10}
