"""Unit tests for the column store: compression, tables, SQL, transitive."""

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.graph.generators import rmat_graph
from repro.platforms.columnar.columns import VECTOR_SIZE, CompressedColumn
from repro.platforms.columnar.sql import SQLSyntaxError, VirtuosoEngine
from repro.platforms.columnar.table import ColumnTable, PartitionedHashTable
from repro.platforms.columnar.transitive import transitive_closure


class TestCompressedColumn:
    def test_roundtrip_all_schemes(self):
        cases = {
            "delta": np.arange(5000),
            "rle": np.repeat([7, 9, 7], 400),
            "dict": np.tile([3, 5, 8], 500),
            "packed": np.random.default_rng(1).integers(0, 1000, 700),
        }
        for expected_scheme, values in cases.items():
            column = CompressedColumn(values)
            assert column.scheme == expected_scheme, expected_scheme
            assert np.array_equal(column.to_numpy(), values)

    def test_compression_saves_space(self):
        sorted_values = np.arange(10000)
        column = CompressedColumn(sorted_values)
        assert column.compressed_bytes < 0.25 * sorted_values.nbytes

    def test_vector_access(self):
        values = np.arange(3000)
        column = CompressedColumn(values)
        assert column.num_vectors == 3
        assert np.array_equal(column.vector(0), values[:VECTOR_SIZE])
        assert np.array_equal(column.vector(2), values[2 * VECTOR_SIZE:])
        with pytest.raises(IndexError):
            column.vector(3)

    def test_slice(self):
        column = CompressedColumn(np.arange(100))
        assert np.array_equal(column.slice(10, 20), np.arange(10, 20))
        with pytest.raises(IndexError):
            column.slice(90, 110)

    def test_decompress_cost_positive(self):
        column = CompressedColumn(np.arange(100))
        assert column.decompress_cost(10) > 0

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            CompressedColumn([-1, 2])

    def test_empty_column(self):
        column = CompressedColumn([])
        assert len(column) == 0
        assert column.to_numpy().size == 0


class TestColumnTable:
    def test_edge_table_sorted_by_source(self):
        table = ColumnTable.edge_table([(5, 1), (2, 9), (2, 3)])
        sources = table.column("spe_from").to_numpy()
        assert list(sources) == [2, 2, 5]

    def test_key_range(self):
        table = ColumnTable.edge_table([(1, 10), (2, 20), (2, 21), (4, 40)])
        assert table.key_range("spe_from", 2) == (1, 3)
        assert table.key_range("spe_from", 3) == (3, 3)  # empty range

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ColumnTable(
                "bad",
                {
                    "a": CompressedColumn([1, 2]),
                    "b": CompressedColumn([1]),
                },
            )

    def test_unknown_column(self):
        table = ColumnTable.edge_table([(0, 1)])
        with pytest.raises(KeyError):
            table.column("nope")


class TestPartitionedHashTable:
    def test_split_covers_all_values(self):
        table = PartitionedHashTable(8)
        values = np.arange(1000)
        parts = table.split(values)
        assert sum(len(p) for p in parts) == 1000
        for index, part in enumerate(parts):
            assert all(table.partition_of(v) == index for v in part)

    def test_insert_new_deduplicates(self):
        table = PartitionedHashTable(4)
        values = np.array([8, 8, 12])
        partition = table.partition_of(8)
        # Only test values in one partition.
        mine = values[[table.partition_of(v) == partition for v in values]]
        fresh = table.insert_new(partition, mine)
        again = table.insert_new(partition, mine)
        assert len(set(fresh.tolist())) == len(fresh)
        assert len(again) == 0

    def test_len_and_contains(self):
        table = PartitionedHashTable(4)
        partition = table.partition_of(42)
        table.insert_new(partition, np.array([42]))
        assert 42 in table
        assert 43 not in table
        assert len(table) == 1


def _symmetric_arcs(graph):
    arcs = []
    for s, t in graph.iter_edges():
        arcs.append((s, t))
        arcs.append((t, s))
    return arcs


class TestTransitive:
    def test_counts_match_bfs_reachability(self):
        graph = rmat_graph(8, edge_factor=6, seed=5)
        table = ColumnTable.edge_table(_symmetric_arcs(graph))
        start = int(graph.vertices[0])
        result = transitive_closure(table, start, threads=8)
        reachable = sum(1 for d in bfs(graph, start).values() if d >= 0)
        assert result.count == reachable

    def test_profile_counts(self):
        table = ColumnTable.edge_table([(0, 1), (1, 0), (1, 2), (2, 1)])
        result = transitive_closure(table, 0, threads=2)
        assert result.random_lookups >= 3
        assert result.endpoints_visited == result.random_lookups + 1
        assert result.profile.total > 0
        shares = result.profile.shares()
        assert shares["hash"] + shares["exchange"] + shares["column"] == (
            pytest.approx(1.0)
        )

    def test_isolated_start(self):
        table = ColumnTable.edge_table([(1, 2), (2, 1)])
        result = transitive_closure(table, 0)
        assert result.count == 0
        assert result.endpoints_visited == 0

    def test_mteps_and_cpu_percent(self):
        graph = rmat_graph(8, edge_factor=6, seed=6)
        table = ColumnTable.edge_table(_symmetric_arcs(graph))
        result = transitive_closure(table, int(graph.vertices[0]), threads=24)
        assert result.mteps > 0
        assert 0 < result.cpu_percent <= 2400

    def test_invalid_threads(self):
        table = ColumnTable.edge_table([(0, 1)])
        with pytest.raises(ValueError):
            transitive_closure(table, 0, threads=0)


class TestSQL:
    @pytest.fixture
    def engine(self):
        engine = VirtuosoEngine(threads=4)
        engine.create_edge_table(
            "sp_edge", [(0, 1), (1, 0), (1, 2), (2, 1), (5, 6), (6, 5)]
        )
        return engine

    def test_paper_query(self, engine):
        result = engine.execute(
            """select count (*) from (select spe_to from
            (select transitive t_in (1) t_out (2) t_distinct
            spe_from, spe_to from sp_edge) derived_table_1
            where spe_from = 0) derived_table_2;"""
        )
        assert result.rows == [(3,)]  # {0, 1, 2} reachable
        assert result.transitive is not None
        assert result.transitive.random_lookups > 0

    def test_direct_count_over_transitive(self, engine):
        result = engine.execute(
            "select count(*) from (select transitive t_in (1) t_out (2) "
            "t_distinct spe_from, spe_to from sp_edge) t where spe_from = 5"
        )
        assert result.rows == [(2,)]  # {5, 6}

    def test_count_table(self, engine):
        assert engine.execute("select count(*) from sp_edge").rows == [(6,)]

    def test_point_lookup(self, engine):
        result = engine.execute("select spe_to from sp_edge where spe_from = 1")
        assert sorted(result.rows) == [(0,), (2,)]

    def test_projection_with_limit(self, engine):
        result = engine.execute("select spe_from, spe_to from sp_edge limit 2")
        assert len(result.rows) == 2
        assert result.columns == ["spe_from", "spe_to"]

    def test_syntax_errors(self, engine):
        for bad in [
            "insert into sp_edge values (1, 2)",
            "select count(*) from",
            "select count(*) from sp_edge where spe_from = 'zero'",
            "select transitive t_in (1) t_out (2) t_distinct a, b from sp_edge",
        ]:
            with pytest.raises(SQLSyntaxError):
                engine.execute(bad)

    def test_unknown_table(self, engine):
        with pytest.raises(SQLSyntaxError, match="no such table"):
            engine.execute("select count(*) from missing")

    def test_transitive_requires_binding(self, engine):
        with pytest.raises(SQLSyntaxError, match="start binding"):
            engine.execute(
                "select count(*) from (select transitive t_in (1) t_out (2) "
                "t_distinct spe_from, spe_to from sp_edge) t"
            )

    def test_binding_must_be_input_column(self, engine):
        with pytest.raises(SQLSyntaxError, match="input column"):
            engine.execute(
                "select count(*) from (select transitive t_in (1) t_out (2) "
                "t_distinct spe_from, spe_to from sp_edge) t where spe_to = 0"
            )
