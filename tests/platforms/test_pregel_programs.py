"""Direct unit tests for the Pregel vertex programs.

The equivalence suite proves outputs match the references; these tests
pin the *mechanics* of each program — combiners, supersteps, message
volumes, aggregator usage — that the cost model depends on.
"""

import pytest

from repro.core.cost import CostMeter
from repro.graph.graph import Graph
from repro.platforms.pregel.engine import PregelEngine
from repro.platforms.pregel.programs import (
    BFSProgram,
    CDProgram,
    ConnProgram,
    EvoProgram,
    StatsProgram,
)


@pytest.fixture
def path_graph():
    return Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])


class TestBFSProgram:
    def test_supersteps_equal_eccentricity_plus_two(self, path_graph, cluster_spec):
        engine = PregelEngine(path_graph, cluster_spec)
        result = engine.run(BFSProgram(source=0))
        # Distances 0..4: four frontier expansions, one superstep in
        # which the last vertex's redundant message is digested, and
        # one that finds the frontier empty.
        assert result.supersteps == 6

    def test_min_combiner_used(self):
        assert BFSProgram(source=0).combiner() is min

    def test_unreached_stay_unreachable(self, cluster_spec):
        graph = Graph.from_edges([(0, 1)], vertices=[9])
        engine = PregelEngine(graph, cluster_spec)
        result = engine.run(BFSProgram(source=0))
        assert result.values[9] == -1


class TestConnProgram:
    def test_frontier_shrinks(self, cluster_spec, path_graph):
        meter = CostMeter(cluster_spec)
        engine = PregelEngine(path_graph, cluster_spec, meter)
        engine.run(ConnProgram())
        active = [r.active_vertices for r in meter.profile.rounds[1:]]
        # Label propagation: all active at first, then only improvers.
        assert active[0] == path_graph.num_vertices
        assert active[-1] < active[0]

    def test_messages_only_on_improvement(self, cluster_spec):
        # A star centered at the minimum: converges in 2 supersteps.
        star = Graph.from_edges([(0, i) for i in range(1, 6)])
        engine = PregelEngine(star, cluster_spec)
        result = engine.run(ConnProgram())
        assert result.supersteps <= 3


class TestCDProgram:
    def test_runs_exactly_max_iterations_rounds(self, cluster_spec, path_graph):
        engine = PregelEngine(path_graph, cluster_spec)
        result = engine.run(CDProgram(max_iterations=4))
        # Supersteps: initial send + up to 4 propagation + final halt.
        assert result.supersteps <= 6

    def test_zero_iterations_keeps_own_labels(self, cluster_spec, path_graph):
        engine = PregelEngine(path_graph, cluster_spec)
        result = engine.run(CDProgram(max_iterations=0))
        assert {v: val[0] for v, val in result.values.items()} == {
            int(v): int(v) for v in path_graph.vertices
        }

    def test_early_stop_on_convergence(self, cluster_spec):
        # A triangle collapses to one label after two propagation
        # steps; the change aggregator then stops the run well before
        # the 50-iteration cap.
        graph = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        engine = PregelEngine(graph, cluster_spec)
        result = engine.run(CDProgram(max_iterations=50))
        assert result.supersteps < 10

    def test_dyads_oscillate_to_the_cap(self, cluster_spec):
        # Known synchronous-LPA behaviour: two-vertex components swap
        # labels forever, so the iteration cap is what stops them —
        # and every platform reproduces the same final state (the
        # reference oscillates identically).
        graph = Graph.from_edges([(0, 1), (10, 11)])
        engine = PregelEngine(graph, cluster_spec)
        result = engine.run(CDProgram(max_iterations=20))
        assert result.supersteps >= 20


class TestStatsProgram:
    def test_aggregators(self, cluster_spec):
        triangle = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        engine = PregelEngine(triangle, cluster_spec)
        result = engine.run(StatsProgram())
        assert result.aggregated["vertices"] == 3
        assert result.aggregated["edges"] == 6  # both arc directions
        assert result.aggregated["clustering_sum"] == pytest.approx(3.0)

    def test_message_bytes_scale_with_degree(self):
        program = StatsProgram()
        assert program.message_size((1, 2, 3)) == 24.0
        assert program.message_size((1,)) == 8.0

    def test_two_supersteps(self, cluster_spec, path_graph):
        engine = PregelEngine(path_graph, cluster_spec)
        result = engine.run(StatsProgram())
        assert result.supersteps == 2


class TestEvoProgram:
    def test_ambassadors_burn_at_depth_zero(self, cluster_spec, path_graph):
        program = EvoProgram(
            ambassadors={100: 2}, p_forward=0.0, max_hops=2, seed=1
        )
        engine = PregelEngine(path_graph, cluster_spec)
        result = engine.run(program)
        # p=0: no spreading, only the ambassador burns.
        burned = {v for v, arrivals in result.values.items() if arrivals}
        assert burned == {2}

    def test_max_hops_bounds_supersteps(self, cluster_spec, path_graph):
        program = EvoProgram(
            ambassadors={100: 0}, p_forward=0.9, max_hops=2, seed=1
        )
        engine = PregelEngine(path_graph, cluster_spec)
        result = engine.run(program)
        assert result.supersteps <= program.max_supersteps()
        # Nothing beyond 2 hops from the ambassador burns.
        burned = {v for v, arrivals in result.values.items() if arrivals}
        assert burned <= {0, 1, 2}
