"""Property-based tests for the column store (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platforms.columnar.columns import CompressedColumn
from repro.platforms.columnar.rdf import RDFStore
from repro.platforms.columnar.table import PartitionedHashTable

int_arrays = st.lists(st.integers(0, 10**6), min_size=0, max_size=300)


@given(int_arrays)
@settings(max_examples=80, deadline=None)
def test_compression_roundtrip(values):
    column = CompressedColumn(values)
    assert np.array_equal(column.to_numpy(), np.asarray(values, dtype=np.int64))
    assert len(column) == len(values)


@given(int_arrays)
@settings(max_examples=50, deadline=None)
def test_compression_never_explodes(values):
    column = CompressedColumn(values)
    # The chosen scheme is never (much) worse than plain 8-byte ints.
    assert column.compressed_bytes <= 8 * max(len(values), 1) + 16


@given(int_arrays, st.integers(0, 299), st.integers(0, 299))
@settings(max_examples=50, deadline=None)
def test_slice_matches_plain_indexing(values, start, stop):
    if not values:
        return
    start = start % len(values)
    stop = start + (stop % (len(values) - start + 1))
    column = CompressedColumn(values)
    assert np.array_equal(
        column.slice(start, stop),
        np.asarray(values[start:stop], dtype=np.int64),
    )


@given(st.lists(st.integers(0, 10**9), min_size=0, max_size=500),
       st.integers(1, 32))
@settings(max_examples=50, deadline=None)
def test_partitioned_hash_table_split_partition(values, partitions):
    table = PartitionedHashTable(partitions)
    array = np.asarray(values, dtype=np.int64)
    split = table.split(array)
    assert sum(len(part) for part in split) == len(values)
    for index, part in enumerate(split):
        assert all(table.partition_of(v) == index for v in part.tolist())


triples = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c", "d", "e"]),
        st.sampled_from(["p", "q"]),
        st.sampled_from(["a", "b", "c", "d", "e"]),
    ),
    min_size=0,
    max_size=40,
)


@given(triples)
@settings(max_examples=50, deadline=None)
def test_rdf_match_equals_naive_filter(triple_list):
    store = RDFStore(triple_list)
    unique = sorted(set(triple_list))
    for subject in (None, "a", "zz"):
        for predicate in (None, "p"):
            expected = [
                t
                for t in unique
                if (subject is None or t[0] == subject)
                and (predicate is None or t[1] == predicate)
            ]
            got = sorted(store.match(subject=subject, predicate=predicate))
            assert got == expected


@given(triples)
@settings(max_examples=40, deadline=None)
def test_rdf_transitive_closure_sound(triple_list):
    store = RDFStore(triple_list)
    reached = store.transitive_objects("a", "p")
    # Soundness: everything reached is reachable by a naive BFS.
    adjacency: dict[str, set[str]] = {}
    for s, p, o in triple_list:
        if p == "p":
            adjacency.setdefault(s, set()).add(o)
    expected: set[str] = set()
    frontier = ["a"]
    visited = {"a"}
    while frontier:
        current = frontier.pop()
        for target in adjacency.get(current, ()):
            expected.add(target)
            if target not in visited:
                visited.add(target)
                frontier.append(target)
    assert reached == expected
