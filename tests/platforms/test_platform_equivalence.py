"""Integration: every platform reproduces the reference outputs.

This is the Output Validator's contract exercised across the whole
matrix — the reproduction's strongest correctness guarantee: eight
radically different execution models (BSP, MapReduce, RDD dataflow,
record-store traversal, GAS vertex cut, GPU dense kernels, columnar
stored procedures, dataflow delta iterations) compute byte-identical
results on every algorithm and several graph shapes (per-vertex
epsilon for PageRank's platform-order float sums; SSSP cells run on
a weighted twin of the graph).
"""

import pytest

from repro.core.cost import ClusterSpec
from repro.core.validation import OutputValidator
from repro.core.workload import Algorithm, AlgorithmParams
from repro.graph.generators import barabasi_albert_graph, rmat_graph
from repro.graph.graph import Graph
from repro.platforms.columnar.driver import VirtuosoPlatform
from repro.platforms.dataflow.driver import StratospherePlatform
from repro.platforms.gas.driver import GraphLabPlatform
from repro.platforms.gpu.driver import MedusaPlatform
from repro.platforms.graphdb.driver import Neo4jPlatform
from repro.platforms.mapreduce.driver import MapReducePlatform
from repro.platforms.pregel.driver import GiraphPlatform
from repro.platforms.rddgraph.driver import GraphXPlatform

PLATFORM_FACTORIES = {
    "giraph": lambda: GiraphPlatform(ClusterSpec.paper_distributed()),
    "mapreduce": lambda: MapReducePlatform(ClusterSpec.paper_distributed()),
    "graphx": lambda: GraphXPlatform(ClusterSpec.paper_distributed()),
    "neo4j": lambda: Neo4jPlatform(),
    "graphlab": lambda: GraphLabPlatform(ClusterSpec.paper_distributed()),
    "virtuoso": lambda: VirtuosoPlatform(),
    "medusa": lambda: MedusaPlatform(),
    "stratosphere": lambda: StratospherePlatform(ClusterSpec.paper_distributed()),
}

GRAPHS = {
    "rmat": rmat_graph(8, edge_factor=8, seed=21),
    "scale-free": barabasi_albert_graph(300, 3, seed=4),
    "disconnected": Graph.from_edges(
        [(0, 1), (1, 2), (2, 0), (10, 11), (11, 12)], vertices=[50]
    ),
}

PARAMS = AlgorithmParams(evo_new_vertices=25, cd_max_iterations=8)


def _graph_for(name: str, algorithm: Algorithm) -> Graph:
    """The test graph, weighted when the algorithm requires it."""
    graph = GRAPHS[name]
    if algorithm is Algorithm.SSSP:
        return graph.with_uniform_weights(seed=5)
    return graph


@pytest.fixture(scope="module")
def validator():
    return OutputValidator()


@pytest.mark.parametrize("platform_name", sorted(PLATFORM_FACTORIES))
@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("algorithm", list(Algorithm), ids=lambda a: a.value)
def test_platform_matches_reference(platform_name, graph_name, algorithm, validator):
    platform = PLATFORM_FACTORIES[platform_name]()
    graph = _graph_for(graph_name, algorithm)
    handle = platform.upload_graph(graph_name, graph)
    try:
        run = platform.run_algorithm(handle, algorithm, PARAMS)
        validator.validate(graph, algorithm, PARAMS, run.output)
        assert run.simulated_seconds > 0
        assert run.profile.num_rounds >= 1
    finally:
        platform.delete_graph(handle)


@pytest.mark.parametrize("algorithm", list(Algorithm), ids=lambda a: a.value)
def test_platforms_agree_with_each_other(algorithm):
    graph = _graph_for("rmat", algorithm)
    outputs = []
    for factory in PLATFORM_FACTORIES.values():
        platform = factory()
        handle = platform.upload_graph("g", graph)
        try:
            outputs.append(platform.run_algorithm(handle, algorithm, PARAMS).output)
        finally:
            platform.delete_graph(handle)
    first = outputs[0]
    if algorithm is Algorithm.STATS:
        # Mean clustering is a float sum whose rounding depends on
        # the platform's summation order; counts must match exactly.
        for output in outputs[1:]:
            assert output.num_vertices == first.num_vertices
            assert output.num_edges == first.num_edges
            assert output.mean_local_clustering == pytest.approx(
                first.mean_local_clustering, abs=1e-9
            )
    elif algorithm is Algorithm.PR:
        # Ranks are per-vertex float sums — same summation-order
        # caveat as STATS, so per-vertex epsilon, not equality.
        for output in outputs[1:]:
            assert set(output) == set(first)
            for vertex, rank in first.items():
                assert output[vertex] == pytest.approx(rank, abs=1e-9)
    else:
        assert all(output == first for output in outputs[1:])
