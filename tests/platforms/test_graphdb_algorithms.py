"""Direct unit tests for the graph-database algorithm procedures."""

import pytest

from repro.algorithms import (
    bfs,
    community_detection,
    connected_components,
    forest_fire_links,
    stats,
)
from repro.core.cost import ClusterSpec, CostMeter
from repro.graph.generators import rmat_graph
from repro.platforms.graphdb.algorithms import (
    db_bfs,
    db_cd,
    db_conn,
    db_evo,
    db_stats,
)
from repro.platforms.graphdb.store import GraphStore


@pytest.fixture(scope="module")
def fixture_graph():
    return rmat_graph(8, edge_factor=6, seed=19)


@pytest.fixture
def store(fixture_graph):
    meter = CostMeter(ClusterSpec.paper_single_node())
    db = GraphStore(meter)
    undirected = fixture_graph.to_undirected()
    for vertex in undirected.vertices:
        db.create_node(int(vertex))
    for source, target in undirected.iter_edges():
        db.create_relationship(source, target)
    return db


def test_db_bfs_matches_reference(store, fixture_graph):
    source = int(fixture_graph.vertices[0])
    assert db_bfs(store, source) == bfs(fixture_graph, source)


def test_db_conn_matches_reference(store, fixture_graph):
    assert db_conn(store) == connected_components(fixture_graph)


def test_db_cd_matches_reference(store, fixture_graph):
    assert db_cd(store, 8, 0.1, 0.1) == community_detection(
        fixture_graph, max_iterations=8
    )


def test_db_stats_matches_reference(store, fixture_graph):
    result = db_stats(store)
    reference = stats(fixture_graph)
    assert result.num_vertices == reference.num_vertices
    assert result.num_edges == reference.num_edges
    assert result.mean_local_clustering == pytest.approx(
        reference.mean_local_clustering, abs=1e-12
    )


def test_db_evo_matches_reference(store, fixture_graph):
    assert db_evo(store, 12, 0.3, 2, seed=5) == forest_fire_links(
        fixture_graph, 12, p_forward=0.3, max_hops=2, seed=5
    )


def test_db_cd_zero_iterations(store, fixture_graph):
    labels = db_cd(store, 0, 0.1, 0.1)
    assert labels == {int(v): int(v) for v in fixture_graph.vertices}
