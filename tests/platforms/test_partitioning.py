"""Unit tests for graph-partitioning strategies."""

import pytest

from repro.core.cost import CostMeter
from repro.datagen.datagen import Datagen, DatagenConfig
from repro.graph.generators import rmat_graph
from repro.graph.graph import Graph
from repro.platforms.pregel.engine import PregelEngine
from repro.platforms.pregel.partitioning import (
    edge_cut_fraction,
    greedy_partition,
    hash_partition,
    partition_balance,
    range_partition,
)
from repro.platforms.pregel.programs import ConnProgram


@pytest.fixture(scope="module")
def social_graph():
    # A community-rich Datagen graph whose ids correlate with structure.
    return Datagen(DatagenConfig(num_persons=2000, decay=0.8, seed=41)).generate()


class TestStrategies:
    @pytest.mark.parametrize(
        "strategy", [hash_partition, range_partition, greedy_partition]
    )
    def test_covers_all_vertices_in_range(self, strategy, social_graph):
        placement = strategy(social_graph, 10)
        assert set(placement) == {int(v) for v in social_graph.vertices}
        assert all(0 <= worker < 10 for worker in placement.values())

    @pytest.mark.parametrize(
        "strategy", [hash_partition, range_partition, greedy_partition]
    )
    def test_reasonably_balanced(self, strategy, social_graph):
        placement = strategy(social_graph, 10)
        assert partition_balance(placement, 10) < 1.3

    def test_validation(self, social_graph):
        with pytest.raises(ValueError):
            hash_partition(social_graph, 0)
        with pytest.raises(ValueError):
            greedy_partition(social_graph, 4, slack=0.5)

    def test_greedy_cuts_fewer_edges_than_hash(self, social_graph):
        hash_cut = edge_cut_fraction(
            social_graph, hash_partition(social_graph, 10)
        )
        greedy_cut = edge_cut_fraction(
            social_graph, greedy_partition(social_graph, 10)
        )
        # Dense social graphs are expander-like; the gain is real but
        # modest (no good cut exists).
        assert greedy_cut < 0.95 * hash_cut

    def test_greedy_dominates_on_community_graphs(self):
        from repro.graph.generators import connected_caveman_graph

        caveman = connected_caveman_graph(40, 12)
        hash_cut = edge_cut_fraction(caveman, hash_partition(caveman, 10))
        greedy_cut = edge_cut_fraction(caveman, greedy_partition(caveman, 10))
        # Communities fit whole partitions: an order of magnitude.
        assert greedy_cut < 0.25 * hash_cut

    def test_single_worker_cut_is_zero(self, social_graph):
        placement = greedy_partition(social_graph, 1)
        assert edge_cut_fraction(social_graph, placement) == 0.0
        assert partition_balance(placement, 1) == 1.0


class TestMetrics:
    def test_edge_cut_fraction(self):
        graph = Graph.from_edges([(0, 1), (1, 2)])
        split = {0: 0, 1: 0, 2: 1}
        assert edge_cut_fraction(graph, split) == pytest.approx(0.5)

    def test_empty_graph(self):
        graph = Graph([0, 1], [])
        assert edge_cut_fraction(graph, {0: 0, 1: 1}) == 0.0


class TestEngineIntegration:
    def test_custom_partition_accepted(self, cluster_spec, social_graph):
        placement = greedy_partition(social_graph, cluster_spec.num_workers)
        engine = PregelEngine(social_graph, cluster_spec, partition=placement)
        result = engine.run(ConnProgram())
        # Correctness is partition-independent.
        baseline = PregelEngine(social_graph, cluster_spec).run(ConnProgram())
        assert result.values == baseline.values

    def test_better_partition_reduces_network(self, cluster_spec, social_graph):
        def remote_bytes(placement):
            meter = CostMeter(cluster_spec)
            PregelEngine(
                social_graph, cluster_spec, meter, partition=placement
            ).run(ConnProgram())
            return meter.profile.total_remote_bytes

        hash_bytes = remote_bytes(hash_partition(social_graph, 10))
        greedy_bytes = remote_bytes(greedy_partition(social_graph, 10))
        assert greedy_bytes < hash_bytes

    def test_incomplete_partition_rejected(self, cluster_spec):
        graph = rmat_graph(6, seed=1)
        with pytest.raises(ValueError, match="misses"):
            PregelEngine(graph, cluster_spec, partition={0: 0})

    def test_out_of_range_worker_rejected(self, cluster_spec):
        graph = Graph.from_edges([(0, 1)])
        with pytest.raises(ValueError, match="unknown workers"):
            PregelEngine(
                graph, cluster_spec, partition={0: 0, 1: 99}
            )
