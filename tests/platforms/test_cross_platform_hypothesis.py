"""Property-based cross-platform agreement (hypothesis).

For arbitrary small graphs, structurally different execution models
(BSP message passing, GAS over a vertex cut, record-store traversal,
vectored column-store procedures) must compute identical BFS and CONN
outputs — the Output Validator contract, fuzzed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import bfs, connected_components
from repro.core.cost import ClusterSpec
from repro.core.workload import Algorithm, AlgorithmParams
from repro.graph.graph import Graph
from repro.platforms.columnar.driver import VirtuosoPlatform
from repro.platforms.gas.driver import GraphLabPlatform
from repro.platforms.graphdb.driver import Neo4jPlatform
from repro.platforms.pregel.driver import GiraphPlatform

edge_lists = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)),
    min_size=1,
    max_size=40,
)


def _platforms():
    spec = ClusterSpec.paper_distributed()
    return [
        GiraphPlatform(spec),
        GraphLabPlatform(spec),
        Neo4jPlatform(),
        VirtuosoPlatform(),
    ]


@given(edge_lists)
@settings(max_examples=25, deadline=None)
def test_bfs_agreement_on_arbitrary_graphs(edges):
    graph = Graph.from_edges(edges)
    if graph.num_vertices == 0:
        return
    source = int(graph.vertices[0])
    expected = bfs(graph, source)
    params = AlgorithmParams(bfs_source=source)
    for platform in _platforms():
        handle = platform.upload_graph("g", graph)
        try:
            run = platform.run_algorithm(handle, Algorithm.BFS, params)
            assert run.output == expected, platform.name
        finally:
            platform.delete_graph(handle)


@given(edge_lists)
@settings(max_examples=25, deadline=None)
def test_conn_agreement_on_arbitrary_graphs(edges):
    graph = Graph.from_edges(edges)
    if graph.num_vertices == 0:
        return
    expected = connected_components(graph)
    for platform in _platforms():
        handle = platform.upload_graph("g", graph)
        try:
            run = platform.run_algorithm(handle, Algorithm.CONN)
            assert run.output == expected, platform.name
        finally:
            platform.delete_graph(handle)
