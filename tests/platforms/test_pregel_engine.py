"""Unit tests for the Pregel BSP engine."""

import pytest

from repro.core.cost import CostMeter
from repro.graph.graph import Graph
from repro.platforms.pregel.engine import (
    PregelEngine,
    VertexProgram,
    partition_of,
)


class _EchoProgram(VertexProgram):
    """Each vertex stores the count of messages it ever received."""

    def initial_value(self, vertex, ctx):
        """Start at zero received messages."""
        return 0

    def compute(self, ctx, messages):
        """Send one message per neighbor in superstep 0, then count."""
        if ctx.superstep == 0:
            ctx.send_to_neighbors("ping")
        else:
            ctx.value += len(messages)
        ctx.vote_to_halt()


class _AggregatingProgram(VertexProgram):
    """Publishes the vertex count through an aggregator."""

    def initial_value(self, vertex, ctx):
        """No per-vertex state needed."""
        return None

    def persistent_aggregators(self):
        """Keep the count across supersteps."""
        return {"count"}

    def compute(self, ctx, messages):
        """Aggregate once, then halt."""
        if ctx.superstep == 0:
            ctx.aggregate("count", 1)
        ctx.vote_to_halt()


class _CombinerProgram(VertexProgram):
    """Min-combines messages; vertex 0 receives from everyone."""

    def initial_value(self, vertex, ctx):
        """Value holds the minimum received message."""
        return None

    def combiner(self):
        """Min combiner."""
        return min

    def compute(self, ctx, messages):
        """All vertices message vertex 0 in superstep 0."""
        if ctx.superstep == 0:
            if ctx.vertex != 0:
                ctx.send(0, ctx.vertex)
        elif messages:
            ctx.value = min(messages)
        ctx.vote_to_halt()


class _RunawayProgram(VertexProgram):
    """Never halts (each vertex keeps messaging itself)."""

    def initial_value(self, vertex, ctx):
        """Unused."""
        return None

    def max_supersteps(self):
        """Small bound so the engine aborts quickly."""
        return 5

    def compute(self, ctx, messages):
        """Keep self-messaging forever."""
        ctx.send(ctx.vertex, "again")
        ctx.vote_to_halt()


@pytest.fixture
def line_graph():
    return Graph.from_edges([(0, 1), (1, 2), (2, 3)])


class TestExecution:
    def test_message_delivery(self, line_graph, cluster_spec):
        engine = PregelEngine(line_graph, cluster_spec)
        result = engine.run(_EchoProgram())
        # Messages received equal each vertex's degree.
        assert result.values == {0: 1, 1: 2, 2: 2, 3: 1}

    def test_supersteps_counted(self, line_graph, cluster_spec):
        engine = PregelEngine(line_graph, cluster_spec)
        result = engine.run(_EchoProgram())
        # Superstep 0 sends, superstep 1 digests, superstep 2 finds
        # no messages and the computation stops.
        assert result.supersteps == 2

    def test_persistent_aggregator(self, line_graph, cluster_spec):
        engine = PregelEngine(line_graph, cluster_spec)
        result = engine.run(_AggregatingProgram())
        assert result.aggregated["count"] == 4

    def test_combiner_collapses_messages(self, cluster_spec):
        star = Graph.from_edges([(0, i) for i in range(1, 30)])
        engine = PregelEngine(star, cluster_spec)
        result = engine.run(_CombinerProgram())
        assert result.values[0] == 1
        profile = engine.meter.profile
        sends = profile.rounds[1]  # init, superstep-0, ...
        # At most one message per (worker, target) pair crossed.
        assert (
            sends.local_messages + sends.remote_messages
            <= cluster_spec.num_workers
        )

    def test_runaway_program_aborts(self, line_graph, cluster_spec):
        engine = PregelEngine(line_graph, cluster_spec)
        with pytest.raises(RuntimeError, match="exceeded"):
            engine.run(_RunawayProgram())


class TestCostAccounting:
    def test_rounds_recorded(self, line_graph, cluster_spec):
        meter = CostMeter(cluster_spec)
        engine = PregelEngine(line_graph, cluster_spec, meter)
        engine.run(_EchoProgram())
        names = [r.name for r in meter.profile.rounds]
        assert names[0] == "init"
        assert names[1] == "superstep-0"

    def test_memory_loaded_and_released(self, line_graph, cluster_spec):
        meter = CostMeter(cluster_spec)
        engine = PregelEngine(line_graph, cluster_spec, meter)
        engine.run(_EchoProgram())
        assert meter.profile.peak_memory > 0
        for worker in range(cluster_spec.num_workers):
            assert meter.memory_in_use(worker) == 0.0

    def test_remote_vs_local_messages(self, cluster_spec):
        # With 10 workers and hash partitioning, most star messages
        # cross worker boundaries.
        star = Graph.from_edges([(0, i) for i in range(1, 50)])
        meter = CostMeter(cluster_spec)
        engine = PregelEngine(star, cluster_spec, meter)
        engine.run(_EchoProgram())
        assert meter.profile.total_remote_bytes > 0


class TestPartitioning:
    def test_partition_stable(self):
        assert partition_of(123, 10) == partition_of(123, 10)

    def test_partition_in_range(self):
        assert all(0 <= partition_of(v, 7) < 7 for v in range(1000))

    def test_partition_spread(self):
        counts = [0] * 10
        for vertex in range(10000):
            counts[partition_of(vertex, 10)] += 1
        assert max(counts) < 2 * min(counts)
