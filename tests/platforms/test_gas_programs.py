"""Direct unit tests for the GAS program mechanics."""

import pytest

from repro.core.cost import CostMeter
from repro.graph.graph import Graph
from repro.platforms.gas.engine import GASEngine
from repro.platforms.gas.programs import (
    GASBFSProgram,
    GASCDProgram,
    GASConnProgram,
    GASEvoProgram,
    GASStatsProgram,
)


@pytest.fixture
def triangle_with_tail():
    return Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])


def _adjacency(graph):
    undirected = graph.to_undirected()
    return {
        int(v): tuple(int(u) for u in undirected.neighbors(int(v)))
        for v in undirected.vertices
    }


class TestBFSMechanics:
    def test_source_bootstraps_in_apply(self):
        program = GASBFSProgram(source=5)
        assert program.initial_value(5, 3) == -1
        assert program.apply(5, -1, None) == 0

    def test_gather_ignores_unreached_neighbors(self):
        program = GASBFSProgram(source=0)
        assert program.gather(1, -1, 2, -1, 4) is None
        assert program.gather(1, -1, 0, 0, 4) == 1

    def test_scatter_only_on_change(self):
        program = GASBFSProgram(source=0)
        assert program.scatter(1, -1, 2, 5)
        assert not program.scatter(1, 2, 2, 5)


class TestConnMechanics:
    def test_apply_keeps_minimum(self):
        program = GASConnProgram()
        assert program.apply(7, 7, 3) == 3
        assert program.apply(7, 3, 5) == 3

    def test_scatter_only_on_improvement(self):
        program = GASConnProgram()
        assert program.scatter(7, 7, 3, 9)
        assert not program.scatter(7, 3, 3, 9)


class TestCDMechanics:
    def test_round_counter_in_value(self, cluster_spec, triangle_with_tail):
        engine = GASEngine(triangle_with_tail, cluster_spec)
        result = engine.run(GASCDProgram(max_iterations=3))
        assert all(value[2] <= 3 for value in result.values.values())

    def test_vote_sizes_counted(self):
        program = GASCDProgram()
        partial = ((0, 1.0, 3), (1, 0.9, 2))
        assert program.gather_size(partial) == 48.0


class TestStatsMechanics:
    def test_local_clustering_values(self, cluster_spec, triangle_with_tail):
        adjacency = _adjacency(triangle_with_tail)
        engine = GASEngine(triangle_with_tail, cluster_spec)
        result = engine.run(GASStatsProgram(adjacency))
        assert result.values[0] == pytest.approx(1.0)
        assert result.values[2] == pytest.approx(1 / 3)
        assert result.values[3] == 0.0

    def test_single_round(self, cluster_spec, triangle_with_tail):
        adjacency = _adjacency(triangle_with_tail)
        engine = GASEngine(triangle_with_tail, cluster_spec)
        result = engine.run(GASStatsProgram(adjacency))
        assert result.rounds == 1

    def test_adjacency_bytes_counted(self, triangle_with_tail):
        adjacency = _adjacency(triangle_with_tail)
        program = GASStatsProgram(adjacency)
        assert program.gather_size(((0, 1), (2, 3, 4))) == 40.0


class TestEvoMechanics:
    def test_seeds_injected_idempotently(self, triangle_with_tail):
        adjacency = _adjacency(triangle_with_tail)
        program = GASEvoProgram(
            adjacency, ambassadors={100: 0}, p_forward=0.0, max_hops=2, seed=1
        )
        burned, fresh = program.apply(0, ({}, {}), None)
        assert burned == {100: 0}
        assert fresh == {100: 0}
        # Re-applying with the arrival already burned adds nothing.
        burned2, fresh2 = program.apply(0, (burned, {}), None)
        assert burned2 == {100: 0}
        assert fresh2 == {}

    def test_gather_filters_by_victims(self, triangle_with_tail):
        adjacency = _adjacency(triangle_with_tail)
        program = GASEvoProgram(
            adjacency, ambassadors={100: 0}, p_forward=0.99, max_hops=2, seed=1
        )
        victims = program._victims_of(100, 0)
        neighbor_value = ({100: 0}, {100: 0})
        for vertex in adjacency[0]:
            attempts = program.gather(vertex, ({}, {}), 0, neighbor_value, 3)
            if vertex in victims:
                assert attempts == ((100, 1),)
            else:
                assert attempts is None

    def test_replication_factor_reported(self, cluster_spec, triangle_with_tail):
        adjacency = _adjacency(triangle_with_tail)
        engine = GASEngine(triangle_with_tail, cluster_spec)
        result = engine.run(
            GASEvoProgram(adjacency, {100: 0}, 0.3, 2, seed=1)
        )
        assert result.replication_factor >= 1.0
