"""Unit tests for the GraphX-style layer."""

import pytest

from repro.core.cost import CostMeter
from repro.platforms.rddgraph.graphx import GraphXGraph
from repro.platforms.rddgraph.rdd import RDDContext


@pytest.fixture
def context(cluster_spec):
    return RDDContext(cluster_spec)


def _graph(context, adjacency):
    return GraphXGraph.from_adjacency(adjacency, context)


@pytest.fixture
def square(context):
    return _graph(
        context,
        {0: [1, 3], 1: [0, 2], 2: [1, 3], 3: [0, 2]},
    )


class TestBuiltins:
    def test_counts(self, square):
        assert square.num_vertices() == 4
        assert square.num_edges() == 8  # symmetric arcs

    def test_degrees(self, square):
        assert dict(square.degrees().collect()) == {0: 2, 1: 2, 2: 2, 3: 2}

    def test_map_vertices(self, square):
        doubled = square.map_vertices(lambda v, _old: v * 10)
        assert dict(doubled.vertices.collect()) == {0: 0, 1: 10, 2: 20, 3: 30}


class TestAggregateMessages:
    def test_sum_of_neighbor_ids(self, square):
        with_ids = square.map_vertices(lambda v, _old: v)
        messages = with_ids.aggregate_messages(
            send=lambda src, value, dst: [(dst, value)],
            merge=lambda a, b: a + b,
        )
        assert dict(messages.collect()) == {0: 4, 1: 2, 2: 4, 3: 2}

    def test_empty_sends(self, square):
        messages = square.aggregate_messages(
            send=lambda src, value, dst: [],
            merge=lambda a, b: a,
        )
        assert messages.count() == 0


class TestPregelLoop:
    def test_max_propagation(self, context):
        graph = _graph(context, {0: [1], 1: [0, 2], 2: [1]})

        def initial(vertex):
            return vertex

        def vprog(vertex, value, incoming):
            if incoming is not None and incoming > value:
                return incoming
            return value

        def send(src, value, dst):
            return [(dst, value)]

        result = graph.pregel(initial, vprog, send, max, max_iterations=10)
        assert dict(result.collect()) == {0: 2, 1: 2, 2: 2}

    def test_terminates_on_no_messages(self, context):
        graph = _graph(context, {0: [1], 1: [0]})
        result = graph.pregel(
            initial=lambda v: v,
            vprog=lambda v, value, incoming: value,
            send=lambda src, value, dst: [],
            merge=lambda a, b: a,
            max_iterations=100,
        )
        assert dict(result.collect()) == {0: 0, 1: 1}

    def test_connected_components_labels(self, context):
        graph = _graph(
            context,
            {0: [1], 1: [0], 5: [7], 7: [5], 9: []},
        )
        labels = dict(graph.connected_components().collect())
        assert labels == {0: 0, 1: 0, 5: 5, 7: 5, 9: 9}

    def test_per_iteration_stages_charged(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        context = RDDContext(cluster_spec, meter)
        graph = _graph(context, {i: [i + 1] for i in range(10)} | {10: []})
        graph.connected_components()
        # A path of length 10 needs ~10 iterations, each with triplet
        # join + message reduce + vertex join stages.
        stage_names = [r.name for r in meter.profile.rounds]
        assert sum("triplets" in n for n in stage_names) >= 9
