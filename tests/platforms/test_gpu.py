"""Unit tests for the GPU BSP engine (Medusa model)."""


import pytest

from repro.core.cost import CostMeter, MemoryBudgetExceeded
from repro.core.errors import PlatformFailure
from repro.core.workload import Algorithm, AlgorithmParams
from repro.graph.generators import rmat_graph
from repro.graph.graph import Graph
from repro.platforms.gpu.driver import MedusaPlatform
from repro.platforms.gpu.engine import WARP_SIZE, GPUEngine, gpu_device_spec
from repro.platforms.pregel.programs import BFSProgram, ConnProgram


@pytest.fixture
def device_spec():
    return gpu_device_spec()


class TestEngine:
    def test_reuses_pregel_programs(self, device_spec):
        graph = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        engine = GPUEngine(graph, device_spec)
        result = engine.run(BFSProgram(source=0))
        assert result.values == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_dense_kernels_touch_all_vertices(self, device_spec):
        # BFS from an isolated corner: every kernel still pays for
        # all warps (dense launch), unlike the cluster engines.
        graph = Graph.from_edges([(0, 1)], vertices=range(200))
        meter = CostMeter(device_spec)
        engine = GPUEngine(graph, device_spec, meter)
        engine.run(BFSProgram(source=0))
        warps = -(-200 // WARP_SIZE)
        for record in meter.profile.rounds:
            min_lane_ops = warps * WARP_SIZE / device_spec.cores_per_worker
            assert sum(record.ops_per_worker) >= min_lane_ops * 0.99

    def test_warp_divergence_penalizes_skew(self, device_spec):
        # Same total edges: a hub graph costs more lane-ops than a
        # uniform ring because one thread per warp does all the work.
        hub = Graph.from_edges([(0, i) for i in range(1, 257)])
        ring = Graph.from_edges(
            [(i, (i + 1) % 257) for i in range(257)]
        )
        costs = {}
        for name, graph in (("hub", hub), ("ring", ring)):
            meter = CostMeter(device_spec)
            GPUEngine(graph, device_spec, meter).run(ConnProgram())
            costs[name] = sum(
                sum(r.ops_per_worker) for r in meter.profile.rounds
            ) / meter.profile.num_rounds
        assert costs["hub"] > 1.5 * costs["ring"]

    def test_device_memory_enforced(self):
        tiny = gpu_device_spec().replace(memory_bytes_per_worker=512.0)
        graph = rmat_graph(7, seed=1)
        engine = GPUEngine(graph, tiny)
        with pytest.raises(MemoryBudgetExceeded):
            engine.run(BFSProgram(source=int(graph.vertices[0])))

    def test_message_memory_released(self, device_spec):
        graph = rmat_graph(7, seed=2)
        meter = CostMeter(device_spec)
        engine = GPUEngine(graph, device_spec, meter)
        engine.run(ConnProgram())
        assert meter.memory_in_use(0) == 0.0


class TestDriver:
    def test_all_algorithms_validate(self, small_rmat):
        from repro.core.validation import OutputValidator

        platform = MedusaPlatform()
        weighted = small_rmat.with_uniform_weights(seed=2)
        handle = platform.upload_graph("g", small_rmat)
        weighted_handle = platform.upload_graph("gw", weighted)
        params = AlgorithmParams(evo_new_vertices=20)
        validator = OutputValidator()
        for algorithm in Algorithm:
            # SSSP refuses unweighted graphs; it runs on the weighted twin.
            if algorithm is Algorithm.SSSP:
                run = platform.run_algorithm(weighted_handle, algorithm, params)
                validator.validate(weighted, algorithm, params, run.output)
            else:
                run = platform.run_algorithm(handle, algorithm, params)
                validator.validate(small_rmat, algorithm, params, run.output)

    def test_oom_surfaces_as_platform_failure(self, small_rmat):
        tiny = gpu_device_spec().replace(memory_bytes_per_worker=1024.0)
        platform = MedusaPlatform(tiny)
        with pytest.raises(PlatformFailure, match="out-of-memory"):
            platform.upload_graph("g", small_rmat)

    def test_etl_includes_transfer(self, small_rmat):
        platform = MedusaPlatform()
        handle = platform.upload_graph("g", small_rmat)
        assert handle.etl_simulated_seconds > 0

    def test_single_device_required(self):
        from repro.core.cost import ClusterSpec

        with pytest.raises(ValueError, match="single worker"):
            MedusaPlatform(ClusterSpec.paper_distributed())
