"""Unit tests for the column store's vectored stored procedures."""

import pytest

from repro.algorithms import (
    bfs,
    community_detection,
    connected_components,
    forest_fire_links,
    stats,
)
from repro.graph.generators import rmat_graph
from repro.graph.graph import Graph
from repro.platforms.columnar import procedures
from repro.platforms.columnar.table import ColumnTable


def _table_and_vertices(graph: Graph):
    undirected = graph.to_undirected()
    arcs = []
    for source, target in undirected.iter_edges():
        arcs.append((source, target))
        arcs.append((target, source))
    return (
        ColumnTable.edge_table(arcs),
        [int(v) for v in undirected.vertices],
    )


@pytest.fixture(scope="module")
def fixture_graph():
    return rmat_graph(8, edge_factor=6, seed=17)


@pytest.fixture(scope="module")
def table_vertices(fixture_graph):
    return _table_and_vertices(fixture_graph)


class TestBfsDistances:
    def test_matches_reference(self, fixture_graph, table_vertices):
        table, vertices = table_vertices
        start = int(fixture_graph.vertices[0])
        distances, stats_ = procedures.bfs_distances(table, vertices, start)
        assert distances == bfs(fixture_graph, start)
        assert stats_.random_lookups > 0
        assert stats_.endpoints_visited > 0

    def test_isolated_vertices_unreachable(self):
        graph = Graph.from_edges([(0, 1)], vertices=[5])
        table, vertices = _table_and_vertices(graph)
        distances, _stats = procedures.bfs_distances(table, vertices, 0)
        assert distances == {0: 0, 1: 1, 5: -1}


class TestComponents:
    def test_matches_reference(self, fixture_graph, table_vertices):
        table, vertices = table_vertices
        labels, _stats = procedures.connected_components(table, vertices)
        assert labels == connected_components(fixture_graph)

    def test_multiple_components(self):
        graph = Graph.from_edges([(0, 1), (5, 6)], vertices=[9])
        table, vertices = _table_and_vertices(graph)
        labels, _stats = procedures.connected_components(table, vertices)
        assert labels == {0: 0, 1: 0, 5: 5, 6: 5, 9: 9}


class TestClusteringStatistics:
    def test_matches_reference(self, fixture_graph, table_vertices):
        table, vertices = table_vertices
        (num_vertices, num_edges, mean), _stats = (
            procedures.clustering_statistics(table, vertices)
        )
        reference = stats(fixture_graph)
        assert num_vertices == reference.num_vertices
        assert num_edges == reference.num_edges
        assert mean == pytest.approx(reference.mean_local_clustering, abs=1e-9)

    def test_empty_vertex_list(self):
        table, _ = _table_and_vertices(Graph.from_edges([(0, 1)]))
        (num_vertices, num_edges, mean), _stats = (
            procedures.clustering_statistics(table, [])
        )
        assert (num_vertices, num_edges, mean) == (0, 0, 0.0)


class TestLabelPropagation:
    def test_matches_reference(self, fixture_graph, table_vertices):
        table, vertices = table_vertices
        labels, _stats = procedures.label_propagation(
            table, vertices, max_iterations=8,
            hop_attenuation=0.1, node_preference=0.1,
        )
        assert labels == community_detection(fixture_graph, max_iterations=8)

    def test_zero_iterations_identity(self, table_vertices):
        table, vertices = table_vertices
        labels, _stats = procedures.label_propagation(
            table, vertices, max_iterations=0,
            hop_attenuation=0.1, node_preference=0.1,
        )
        assert labels == {v: v for v in vertices}


class TestForestFire:
    def test_matches_reference(self, fixture_graph, table_vertices):
        table, vertices = table_vertices
        links, _stats = procedures.forest_fire(
            table, vertices, num_new_vertices=15,
            p_forward=0.3, max_hops=2, seed=4,
        )
        assert links == forest_fire_links(
            fixture_graph, 15, p_forward=0.3, max_hops=2, seed=4
        )

    def test_work_counted(self, table_vertices):
        table, vertices = table_vertices
        _links, stats_ = procedures.forest_fire(
            table, vertices, num_new_vertices=5,
            p_forward=0.3, max_hops=2, seed=4,
        )
        assert stats_.random_lookups >= len(vertices)


def test_stats_merge():
    first = procedures.ProcedureStats(random_lookups=2, endpoints_visited=10)
    second = procedures.ProcedureStats(random_lookups=3, endpoints_visited=5)
    first.merge(second)
    assert first.random_lookups == 5
    assert first.endpoints_visited == 15
