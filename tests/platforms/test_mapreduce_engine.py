"""Unit tests for the MapReduce engine."""

import pytest

from repro.core.cost import CostMeter
from repro.platforms.mapreduce.engine import (
    HDFS_REPLICATION,
    MapReduceEngine,
    MapReduceJob,
    record_size,
)


class _WordCount(MapReduceJob):
    """The canonical example: counts words in (line_no, text) records."""

    name = "wordcount"

    def map(self, key, value, counters):
        """Emit (word, 1) per word."""
        for word in value.split():
            yield word, 1

    def combine(self, key, values):
        """Pre-sum on the map side."""
        return [sum(values)]

    def reduce(self, key, values, counters):
        """Sum the counts."""
        counters["words"] = counters.get("words", 0) + 1
        yield key, sum(values)


class _IdentityJob(MapReduceJob):
    """Pass-through job."""

    name = "identity"

    def map(self, key, value, counters):
        """Forward the record."""
        yield key, value

    def reduce(self, key, values, counters):
        """Forward each value."""
        for value in values:
            yield key, value


@pytest.fixture
def engine(cluster_spec):
    return MapReduceEngine(cluster_spec)


class TestExecution:
    def test_wordcount(self, engine):
        records = [(0, "a b a"), (1, "b c"), (2, "a")]
        result = engine.run_job(_WordCount(), records)
        assert dict(result.output) == {"a": 3, "b": 2, "c": 1}
        assert result.counters["words"] == 3

    def test_deterministic_output_order(self, engine, cluster_spec):
        records = [(i, f"w{i % 5}") for i in range(50)]
        a = engine.run_job(_WordCount(), records).output
        b = MapReduceEngine(cluster_spec).run_job(_WordCount(), records).output
        assert a == b

    def test_empty_input(self, engine):
        result = engine.run_job(_WordCount(), [])
        assert result.output == []

    def test_chained_jobs(self, engine):
        first = engine.run_job(_WordCount(), [(0, "x y x")])
        second = engine.run_job(_IdentityJob(), first.output)
        assert dict(second.output) == {"x": 2, "y": 1}


class TestCosts:
    def test_three_phases_per_job(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        engine = MapReduceEngine(cluster_spec, meter)
        engine.run_job(_WordCount(), [(0, "a b")])
        names = [r.name for r in meter.profile.rounds]
        assert names == [
            "map-wordcount",
            "shuffle-wordcount",
            "reduce-wordcount",
        ]

    def test_job_startup_charged(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        engine = MapReduceEngine(cluster_spec, meter)
        engine.run_job(_IdentityJob(), [(0, 1)])
        engine.run_job(_IdentityJob(), [(0, 1)])
        assert meter.profile.startup_seconds == 2 * cluster_spec.startup_seconds

    def test_hdfs_replication_written(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        engine = MapReduceEngine(cluster_spec, meter)
        result = engine.run_job(_IdentityJob(), [(0, 1), (1, 2)])
        reduce_round = meter.profile.rounds[-1]
        output_bytes = sum(record_size(k, v) for k, v in result.output)
        assert reduce_round.disk_write_bytes == output_bytes * HDFS_REPLICATION

    def test_streaming_memory_is_constant(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        engine = MapReduceEngine(cluster_spec, meter)
        small_peak = meter.profile.peak_memory
        engine.run_job(_WordCount(), [(i, "a b c") for i in range(1000)])
        # Only the fixed sort buffers are resident; input size does
        # not change the footprint.
        assert meter.profile.peak_memory == small_peak
        engine.close()
        assert meter.memory_in_use(0) == 0.0

    def test_shuffle_crosses_network(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        engine = MapReduceEngine(cluster_spec, meter)
        engine.run_job(_WordCount(), [(i, f"word{i}") for i in range(100)])
        assert meter.profile.total_remote_bytes > 0


class TestRecordSize:
    def test_scalar_record(self):
        assert record_size(1, 2) == 24.0

    def test_collection_record(self):
        assert record_size(1, (1, 2, 3)) == 24.0 + 3 * 8.0

    def test_nested_collection(self):
        size = record_size(1, ((1, 2), 3))
        assert size == 24.0 + 2 * 8.0 + 2 * 8.0
