"""Direct unit tests for the MapReduce job implementations."""

import pytest

from repro.core.cost import ClusterSpec
from repro.platforms.mapreduce.engine import MapReduceEngine
from repro.platforms.mapreduce.jobs import (
    BFSIterationJob,
    CDIterationJob,
    ConnIterationJob,
    EvoHopJob,
    StatsAggregationJob,
    StatsTriangleJob,
)


@pytest.fixture
def engine():
    return MapReduceEngine(ClusterSpec.paper_distributed())


class TestBFSIteration:
    def test_frontier_expands_one_level(self, engine):
        records = [
            (0, ((1,), 0)),
            (1, ((0, 2), -1)),
            (2, ((1,), -1)),
        ]
        result = engine.run_job(BFSIterationJob(iteration=1), records)
        state = dict(result.output)
        assert state[1] == ((0, 2), 1)
        assert state[2] == ((1,), -1)  # not reached yet
        assert result.counters["changed"] == 1

    def test_no_change_counter_when_stable(self, engine):
        records = [(0, ((1,), 0)), (1, ((0,), 1))]
        result = engine.run_job(BFSIterationJob(iteration=3), records)
        assert result.counters.get("changed", 0) == 0

    def test_combiner_keeps_min_candidate(self):
        job = BFSIterationJob(iteration=1)
        combined = job.combine(5, [("D", 3), ("A", (1,), -1), ("D", 2)])
        assert ("A", (1,), -1) in combined
        assert ("D", 2) in combined
        assert ("D", 3) not in combined


class TestConnIteration:
    def test_labels_shrink(self, engine):
        records = [(5, ((9,), 5)), (9, ((5,), 9))]
        result = engine.run_job(ConnIterationJob(iteration=1), records)
        state = dict(result.output)
        assert state[9] == ((5,), 5)
        assert result.counters["changed"] == 1

    def test_isolated_vertex_passthrough(self, engine):
        records = [(7, ((), 7))]
        result = engine.run_job(ConnIterationJob(iteration=1), records)
        assert dict(result.output) == {7: ((), 7)}


class TestCDIteration:
    def test_adopts_majority_label(self, engine):
        # Vertex 2 has two neighbors labeled 0 and one labeled 9.
        records = [
            (0, ((2,), 0, 1.0)),
            (1, ((2,), 0, 1.0)),
            (2, ((0, 1, 9), 2, 1.0)),
            (9, ((2,), 9, 1.0)),
        ]
        result = engine.run_job(CDIterationJob(1, 0.1, 0.1), records)
        state = dict(result.output)
        assert state[2][1] == 0
        assert state[2][2] == pytest.approx(0.9)  # hop attenuation paid


class TestStatsJobs:
    def test_triangle_plus_aggregation(self, engine):
        adjacency = {0: (1, 2), 1: (0, 2), 2: (0, 1)}
        partials = engine.run_job(StatsTriangleJob(), list(adjacency.items()))
        totals = dict(engine.run_job(StatsAggregationJob(), partials.output).output)
        assert totals["vertices"] == 3
        assert totals["edges"] == 6
        assert totals["clustering_sum"] == pytest.approx(3.0)

    def test_degree_one_vertices_skip_broadcast(self, engine):
        adjacency = {0: (1,), 1: (0,)}
        partials = engine.run_job(StatsTriangleJob(), list(adjacency.items()))
        totals = dict(engine.run_job(StatsAggregationJob(), partials.output).output)
        assert "clustering_sum" not in totals


class TestEvoHop:
    def test_burn_spreads_to_victims(self, engine):
        # p=0.99 so the budget is almost surely positive.
        job = EvoHopJob(p_forward=0.99, max_hops=2, seed=1, hop=0)
        records = [
            (0, ((1,), {100: 0}, {100: 0})),
            (1, ((0,), {}, {})),
        ]
        result = engine.run_job(job, records)
        state = dict(result.output)
        assert 100 in state[1][1]
        assert state[1][1][100] == 1
        assert result.counters["burned"] == 1

    def test_hop_limit_blocks_spread(self, engine):
        job = EvoHopJob(p_forward=0.99, max_hops=1, seed=1, hop=1)
        records = [
            (0, ((1,), {100: 1}, {100: 1})),  # already at the hop limit
            (1, ((0,), {}, {})),
        ]
        result = engine.run_job(job, records)
        state = dict(result.output)
        assert state[1][1] == {}
        assert result.counters.get("burned", 0) == 0
