"""Unit tests for the graph-database store and traversal framework."""

import pytest

from repro.core.cost import ClusterSpec, CostMeter, MemoryBudgetExceeded
from repro.platforms.graphdb.store import (
    NODE_RECORD_BYTES,
    REL_RECORD_BYTES,
    GraphStore,
)
from repro.platforms.graphdb.traversal import (
    TraversalDescription,
    Uniqueness,
)


@pytest.fixture
def meter(single_node_spec):
    return CostMeter(single_node_spec)


@pytest.fixture
def store(meter):
    db = GraphStore(meter)
    for node in range(6):
        db.create_node(node)
    # A triangle 0-1-2 with a tail 2-3-4; node 5 isolated.
    for a, b in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]:
        db.create_relationship(a, b)
    return db


class TestStore:
    def test_counts(self, store):
        assert store.num_nodes == 6
        assert store.num_relationships == 5

    def test_duplicate_node_rejected(self, store):
        with pytest.raises(ValueError):
            store.create_node(0)

    def test_neighbors_sorted(self, store):
        assert store.neighbors(2) == [0, 1, 3]
        assert store.neighbors(5) == []

    def test_degree(self, store):
        assert store.degree(2) == 3
        assert store.degree(5) == 0

    def test_relationship_chain_order(self, store):
        # Chains are LIFO: the most recent relationship is first.
        rels = store.relationships_of(0)
        assert [r.other(0) for r in rels] == [2, 1]

    def test_memory_accounting(self, meter, store):
        expected = 6 * NODE_RECORD_BYTES + 5 * REL_RECORD_BYTES
        assert meter.memory_in_use(0) == expected
        store.release()
        assert meter.memory_in_use(0) == 0.0

    def test_memory_budget_enforced(self):
        spec = ClusterSpec.paper_single_node().replace(
            memory_bytes_per_worker=NODE_RECORD_BYTES * 2,
        )
        db = GraphStore(CostMeter(spec))
        db.create_node(0)
        db.create_node(1)
        with pytest.raises(MemoryBudgetExceeded):
            db.create_node(2)

    def test_random_accesses_charged(self, meter, store):
        meter.begin_round("walk")
        store.neighbors(2)
        record = meter.end_round()
        # 1 node record + 3 relationship records.
        assert sum(record.random_accesses_per_worker) == 4

    def test_rel_endpoint_helpers(self, store):
        rel = store.relationships_of(0)[0]
        assert rel.other(0) in (1, 2)
        with pytest.raises(ValueError):
            rel.other(99)
        with pytest.raises(ValueError):
            rel.next_for(99)


class TestTraversal:
    def test_bfs_order_and_depths(self, store, meter):
        meter.begin_round("traverse")
        visits = list(TraversalDescription().breadth_first().traverse(store, 0))
        meter.end_round()
        depths = dict(visits)
        assert depths == {0: 0, 1: 1, 2: 1, 3: 2, 4: 3}
        # BFS: depths are non-decreasing in visit order.
        sequence = [d for _n, d in visits]
        assert sequence == sorted(sequence)

    def test_depth_limit(self, store, meter):
        meter.begin_round("traverse")
        limited = TraversalDescription().breadth_first().max_depth(1)
        nodes = {n for n, _d in limited.traverse(store, 0)}
        meter.end_round()
        assert nodes == {0, 1, 2}

    def test_dfs_visits_everything_reachable(self, store, meter):
        meter.begin_round("traverse")
        visits = list(TraversalDescription().depth_first().traverse(store, 0))
        meter.end_round()
        assert {n for n, _d in visits} == {0, 1, 2, 3, 4}

    def test_unknown_start_rejected(self, store):
        with pytest.raises(ValueError):
            list(TraversalDescription().traverse(store, 99))

    def test_no_uniqueness_revisits(self, meter):
        db = GraphStore(meter)
        for node in range(3):
            db.create_node(node)
        db.create_relationship(0, 1)
        db.create_relationship(1, 2)
        td = (
            TraversalDescription()
            .uniqueness(Uniqueness.NONE)
            .max_depth(2)
        )
        meter.begin_round("traverse")
        visits = [n for n, _d in td.traverse(db, 0)]
        meter.end_round()
        # Without uniqueness, 0 is re-visited through 1.
        assert visits.count(0) == 2

    def test_max_depth_validation(self):
        with pytest.raises(ValueError):
            TraversalDescription().max_depth(-1)
