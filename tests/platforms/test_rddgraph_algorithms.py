"""Direct unit tests for the GraphX algorithm implementations."""

import pytest

from repro.algorithms import bfs, connected_components
from repro.core.cost import ClusterSpec, CostMeter
from repro.graph.generators import rmat_graph
from repro.graph.graph import Graph
from repro.platforms.rddgraph.algorithms import graphx_bfs, graphx_conn
from repro.platforms.rddgraph.graphx import GraphXGraph
from repro.platforms.rddgraph.rdd import RDDContext


def _graphx(graph: Graph, spec, meter=None):
    undirected = graph.to_undirected()
    adjacency = {
        int(v): [int(u) for u in undirected.neighbors(int(v))]
        for v in undirected.vertices
    }
    context = RDDContext(spec, meter)
    return GraphXGraph.from_adjacency(adjacency, context)


@pytest.fixture
def spec():
    return ClusterSpec.paper_distributed()


class TestGraphXBFS:
    def test_matches_reference(self, spec):
        graph = rmat_graph(7, seed=23)
        source = int(graph.vertices[0])
        assert graphx_bfs(_graphx(graph, spec), source) == bfs(graph, source)

    def test_isolated_source_terminates_immediately(self, spec):
        graph = Graph.from_edges([(1, 2)], vertices=[0])
        result = graphx_bfs(_graphx(graph, spec), 0)
        assert result == {0: 0, 1: -1, 2: -1}


class TestGraphXConn:
    def test_matches_reference(self, spec):
        graph = rmat_graph(7, seed=24)
        assert graphx_conn(_graphx(graph, spec)) == connected_components(graph)

    def test_whole_edge_rdd_scanned_every_iteration(self, spec):
        # The GraphX inefficiency the paper measures: triplet stages
        # touch all edges even when the frontier is tiny.
        path = Graph.from_edges([(i, i + 1) for i in range(30)])
        meter = CostMeter(spec)
        graphx_conn(_graphx(path, spec, meter))
        triplet_rounds = [
            r for r in meter.profile.rounds if "triplets" in r.name
        ]
        assert len(triplet_rounds) >= 29
        # Every triplet stage costs at least the edge count in ops.
        arcs = 2 * path.num_edges
        for record in triplet_rounds:
            assert record.total_ops >= arcs

    def test_memory_churn_two_generations(self, spec):
        # Peak memory carries at least the edge RDD plus two vertex
        # generations (lineage), measurably above one generation.
        graph = rmat_graph(7, seed=25)
        meter = CostMeter(spec)
        gx = _graphx(graph, spec, meter)
        baseline_peak = meter.profile.peak_memory
        graphx_conn(gx)
        assert meter.profile.peak_memory > baseline_peak
