"""Tests for the Section 2.1 choke-point remedies.

The paper names concrete techniques that "may arise" to address its
choke points; this module tests the implemented ones:

* asynchronous execution (``GASEngine.run_async``) — "the use of
  asynchronous distributed query processing";
* adaptive central computation
  (``PregelEngine(adaptive_central_fraction=...)``) — "adaptive
  switching of distributed computation to central computation to
  handle iterations with little work".
"""

import pytest

from repro.core.cost import CostMeter
from repro.graph.generators import rmat_graph
from repro.graph.graph import Graph
from repro.platforms.gas.engine import GASEngine
from repro.platforms.gas.programs import GASBFSProgram, GASConnProgram
from repro.platforms.pregel.engine import PregelEngine
from repro.platforms.pregel.programs import ConnProgram


@pytest.fixture
def long_path():
    return Graph.from_edges([(i, i + 1) for i in range(99)])


class TestAsyncGAS:
    def test_same_fixpoint_as_sync(self, cluster_spec, medium_rmat):
        sync = GASEngine(medium_rmat, cluster_spec).run(GASConnProgram())
        asynchronous = GASEngine(medium_rmat, cluster_spec).run_async(
            GASConnProgram()
        )
        assert asynchronous.values == sync.values

    def test_async_bfs_matches_reference(self, cluster_spec, medium_rmat):
        from repro.algorithms import bfs

        source = int(medium_rmat.vertices[0])
        result = GASEngine(medium_rmat, cluster_spec).run_async(
            GASBFSProgram(source=source)
        )
        assert result.values == bfs(medium_rmat, source)

    def test_far_fewer_rounds_on_long_paths(self, cluster_spec, long_path):
        # Sync label propagation crosses one hop per barrier: ~100
        # rounds. An ascending async sweep carries the minimum label
        # across the whole path in its first pass.
        sync = GASEngine(long_path, cluster_spec).run(GASConnProgram())
        asynchronous = GASEngine(long_path, cluster_spec).run_async(
            GASConnProgram()
        )
        assert asynchronous.values == sync.values
        assert asynchronous.rounds < sync.rounds / 5

    def test_async_saves_barrier_time(self, cluster_spec, long_path):
        sync_meter = CostMeter(cluster_spec)
        GASEngine(long_path, cluster_spec, sync_meter).run(GASConnProgram())
        async_meter = CostMeter(cluster_spec)
        GASEngine(long_path, cluster_spec, async_meter).run_async(
            GASConnProgram()
        )
        sync_barriers = sum(
            r.barrier_seconds for r in sync_meter.profile.rounds
        )
        async_barriers = sum(
            r.barrier_seconds for r in async_meter.profile.rounds
        )
        assert async_barriers < sync_barriers / 5


class TestAdaptiveCentral:
    def test_same_output(self, cluster_spec, medium_rmat):
        baseline = PregelEngine(medium_rmat, cluster_spec).run(ConnProgram())
        adaptive = PregelEngine(
            medium_rmat, cluster_spec, adaptive_central_fraction=0.05
        ).run(ConnProgram())
        assert adaptive.values == baseline.values

    def test_tail_supersteps_marked_central(self, cluster_spec, long_path):
        meter = CostMeter(cluster_spec)
        PregelEngine(
            long_path, cluster_spec, meter, adaptive_central_fraction=0.1
        ).run(ConnProgram())
        names = [r.name for r in meter.profile.rounds]
        assert any(name.endswith("-central") for name in names)
        # Central supersteps pay no barrier and no network.
        for record in meter.profile.rounds:
            if record.name.endswith("-central"):
                assert record.barrier_seconds == 0.0
                assert record.remote_bytes == 0.0

    def test_adaptive_cuts_tail_time(self, cluster_spec, long_path):
        # A 100-vertex path: label propagation's frontier shrinks by
        # one vertex per round, so the sub-50%-activity tail is half
        # the run — all barrier, almost no work. Centralizing it cuts
        # roughly that half of the barrier bill.
        baseline_meter = CostMeter(cluster_spec)
        PregelEngine(long_path, cluster_spec, baseline_meter).run(ConnProgram())
        adaptive_meter = CostMeter(cluster_spec)
        PregelEngine(
            long_path, cluster_spec, adaptive_meter,
            adaptive_central_fraction=0.5,
        ).run(ConnProgram())
        assert (
            adaptive_meter.profile.simulated_seconds
            < 0.75 * baseline_meter.profile.simulated_seconds
        )

    def test_fraction_validated(self, cluster_spec, long_path):
        with pytest.raises(ValueError):
            PregelEngine(
                long_path, cluster_spec, adaptive_central_fraction=0.0
            )
        with pytest.raises(ValueError):
            PregelEngine(
                long_path, cluster_spec, adaptive_central_fraction=1.5
            )

    def test_rmat_mostly_distributed(self, cluster_spec):
        # On a low-diameter graph only the last couple of supersteps
        # qualify as "little work".
        graph = rmat_graph(8, seed=9)
        meter = CostMeter(cluster_spec)
        PregelEngine(
            graph, cluster_spec, meter, adaptive_central_fraction=0.02
        ).run(ConnProgram())
        names = [r.name for r in meter.profile.rounds]
        central = sum(1 for n in names if n.endswith("-central"))
        assert central <= len(names) / 2
