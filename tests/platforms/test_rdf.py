"""Unit tests for the RDF triple store and SPARQL subset."""

import pytest

from repro.algorithms import bfs
from repro.graph.generators import rmat_graph
from repro.graph.graph import Graph
from repro.platforms.columnar.rdf import (
    KNOWS,
    RDFStore,
    SparqlError,
    graph_to_triples,
)


@pytest.fixture
def store():
    return RDFStore(
        [
            ("alice", KNOWS, "bob"),
            ("bob", KNOWS, "alice"),
            ("bob", KNOWS, "carol"),
            ("carol", KNOWS, "bob"),
            ("alice", "worksAt", "cwi"),
            ("carol", "worksAt", "tudelft"),
        ]
    )


class TestStore:
    def test_triples_deduplicated(self):
        store = RDFStore([("a", "p", "b"), ("a", "p", "b")])
        assert store.num_triples == 1

    def test_dictionary_roundtrip(self, store):
        term_id = store.term_id("alice")
        assert store.term(term_id) == "alice"
        assert store.term_id("nobody") is None

    def test_match_by_subject(self, store):
        rows = sorted(store.match(subject="alice"))
        assert rows == [
            ("alice", KNOWS, "bob"),
            ("alice", "worksAt", "cwi"),
        ]

    def test_match_by_predicate(self, store):
        rows = list(store.match(predicate="worksAt"))
        assert len(rows) == 2

    def test_match_by_object(self, store):
        rows = list(store.match(obj="bob"))
        assert {s for s, _p, _o in rows} == {"alice", "carol"}

    def test_match_fully_bound(self, store):
        assert list(store.match("alice", KNOWS, "bob")) == [
            ("alice", KNOWS, "bob")
        ]
        assert list(store.match("alice", KNOWS, "carol")) == []

    def test_match_unknown_term(self, store):
        assert list(store.match(subject="nobody")) == []

    def test_compressed(self, store):
        assert store.compressed_bytes > 0
        # Three indexes of 6 triples beat raw 3x3x8-byte storage.
        assert store.compressed_bytes < 3 * store.num_triples * 24


class TestSparql:
    def test_single_pattern(self, store):
        rows = store.query("SELECT ?x WHERE { <alice> <knows> ?x . }")
        assert rows == [{"x": "bob"}]

    def test_join_on_shared_variable(self, store):
        rows = store.query(
            "SELECT ?x ?where WHERE { <bob> <knows> ?x . "
            "?x <worksAt> ?where . }"
        )
        assert {(r["x"], r["where"]) for r in rows} == {
            ("alice", "cwi"),
            ("carol", "tudelft"),
        }

    def test_count(self, store):
        assert store.query(
            "SELECT (COUNT(*) AS ?n) WHERE { ?s <knows> ?o . }"
        ) == 4

    def test_transitive_path(self, store):
        rows = store.query("SELECT ?x WHERE { <alice> <knows>+ ?x . }")
        assert {r["x"] for r in rows} == {"alice", "bob", "carol"}

    def test_transitive_needs_bound_subject(self, store):
        with pytest.raises(SparqlError, match="bound subject"):
            store.query("SELECT ?x WHERE { ?x <knows>+ ?y . }")

    def test_unsupported_shape(self, store):
        with pytest.raises(SparqlError):
            store.query("ASK { ?s ?p ?o }")

    def test_malformed_pattern(self, store):
        with pytest.raises(SparqlError, match="triple pattern"):
            store.query("SELECT ?x WHERE { <alice> ?x . }")

    def test_variables_everywhere(self, store):
        rows = store.query("SELECT ?s ?o WHERE { ?s <worksAt> ?o . }")
        assert len(rows) == 2


class TestGraphBridge:
    def test_graph_to_triples_symmetric(self):
        graph = Graph.from_edges([(0, 1)])
        triples = graph_to_triples(graph)
        assert ("person:0", KNOWS, "person:1") in triples
        assert ("person:1", KNOWS, "person:0") in triples

    def test_transitive_equals_bfs_reachability(self):
        graph = rmat_graph(7, seed=9)
        store = RDFStore(graph_to_triples(graph))
        source = int(graph.vertices[0])
        reached = store.query(
            f"SELECT ?x WHERE {{ <person:{source}> <knows>+ ?x . }}"
        )
        expected = sum(1 for d in bfs(graph, source).values() if d >= 0)
        assert len(reached) == expected
