"""Unit tests for the dataflow engine (Stratosphere delta iterations)."""

import pytest

from repro.core.cost import ClusterSpec, CostMeter
from repro.core.workload import Algorithm, AlgorithmParams
from repro.graph.generators import rmat_graph
from repro.graph.graph import Graph
from repro.platforms.dataflow.algorithms import dataflow_bfs, dataflow_conn
from repro.platforms.dataflow.driver import StratospherePlatform
from repro.platforms.dataflow.engine import DataflowEngine


def _adjacency(graph):
    undirected = graph.to_undirected()
    return {
        int(v): tuple(int(u) for u in undirected.neighbors(int(v)))
        for v in undirected.vertices
    }


@pytest.fixture
def path_adjacency():
    return _adjacency(Graph.from_edges([(0, 1), (1, 2), (2, 3)]))


class TestEngine:
    def test_delta_iteration_runs_until_empty_workset(
        self, path_adjacency, cluster_spec
    ):
        engine = DataflowEngine(path_adjacency, cluster_spec)
        stats = engine.delta_iteration(
            initial_solution={v: 0 for v in path_adjacency},
            initial_workset=[(0, 1)],
            step=lambda flow, workset: [],  # one round, then done
        )
        engine.close()
        assert stats.iterations == 1
        assert stats.total_workset_records == 1

    def test_runaway_iteration_aborts(self, path_adjacency, cluster_spec):
        engine = DataflowEngine(path_adjacency, cluster_spec)
        with pytest.raises(RuntimeError, match="exceeded"):
            engine.delta_iteration(
                initial_solution={},
                initial_workset=[(0, 1)],
                step=lambda flow, workset: workset,  # never drains
                max_iterations=5,
            )
        engine.close()

    def test_memory_released_on_close(self, path_adjacency, cluster_spec):
        meter = CostMeter(cluster_spec)
        engine = DataflowEngine(path_adjacency, cluster_spec, meter)
        engine.create_solution_set({v: 0 for v in path_adjacency})
        engine.close()
        assert all(
            meter.memory_in_use(w) == 0.0
            for w in range(cluster_spec.num_workers)
        )

    def test_solution_probes_are_random_accesses(
        self, path_adjacency, cluster_spec
    ):
        meter = CostMeter(cluster_spec)
        engine = DataflowEngine(path_adjacency, cluster_spec, meter)
        engine.create_solution_set({v: v for v in path_adjacency})
        meter.begin_round("probe")
        engine.join_solution({0: 5, 1: 7}, lambda key, cur, cand: None)
        record = meter.end_round()
        engine.close()
        assert sum(record.random_accesses_per_worker) == 2


class TestDeltaSparsity:
    def test_workset_tracks_frontier_not_graph(self, cluster_spec):
        # BFS from a corner of a long path: total workset records are
        # O(V), not O(V * diameter) as a dense engine would pay.
        n = 60
        path = Graph.from_edges([(i, i + 1) for i in range(n - 1)])
        engine = DataflowEngine(_adjacency(path), cluster_spec)
        dataflow_bfs(engine, 0)
        engine.close()

        meter = CostMeter(cluster_spec)
        engine = DataflowEngine(_adjacency(path), cluster_spec, meter)

        def counting_bfs():
            from repro.platforms.dataflow.engine import DeltaIterationStats

            stats_holder = {}
            original = engine.delta_iteration

            def wrapped(initial_solution, initial_workset, step, max_iterations=200):
                stats = original(
                    initial_solution, initial_workset, step, max_iterations
                )
                stats_holder["stats"] = stats
                return stats

            engine.delta_iteration = wrapped
            dataflow_bfs(engine, 0)
            return stats_holder["stats"]

        stats = counting_bfs()
        engine.close()
        assert stats.total_workset_records <= 2 * n

    def test_conn_converges_with_shrinking_worksets(self, cluster_spec):
        graph = rmat_graph(7, seed=3)
        meter = CostMeter(cluster_spec)
        engine = DataflowEngine(_adjacency(graph), cluster_spec, meter)
        dataflow_conn(engine)
        engine.close()
        active = [r.active_vertices for r in meter.profile.rounds]
        assert active[-1] < active[0]


class TestDriver:
    def test_all_algorithms_validate(self, small_rmat):
        from repro.core.validation import OutputValidator

        platform = StratospherePlatform(ClusterSpec.paper_distributed())
        weighted = small_rmat.with_uniform_weights(seed=2)
        handle = platform.upload_graph("g", small_rmat)
        weighted_handle = platform.upload_graph("gw", weighted)
        params = AlgorithmParams(evo_new_vertices=20)
        validator = OutputValidator()
        for algorithm in Algorithm:
            # SSSP refuses unweighted graphs; it runs on the weighted twin.
            if algorithm is Algorithm.SSSP:
                run = platform.run_algorithm(weighted_handle, algorithm, params)
                validator.validate(weighted, algorithm, params, run.output)
            else:
                run = platform.run_algorithm(handle, algorithm, params)
                validator.validate(small_rmat, algorithm, params, run.output)

    def test_etl_reported(self, small_rmat):
        platform = StratospherePlatform(ClusterSpec.paper_distributed())
        handle = platform.upload_graph("g", small_rmat)
        assert handle.etl_simulated_seconds > 0
