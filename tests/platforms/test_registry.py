"""Unit tests for the platform registry."""

import pytest

from repro.core.cost import ClusterSpec
from repro.core.errors import ConfigurationError
from repro.core.platform_api import GraphHandle, Platform
from repro.platforms.registry import (
    available_platforms,
    create_platform,
    register_platform,
)


def test_builtin_platforms_registered():
    assert set(available_platforms()) >= {"giraph", "mapreduce", "graphx", "neo4j"}


def test_create_known_platform(cluster_spec):
    platform = create_platform("giraph", cluster_spec)
    assert platform.name == "giraph"
    assert platform.cluster is cluster_spec


def test_unknown_platform(cluster_spec):
    with pytest.raises(ConfigurationError, match="unknown platform"):
        create_platform("spark-streaming", cluster_spec)


def test_third_party_registration(cluster_spec):
    class _Custom(Platform):
        name = "custom-engine"

        def _load(self, name, graph):
            return GraphHandle(name=name, platform=self.name, graph=graph)

        def _execute(self, handle, algorithm, params):  # pragma: no cover
            raise NotImplementedError

    register_platform("custom-engine", _Custom)
    try:
        assert "custom-engine" in available_platforms()
        platform = create_platform("custom-engine", cluster_spec)
        assert isinstance(platform, _Custom)
    finally:
        from repro.platforms import registry

        registry._REGISTRY.pop("custom-engine", None)


def test_empty_name_rejected():
    with pytest.raises(ConfigurationError):
        register_platform("", lambda cluster: None)
