"""CLI tests for ``graphalytics audit`` and the ``run`` rigor flags."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main

RIGOROUS = """\
[benchmark]
platforms = giraph, graphx
graphs = graph500-12, patents, road-16
algorithms = BFS
time_limit_seconds = 10000
validate = true
repetitions = 5
warmup = 1
"""

LAX = """\
[benchmark]
platforms = giraph
graphs = graph500-7
algorithms = BFS
repetitions = 1
validate = false
"""


def test_audit_reports_findings(tmp_path, capsys):
    (tmp_path / "bench.ini").write_text(LAX)
    code = main(["audit", str(tmp_path)])
    assert code == 0  # report-only without --check
    out = capsys.readouterr().out
    assert "single-run" in out
    assert "validation-off" in out


def test_audit_check_fails_on_errors(tmp_path, capsys):
    (tmp_path / "bench.ini").write_text(LAX)
    code = main(["audit", str(tmp_path), "--check"])
    assert code == 1
    assert "audit gate FAILED" in capsys.readouterr().out


def test_audit_check_passes_clean_suite(tmp_path, capsys):
    (tmp_path / "bench.ini").write_text(RIGOROUS)
    code = main(["audit", str(tmp_path), "--check"])
    assert code == 0
    assert "audit gate passed" in capsys.readouterr().out


def test_audit_baseline_round_trip(tmp_path, capsys):
    (tmp_path / "bench.ini").write_text(LAX)
    baseline = tmp_path / "audit-baseline.json"
    assert main(
        ["audit", str(tmp_path), "--update-baseline",
         "--baseline", str(baseline)]
    ) == 0
    assert baseline.exists()
    # Unchanged artifacts pass against their own baseline even though
    # they carry findings: the gate is regression-based.
    assert main(
        ["audit", str(tmp_path), "--check", "--baseline", str(baseline)]
    ) == 0
    # A new fault regresses the gate.
    (tmp_path / "extra.ini").write_text(
        "[graph]\nname = a\ncatalog = graph500-8\nseed = 1\n"
    )
    (tmp_path / "extra2.ini").write_text(
        "[graph]\nname = b\ncatalog = graph500-9\nseed = 1\n"
    )
    capsys.readouterr()
    assert main(
        ["audit", str(tmp_path), "--check", "--baseline", str(baseline)]
    ) == 1
    assert "seed-monoculture" in capsys.readouterr().out


def test_audit_json_report(tmp_path):
    (tmp_path / "bench.ini").write_text(LAX)
    json_path = tmp_path / "audit.json"
    assert main(["audit", str(tmp_path), "--json", str(json_path)]) == 0
    document = json.loads(json_path.read_text())
    rules = {
        finding["rule"]
        for entry in document["files"]
        for finding in entry["findings"]
    }
    assert "single-run" in rules


def test_audit_min_repetitions_flag(tmp_path, capsys):
    (tmp_path / "bench.ini").write_text(
        RIGOROUS.replace("repetitions = 5", "repetitions = 4")
    )
    assert main(["audit", str(tmp_path), "--check"]) == 0
    capsys.readouterr()
    assert main(
        ["audit", str(tmp_path), "--check", "--min-repetitions", "10"]
    ) == 1


def test_audit_disable_rule(tmp_path, capsys):
    (tmp_path / "bench.ini").write_text(LAX)
    code = main(
        ["audit", str(tmp_path), "--disable",
         "single-run,validation-off,no-warmup,no-time-limit,"
         "dataset-shape-bias", "--check"]
    )
    assert code == 0


def test_audit_empty_path_is_error(tmp_path, capsys):
    code = main(["audit", str(tmp_path / "nothing-here")])
    assert code == 2
    assert "no experiment artifacts" in capsys.readouterr().out


def test_shipped_configs_pass_committed_audit_baseline(capsys):
    # The acceptance bar: the repository's own suite audits clean
    # against the committed baseline.
    assert Path(".audit-baseline.json").exists()
    code = main(
        ["audit", "configs", "--check", "--baseline", ".audit-baseline.json"]
    )
    assert code == 0
    assert "audit gate passed" in capsys.readouterr().out


def test_run_audit_preflight_blocks_lax_spec(tmp_path, capsys):
    config = tmp_path / "bench.ini"
    config.write_text(LAX)
    code = main(
        ["run", "--config", str(config), "--audit",
         "--report", str(tmp_path / "r.txt")]
    )
    assert code == 2
    out = capsys.readouterr().out
    assert "aborting" in out
    assert not (tmp_path / "r.txt").exists()


def test_run_audit_preflight_allows_rigorous_spec(tmp_path, capsys):
    config = tmp_path / "bench.ini"
    config.write_text(
        "[benchmark]\nplatforms = giraph\ngraphs = graph500-7\n"
        "algorithms = BFS\ntime_limit_seconds = 10000\nvalidate = true\n"
        "repetitions = 3\nwarmup = 1\n"
    )
    code = main(
        ["run", "--config", str(config), "--audit",
         "--report", str(tmp_path / "r.txt")]
    )
    assert code == 0
    assert (tmp_path / "r.txt").exists()


def test_run_repetitions_flag_populates_stats(tmp_path, capsys):
    db = tmp_path / "results.jsonl"
    code = main(
        ["run", "--graphs", "graph500-7", "--platforms", "giraph",
         "--algorithms", "BFS", "--repetitions", "3", "--warmup", "1",
         "--report", str(tmp_path / "r.txt"), "--results-db", str(db)]
    )
    assert code == 0
    row = json.loads(db.read_text().splitlines()[0])
    assert row["num_repetitions"] == 3
    assert row["runtime_std"] is not None
    assert "±" in capsys.readouterr().out
