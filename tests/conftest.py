"""Shared fixtures for the test suite."""

from __future__ import annotations


import pytest

from repro.core.cost import ClusterSpec
from repro.graph.graph import Graph
from repro.graph.generators import rmat_graph


@pytest.fixture
def triangle_graph() -> Graph:
    """3-cycle plus a pendant vertex and an isolated vertex."""
    return Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)], vertices=[4])


@pytest.fixture
def two_components_graph() -> Graph:
    """Two components: a path 0-1-2 and an edge 10-11."""
    return Graph.from_edges([(0, 1), (1, 2), (10, 11)])


@pytest.fixture
def small_rmat() -> Graph:
    """Small skewed benchmark-like graph (deterministic)."""
    return rmat_graph(8, edge_factor=8, seed=7)


@pytest.fixture
def medium_rmat() -> Graph:
    """Medium benchmark-like graph for integration tests."""
    return rmat_graph(9, edge_factor=8, seed=11)


@pytest.fixture
def cluster_spec() -> ClusterSpec:
    """The paper's 10-worker distributed cluster."""
    return ClusterSpec.paper_distributed()


@pytest.fixture
def single_node_spec() -> ClusterSpec:
    """The paper's single 192 GiB machine."""
    return ClusterSpec.paper_single_node()


@pytest.fixture
def tiny_memory_spec() -> ClusterSpec:
    """A cluster whose memory budget nothing realistic fits into."""
    return ClusterSpec.paper_distributed().replace(
        memory_bytes_per_worker=2048.0
    )
