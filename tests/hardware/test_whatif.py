"""Tests for the what-if hardware sweep (recost + report).

The sweep's contract is *charge invariance*: recorded charge tensors
never depend on hardware constants, so re-costing the base profile
must reproduce a fresh run bit-for-bit, and re-costing under faster
devices must never slow a run down.
"""

import dataclasses

import pytest

from repro.api import run_benchmark
from repro.hardware.models import DiskModel, NicModel
from repro.hardware.registry import available_profiles, get_profile
from repro.hardware.whatif import (
    COMPONENTS,
    component_seconds,
    dominant_component,
    recost,
    run_whatif,
)
from repro.observability.replay import profile_fingerprint


@pytest.fixture(scope="module")
def recorded_runs():
    """One executed suite under the default profile, keyed by platform.

    giraph is the message-heavy workload (no disk), mapreduce the
    disk-heavy one — between them every device model is exercised.
    """
    suite = run_benchmark(
        ["graph500-8"],
        platforms=["giraph", "mapreduce"],
        algorithms=["BFS"],
        validate=False,
    )
    runs = {}
    for result in suite.results:
        assert result.succeeded, (result.platform, result.error)
        runs[result.platform] = result.run.profile
    return runs


def _faster_nic(profile):
    nic = profile.nic
    return dataclasses.replace(
        profile,
        nic=NicModel(
            bandwidth=nic.bandwidth * 2,
            message_latency_seconds=nic.message_latency_seconds / 2,
            queueing_factor=nic.queueing_factor / 2,
        ),
    )


def _faster_disk(profile):
    disk = profile.disk
    return dataclasses.replace(
        profile,
        disk=DiskModel(
            seq_bandwidth=disk.seq_bandwidth * 2,
            random_bandwidth=disk.random_bandwidth * 2,
        ),
    )


class TestRecost:
    def test_base_profile_recosts_bit_identically(self, recorded_runs):
        # The whole sweep design rests on this: end_round and recost
        # share one costing function, so same profile -> same floats.
        for run in recorded_runs.values():
            recosted = recost(
                run, run.cluster.hardware, name=run.cluster.name
            )
            assert profile_fingerprint(recosted) == profile_fingerprint(run)

    def test_recost_preserves_charges(self, recorded_runs):
        run = recorded_runs["giraph"]
        recosted = recost(run, get_profile("rdma"))
        for before, after in zip(run.rounds, recosted.rounds):
            assert after.ops_per_worker == before.ops_per_worker
            assert after.remote_bytes == before.remote_bytes
            assert after.remote_messages == before.remote_messages
            assert after.local_messages == before.local_messages
            assert after.disk_read_bytes == before.disk_read_bytes

    def test_recost_does_not_mutate_the_source(self, recorded_runs):
        run = recorded_runs["giraph"]
        before = profile_fingerprint(run)
        recost(run, get_profile("rdma"))
        assert profile_fingerprint(run) == before

    def test_startup_rescales_by_constant_ratio(self, recorded_runs):
        # MapReduce pays startup once per chained job, so a profile
        # with double the startup constant doubles the recorded total
        # rather than replacing it.
        run = recorded_runs["mapreduce"]
        hardware = run.cluster.hardware
        doubled = dataclasses.replace(
            hardware, startup_seconds=hardware.startup_seconds * 2
        )
        recosted = recost(run, doubled)
        assert recosted.startup_seconds == run.startup_seconds * 2

    def test_startup_kept_when_constants_agree(self, recorded_runs):
        run = recorded_runs["mapreduce"]
        recosted = recost(run, get_profile("rdma"))
        # rdma shares the paper cluster's 10 s startup constant.
        assert recosted.startup_seconds == run.startup_seconds


class TestMonotonicity:
    def test_faster_nic_never_slows_any_profile(self, recorded_runs):
        run = recorded_runs["giraph"]
        for name in available_profiles():
            profile = get_profile(name)
            base = recost(run, profile).simulated_seconds
            faster = recost(run, _faster_nic(profile)).simulated_seconds
            assert faster <= base, name

    def test_faster_disk_never_slows_any_profile(self, recorded_runs):
        run = recorded_runs["mapreduce"]
        for name in available_profiles():
            profile = get_profile(name)
            base = recost(run, profile).simulated_seconds
            faster = recost(run, _faster_disk(profile)).simulated_seconds
            assert faster <= base, name

    def test_network_upgrade_chain_is_monotone(self, recorded_runs):
        run = recorded_runs["giraph"]
        seconds = [
            recost(run, get_profile(name)).simulated_seconds
            for name in ("paper-1gbe", "10gbe", "rdma")
        ]
        assert seconds[0] > seconds[1] > seconds[2]

    def test_nvme_strictly_beats_hdd_on_disk_heavy_work(self, recorded_runs):
        run = recorded_runs["mapreduce"]
        hdd = recost(run, get_profile("hdd")).simulated_seconds
        nvme = recost(run, get_profile("nvme")).simulated_seconds
        assert nvme < hdd


class TestComponents:
    def test_component_totals_cover_all_round_time(self, recorded_runs):
        run = recorded_runs["giraph"]
        totals = component_seconds(run)
        assert set(totals) == set(COMPONENTS)
        assert run.startup_seconds + sum(totals.values()) == pytest.approx(
            run.simulated_seconds
        )

    def test_dominant_component_is_argmax(self, recorded_runs):
        run = recorded_runs["giraph"]
        totals = component_seconds(run)
        assert totals[dominant_component(run)] == max(totals.values())


class TestRunWhatif:
    def test_golden_bfs_table_across_network_profiles(self):
        # Golden sweep: giraph BFS on the scale-8 R-MAT graph under the
        # three network tiers. Values are pinned — the sweep is fully
        # deterministic — and must fall as the fabric gets faster.
        report = run_whatif(
            ["graph500-8"],
            algorithms=["BFS"],
            platforms=["giraph"],
            profiles=["paper-1gbe", "10gbe", "rdma"],
        )
        golden = {
            "paper-1gbe": 11.80196627617138,
            "10gbe": 10.900911667870261,
            "rdma": 10.300053046656274,
        }
        for profile, expected in golden.items():
            cell = report.cell("giraph", "graph500-8", "BFS", profile)
            assert cell.simulated_seconds == pytest.approx(
                expected, rel=1e-12
            )
            assert cell.fits_memory
        rendered = report.render()
        assert "paper-1gbe" in rendered and "rdma" in rendered
        assert "dominant per-round component" in rendered

    def test_dominant_choke_point_shifts_with_the_fabric(self):
        # The acceptance scenario: giraph PageRank at scale 14 is
        # network-bound on the paper's 1 GbE cluster; on RDMA the
        # network collapses and the barrier becomes dominant.
        report = run_whatif(
            ["graph500-14"],
            algorithms=["PR"],
            platforms=["giraph"],
            profiles=["paper-1gbe", "rdma"],
        )
        slow = report.cell("giraph", "graph500-14", "PR", "paper-1gbe")
        fast = report.cell("giraph", "graph500-14", "PR", "rdma")
        assert slow.dominant == "network"
        assert slow.dominant_letter == "N"
        assert fast.dominant != "network"
        assert fast.simulated_seconds < slow.simulated_seconds

    def test_single_machine_platforms_rejected(self):
        with pytest.raises(ValueError, match="single-machine"):
            run_whatif(["graph500-8"], platforms=["neo4j"])

    def test_missing_cell_raises(self):
        report = run_whatif(
            ["graph500-8"],
            algorithms=["BFS"],
            platforms=["giraph"],
            profiles=["paper-1gbe"],
        )
        with pytest.raises(KeyError):
            report.cell("giraph", "graph500-8", "BFS", "rdma")
