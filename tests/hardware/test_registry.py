"""Tests for the named hardware-profile registry."""

import dataclasses

import pytest

from repro.hardware.models import CpuModel, DiskModel, HardwareProfile, NicModel
from repro.hardware.registry import (
    DEFAULT_PROFILE,
    available_profiles,
    default_workers,
    get_profile,
    register_profile,
)

EXPECTED_NAMES = {
    "paper-1gbe",
    "paper-single-node",
    "paper-dbms",
    "gpu-k20",
    "10gbe",
    "rdma",
    "hdd",
    "nvme",
}


def test_all_expected_profiles_registered():
    assert EXPECTED_NAMES <= set(available_profiles())
    assert available_profiles() == sorted(available_profiles())


def test_default_profile_is_the_paper_cluster():
    assert DEFAULT_PROFILE == "paper-1gbe"
    profile = get_profile(DEFAULT_PROFILE)
    assert profile.cpu == CpuModel(
        cores=8, ops_per_second=25e6, random_access_seconds=1e-7
    )
    assert profile.nic.bandwidth == 117e6
    assert profile.nic.message_latency_seconds == 2e-6
    assert profile.nic.queueing_factor == 0.25
    assert profile.memory_bytes_per_worker == 24 * 2**30


def test_unknown_profile_raises_helpful_keyerror():
    with pytest.raises(KeyError, match="registered"):
        get_profile("quantum-fabric")
    with pytest.raises(KeyError, match="registered"):
        default_workers("quantum-fabric")


def test_default_workers_match_reference_testbeds():
    assert default_workers("paper-1gbe") == 10
    assert default_workers("10gbe") == 10
    assert default_workers("rdma") == 10
    assert default_workers("paper-single-node") == 1
    assert default_workers("paper-dbms") == 1
    assert default_workers("gpu-k20") == 1


def test_duplicate_registration_rejected():
    existing = get_profile("paper-1gbe")
    with pytest.raises(ValueError, match="already registered"):
        register_profile(existing, workers=10)


def test_register_rejects_nonpositive_workers():
    probe = HardwareProfile(
        name="probe-not-registered",
        cpu=CpuModel(cores=1, ops_per_second=1e6, random_access_seconds=1e-7),
        nic=NicModel(bandwidth=1e6),
        disk=DiskModel(seq_bandwidth=1e6, random_bandwidth=1e6),
        memory_bytes_per_worker=1e9,
    )
    with pytest.raises(ValueError, match="workers"):
        register_profile(probe, workers=0)
    # The failed registration must not leave a partial entry behind.
    assert "probe-not-registered" not in available_profiles()


def test_hdd_aliases_the_paper_cluster_disk_axis():
    # hdd exists so hdd-vs-nvme sweeps isolate storage: it must stay
    # exactly the paper cluster under another name.
    paper = get_profile("paper-1gbe")
    hdd = get_profile("hdd")
    assert dataclasses.replace(hdd, name=paper.name) == paper


def test_nvme_differs_from_hdd_only_in_disk():
    hdd = get_profile("hdd")
    nvme = get_profile("nvme")
    assert nvme.disk.seq_bandwidth > hdd.disk.seq_bandwidth
    assert nvme.disk.random_bandwidth > hdd.disk.random_bandwidth
    assert dataclasses.replace(nvme, name=hdd.name, disk=hdd.disk) == hdd


def test_network_variants_get_monotonically_faster():
    chain = [get_profile(n) for n in ("paper-1gbe", "10gbe", "rdma")]
    for slower, faster in zip(chain, chain[1:]):
        assert faster.nic.bandwidth > slower.nic.bandwidth
        assert (
            faster.nic.message_latency_seconds
            < slower.nic.message_latency_seconds
        )
        assert faster.barrier_seconds < slower.barrier_seconds


def test_single_machine_profiles_have_no_network():
    for name in ("paper-single-node", "paper-dbms", "gpu-k20"):
        nic = get_profile(name).nic
        assert nic.bandwidth == float("inf")
        assert nic.message_latency_seconds == 0.0
        assert nic.queueing_factor == 0.0


def test_registered_profiles_keep_memory_pressure_disabled():
    # Bit-compat guarantee: no registered profile may switch on the
    # memory-pressure term — it would silently change historical
    # simulated seconds (the differential suite pins them).
    for name in available_profiles():
        assert get_profile(name).memory_pressure_factor == 0.0
