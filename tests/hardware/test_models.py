"""Unit tests for the component hardware models.

The registered profiles keep ``memory_pressure_factor == 0`` (the
bit-compat guarantee), so the pressure and queueing physics are
exercised here with custom profiles.
"""

import pytest

from repro.core.cost import RoundRecord
from repro.hardware.models import (
    MEMORY_PRESSURE_THRESHOLD,
    RHO_CAP,
    CpuModel,
    DiskModel,
    HardwareProfile,
    NicModel,
    RoundTimes,
)


def make_profile(**overrides) -> HardwareProfile:
    """A small fully-specified profile for hand-computable physics."""
    base = dict(
        name="test",
        cpu=CpuModel(cores=4, ops_per_second=1e6, random_access_seconds=1e-6),
        nic=NicModel(
            bandwidth=1e6, message_latency_seconds=1e-5, queueing_factor=0.5
        ),
        disk=DiskModel(seq_bandwidth=1e8, random_bandwidth=1e6),
        memory_bytes_per_worker=1e9,
        memory_pressure_factor=0.0,
        barrier_seconds=0.1,
        startup_seconds=1.0,
    )
    base.update(overrides)
    return HardwareProfile(**base)


def make_record(num_workers: int = 2, **overrides) -> RoundRecord:
    base = dict(
        name="r0",
        ops_per_worker=[0.0] * num_workers,
        random_accesses_per_worker=[0.0] * num_workers,
        disk_bytes_per_worker=[0.0] * num_workers,
        disk_random_bytes_per_worker=[0.0] * num_workers,
    )
    base.update(overrides)
    return RoundRecord(**base)


class TestCpuModel:
    def test_worker_throughput_aggregates_cores(self):
        cpu = CpuModel(cores=8, ops_per_second=25e6, random_access_seconds=1e-7)
        assert cpu.worker_ops_per_second == 8 * 25e6

    def test_worker_seconds(self):
        cpu = CpuModel(cores=4, ops_per_second=1e6, random_access_seconds=1e-6)
        assert cpu.worker_seconds(4e6, 0.0) == 1.0
        assert cpu.worker_seconds(0.0, 1e6) == pytest.approx(1.0)
        assert cpu.worker_seconds(4e6, 1e6) == pytest.approx(2.0)

    def test_requires_at_least_one_core(self):
        with pytest.raises(ValueError):
            CpuModel(cores=0, ops_per_second=1e6, random_access_seconds=1e-7)

    def test_scaled_divides_throughput_grows_latency(self):
        cpu = CpuModel(cores=4, ops_per_second=1e6, random_access_seconds=1e-6)
        scaled = cpu.scaled(2.0)
        assert scaled.cores == 4
        assert scaled.ops_per_second == 5e5
        assert scaled.random_access_seconds == 2e-6


class TestNicModel:
    def test_transfer_uses_aggregate_bandwidth(self):
        nic = NicModel(bandwidth=1e6)
        transfer, latency = nic.service_seconds(4e6, 0, num_workers=4)
        assert transfer == 1.0
        assert latency == 0.0

    def test_per_message_latency_paid_in_parallel(self):
        nic = NicModel(bandwidth=1e6, message_latency_seconds=2e-6)
        _, latency = nic.service_seconds(0.0, 1000, num_workers=10)
        assert latency == 1000 * 2e-6 / 10

    def test_zero_traffic_is_exactly_free(self):
        # The guard must hold even for the infinite-bandwidth no-NIC
        # device, where 0/inf arithmetic would otherwise be exercised.
        nic = NicModel(bandwidth=float("inf"))
        assert nic.service_seconds(0.0, 0, num_workers=1) == (0.0, 0.0)

    def test_zero_latency_constant_charges_nothing(self):
        nic = NicModel(bandwidth=1e6, message_latency_seconds=0.0)
        _, latency = nic.service_seconds(1e6, 10**9, num_workers=2)
        assert latency == 0.0

    def test_queueing_disabled_without_factor(self):
        nic = NicModel(bandwidth=1e6, queueing_factor=0.0)
        assert nic.queueing_seconds(10.0, 0.0) == 0.0

    def test_queueing_zero_without_service(self):
        nic = NicModel(bandwidth=1e6, queueing_factor=0.5)
        assert nic.queueing_seconds(0.0, 5.0) == 0.0

    def test_queueing_saturates_at_rho_cap(self):
        # Pure communication drives rho to the cap: delay factor
        # qf * RHO_CAP / (1 - RHO_CAP) = 19 * qf.
        nic = NicModel(bandwidth=1e6, queueing_factor=0.25)
        service = 2.0
        expected = service * 0.25 * RHO_CAP / (1.0 - RHO_CAP)
        assert nic.queueing_seconds(service, 0.0) == expected

    def test_compute_overlap_keeps_queues_short(self):
        nic = NicModel(bandwidth=1e6, queueing_factor=0.25)
        congested = nic.queueing_seconds(1.0, 0.0)
        overlapped = nic.queueing_seconds(1.0, 99.0)
        assert overlapped < congested
        # rho = 1/100 when compute dominates.
        assert overlapped == pytest.approx(1.0 * 0.25 * 0.01 / 0.99)


class TestDiskModel:
    def test_striped_bytes_use_aggregate_bandwidth(self):
        disk = DiskModel(seq_bandwidth=1e8, random_bandwidth=1e6)
        seconds = disk.round_seconds(3e8, 1e8, [], [], num_workers=4)
        assert seconds == (3e8 + 1e8) / (4 * 1e8)

    def test_attributed_bytes_pay_max_over_workers(self):
        disk = DiskModel(seq_bandwidth=1e8, random_bandwidth=1e6)
        seconds = disk.round_seconds(
            0.0, 0.0, [1e8, 2e8, 0.0], [], num_workers=3
        )
        assert seconds == 2e8 / 1e8

    def test_random_bytes_pay_random_bandwidth(self):
        disk = DiskModel(seq_bandwidth=1e8, random_bandwidth=1e6)
        seconds = disk.round_seconds(0.0, 0.0, [], [5e5, 1e6], num_workers=2)
        assert seconds == 1e6 / 1e6

    def test_components_sum(self):
        disk = DiskModel(seq_bandwidth=1e8, random_bandwidth=1e6)
        seconds = disk.round_seconds(2e8, 2e8, [1e8], [1e6], num_workers=2)
        assert seconds == (4e8 / 2e8) + (1e8 / 1e8) + (1e6 / 1e6)

    def test_scaled(self):
        disk = DiskModel(seq_bandwidth=1e8, random_bandwidth=1e6).scaled(2.0)
        assert disk.seq_bandwidth == 5e7
        assert disk.random_bandwidth == 5e5


class TestRoundTimes:
    def test_network_seconds_sums_components(self):
        times = RoundTimes(
            compute_seconds=1.0,
            network_transfer_seconds=0.5,
            network_latency_seconds=0.25,
            network_queueing_seconds=0.125,
            disk_seconds=0.0,
            barrier_seconds=0.0,
        )
        assert times.network_seconds == 0.5 + 0.25 + 0.125

    def test_zeroed_overheads_leave_transfer_untouched(self):
        # Bit-compat guard: with latency and queueing at zero the
        # total *is* the transfer term, not transfer + 0.0 + 0.0.
        times = RoundTimes(
            compute_seconds=0.0,
            network_transfer_seconds=0.3,
            network_latency_seconds=0.0,
            network_queueing_seconds=0.0,
            disk_seconds=0.0,
            barrier_seconds=0.0,
        )
        assert times.network_seconds == 0.3


class TestMemoryPressure:
    def test_inactive_below_threshold(self):
        profile = make_profile(memory_pressure_factor=1.0)
        budget = profile.memory_bytes_per_worker
        assert profile.memory_pressure_multiplier(0.0) == 1.0
        at_threshold = MEMORY_PRESSURE_THRESHOLD * budget
        assert profile.memory_pressure_multiplier(at_threshold) == 1.0

    def test_grows_linearly_past_threshold(self):
        profile = make_profile(memory_pressure_factor=1.0)
        assert profile.memory_pressure_multiplier(
            0.75 * profile.memory_bytes_per_worker
        ) == pytest.approx(1.5)

    def test_clamps_at_full_ram(self):
        profile = make_profile(memory_pressure_factor=1.0)
        over = 2.0 * profile.memory_bytes_per_worker
        assert profile.memory_pressure_multiplier(over) == pytest.approx(2.0)

    def test_zero_factor_disables_term(self):
        profile = make_profile(memory_pressure_factor=0.0)
        assert profile.memory_pressure_multiplier(1e18) == 1.0

    def test_pressure_multiplies_round_compute(self):
        calm = make_profile(memory_pressure_factor=0.0)
        pressured = make_profile(memory_pressure_factor=1.0)
        record = make_record(
            ops_per_worker=[4e6, 0.0],
            live_memory_bytes=0.75 * calm.memory_bytes_per_worker,
        )
        base = calm.round_times(record, num_workers=2)
        slowed = pressured.round_times(record, num_workers=2)
        assert slowed.compute_seconds == pytest.approx(
            1.5 * base.compute_seconds
        )


class TestHardwareProfileRoundTimes:
    def test_compute_is_max_over_workers(self):
        profile = make_profile()
        record = make_record(
            ops_per_worker=[4e6, 8e6],
            random_accesses_per_worker=[0.0, 1e6],
        )
        times = profile.round_times(record, num_workers=2)
        # Worker 1: 8e6 / (4 * 1e6) + 1e6 * 1e-6 = 2 + 1.
        assert times.compute_seconds == pytest.approx(3.0)

    def test_network_terms_match_hand_math(self):
        profile = make_profile()
        record = make_record(remote_bytes=2e6, remote_messages=100)
        times = profile.round_times(record, num_workers=2)
        transfer = 2e6 / (2 * 1e6)
        latency = 100 * 1e-5 / 2
        assert times.network_transfer_seconds == transfer
        assert times.network_latency_seconds == latency
        service = transfer + latency
        rho = min(service / service, RHO_CAP)  # zero compute round
        assert times.network_queueing_seconds == pytest.approx(
            service * 0.5 * rho / (1.0 - rho)
        )

    def test_barrier_flag_and_override(self):
        profile = make_profile()
        record = make_record(barrier=True)
        assert profile.round_times(record, 2).barrier_seconds == 0.1
        assert (
            profile.round_times(
                record, 2, barrier_override=0.7
            ).barrier_seconds
            == 0.7
        )
        no_barrier = make_record(barrier=False)
        assert profile.round_times(no_barrier, 2).barrier_seconds == 0.0

    def test_straggler_penalty_extends_compute(self):
        profile = make_profile()
        record = make_record(ops_per_worker=[4e6, 0.0])
        base = profile.round_times(record, 2)
        slowed = profile.round_times(record, 2, straggler_penalty_seconds=2.5)
        assert slowed.compute_seconds == base.compute_seconds + 2.5

    def test_legacy_records_without_striped_fields(self):
        # Replayed traces predating the disk split fall back to the
        # round-total byte counters.
        class LegacyRecord:
            ops_per_worker = [0.0]
            random_accesses_per_worker = [0.0]
            remote_bytes = 0.0
            remote_messages = 0
            disk_read_bytes = 1e8
            disk_write_bytes = 1e8
            barrier = False

        profile = make_profile()
        times = profile.round_times(LegacyRecord(), num_workers=2)
        assert times.disk_seconds == (1e8 + 1e8) / (2 * 1e8)


class TestProfileTransforms:
    def test_scaled_touches_throughputs_only(self):
        profile = make_profile()
        scaled = profile.scaled(2.0, memory=4.0)
        assert scaled.cpu.ops_per_second == profile.cpu.ops_per_second / 2
        assert scaled.nic.bandwidth == profile.nic.bandwidth / 2
        assert scaled.disk.seq_bandwidth == profile.disk.seq_bandwidth / 2
        assert (
            scaled.memory_bytes_per_worker
            == profile.memory_bytes_per_worker / 4
        )
        # Latency-like constants survive scaling untouched.
        assert (
            scaled.nic.message_latency_seconds
            == profile.nic.message_latency_seconds
        )
        assert scaled.barrier_seconds == profile.barrier_seconds
        assert scaled.startup_seconds == profile.startup_seconds

    def test_dict_round_trip_is_exact(self):
        profile = make_profile(memory_pressure_factor=0.125)
        assert HardwareProfile.from_dict(profile.to_dict()) == profile

    def test_from_dict_defaults_optional_fields(self):
        data = make_profile().to_dict()
        for key in ("memory_pressure_factor", "barrier_seconds", "startup_seconds"):
            del data[key]
        restored = HardwareProfile.from_dict(data)
        assert restored.memory_pressure_factor == 0.0
        assert restored.barrier_seconds == 0.0
        assert restored.startup_seconds == 0.0
