"""Tests for the calibration fitter.

Synthetic compute-dominated runs make the objective hand-computable:
a profile whose CPU constant was halved must be recovered exactly
(the factor grid contains the inverse step), driving the RMS log
error to zero.
"""

import math

import pytest

from repro.core.cost import ClusterSpec, RoundRecord, RunProfile
from repro.hardware.calibrate import (
    FREE_PARAMETERS,
    REFERENCE_TARGETS,
    apply_factors,
    calibrate,
    rms_log_error,
)
from repro.hardware.registry import get_profile
from repro.hardware.whatif import recost

PAPER = get_profile("paper-1gbe")


@pytest.fixture()
def compute_run() -> RunProfile:
    """A two-worker run whose time is pure compute plus one barrier."""
    spec = ClusterSpec.from_profile(PAPER, num_workers=2)
    record = RoundRecord(
        name="r0",
        ops_per_worker=[4e8, 4e8],
        random_accesses_per_worker=[0.0, 0.0],
        disk_bytes_per_worker=[0.0, 0.0],
        disk_random_bytes_per_worker=[0.0, 0.0],
    )
    return RunProfile(
        cluster=spec,
        rounds=[record],
        peak_memory_per_worker=[0.0, 0.0],
        startup_seconds=0.0,
    )


class TestApplyFactors:
    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown free parameter"):
            apply_factors(PAPER, {"cpu.cores": 2.0})

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            apply_factors(PAPER, {"nic.bandwidth": 0.0})

    def test_identity_factors_return_the_profile(self):
        assert apply_factors(PAPER, {p: 1.0 for p in FREE_PARAMETERS}) is PAPER

    def test_nested_and_top_level_routing(self):
        fitted = apply_factors(
            PAPER,
            {
                "cpu.ops_per_second": 1.25,
                "nic.bandwidth": 2.0,
                "disk.random_bandwidth": 0.5,
                "barrier_seconds": 2.0,
            },
        )
        assert fitted.cpu.ops_per_second == PAPER.cpu.ops_per_second * 1.25
        assert fitted.nic.bandwidth == PAPER.nic.bandwidth * 2.0
        assert (
            fitted.disk.random_bandwidth == PAPER.disk.random_bandwidth * 0.5
        )
        assert fitted.barrier_seconds == PAPER.barrier_seconds * 2.0
        # Untouched parameters survive exactly.
        assert fitted.cpu.cores == PAPER.cpu.cores
        assert (
            fitted.nic.message_latency_seconds
            == PAPER.nic.message_latency_seconds
        )
        assert fitted.startup_seconds == PAPER.startup_seconds


class TestRmsLogError:
    def test_exact_fit_scores_zero(self, compute_run):
        target = recost(compute_run, PAPER).simulated_seconds
        assert rms_log_error([(compute_run, target)], PAPER) == 0.0

    def test_factor_of_two_miss_scores_log_two(self, compute_run):
        simulated = recost(compute_run, PAPER).simulated_seconds
        error = rms_log_error([(compute_run, simulated * 2)], PAPER)
        assert error == pytest.approx(math.log(2.0))

    def test_empty_runs_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            rms_log_error([], PAPER)

    def test_nonpositive_target_rejected(self, compute_run):
        with pytest.raises(ValueError, match="positive"):
            rms_log_error([(compute_run, 0.0)], PAPER)


class TestCalibrate:
    def test_recovers_a_halved_cpu_exactly(self, compute_run):
        target = recost(compute_run, PAPER).simulated_seconds
        perturbed = apply_factors(PAPER, {"cpu.ops_per_second": 0.5})
        result = calibrate(
            [(compute_run, target)],
            perturbed,
            parameters=("cpu.ops_per_second",),
        )
        # The grid contains the exact inverse step, and 25e6 * 0.5 * 2
        # is binary-exact, so the fit lands on zero error.
        assert result.factors["cpu.ops_per_second"] == 2.0
        assert result.improved
        assert result.error_after == 0.0
        assert (
            result.profile.cpu.ops_per_second == PAPER.cpu.ops_per_second
        )

    def test_perfect_base_makes_no_move(self, compute_run):
        target = recost(compute_run, PAPER).simulated_seconds
        result = calibrate([(compute_run, target)], PAPER)
        assert not result.improved
        assert result.error_before == 0.0
        assert all(factor == 1.0 for factor in result.factors.values())

    def test_is_deterministic(self, compute_run):
        target = recost(compute_run, PAPER).simulated_seconds * 1.7
        first = calibrate([(compute_run, target)], PAPER, sweeps=2)
        second = calibrate([(compute_run, target)], PAPER, sweeps=2)
        assert first.factors == second.factors
        assert first.error_after == second.error_after
        assert first.evaluations == second.evaluations

    def test_summary_mentions_the_error_trajectory(self, compute_run):
        target = recost(compute_run, PAPER).simulated_seconds
        result = calibrate([(compute_run, target)], PAPER, sweeps=1)
        assert "rms log error" in result.summary()


def test_reference_targets_name_runnable_cells():
    # The selfcheck stage executes these cells; keep them on catalog
    # graphs and registered platforms.
    for (platform, graph, algorithm), seconds in REFERENCE_TARGETS.items():
        assert platform in {"giraph", "mapreduce"}
        assert graph.startswith("graph500-")
        assert algorithm in {"BFS", "PR"}
        assert seconds > 0
