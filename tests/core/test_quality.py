"""Unit tests for the code-quality analyzer (Section 3.5)."""

import textwrap

from repro.core.quality import (
    QualityReport,
    analyze_file,
    analyze_source,
    analyze_tree,
    detect_regressions,
)


def _analyze(code: str):
    return analyze_source(textwrap.dedent(code))


class TestMetrics:
    def test_complexity_counts_branches(self):
        report = _analyze(
            """
            def branchy(x):
                if x > 0:
                    for i in range(x):
                        if i % 2:
                            pass
                return x
            """
        )
        (metrics,) = report.functions
        assert metrics.complexity == 4  # base + if + for + if

    def test_straight_line_complexity_one(self):
        report = _analyze("def f():\n    return 1\n")
        assert report.functions[0].complexity == 1

    def test_docstring_detection(self):
        report = _analyze(
            '''
            def documented():
                """Has a docstring."""

            def undocumented():
                pass
            '''
        )
        by_name = {m.name: m for m in report.functions}
        assert by_name["documented"].has_docstring
        assert not by_name["undocumented"].has_docstring
        assert report.documented_share == 0.5

    def test_private_functions_excluded_from_doc_share(self):
        report = _analyze("def _helper():\n    pass\n")
        assert report.documented_share == 1.0

    def test_lines_of_code_skips_comments_and_blanks(self):
        report = _analyze(
            """
            # a comment

            x = 1
            y = 2
            """
        )
        assert report.lines_of_code == 2

    def test_function_length(self):
        report = _analyze("def f():\n    a = 1\n    b = 2\n    return a + b\n")
        assert report.functions[0].length == 4


class TestFindings:
    def test_bare_except(self):
        report = _analyze(
            """
            def risky():
                try:
                    pass
                except:
                    pass
            """
        )
        assert [f.rule for f in report.findings] == ["bare-except"]

    def test_typed_except_is_fine(self):
        report = _analyze(
            """
            def careful():
                try:
                    pass
                except ValueError:
                    pass
            """
        )
        assert report.findings == []

    def test_mutable_default(self):
        report = _analyze("def f(items=[]):\n    return items\n")
        assert [f.rule for f in report.findings] == ["mutable-default"]

    def test_eq_none(self):
        report = _analyze("def f(x):\n    return x == None\n")
        assert [f.rule for f in report.findings] == ["eq-none"]

    def test_is_none_is_fine(self):
        report = _analyze("def f(x):\n    return x is None\n")
        assert report.findings == []


class TestTreeAnalysis:
    def test_analyze_tree(self, tmp_path):
        (tmp_path / "a.py").write_text("def f():\n    pass\n")
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "b.py").write_text("def g(x=[]):\n    return x\n")
        report = analyze_tree(tmp_path)
        assert len(report.files) == 2
        assert report.total_functions == 2
        assert report.total_findings == 1
        assert "potential-bugs=1" in report.summary()

    def test_analyze_file(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text("x = 1\n")
        report = analyze_file(path)
        assert report.path == str(path)

    def test_own_codebase_is_clean(self):
        # The paper's point: reference implementations ship with
        # quality reports. Ours must have no potential-bug findings.
        report = analyze_tree("src/repro")
        findings = [
            (f.path, finding.rule)
            for f in report.files
            for finding in f.findings
        ]
        assert findings == []
        assert report.documented_share > 0.95


class TestRegressions:
    def test_detects_new_bugs(self):
        before = QualityReport(files=[analyze_source("def f():\n    pass\n")])
        after = QualityReport(
            files=[analyze_source("def f(x=[]):\n    return x\n")]
        )
        signals = detect_regressions(before, after)
        assert any("potential bugs" in s for s in signals)

    def test_clean_change_no_signals(self):
        report = QualityReport(files=[analyze_source("def f():\n    pass\n")])
        assert detect_regressions(report, report) == []

    def test_detects_doc_coverage_drop(self):
        before = QualityReport(
            files=[analyze_source('def f():\n    """Doc."""\n')]
        )
        after = QualityReport(files=[analyze_source("def f():\n    pass\n")])
        signals = detect_regressions(before, after)
        assert any("documentation" in s for s in signals)
