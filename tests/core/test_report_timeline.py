"""Tests for the per-run activity-timeline sparkline."""

import pytest

from repro.core.benchmark import BenchmarkCore, BenchmarkResult
from repro.core.report import ReportGenerator
from repro.core.workload import Algorithm, BenchmarkRunSpec
from repro.graph.generators import rmat_graph
from repro.platforms.pregel.driver import GiraphPlatform


@pytest.fixture(scope="module")
def conn_result(request):
    from repro.core.cost import ClusterSpec

    core = BenchmarkCore(
        [GiraphPlatform(ClusterSpec.paper_distributed())],
        {"g": rmat_graph(8, seed=6)},
    )
    suite = core.run(BenchmarkRunSpec(algorithms=[Algorithm.CONN]))
    return suite.results[0]


def test_timeline_shape(conn_result):
    timeline = ReportGenerator().activity_timeline(conn_result)
    assert "rounds=" in timeline
    assert "peak-active=" in timeline
    # The peak round renders as the tallest bar.
    assert "█" in timeline


def test_timeline_shows_convergence_tail(conn_result):
    timeline = ReportGenerator().activity_timeline(conn_result)
    bars = timeline.split(" rounds=")[0]
    # CONN converges: the last rendered round is far below the peak.
    assert bars[-1] in " ▁▂▃"


def test_timeline_width_truncation(conn_result):
    timeline = ReportGenerator().activity_timeline(conn_result, width=2)
    bars = timeline.split(" rounds=")[0]
    assert len(bars.rstrip("…")) <= 2


def test_timeline_without_run():
    empty = BenchmarkResult(
        platform="giraph",
        graph_name="g",
        algorithm=Algorithm.BFS,
        status="failed",
    )
    assert "no run profile" in ReportGenerator().activity_timeline(empty)
