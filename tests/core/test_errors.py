"""Tests for the exception hierarchy."""

import pytest

from repro.core.errors import (
    ConfigurationError,
    GraphalyticsError,
    PlatformFailure,
    ValidationFailure,
)


def test_hierarchy():
    for exc_type in (PlatformFailure, ValidationFailure, ConfigurationError):
        assert issubclass(exc_type, GraphalyticsError)
    assert issubclass(GraphalyticsError, Exception)


def test_platform_failure_message_with_detail():
    failure = PlatformFailure("giraph", "out-of-memory", "worker 3 at 25 GiB")
    assert failure.platform == "giraph"
    assert failure.reason == "out-of-memory"
    assert "giraph: out-of-memory (worker 3 at 25 GiB)" in str(failure)


def test_platform_failure_message_without_detail():
    failure = PlatformFailure("neo4j", "timeout")
    assert str(failure) == "neo4j: timeout"
    assert failure.detail == ""


def test_catchable_as_base():
    with pytest.raises(GraphalyticsError):
        raise PlatformFailure("x", "y")
