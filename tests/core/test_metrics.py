"""Unit tests for TEPS metrics."""

import pytest

from repro.core.metrics import kteps, mteps, teps


def test_teps_basic():
    assert teps(1000, 2.0) == 500.0


def test_kteps_and_mteps_scaling():
    assert kteps(2_000_000, 1.0) == 2000.0
    assert mteps(2_000_000, 1.0) == 2.0


def test_zero_runtime_rejected():
    with pytest.raises(ValueError):
        teps(100, 0.0)
    with pytest.raises(ValueError):
        teps(100, -1.0)


def test_negative_edges_rejected():
    with pytest.raises(ValueError):
        teps(-1, 1.0)


def test_zero_edges_allowed():
    assert teps(0, 1.0) == 0.0
