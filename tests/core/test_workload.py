"""Unit tests for workload definitions."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.workload import Algorithm, AlgorithmParams, BenchmarkRunSpec, Workload
from repro.graph.graph import Graph


class TestAlgorithm:
    def test_eight_algorithms(self):
        assert [a.value for a in Algorithm] == [
            "STATS", "BFS", "CONN", "CD", "EVO", "PR", "SSSP", "LCC",
        ]

    def test_from_name_case_insensitive(self):
        assert Algorithm.from_name("bfs") is Algorithm.BFS
        assert Algorithm.from_name("Conn") is Algorithm.CONN
        assert Algorithm.from_name("pr") is Algorithm.PR
        assert Algorithm.from_name("sssp") is Algorithm.SSSP
        assert Algorithm.from_name("lcc") is Algorithm.LCC

    def test_from_name_unknown(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            Algorithm.from_name("pagerank-but-misspelled")


class TestAlgorithmParams:
    def test_default_bfs_source_is_smallest_vertex(self):
        graph = Graph.from_edges([(5, 7), (3, 5)])
        assert AlgorithmParams().resolve_bfs_source(graph) == 3

    def test_explicit_bfs_source(self):
        graph = Graph.from_edges([(5, 7), (3, 5)])
        params = AlgorithmParams().with_source(7)
        assert params.resolve_bfs_source(graph) == 7

    def test_missing_bfs_source_rejected(self):
        graph = Graph.from_edges([(0, 1)])
        with pytest.raises(ValueError):
            AlgorithmParams(bfs_source=42).resolve_bfs_source(graph)

    def test_with_source_is_functional(self):
        base = AlgorithmParams()
        derived = base.with_source(9)
        assert base.bfs_source is None
        assert derived.bfs_source == 9

    def test_sssp_on_unweighted_graph_rejected(self):
        """SSSP on an unweighted graph is a configuration error with an
        actionable message — not a KeyError deep inside an engine."""
        graph = Graph.from_edges([(0, 1), (1, 2)])
        with pytest.raises(ConfigurationError, match="weighted"):
            AlgorithmParams().resolve_sssp_source(graph)

    def test_sssp_source_resolution_on_weighted_graph(self):
        graph = Graph.from_edges([(5, 7), (3, 5)]).with_uniform_weights(seed=1)
        assert AlgorithmParams().resolve_sssp_source(graph) == 3
        assert AlgorithmParams(sssp_source=7).resolve_sssp_source(graph) == 7
        with pytest.raises(ValueError, match="not in graph"):
            AlgorithmParams(sssp_source=42).resolve_sssp_source(graph)


class TestWorkloadAndRunSpec:
    def test_workload_label(self):
        workload = Workload("patents", Algorithm.BFS)
        assert workload.label == "BFS@patents"

    def test_default_spec_selects_everything(self):
        spec = BenchmarkRunSpec()
        assert spec.selects_platform("giraph")
        assert spec.selects_graph("anything")
        assert all(spec.selects_algorithm(a) for a in Algorithm)

    def test_subset_selection(self):
        spec = BenchmarkRunSpec(
            platforms=["giraph"],
            graphs=["patents"],
            algorithms=[Algorithm.BFS],
        )
        assert spec.selects_platform("giraph")
        assert not spec.selects_platform("neo4j")
        assert spec.selects_graph("patents")
        assert not spec.selects_graph("amazon")
        assert spec.selects_algorithm(Algorithm.BFS)
        assert not spec.selects_algorithm(Algorithm.CD)
