"""Unit tests for the cost model (ClusterSpec, CostMeter, RunProfile)."""

import pytest

from repro.core.cost import ClusterSpec, CostMeter, MemoryBudgetExceeded


class TestClusterSpec:
    def test_paper_specs(self):
        distributed = ClusterSpec.paper_distributed()
        assert distributed.num_workers == 10
        assert distributed.memory_bytes_per_worker == 24 * 2 ** 30
        single = ClusterSpec.paper_single_node()
        assert single.num_workers == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec.flat("x", 0, 1, 1.0, 1e-7, 1.0, 1.0, 0.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            ClusterSpec.flat("x", 1, 0, 1.0, 1e-7, 1.0, 1.0, 0.0, 1.0, 0.0)

    def test_scaled_divides_throughputs(self):
        base = ClusterSpec.paper_distributed()
        scaled = base.scaled(4.0)
        assert scaled.cpu_ops_per_second == base.cpu_ops_per_second / 4
        assert scaled.network_bandwidth == base.network_bandwidth / 4
        assert scaled.disk_bandwidth == base.disk_bandwidth / 4
        assert scaled.memory_bytes_per_worker == base.memory_bytes_per_worker / 4
        # Random-access latency grows when throughput shrinks.
        assert scaled.random_access_seconds == base.random_access_seconds * 4
        # Latency constants are untouched.
        assert scaled.barrier_seconds == base.barrier_seconds
        assert scaled.startup_seconds == base.startup_seconds

    def test_scaled_memory_independent(self):
        base = ClusterSpec.paper_distributed()
        scaled = base.scaled(4.0, memory=16.0)
        assert scaled.memory_bytes_per_worker == base.memory_bytes_per_worker / 16

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec.paper_distributed().scaled(0)
        with pytest.raises(ValueError):
            ClusterSpec.paper_distributed().scaled(2, memory=-1)


class TestCostMeter:
    def test_round_lifecycle(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        meter.begin_round("r0")
        meter.charge_compute(0, 1000)
        record = meter.end_round(active_vertices=5)
        assert record.name == "r0"
        assert record.active_vertices == 5
        assert record.seconds > 0
        assert meter.profile.num_rounds == 1

    def test_nested_round_rejected(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        meter.begin_round("a")
        with pytest.raises(RuntimeError):
            meter.begin_round("b")

    def test_charge_outside_round_rejected(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        with pytest.raises(RuntimeError):
            meter.charge_compute(0, 1)

    def test_compute_time_is_max_over_workers(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        meter.begin_round("balanced")
        for worker in range(cluster_spec.num_workers):
            meter.charge_compute(worker, 1e6)
        balanced = meter.end_round()
        meter.begin_round("skewed")
        meter.charge_compute(0, 1e6 * cluster_spec.num_workers)
        skewed = meter.end_round()
        # Same total work; the skewed round takes ~num_workers longer.
        assert skewed.compute_seconds == pytest.approx(
            balanced.compute_seconds * cluster_spec.num_workers
        )
        assert skewed.skew == pytest.approx(cluster_spec.num_workers)
        assert balanced.skew == pytest.approx(1.0)

    def test_local_messages_cost_no_network(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        meter.begin_round("msgs")
        meter.charge_message(0, 0, 8.0)
        meter.charge_message(0, 1, 8.0)
        record = meter.end_round()
        assert record.local_messages == 1
        assert record.remote_messages == 1
        assert record.remote_bytes == 8.0 + CostMeter.MESSAGE_OVERHEAD_BYTES
        assert record.network_seconds > 0

    def test_shuffle_bulk_charge(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        meter.begin_round("shuffle")
        meter.charge_shuffle(1e6, count=100)
        record = meter.end_round()
        assert record.remote_bytes == 1e6
        assert record.remote_messages == 100

    def test_barrier_seconds(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        meter.begin_round("with-barrier")
        with_barrier = meter.end_round()
        meter.begin_round("no-barrier", barrier=False)
        without = meter.end_round()
        assert with_barrier.barrier_seconds == cluster_spec.barrier_seconds
        assert without.barrier_seconds == 0.0

    def test_startup(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        meter.charge_startup()
        assert meter.profile.startup_seconds == cluster_spec.startup_seconds
        assert meter.profile.simulated_seconds == cluster_spec.startup_seconds

    def test_random_access_slower_than_sequential(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        meter.begin_round("sequential")
        meter.charge_compute(0, 1e6)
        sequential = meter.end_round()
        meter.begin_round("random")
        meter.charge_random_access(0, 1e6)
        random = meter.end_round()
        assert random.compute_seconds > sequential.compute_seconds


class TestMemoryTracking:
    def test_peak_tracked(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        meter.allocate_memory(0, 1000)
        meter.allocate_memory(0, 500)
        meter.release_memory(0, 800)
        meter.allocate_memory(0, 100)
        assert meter.profile.peak_memory_per_worker[0] == 1500
        assert meter.memory_in_use(0) == 800

    def test_budget_enforced(self, tiny_memory_spec):
        meter = CostMeter(tiny_memory_spec)
        meter.allocate_memory(0, 2048)
        with pytest.raises(MemoryBudgetExceeded) as info:
            meter.allocate_memory(0, 1)
        assert info.value.worker == 0

    def test_enforcement_optional(self, tiny_memory_spec):
        meter = CostMeter(tiny_memory_spec, enforce_memory=False)
        meter.allocate_memory(0, 10 * 2048)
        assert meter.profile.peak_memory == 10 * 2048

    def test_release_floors_at_zero(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        meter.release_memory(0, 1000)
        assert meter.memory_in_use(0) == 0.0


class TestBulkCharges:
    """Bulk charges must be *exactly* equivalent to scalar sequences.

    This invariant is what lets the vectorized engine paths claim
    bit-identical cost profiles (ISSUE 2 tentpole part 1).
    """

    def _scalar_round(self, meter):
        meter.begin_round("scalar")
        for _ in range(137):
            meter.charge_compute(0, 3)
        for _ in range(41):
            meter.charge_random_access(0, 2)
        for _ in range(29):
            meter.charge_message(1, 2, 8.0)
        for _ in range(17):
            meter.charge_message(2, 2, 8.0)
        return meter.end_round(active_vertices=137)

    def _bulk_round(self, meter):
        meter.begin_round("bulk")
        meter.charge_compute_bulk(0, 137 * 3, random_accesses=41 * 2)
        meter.charge_messages_bulk(1, 2, 29, 8.0)
        meter.charge_messages_bulk(2, 2, 17, 8.0)
        return meter.end_round(active_vertices=137)

    def test_bulk_round_equals_scalar_round_exactly(self, cluster_spec):
        scalar = self._scalar_round(CostMeter(cluster_spec))
        bulk = self._bulk_round(CostMeter(cluster_spec))
        assert bulk.ops_per_worker == scalar.ops_per_worker
        assert (
            bulk.random_accesses_per_worker == scalar.random_accesses_per_worker
        )
        assert bulk.local_messages == scalar.local_messages
        assert bulk.remote_messages == scalar.remote_messages
        assert bulk.remote_bytes == scalar.remote_bytes
        # Exact equality, not approx: derived seconds match bit-for-bit.
        assert bulk.seconds == scalar.seconds
        assert bulk.compute_seconds == scalar.compute_seconds
        assert bulk.network_seconds == scalar.network_seconds

    def test_bulk_profile_equals_scalar_profile(self, cluster_spec):
        scalar_meter = CostMeter(cluster_spec)
        bulk_meter = CostMeter(cluster_spec)
        self._scalar_round(scalar_meter)
        self._bulk_round(bulk_meter)
        scalar, bulk = scalar_meter.profile, bulk_meter.profile
        assert bulk.simulated_seconds == scalar.simulated_seconds
        assert bulk.total_messages == scalar.total_messages
        assert bulk.total_remote_bytes == scalar.total_remote_bytes
        assert bulk.total_random_accesses == scalar.total_random_accesses

    def test_local_bulk_messages_cost_no_network(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        meter.begin_round("local")
        meter.charge_messages_bulk(3, 3, 12, 8.0)
        record = meter.end_round()
        assert record.local_messages == 12
        assert record.remote_messages == 0
        assert record.remote_bytes == 0.0

    def test_bulk_charge_outside_round_rejected(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        with pytest.raises(RuntimeError):
            meter.charge_compute_bulk(0, 10)
        with pytest.raises(RuntimeError):
            meter.charge_messages_bulk(0, 1, 2, 8.0)


class TestRunProfile:
    def test_aggregates(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        for index in range(3):
            meter.begin_round(f"r{index}")
            meter.charge_compute(0, 100)
            meter.charge_message(0, 1, 8.0)
            meter.charge_random_access(1, 10)
            meter.end_round(active_vertices=10 - index)
        profile = meter.profile
        assert profile.num_rounds == 3
        assert profile.total_messages == 3
        assert profile.total_random_accesses == 30
        assert profile.total_remote_bytes == 3 * (8.0 + CostMeter.MESSAGE_OVERHEAD_BYTES)
        assert profile.simulated_seconds == pytest.approx(
            sum(r.seconds for r in profile.rounds)
        )


class TestScaledNaming:
    def test_repeated_scaling_composes_in_the_name(self):
        base = ClusterSpec.paper_distributed()
        twice = base.scaled(2.0).scaled(2.0)
        assert twice.name == f"{base.name}/s4"
        # And the physics composes with the name.
        assert twice.cpu_ops_per_second == base.cpu_ops_per_second / 4

    def test_scaled_identity_round_trips(self):
        base = ClusterSpec.paper_distributed()
        assert base.scaled(1.0) == base
        # Identity after a real scaling keeps the composed name too.
        assert base.scaled(2.0).scaled(1.0) == base.scaled(2.0)

    def test_fractional_factors_compose(self):
        base = ClusterSpec.paper_distributed()
        assert base.scaled(4.0).scaled(0.5).name == f"{base.name}/s2"
        # Scaling back to 1x drops the suffix entirely.
        assert base.scaled(4.0).scaled(0.25).name == base.name


class TestHardwarePhysicsFixes:
    """Dedicated tests for the three cost-model physics fixes.

    Each pins the new, correct value; the differential suite pins that
    *only* these paths moved historical simulated seconds.
    """

    def test_remote_messages_pay_nic_latency(self, cluster_spec):
        # Bug 1: remote messages were free apart from their bytes. On
        # paper-1gbe each one now costs 2 microseconds, injected in
        # parallel across the ten workers.
        meter = CostMeter(cluster_spec)
        meter.begin_round("msgs", barrier=False)
        meter.charge_messages_bulk(0, 1, 1000, 84.0)
        record = meter.end_round()
        nic = cluster_spec.hardware.nic
        workers = cluster_spec.num_workers
        assert record.network_latency_seconds == (
            1000 * nic.message_latency_seconds / workers
        )
        transfer = record.remote_bytes / (workers * nic.bandwidth)
        assert record.network_transfer_seconds == transfer
        # Pure-communication round: utilization sits at the cap.
        service = transfer + record.network_latency_seconds
        expected_queueing = (
            service * nic.queueing_factor * 0.95 / (1.0 - 0.95)
        )
        assert record.network_queueing_seconds == pytest.approx(
            expected_queueing
        )
        assert record.network_seconds == (
            record.network_transfer_seconds
            + record.network_latency_seconds
            + record.network_queueing_seconds
        )

    def test_queueing_shrinks_when_compute_overlaps(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        meter.begin_round("congested", barrier=False)
        meter.charge_shuffle(1e8, count=1000)
        congested = meter.end_round()
        meter.begin_round("overlapped", barrier=False)
        meter.charge_shuffle(1e8, count=1000)
        for worker in range(cluster_spec.num_workers):
            meter.charge_compute(worker, 1e9)
        overlapped = meter.end_round()
        assert (
            overlapped.network_queueing_seconds
            < congested.network_queueing_seconds
        )
        # Transfer and latency depend only on the charges, not rho.
        assert (
            overlapped.network_transfer_seconds
            == congested.network_transfer_seconds
        )

    def test_single_worker_shuffle_stays_local(self):
        # Bug 2: one-worker clusters charged shuffles as remote
        # traffic, paying network time no wire would ever see.
        spec = ClusterSpec.from_profile("paper-1gbe", num_workers=1)
        meter = CostMeter(spec)
        meter.begin_round("shuffle", barrier=False)
        meter.charge_shuffle(10_000.0, count=7)
        record = meter.end_round()
        assert record.local_messages == 7
        assert record.remote_messages == 0
        assert record.remote_bytes == 0.0
        assert record.network_seconds == 0.0

    def test_striped_disk_pays_aggregate_bandwidth(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        meter.begin_round("striped", barrier=False)
        meter.charge_disk_read(None, 1e9)
        meter.charge_disk_write(None, 5e8)
        record = meter.end_round()
        assert record.striped_disk_read_bytes == 1e9
        assert record.striped_disk_write_bytes == 5e8
        assert record.disk_seconds == (1e9 + 5e8) / (
            cluster_spec.num_workers * cluster_spec.disk_bandwidth
        )

    def test_skewed_disk_worker_is_a_straggler(self, cluster_spec):
        # Bug 3: all disk bytes were pooled at aggregate bandwidth, so
        # one worker spilling 10x its share looked as cheap as a
        # balanced write. Worker-attributed bytes now pay the max.
        meter = CostMeter(cluster_spec)
        meter.begin_round("skewed", barrier=False)
        meter.charge_disk_write(0, 1e9)
        meter.charge_disk_write(1, 1e8)
        skewed = meter.end_round()
        assert skewed.disk_seconds == 1e9 / cluster_spec.disk_bandwidth
        # The same total striped would be nearly num_workers cheaper.
        meter.begin_round("balanced", barrier=False)
        meter.charge_disk_write(None, 1.1e9)
        balanced = meter.end_round()
        assert balanced.disk_seconds < skewed.disk_seconds
        # Round totals are identical either way: replay and reports
        # keep seeing all traffic.
        assert skewed.disk_write_bytes == balanced.disk_write_bytes

    def test_random_disk_bytes_pay_random_bandwidth(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        meter.begin_round("seeks", barrier=False)
        meter.charge_disk_random(2, 1e6)
        record = meter.end_round()
        random_bw = cluster_spec.hardware.disk.random_bandwidth
        assert record.disk_seconds == 1e6 / random_bw
        assert record.disk_read_bytes == 1e6
        meter.begin_round("seek-writes", barrier=False)
        meter.charge_disk_random(2, 1e6, write=True)
        writes = meter.end_round()
        assert writes.disk_write_bytes == 1e6
        assert writes.disk_seconds == record.disk_seconds


class TestBarrierPhysics:
    """end_round charges max over workers of *combined* work.

    Regression tests: the meter used to add ``max(ops)/rate`` and
    ``max(random)*latency`` computed over *different* workers, so a
    round whose compute-heavy and locality-heavy workers differed was
    overcharged — no single worker pays both maxima in a BSP round.
    """

    def test_disjoint_maxima_charge_slowest_worker_only(self, cluster_spec):
        meter = CostMeter(cluster_spec)
        meter.begin_round("mixed", barrier=False)
        # Worker 0 is compute-heavy, worker 1 is locality-heavy.
        meter.charge_compute(0, 1_000_000)
        meter.charge_random_access(1, 2_000_000)
        record = meter.end_round()
        spec = cluster_spec
        per_worker = [
            1_000_000 / spec.worker_ops_per_second,
            2_000_000 * spec.random_access_seconds,
        ]
        assert record.compute_seconds == pytest.approx(max(per_worker))
        # The old (wrong) charge was the sum of both maxima.
        assert record.compute_seconds < sum(per_worker)

    def test_same_worker_maxima_unchanged(self, cluster_spec):
        # When one worker holds both maxima, combined-max equals the
        # old separate-maxima formula: no behaviour shift for the
        # balanced charge patterns the golden fixtures cover.
        meter = CostMeter(cluster_spec)
        meter.begin_round("hot", barrier=False)
        meter.charge_compute(3, 500_000)
        meter.charge_random_access(3, 800_000)
        record = meter.end_round()
        expected = (
            500_000 / cluster_spec.worker_ops_per_second
            + 800_000 * cluster_spec.random_access_seconds
        )
        assert record.compute_seconds == pytest.approx(expected)
