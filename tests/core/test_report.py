"""Unit tests for the Report Generator."""

import pytest

from repro.core.benchmark import BenchmarkCore
from repro.core.report import ReportGenerator
from repro.core.validation import OutputValidator
from repro.core.workload import Algorithm
from repro.graph.generators import rmat_graph
from repro.platforms.graphdb.driver import Neo4jPlatform
from repro.platforms.pregel.driver import GiraphPlatform


@pytest.fixture(scope="module")
def suite(request):
    from repro.core.cost import ClusterSpec

    graphs = {"tiny": rmat_graph(6, edge_factor=4, seed=2)}
    core = BenchmarkCore(
        [GiraphPlatform(ClusterSpec.paper_distributed()), Neo4jPlatform()],
        graphs,
        validator=OutputValidator(),
    )
    return core.run()


def test_runtime_matrix_structure(suite):
    matrix = ReportGenerator().runtime_matrix(suite)
    assert "giraph" in matrix
    assert "neo4j" in matrix
    for algorithm in Algorithm:
        assert algorithm.value in matrix


def test_kteps_matrix(suite):
    table = ReportGenerator().kteps_matrix(suite, Algorithm.CONN)
    assert "kTEPS for CONN" in table
    assert "tiny" in table


def test_failure_section_when_clean(suite):
    assert ReportGenerator().failure_section(suite) == "No failures."


def test_detail_section_lists_all_successes(suite):
    details = ReportGenerator().detail_section(suite)
    assert details.count("giraph") == len(Algorithm)
    assert "max-skew" in details


def test_full_render_includes_configuration(suite):
    generator = ReportGenerator(configuration={"cluster": "test-rig"})
    text = generator.render(suite)
    assert "cluster = test-rig" in text
    assert "missing values indicate failures" in text


def test_write_to_file(suite, tmp_path):
    path = ReportGenerator().write(suite, tmp_path / "out" / "report.txt")
    assert path.exists()
    assert "Graphalytics benchmark report" in path.read_text()


def test_failure_cells_labeled_by_cause():
    from repro.core.benchmark import BenchmarkResult, BenchmarkSuiteResult

    def failed(platform, reason, status="failed"):
        return BenchmarkResult(
            platform=platform,
            graph_name="g",
            algorithm=Algorithm.BFS,
            status=status,
            failure_reason=reason,
        )

    suite = BenchmarkSuiteResult(
        results=[
            failed("giraph", "out-of-memory"),
            failed("graphx", "ETL: out-of-memory"),
            failed("mapreduce", "time-limit"),
            failed("neo4j", "worker-crash: worker 2 crashed in round 5"),
            failed("medusa", "message-loss: channel 0->1 dropped"),
            failed("virtuoso", "timeout"),
            failed("graphlab", "ranks differ", status="invalid"),
            failed("stratosphere", "error: KeyError: 'x'"),
        ]
    )
    matrix = ReportGenerator().runtime_matrix(suite)
    for label in ("OOM", "T/O", "CRASH", "LOST", "INV", "FAIL"):
        assert label in matrix
    # The dash is reserved for combinations that never ran.
    assert "—" not in matrix
    failures = ReportGenerator().failure_section(suite)
    assert "out-of-memory" in failures


def test_absent_combo_rendered_as_dash():
    from repro.core.benchmark import BenchmarkResult, BenchmarkSuiteResult

    suite = BenchmarkSuiteResult(
        results=[
            BenchmarkResult(
                platform="giraph",
                graph_name="g",
                algorithm=Algorithm.BFS,
                status="success",
                runtime_seconds=1.0,
            ),
            BenchmarkResult(
                platform="neo4j",
                graph_name="h",
                algorithm=Algorithm.BFS,
                status="success",
                runtime_seconds=2.0,
            ),
        ]
    )
    # giraph never ran graph "h" and neo4j never ran "g": dashes.
    matrix = ReportGenerator().runtime_matrix(suite)
    assert "—" in matrix


def test_runtime_cells_show_dominant_chokepoint(suite):
    import re

    matrix = ReportGenerator().runtime_matrix(suite)
    # Every successful cell carries its one-letter dominant label.
    cells = re.findall(r"\d+\.\d+ ([A-Z])", matrix)
    assert cells
    assert set(cells) <= set("NMLS")


def test_render_includes_chokepoint_legend(suite):
    text = ReportGenerator().render(suite)
    assert "N=network, M=memory, L=locality, S=skew" in text
    assert "dominant=" in text


def test_html_cells_annotate_dominant_chokepoint(suite):
    html = ReportGenerator().render_html(suite)
    assert 'title="dominant choke point:' in html
    assert "<sup>" in html


def test_profileless_results_render_without_letter():
    from repro.core.benchmark import BenchmarkResult, BenchmarkSuiteResult

    suite = BenchmarkSuiteResult(
        results=[
            BenchmarkResult(
                platform="giraph",
                graph_name="g",
                algorithm=Algorithm.BFS,
                status="success",
                runtime_seconds=1.5,
            )
        ]
    )
    matrix = ReportGenerator().runtime_matrix(suite)
    assert "1.5" in matrix
    html = ReportGenerator().render_html(suite)
    assert "<sup>" not in html
