"""Tests for the HTML report rendering."""

import pytest

from repro.core.benchmark import BenchmarkResult, BenchmarkSuiteResult
from repro.core.report import ReportGenerator
from repro.core.workload import Algorithm


@pytest.fixture
def suite():
    return BenchmarkSuiteResult(
        results=[
            BenchmarkResult(
                platform="giraph",
                graph_name="tiny",
                algorithm=Algorithm.BFS,
                status="success",
                runtime_seconds=12.5,
                kteps=3.0,
            ),
            BenchmarkResult(
                platform="neo4j",
                graph_name="tiny",
                algorithm=Algorithm.BFS,
                status="failed",
                failure_reason="out-of-memory <budget>",
            ),
        ]
    )


def test_html_structure(suite):
    html = ReportGenerator(configuration={"cluster": "c&d"}).render_html(suite)
    assert html.startswith("<!DOCTYPE html>")
    assert "<th>giraph</th>" in html
    assert "<th>neo4j</th>" in html
    assert "12.5" in html


def test_html_escapes_content(suite):
    html = ReportGenerator(configuration={"cluster": "c&d"}).render_html(suite)
    assert "c&amp;d" in html
    assert "&lt;budget&gt;" in html
    assert "<budget>" not in html


def test_failures_highlighted(suite):
    html = ReportGenerator().render_html(suite)
    assert 'class="failure"' in html
    assert "out-of-memory" in html


def test_write_html(suite, tmp_path):
    path = ReportGenerator().write_html(suite, tmp_path / "r" / "report.html")
    assert path.exists()
    assert "<html" in path.read_text()


def test_no_failures_renders_none():
    suite = BenchmarkSuiteResult(
        results=[
            BenchmarkResult(
                platform="giraph",
                graph_name="g",
                algorithm=Algorithm.CONN,
                status="success",
                runtime_seconds=1.0,
                kteps=1.0,
            )
        ]
    )
    html = ReportGenerator().render_html(suite)
    assert "<li>none</li>" in html
