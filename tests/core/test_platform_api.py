"""Tests for the Platform base-class contract."""

import pytest

from repro.core.cost import CostMeter, MemoryBudgetExceeded
from repro.core.errors import PlatformFailure
from repro.core.platform_api import GraphHandle, Platform
from repro.core.workload import Algorithm, AlgorithmParams
from repro.graph.graph import Graph


class _MinimalPlatform(Platform):
    """Smallest possible driver, for contract tests."""

    name = "minimal"

    def _load(self, name, graph):
        return GraphHandle(name=name, platform=self.name, graph=graph)

    def _execute(self, handle, algorithm, params):
        meter = CostMeter(self.cluster)
        meter.begin_round("noop")
        meter.end_round()
        return {"params": params}, meter.profile


class _OOMOnLoad(Platform):
    name = "oom-load"

    def _load(self, name, graph):
        raise MemoryBudgetExceeded(0, 100.0, 10.0)

    def _execute(self, handle, algorithm, params):  # pragma: no cover
        raise AssertionError


class _OOMOnRun(_MinimalPlatform):
    name = "oom-run"

    def _execute(self, handle, algorithm, params):
        raise MemoryBudgetExceeded(2, 100.0, 10.0)


@pytest.fixture
def graph():
    return Graph.from_edges([(0, 1), (1, 2)])


def test_upload_times_etl(cluster_spec, graph):
    platform = _MinimalPlatform(cluster_spec)
    handle = platform.upload_graph("g", graph)
    assert handle.etl_seconds >= 0.0
    assert handle.platform == "minimal"


def test_default_params_injected(cluster_spec, graph):
    platform = _MinimalPlatform(cluster_spec)
    handle = platform.upload_graph("g", graph)
    run = platform.run_algorithm(handle, Algorithm.BFS)
    assert isinstance(run.output["params"], AlgorithmParams)
    assert run.wall_seconds >= 0.0
    assert run.algorithm is Algorithm.BFS


def test_supported_algorithms_default_all(cluster_spec):
    assert _MinimalPlatform(cluster_spec).supported_algorithms() == list(Algorithm)


def test_delete_graph_default_noop(cluster_spec, graph):
    platform = _MinimalPlatform(cluster_spec)
    handle = platform.upload_graph("g", graph)
    platform.delete_graph(handle)  # must not raise


def test_memory_error_on_load_becomes_platform_failure(cluster_spec, graph):
    platform = _OOMOnLoad(cluster_spec)
    with pytest.raises(PlatformFailure) as info:
        platform.upload_graph("g", graph)
    assert info.value.reason == "out-of-memory"
    assert info.value.platform == "oom-load"


def test_memory_error_on_run_becomes_platform_failure(cluster_spec, graph):
    platform = _OOMOnRun(cluster_spec)
    handle = platform.upload_graph("g", graph)
    with pytest.raises(PlatformFailure) as info:
        platform.run_algorithm(handle, Algorithm.CONN)
    assert info.value.reason == "out-of-memory"


def test_foreign_handle_rejected(cluster_spec, graph):
    owner = _MinimalPlatform(cluster_spec)
    other = _OOMOnRun(cluster_spec)
    handle = owner.upload_graph("g", graph)
    with pytest.raises(ValueError, match="loaded into"):
        other.run_algorithm(handle, Algorithm.BFS)
