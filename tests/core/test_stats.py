"""Tests for the repetition-statistics layer (core/stats.py)."""

from __future__ import annotations

import math

import pytest

from repro.core.stats import RuntimeStats, t_critical_95


class TestTCritical:
    def test_small_degrees_match_table(self):
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(4) == pytest.approx(2.776)
        assert t_critical_95(30) == pytest.approx(2.042)

    def test_large_degrees_fall_back_to_z(self):
        assert t_critical_95(31) == pytest.approx(1.960)
        assert t_critical_95(10_000) == pytest.approx(1.960)

    def test_invalid_degrees_rejected(self):
        with pytest.raises(ValueError):
            t_critical_95(0)


class TestFromSamples:
    def test_empty_samples_give_none(self):
        assert RuntimeStats.from_samples([]) is None

    def test_single_sample_collapses_interval(self):
        stats = RuntimeStats.from_samples([10.0])
        assert stats is not None
        assert stats.n == 1
        assert stats.mean == 10.0
        assert stats.std == 0.0
        assert stats.ci95_low == stats.ci95_high == 10.0
        assert not stats.has_spread

    def test_known_sample_moments(self):
        samples = [10.0, 12.0, 14.0]
        stats = RuntimeStats.from_samples(samples)
        assert stats.mean == pytest.approx(12.0)
        # ddof=1 sample standard deviation.
        assert stats.std == pytest.approx(2.0)
        half = t_critical_95(2) * 2.0 / math.sqrt(3)
        assert stats.ci95_low == pytest.approx(12.0 - half)
        assert stats.ci95_high == pytest.approx(12.0 + half)
        assert stats.has_spread

    def test_half_width_matches_interval(self):
        stats = RuntimeStats.from_samples([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.half_width == pytest.approx(
            (stats.ci95_high - stats.ci95_low) / 2
        )


class TestFromMoments:
    def test_round_trips_samples(self):
        samples = [9.5, 10.0, 10.5, 11.0, 9.0]
        direct = RuntimeStats.from_samples(samples)
        rebuilt = RuntimeStats.from_moments(direct.mean, direct.std, direct.n)
        assert rebuilt.ci95_low == pytest.approx(direct.ci95_low)
        assert rebuilt.ci95_high == pytest.approx(direct.ci95_high)


class TestOverlap:
    def test_overlapping_intervals(self):
        a = RuntimeStats.from_moments(10.0, 0.5, 5)
        b = RuntimeStats.from_moments(10.3, 0.5, 5)
        assert a.overlaps(b)
        assert b.overlaps(a)

    def test_disjoint_intervals(self):
        a = RuntimeStats.from_moments(10.0, 0.1, 5)
        b = RuntimeStats.from_moments(20.0, 0.1, 5)
        assert not a.overlaps(b)
        assert not b.overlaps(a)


class TestDescribe:
    def test_repeated_run_shows_spread(self):
        stats = RuntimeStats.from_moments(10.0, 1.5, 5)
        assert "±" in stats.describe()
        assert "n=5" in stats.describe()

    def test_single_run_shows_count_only(self):
        stats = RuntimeStats.from_samples([10.0])
        assert "±" not in stats.describe()
        assert "n=1" in stats.describe()
