"""Unit tests for the results database."""

import pytest

from repro.core.benchmark import BenchmarkResult, BenchmarkSuiteResult
from repro.core.results_db import ResultsDatabase
from repro.core.workload import Algorithm


def _suite(runtime=10.0, status="success", platform="giraph"):
    return BenchmarkSuiteResult(
        results=[
            BenchmarkResult(
                platform=platform,
                graph_name="tiny",
                algorithm=Algorithm.BFS,
                status=status,
                runtime_seconds=runtime if status == "success" else None,
                kteps=5.0 if status == "success" else None,
                failure_reason=None if status == "success" else "out-of-memory",
            )
        ]
    )


@pytest.fixture
def db(tmp_path):
    return ResultsDatabase(tmp_path / "results.jsonl")


def test_submit_and_query(db):
    assert db.submit(_suite()) == 1
    rows = db.query()
    assert len(rows) == 1
    assert rows[0].platform == "giraph"
    assert rows[0].runtime_seconds == 10.0


def test_query_filters(db):
    db.submit(_suite(platform="giraph"))
    db.submit(_suite(platform="neo4j"))
    db.submit(_suite(status="failed", platform="giraph"))
    assert len(db.query(platform="giraph")) == 2
    assert len(db.query(platform="giraph", status="success")) == 1
    assert len(db.query(algorithm="BFS")) == 3
    assert db.query(graph="other") == []


def test_append_only_accumulates(db):
    db.submit(_suite(runtime=10.0))
    db.submit(_suite(runtime=5.0))
    assert len(db.query()) == 2


def test_best_runtime(db):
    db.submit(_suite(runtime=10.0))
    db.submit(_suite(runtime=5.0))
    db.submit(_suite(status="failed"))
    assert db.best_runtime("giraph", "tiny", "BFS") == 5.0
    assert db.best_runtime("neo4j", "tiny", "BFS") is None


def test_missing_file_queries_empty(tmp_path):
    db = ResultsDatabase(tmp_path / "never-written.jsonl")
    assert db.query() == []


class TestLeaderboard:
    def test_ranked_by_best_runtime(self, db):
        db.submit(_suite(runtime=20.0, platform="giraph"))
        db.submit(_suite(runtime=10.0, platform="giraph"))
        db.submit(_suite(runtime=5.0, platform="neo4j"))
        db.submit(_suite(status="failed", platform="graphx"))
        ranking = db.leaderboard("tiny", "BFS")
        assert ranking == [("neo4j", 5.0), ("giraph", 10.0)]

    def test_empty_leaderboard(self, db):
        assert db.leaderboard("tiny", "BFS") == []


class TestSubmissions:
    def test_export_import_roundtrip(self, db, tmp_path):
        document = ResultsDatabase.export_submission(
            _suite(runtime=7.0), system_info={"cluster": "10x E5620"}
        )
        assert document["schema"] == ResultsDatabase.SUBMISSION_SCHEMA
        assert document["system"]["cluster"] == "10x E5620"
        other = ResultsDatabase(tmp_path / "remote.jsonl")
        assert other.import_submission(document) == 1
        assert other.best_runtime("giraph", "tiny", "BFS") == 7.0

    def test_wrong_schema_rejected(self, db):
        with pytest.raises(ValueError, match="schema"):
            db.import_submission({"schema": "v0", "results": []})

    def test_malformed_results_rejected(self, db):
        with pytest.raises(ValueError, match="malformed"):
            db.import_submission(
                {
                    "schema": ResultsDatabase.SUBMISSION_SCHEMA,
                    "results": [{"bogus": 1}],
                }
            )

    def test_missing_results_rejected(self, db):
        with pytest.raises(ValueError, match="results"):
            db.import_submission({"schema": ResultsDatabase.SUBMISSION_SCHEMA})


class TestSchemaResilience:
    def test_new_rows_carry_chokepoint_columns(self, db):
        import json

        db.submit(_suite())
        row = json.loads(db.path.read_text().splitlines()[0])
        assert "dominant_chokepoint" in row
        assert "num_rounds" in row
        assert "remote_bytes" in row
        assert "max_skew" in row

    def test_old_schema_rows_still_parse(self, db):
        # Rows written before the choke-point columns existed lack
        # them entirely; the dataclass defaults must absorb that.
        import json

        old_row = {
            "submitted_at": 1.0,
            "platform": "giraph",
            "graph": "tiny",
            "algorithm": "BFS",
            "status": "success",
            "runtime_seconds": 5.0,
            "kteps": 1.0,
            "failure_reason": None,
            "cluster": "cluster-10",
        }
        db.path.write_text(json.dumps(old_row) + "\n")
        (row,) = db.query()
        assert row.dominant_chokepoint is None
        assert db.skipped_rows == 0

    def test_malformed_rows_skipped_with_warning(self, db):
        # Regression: a single unknown-keyed row (written by a *newer*
        # schema) used to crash every query with a TypeError.
        import json

        db.submit(_suite())
        with open(db.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"platform": "giraph"}) + "\n")
            handle.write("{not json at all\n")
            handle.write(
                json.dumps({"from_the_future": True, "platform": "x"}) + "\n"
            )
        with pytest.warns(UserWarning, match="skipped 3 malformed"):
            rows = db.query()
        assert len(rows) == 1
        assert db.skipped_rows == 3

    def test_clean_query_resets_skip_counter(self, db):
        import json
        import warnings

        db.submit(_suite())
        with open(db.path, "a", encoding="utf-8") as handle:
            handle.write("broken\n")
        with pytest.warns(UserWarning):
            db.query()
        db.path.write_text(
            "\n".join(
                line
                for line in db.path.read_text().splitlines()
                if line != "broken"
            )
            + "\n"
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            rows = db.query()
        assert db.skipped_rows == 0
        assert len(rows) == 1

    def test_best_runtime_survives_bad_rows(self, db):
        db.submit(_suite(runtime=7.0))
        with open(db.path, "a", encoding="utf-8") as handle:
            handle.write("garbage\n")
        with pytest.warns(UserWarning):
            best = db.best_runtime("giraph", "tiny", "BFS")
        assert best == 7.0
