"""Tests for unknown-key warnings and the new rigor keys in configs."""

from __future__ import annotations

import warnings

import pytest

from repro.core.config import (
    GraphConfig,
    load_benchmark_config,
    load_graph_config,
    save_graph_config,
)
from repro.core.errors import ConfigurationError


class TestUnknownKeyWarnings:
    def test_misspelled_key_warns_with_hint(self, tmp_path):
        path = tmp_path / "bench.ini"
        path.write_text("[benchmark]\nrepetition = 5\n")
        with pytest.warns(UserWarning, match="did you mean 'repetitions'"):
            spec, _ = load_benchmark_config(path)
        # The misspelling is ignored: the suite silently runs once —
        # which is exactly why the warning (and audit rule) exist.
        assert spec.repetitions == 1

    def test_unknown_section_warns(self, tmp_path):
        path = tmp_path / "g.ini"
        path.write_text(
            "[graph]\nname = g\ncatalog = graph500-8\n[benchmrk]\nx = 1\n"
        )
        with pytest.warns(UserWarning, match=r"unknown section \[benchmrk\]"):
            load_graph_config(path)

    def test_graph_key_typo_warns(self, tmp_path):
        path = tmp_path / "g.ini"
        path.write_text("[graph]\nname = g\ncatalog = graph500-8\nsede = 1\n")
        with pytest.warns(UserWarning, match="did you mean 'seed'"):
            load_graph_config(path)

    def test_clean_configs_warn_nothing(self, tmp_path):
        bench = tmp_path / "bench.ini"
        bench.write_text(
            "[benchmark]\nplatforms = giraph\nrepetitions = 3\nwarmup = 1\n"
        )
        graph = tmp_path / "g.ini"
        graph.write_text(
            "[graph]\nname = g\ncatalog = graph500-8\nseed = 4\n\n"
            "[bfs]\nsource = 0\n"
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            load_benchmark_config(bench)
            load_graph_config(graph)


class TestRigorKeys:
    def test_repetitions_and_warmup_parsed(self, tmp_path):
        path = tmp_path / "bench.ini"
        path.write_text("[benchmark]\nrepetitions = 5\nwarmup = 2\n")
        spec, _ = load_benchmark_config(path)
        assert spec.repetitions == 5
        assert spec.warmup_runs == 2

    def test_defaults_when_absent(self, tmp_path):
        path = tmp_path / "bench.ini"
        path.write_text("[benchmark]\nplatforms = giraph\n")
        spec, _ = load_benchmark_config(path)
        assert spec.repetitions == 1
        assert spec.warmup_runs == 0

    def test_invalid_repetitions_rejected(self, tmp_path):
        path = tmp_path / "bench.ini"
        path.write_text("[benchmark]\nrepetitions = 0\n")
        with pytest.raises(ConfigurationError, match="repetitions"):
            load_benchmark_config(path)

    def test_non_numeric_warmup_rejected(self, tmp_path):
        path = tmp_path / "bench.ini"
        path.write_text("[benchmark]\nwarmup = lots\n")
        with pytest.raises(ConfigurationError, match="warmup"):
            load_benchmark_config(path)


class TestGraphSeed:
    def test_seed_round_trips(self, tmp_path):
        config = GraphConfig(name="g", catalog="graph500-8", seed=11)
        path = save_graph_config(config, tmp_path / "g.ini")
        loaded = load_graph_config(path)
        assert loaded.seed == 11

    def test_seed_defaults_to_none(self, tmp_path):
        path = tmp_path / "g.ini"
        path.write_text("[graph]\nname = g\ncatalog = graph500-8\n")
        assert load_graph_config(path).seed is None

    def test_invalid_seed_rejected(self, tmp_path):
        path = tmp_path / "g.ini"
        path.write_text("[graph]\nname = g\ncatalog = graph500-8\nseed = x\n")
        with pytest.raises(ConfigurationError, match="seed"):
            load_graph_config(path)

    def test_seed_changes_generated_graph(self, tmp_path):
        path_a = tmp_path / "a.ini"
        path_a.write_text(
            "[graph]\nname = a\ncatalog = graph500-6\nseed = 1\n"
        )
        path_b = tmp_path / "b.ini"
        path_b.write_text(
            "[graph]\nname = b\ncatalog = graph500-6\nseed = 2\n"
        )
        graph_a = load_graph_config(path_a).load()
        graph_b = load_graph_config(path_b).load()
        assert graph_a.num_vertices == graph_b.num_vertices
        assert graph_a.num_edges != graph_b.num_edges
