"""Unit tests for configuration files."""

import pytest

from repro.core.config import (
    GraphConfig,
    load_benchmark_config,
    load_graph_config,
    save_graph_config,
)
from repro.core.errors import ConfigurationError
from repro.core.workload import Algorithm


class TestGraphConfig:
    def test_load(self, tmp_path):
        path = tmp_path / "patents.ini"
        path.write_text(
            "[graph]\n"
            "name = patents\n"
            "edge_file = graphs/patents.e\n"
            "vertex_file = graphs/patents.v\n"
            "directed = false\n"
            "\n"
            "[bfs]\n"
            "source = 420\n"
        )
        config = load_graph_config(path)
        assert config.name == "patents"
        assert config.edge_file == "graphs/patents.e"
        assert config.vertex_file == "graphs/patents.v"
        assert not config.directed
        assert config.params.bfs_source == 420

    def test_roundtrip(self, tmp_path):
        from repro.core.workload import AlgorithmParams

        config = GraphConfig(
            name="g", edge_file="g.e", directed=True,
            params=AlgorithmParams(bfs_source=7),
        )
        path = save_graph_config(config, tmp_path / "g.ini")
        loaded = load_graph_config(path)
        assert loaded.name == "g"
        assert loaded.directed
        assert loaded.params.bfs_source == 7
        assert loaded.vertex_file is None

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_graph_config(tmp_path / "absent.ini")

    def test_missing_section(self, tmp_path):
        path = tmp_path / "bad.ini"
        path.write_text("[other]\nx = 1\n")
        with pytest.raises(ConfigurationError, match="graph"):
            load_graph_config(path)

    def test_missing_required_keys(self, tmp_path):
        path = tmp_path / "bad.ini"
        path.write_text("[graph]\nname = x\n")
        with pytest.raises(ConfigurationError, match="edge_file"):
            load_graph_config(path)

    def test_bad_boolean(self, tmp_path):
        path = tmp_path / "bad.ini"
        path.write_text("[graph]\nname = x\nedge_file = x.e\ndirected = maybe\n")
        with pytest.raises(ConfigurationError, match="boolean"):
            load_graph_config(path)

    def test_bad_source(self, tmp_path):
        path = tmp_path / "bad.ini"
        path.write_text(
            "[graph]\nname = x\nedge_file = x.e\n[bfs]\nsource = abc\n"
        )
        with pytest.raises(ConfigurationError, match="BFS source"):
            load_graph_config(path)


class TestBenchmarkConfig:
    def test_load_full(self, tmp_path):
        path = tmp_path / "bench.ini"
        path.write_text(
            "[benchmark]\n"
            "platforms = giraph, mapreduce\n"
            "graphs = patents, snb-1000\n"
            "algorithms = BFS, CONN\n"
            "time_limit_seconds = 10000\n"
            "validate = false\n"
        )
        spec, time_limit = load_benchmark_config(path)
        assert spec.platforms == ["giraph", "mapreduce"]
        assert spec.graphs == ["patents", "snb-1000"]
        assert spec.algorithms == [Algorithm.BFS, Algorithm.CONN]
        assert not spec.validate_outputs
        assert time_limit == 10000.0

    def test_defaults_select_all(self, tmp_path):
        path = tmp_path / "bench.ini"
        path.write_text("[benchmark]\n")
        spec, time_limit = load_benchmark_config(path)
        assert spec.platforms is None
        assert spec.graphs is None
        assert spec.algorithms is None
        assert spec.validate_outputs
        assert time_limit is None

    def test_unknown_algorithm(self, tmp_path):
        path = tmp_path / "bench.ini"
        path.write_text("[benchmark]\nalgorithms = PAGERANK\n")
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            load_benchmark_config(path)

    def test_bad_time_limit(self, tmp_path):
        path = tmp_path / "bench.ini"
        path.write_text("[benchmark]\ntime_limit_seconds = soon\n")
        with pytest.raises(ConfigurationError, match="time limit"):
            load_benchmark_config(path)


class TestCatalogConfigs:
    def test_catalog_backed_config(self, tmp_path):
        path = tmp_path / "g.ini"
        path.write_text("[graph]\nname = g500\ncatalog = graph500-7\n")
        config = load_graph_config(path)
        assert config.catalog == "graph500-7"
        assert config.edge_file is None
        graph = config.load()
        assert graph.num_vertices == 128

    def test_file_backed_config_load(self, tmp_path):
        from repro.graph.generators import rmat_graph
        from repro.graph.io import write_edge_list, write_vertex_list

        graph = rmat_graph(6, seed=3)
        write_edge_list(graph, tmp_path / "g.e")
        write_vertex_list([int(v) for v in graph.vertices], tmp_path / "g.v")
        path = tmp_path / "g.ini"
        path.write_text(
            "[graph]\nname = g\nedge_file = g.e\nvertex_file = g.v\n"
        )
        config = load_graph_config(path)
        assert config.load(base_dir=tmp_path) == graph

    def test_both_sources_rejected(self, tmp_path):
        path = tmp_path / "bad.ini"
        path.write_text(
            "[graph]\nname = g\nedge_file = g.e\ncatalog = patents\n"
        )
        with pytest.raises(ConfigurationError, match="exactly one"):
            load_graph_config(path)

    def test_neither_source_rejected(self, tmp_path):
        path = tmp_path / "bad.ini"
        path.write_text("[graph]\nname = g\n")
        with pytest.raises(ConfigurationError, match="exactly one"):
            load_graph_config(path)

    def test_catalog_roundtrip(self, tmp_path):
        config = GraphConfig(name="g", catalog="graph500-7")
        path = save_graph_config(config, tmp_path / "g.ini")
        loaded = load_graph_config(path)
        assert loaded.catalog == "graph500-7"
        assert loaded.edge_file is None

    def test_shipped_configs_parse_and_load(self):
        from pathlib import Path

        shipped = sorted(
            path
            for path in Path("configs").glob("*.ini")
            if "[graph]" in path.read_text()
        )
        assert len(shipped) >= 7
        for path in shipped:
            config = load_graph_config(path)
            assert config.catalog is not None
        # One representative config actually materializes.
        small = load_graph_config("configs/patents.ini")
        graph = small.load()
        assert graph.num_vertices > 0
