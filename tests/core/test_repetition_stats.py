"""Repetition statistics end to end: benchmark -> results db -> report."""

from __future__ import annotations

import json

from repro.core.benchmark import BenchmarkCore
from repro.core.cost import ClusterSpec
from repro.core.report import ReportGenerator
from repro.core.results_db import ResultsDatabase
from repro.core.workload import Algorithm, BenchmarkRunSpec
from repro.datasets.catalog import load_dataset
from repro.platforms.registry import create_platform_fleet


def _run_suite(repetitions=3, warmup=1):
    platforms = create_platform_fleet(
        ClusterSpec.paper_distributed(), names=["giraph"]
    )
    graphs = {"graph500-6": load_dataset("graph500-6")}
    core = BenchmarkCore(platforms, graphs)
    spec = BenchmarkRunSpec(
        algorithms=[Algorithm.BFS],
        repetitions=repetitions,
        warmup_runs=warmup,
    )
    return core.run(spec)


class TestBenchmarkRepetitions:
    def test_repetition_runtimes_collected(self):
        suite = _run_suite(repetitions=3)
        (result,) = suite.results
        assert result.succeeded
        assert len(result.repetition_runtimes) == 3
        assert result.warmup_runs == 1
        stats = result.runtime_stats
        assert stats is not None
        assert stats.n == 3
        assert result.runtime_seconds == stats.mean

    def test_warmup_does_not_change_measurement(self):
        # The simulation is deterministic, so warmup runs must leave
        # the measured mean bit-identical: warmup only discards.
        cold = _run_suite(repetitions=2, warmup=0)
        warm = _run_suite(repetitions=2, warmup=3)
        assert (
            cold.results[0].runtime_seconds == warm.results[0].runtime_seconds
        )


class TestResultsDbColumns:
    def test_stats_columns_round_trip(self, tmp_path):
        suite = _run_suite(repetitions=3)
        db = ResultsDatabase(tmp_path / "results.jsonl")
        db.submit(suite)
        (row,) = db.query()
        assert row.num_repetitions == 3
        assert row.runtime_mean == suite.results[0].runtime_seconds
        assert row.runtime_std is not None
        stats = row.runtime_stats()
        assert stats is not None and stats.n == 3

    def test_old_rows_without_columns_still_parse(self, tmp_path):
        legacy = {
            "submitted_at": 1.0,
            "platform": "giraph",
            "graph": "tiny",
            "algorithm": "BFS",
            "status": "success",
            "runtime_seconds": 10.0,
            "kteps": 1.0,
            "failure_reason": None,
            "cluster": None,
        }
        path = tmp_path / "results.jsonl"
        path.write_text(json.dumps(legacy) + "\n")
        db = ResultsDatabase(path)
        (row,) = db.query()
        assert row.num_repetitions is None
        assert row.runtime_stats() is None


class TestReportRendering:
    def test_text_cell_shows_spread(self):
        suite = _run_suite(repetitions=3)
        text = ReportGenerator().render(suite)
        assert "±" in text

    def test_single_run_cell_is_bare_mean(self):
        suite = _run_suite(repetitions=1, warmup=0)
        assert "±" not in ReportGenerator().render(suite)

    def test_html_cell_carries_ci_tooltip(self):
        suite = _run_suite(repetitions=3)
        html = ReportGenerator().render_html(suite)
        assert "CI95=" in html
        assert "n=3" in html
