"""Seed-sweep regression: distinct seeds, repeated runs, quiet audit.

ROADMAP item 5 (statistical rigor, after "SoK: The Faults in our Graph
Benchmarks") asks suites to vary generator seeds and to repeat
measurements. This regression pins both behaviors at once: a small
suite over three distinctly-seeded graphs at ``repetitions=3`` must
populate every cell's :class:`RuntimeStats` variance fields, and the
matching graph-config manifests must leave the ``seed-monoculture``
audit rule quiet (while the rule itself stays armed for genuinely
repeated seeds).
"""

from __future__ import annotations

from repro.analysis import audit_paths
from repro.core.benchmark import SUCCESS, BenchmarkCore
from repro.core.cost import ClusterSpec
from repro.core.validation import OutputValidator
from repro.core.workload import Algorithm, BenchmarkRunSpec
from repro.graph.generators import rmat_graph
from repro.platforms.pregel.driver import GiraphPlatform

#: Three distinct generator seeds — a deliberate anti-monoculture.
SWEEP_SEEDS = (11, 22, 33)

BENCHMARK_INI = """\
[benchmark]
platforms = giraph
graphs = sweep-s11, sweep-s22, sweep-s33
algorithms = PR
time_limit_seconds = 10000
validate = true
repetitions = 3
warmup = 1
"""

GRAPH_INI = """\
[graph]
name = sweep-s{seed}
catalog = graph500-8
seed = {seed}
"""


def _sweep_graphs():
    return {
        f"sweep-s{seed}": rmat_graph(scale=5, edge_factor=4, seed=seed)
        for seed in SWEEP_SEEDS
    }


def test_seed_sweep_populates_runtime_stats():
    """3 seeds x repetitions=3: every cell records three repetition
    runtimes and a full RuntimeStats (mean inside the CI, std >= 0)."""
    core = BenchmarkCore(
        [GiraphPlatform(ClusterSpec.paper_distributed())],
        _sweep_graphs(),
        validator=OutputValidator(),
    )
    suite = core.run(
        BenchmarkRunSpec(algorithms=[Algorithm.PR], repetitions=3)
    )
    assert len(suite.results) == len(SWEEP_SEEDS)
    for result in suite.results:
        assert result.status == SUCCESS
        assert len(result.repetition_runtimes) == 3
        stats = result.runtime_stats
        assert stats is not None
        assert stats.n == 3
        assert stats.mean > 0
        assert stats.std >= 0.0
        assert stats.ci95_low <= stats.mean <= stats.ci95_high
        assert stats.has_spread


def test_seed_sweep_graphs_differ():
    """Distinct seeds must actually produce distinct graphs — the
    sweep is pointless otherwise."""
    edge_sets = {
        name: frozenset(graph.iter_edges())
        for name, graph in _sweep_graphs().items()
    }
    assert len(set(edge_sets.values())) == len(SWEEP_SEEDS)


def test_seed_monoculture_rule_stays_quiet(tmp_path):
    """The sweep's manifests (three graph configs, three distinct
    seeds) pass the audit without a seed-monoculture finding."""
    (tmp_path / "benchmark.ini").write_text(BENCHMARK_INI, encoding="utf-8")
    for seed in SWEEP_SEEDS:
        (tmp_path / f"sweep-s{seed}.ini").write_text(
            GRAPH_INI.format(seed=seed), encoding="utf-8"
        )
    report = audit_paths([tmp_path])
    rules = {finding.rule for _, finding in report.iter_findings()}
    assert "seed-monoculture" not in rules
    assert "single-run" not in rules  # repetitions=3 satisfies the bar


def test_seed_monoculture_rule_still_armed(tmp_path):
    """Counter-check: pinning every graph to one seed DOES fire the
    rule — quiet above means 'passed', not 'disabled'."""
    (tmp_path / "benchmark.ini").write_text(BENCHMARK_INI, encoding="utf-8")
    for seed in SWEEP_SEEDS:
        (tmp_path / f"sweep-s{seed}.ini").write_text(
            GRAPH_INI.format(seed=11).replace(
                "name = sweep-s11", f"name = sweep-s{seed}"
            ),
            encoding="utf-8",
        )
    report = audit_paths([tmp_path])
    rules = {finding.rule for _, finding in report.iter_findings()}
    assert "seed-monoculture" in rules
