"""Unit and integration tests for the Benchmark Core."""

import pickle

import pytest

from repro.core.benchmark import FAILED, INVALID, SUCCESS, BenchmarkCore
from repro.core.cost import ClusterSpec, CostMeter
from repro.core.errors import PlatformFailure, SuiteWorkerError
from repro.core.platform_api import GraphHandle, Platform
from repro.core.validation import OutputValidator
from repro.core.workload import Algorithm, BenchmarkRunSpec
from repro.graph.generators import rmat_graph
from repro.platforms.pregel.driver import GiraphPlatform
from repro.robustness.faults import FaultPlan


class _BrokenPlatform(Platform):
    """Always computes a wrong CONN labeling (everything else right)."""

    name = "broken"

    def _load(self, name, graph):
        return GraphHandle(name=name, platform=self.name, graph=graph)

    def supported_algorithms(self):
        return [Algorithm.CONN]

    def _execute(self, handle, algorithm, params):
        meter = CostMeter(self.cluster)
        meter.begin_round("compute")
        meter.charge_compute(0, 10)
        meter.end_round()
        wrong = {int(v): -1 for v in handle.graph.vertices}
        return wrong, meter.profile


class _CrashingPlatform(Platform):
    """Fails every run with an out-of-memory error."""

    name = "crashing"

    def _load(self, name, graph):
        return GraphHandle(name=name, platform=self.name, graph=graph)

    def _execute(self, handle, algorithm, params):
        raise PlatformFailure(self.name, "out-of-memory", "synthetic")


class _EtlFailingPlatform(Platform):
    """Fails at graph upload time."""

    name = "etl-fails"

    def _load(self, name, graph):
        raise PlatformFailure(self.name, "out-of-memory", "during ETL")

    def _execute(self, handle, algorithm, params):  # pragma: no cover
        raise AssertionError("never reached")


class _BuggyPlatform(Platform):
    """Raises a bare (non-platform) exception — a harness bug."""

    name = "buggy"

    def _load(self, name, graph):
        return GraphHandle(name=name, platform=self.name, graph=graph)

    def supported_algorithms(self):
        return [Algorithm.BFS]

    def _execute(self, handle, algorithm, params):
        raise RuntimeError("unexpected harness bug")


class _TransientFailure(PlatformFailure):
    transient = True


class _FlakyPlatform(Platform):
    """Fails with a transient error until the configured attempt."""

    name = "flaky"

    def __init__(self, cluster, succeed_on_attempt=2):
        super().__init__(cluster)
        self.succeed_on_attempt = succeed_on_attempt
        self.calls = 0

    def _load(self, name, graph):
        return GraphHandle(name=name, platform=self.name, graph=graph)

    def supported_algorithms(self):
        return [Algorithm.CONN]

    def _execute(self, handle, algorithm, params):
        self.calls += 1
        if self.calls < self.succeed_on_attempt:
            raise _TransientFailure(self.name, "worker-crash", "flaky")
        meter = CostMeter(self.cluster)
        meter.begin_round("compute")
        meter.charge_compute(0, 10)
        meter.end_round()
        labels = {}
        for source, target in handle.graph.to_undirected().iter_edges():
            labels.setdefault(source, source)
            labels.setdefault(target, target)
        return labels, meter.profile


@pytest.fixture
def graphs():
    return {"tiny": rmat_graph(6, edge_factor=4, seed=1)}


class TestSuccessPath:
    def test_full_run_with_validation(self, graphs, cluster_spec):
        core = BenchmarkCore(
            [GiraphPlatform(cluster_spec)], graphs, validator=OutputValidator()
        )
        suite = core.run()
        assert len(suite.results) == len(Algorithm)
        assert all(r.status == SUCCESS for r in suite.results)
        assert all(r.runtime_seconds > 0 for r in suite.results)
        assert all(r.kteps > 0 for r in suite.results)
        assert all(r.samples for r in suite.results)

    def test_runtime_table_layout(self, graphs, cluster_spec):
        core = BenchmarkCore([GiraphPlatform(cluster_spec)], graphs)
        suite = core.run()
        table = suite.runtime_table()
        assert ("BFS", "tiny", "giraph") in table
        assert table[("BFS", "tiny", "giraph")] > 0

    def test_run_spec_subsets(self, graphs, cluster_spec):
        core = BenchmarkCore([GiraphPlatform(cluster_spec)], graphs)
        suite = core.run(BenchmarkRunSpec(algorithms=[Algorithm.BFS]))
        assert [r.algorithm for r in suite.results] == [Algorithm.BFS]


class TestFailurePaths:
    def test_platform_failure_recorded(self, graphs, cluster_spec):
        core = BenchmarkCore([_CrashingPlatform(cluster_spec)], graphs)
        suite = core.run()
        assert all(r.status == FAILED for r in suite.results)
        assert all(r.failure_reason == "out-of-memory" for r in suite.results)
        assert all(r.runtime_seconds is None for r in suite.results)

    def test_etl_failure_fails_all_algorithms(self, graphs, cluster_spec):
        core = BenchmarkCore([_EtlFailingPlatform(cluster_spec)], graphs)
        suite = core.run()
        assert len(suite.results) == len(Algorithm)
        assert all(r.failure_reason == "ETL: out-of-memory" for r in suite.results)

    def test_validation_failure_marked_invalid(self, graphs, cluster_spec):
        core = BenchmarkCore(
            [_BrokenPlatform(cluster_spec)], graphs, validator=OutputValidator()
        )
        suite = core.run()
        (result,) = suite.results
        assert result.status == INVALID
        assert "CONN" in result.failure_reason

    def test_validation_skippable_per_spec(self, graphs, cluster_spec):
        core = BenchmarkCore(
            [_BrokenPlatform(cluster_spec)], graphs, validator=OutputValidator()
        )
        suite = core.run(BenchmarkRunSpec(validate_outputs=False))
        (result,) = suite.results
        assert result.status == SUCCESS

    def test_time_limit(self, graphs, cluster_spec):
        core = BenchmarkCore(
            [GiraphPlatform(cluster_spec)], graphs, time_limit_seconds=1e-6
        )
        suite = core.run()
        assert all(r.status == FAILED for r in suite.results)
        assert all(r.failure_reason == "time-limit" for r in suite.results)

    def test_out_of_memory_failure_end_to_end(self, graphs):
        spec = ClusterSpec.paper_distributed().replace(
            memory_bytes_per_worker=64.0
        )
        core = BenchmarkCore([GiraphPlatform(spec)], graphs)
        suite = core.run()
        assert all(not r.succeeded for r in suite.results)
        assert any("out-of-memory" in r.failure_reason for r in suite.results)


class TestConstruction:
    def test_duplicate_platform_names_rejected(self, graphs, cluster_spec):
        with pytest.raises(ValueError, match="duplicate"):
            BenchmarkCore(
                [GiraphPlatform(cluster_spec), GiraphPlatform(cluster_spec)], graphs
            )

    def test_mismatched_handle_rejected(self, graphs, cluster_spec):
        giraph = GiraphPlatform(cluster_spec)
        handle = giraph.upload_graph("tiny", graphs["tiny"])
        other = _BrokenPlatform(cluster_spec)
        with pytest.raises(ValueError, match="loaded into"):
            other.run_algorithm(handle, Algorithm.CONN)


class TestRepetitions:
    def test_repetitions_recorded_and_averaged(self, graphs, cluster_spec):
        core = BenchmarkCore([GiraphPlatform(cluster_spec)], graphs)
        suite = core.run(
            BenchmarkRunSpec(algorithms=[Algorithm.BFS], repetitions=3)
        )
        (result,) = suite.results
        assert len(result.repetition_runtimes) == 3
        assert result.runtime_seconds == pytest.approx(
            sum(result.repetition_runtimes) / 3
        )

    def test_single_repetition_default(self, graphs, cluster_spec):
        core = BenchmarkCore([GiraphPlatform(cluster_spec)], graphs)
        suite = core.run(BenchmarkRunSpec(algorithms=[Algorithm.BFS]))
        (result,) = suite.results
        assert len(result.repetition_runtimes) == 1

    def test_deterministic_platform_repeats_identically(self, graphs, cluster_spec):
        core = BenchmarkCore([GiraphPlatform(cluster_spec)], graphs)
        suite = core.run(
            BenchmarkRunSpec(algorithms=[Algorithm.CONN], repetitions=2)
        )
        (result,) = suite.results
        first, second = result.repetition_runtimes
        assert first == pytest.approx(second)


def _canonical(suite):
    """A suite with every real wall-clock field stripped.

    What remains must be byte-identical between sequential and
    parallel execution — the parallel runner's contract.
    """
    canon = []
    for result in suite.results:
        run = None
        if result.run is not None:
            profile = result.run.profile
            rounds = tuple(
                (
                    record.name,
                    tuple(record.ops_per_worker),
                    tuple(record.random_accesses_per_worker),
                    record.local_messages,
                    record.remote_messages,
                    record.remote_bytes,
                    record.disk_read_bytes,
                    record.disk_write_bytes,
                    record.active_vertices,
                    record.barrier_seconds,
                    record.seconds,
                )
                for record in profile.rounds
            )
            run = (
                result.run.platform,
                result.run.graph_name,
                result.run.algorithm,
                repr(result.run.output),
                rounds,
                profile.simulated_seconds,
                profile.total_messages,
                tuple(profile.peak_memory_per_worker),
            )
        canon.append(
            (
                result.platform,
                result.graph_name,
                result.algorithm,
                result.status,
                result.runtime_seconds,
                result.kteps,
                result.failure_reason,
                tuple(result.repetition_runtimes),
                tuple(result.samples),
                run,
            )
        )
    return canon


class TestParallelRunner:
    def test_parallel_identical_to_sequential(self, cluster_spec):
        graphs = {
            "a": rmat_graph(6, edge_factor=4, seed=1),
            "b": rmat_graph(5, edge_factor=4, seed=2),
        }
        make = lambda: BenchmarkCore(
            [GiraphPlatform(cluster_spec)], graphs, validator=OutputValidator()
        )
        spec = BenchmarkRunSpec(algorithms=[Algorithm.BFS, Algorithm.CONN])
        sequential = make().run(spec)
        parallel = make().run(spec, parallel=2)
        assert _canonical(parallel) == _canonical(sequential)

    def test_parallel_merges_in_spec_order(self, cluster_spec):
        graphs = {
            "a": rmat_graph(5, edge_factor=4, seed=1),
            "b": rmat_graph(5, edge_factor=4, seed=2),
        }
        core = BenchmarkCore([GiraphPlatform(cluster_spec)], graphs)
        suite = core.run(BenchmarkRunSpec(algorithms=[Algorithm.BFS]), parallel=2)
        assert [r.graph_name for r in suite.results] == ["a", "b"]

    def test_parallel_graph_store_identical_to_sequential(
        self, cluster_spec, tmp_path
    ):
        """mmap-shipped graphs change nothing but the transport.

        With ``graph_store`` set, pool workers receive a cache path
        and ``Graph.load(..., mmap=True)`` the CSR arrays instead of
        unpickling the graph; results must stay byte-identical to the
        sequential in-memory run.
        """
        graphs = {
            "a": rmat_graph(6, edge_factor=4, seed=1),
            "b": rmat_graph(5, edge_factor=4, seed=2),
        }
        spec = BenchmarkRunSpec(algorithms=[Algorithm.BFS, Algorithm.CONN])
        sequential = BenchmarkCore([GiraphPlatform(cluster_spec)], graphs).run(
            spec
        )
        store = tmp_path / "graph-store"
        mmapped = BenchmarkCore(
            [GiraphPlatform(cluster_spec)], graphs, graph_store=store
        ).run(spec, parallel=2)
        assert _canonical(mmapped) == _canonical(sequential)
        # One content-addressed entry per distinct graph.
        entries = [p for p in store.iterdir() if (p / "meta.json").is_file()]
        assert len(entries) == 2

    def test_graph_store_entries_are_reused(self, cluster_spec, tmp_path):
        graphs = {
            "a": rmat_graph(5, edge_factor=4, seed=1),
            "b": rmat_graph(5, edge_factor=4, seed=2),
        }
        store = tmp_path / "graph-store"
        make = lambda: BenchmarkCore(
            [GiraphPlatform(cluster_spec)], graphs, graph_store=store
        )
        make().run(BenchmarkRunSpec(algorithms=[Algorithm.BFS]), parallel=2)
        entry = next(p for p in store.iterdir() if (p / "meta.json").is_file())
        stamp = (entry / "meta.json").stat().st_mtime_ns
        make().run(BenchmarkRunSpec(algorithms=[Algorithm.BFS]), parallel=2)
        assert (entry / "meta.json").stat().st_mtime_ns == stamp

    def test_parallel_preserves_failures(self, graphs, cluster_spec):
        core = BenchmarkCore([_EtlFailingPlatform(cluster_spec)], graphs)
        suite = core.run(parallel=2)
        assert suite.results
        assert all(r.status == FAILED for r in suite.results)
        assert all("ETL" in r.failure_reason for r in suite.results)


class TestGracefulDegradation:
    def test_unexpected_error_becomes_failed_cell(self, graphs, cluster_spec):
        core = BenchmarkCore([_BuggyPlatform(cluster_spec)], graphs)
        suite = core.run()
        (result,) = suite.results
        assert result.status == FAILED
        assert result.failure_reason == "error: RuntimeError: unexpected harness bug"

    def test_strict_mode_raises_with_combo_context(self, graphs, cluster_spec):
        core = BenchmarkCore([_BuggyPlatform(cluster_spec)], graphs, strict=True)
        with pytest.raises(SuiteWorkerError) as error:
            core.run()
        assert error.value.platform == "buggy"
        assert error.value.graph_name == "tiny"
        assert "RuntimeError" in error.value.detail
        assert "BFS" in error.value.detail

    def test_degraded_suite_keeps_running(self, graphs, cluster_spec):
        """A buggy platform costs its own cells, not the suite."""
        core = BenchmarkCore(
            [_BuggyPlatform(cluster_spec), GiraphPlatform(cluster_spec)], graphs
        )
        suite = core.run(BenchmarkRunSpec(algorithms=[Algorithm.BFS]))
        by_platform = {r.platform: r for r in suite.results}
        assert by_platform["buggy"].status == FAILED
        assert by_platform["giraph"].status == SUCCESS


class TestWorkerErrorContext:
    """Regression: parallel worker exceptions keep their combo."""

    def test_parallel_strict_error_names_the_combo(self, graphs, cluster_spec):
        core = BenchmarkCore(
            [_BuggyPlatform(cluster_spec), GiraphPlatform(cluster_spec)],
            graphs,
            strict=True,
        )
        with pytest.raises(SuiteWorkerError) as error:
            core.run(BenchmarkRunSpec(algorithms=[Algorithm.BFS]), parallel=2)
        # The (platform, graph) combo survived the process boundary.
        assert error.value.platform == "buggy"
        assert error.value.graph_name == "tiny"

    def test_worker_error_survives_pickling(self):
        original = SuiteWorkerError("giraph", "patents", "BFS: KeyError: 7")
        clone = pickle.loads(pickle.dumps(original))
        assert isinstance(clone, SuiteWorkerError)
        assert clone.platform == "giraph"
        assert clone.graph_name == "patents"
        assert clone.detail == "BFS: KeyError: 7"
        assert str(clone) == str(original)


class TestRetry:
    def test_transient_failure_retried_until_success(self, graphs, cluster_spec):
        platform = _FlakyPlatform(cluster_spec, succeed_on_attempt=3)
        core = BenchmarkCore(
            [platform], graphs, max_retries=2, retry_backoff_seconds=0.5
        )
        suite = core.run()
        (result,) = suite.results
        assert result.status == SUCCESS
        assert result.attempts == 3
        # Linear backoff: 1*0.5 + 2*0.5.
        assert result.backoff_seconds == pytest.approx(1.5)

    def test_retry_budget_exhausted_records_failure(self, graphs, cluster_spec):
        platform = _FlakyPlatform(cluster_spec, succeed_on_attempt=5)
        core = BenchmarkCore([platform], graphs, max_retries=1)
        suite = core.run()
        (result,) = suite.results
        assert result.status == FAILED
        assert result.failure_reason == "worker-crash"
        assert result.attempts == 2

    def test_permanent_failures_never_retried(self, graphs, cluster_spec):
        core = BenchmarkCore([_CrashingPlatform(cluster_spec)], graphs, max_retries=3)
        suite = core.run()
        assert all(r.attempts == 1 for r in suite.results)

    def test_negative_retries_rejected(self, graphs, cluster_spec):
        with pytest.raises(ValueError, match="max_retries"):
            BenchmarkCore([GiraphPlatform(cluster_spec)], graphs, max_retries=-1)

    def test_fault_plan_flows_through_parallel_runner(self, cluster_spec):
        """Injected transient faults retry identically in pool workers."""
        graphs = {"tiny": rmat_graph(5, edge_factor=4, seed=3)}
        plan = FaultPlan(crash_worker=0, crash_round=0, transient_attempts=1)
        make = lambda: BenchmarkCore(
            [GiraphPlatform(cluster_spec)],
            graphs,
            fault_plan=plan,
            max_retries=1,
        )
        spec = BenchmarkRunSpec(algorithms=[Algorithm.BFS])
        sequential = make().run(spec)
        parallel = make().run(spec, parallel=2)
        for suite in (sequential, parallel):
            (result,) = suite.results
            assert result.status == SUCCESS
            assert result.attempts == 2
        assert _canonical(sequential) == _canonical(parallel)
