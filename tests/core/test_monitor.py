"""Unit tests for the System Monitor."""

import pytest

from repro.core.cost import CostMeter
from repro.core.monitor import SystemMonitor


@pytest.fixture
def profile(cluster_spec):
    meter = CostMeter(cluster_spec)
    meter.begin_round("balanced")
    for worker in range(cluster_spec.num_workers):
        meter.charge_compute(worker, 1000)
    meter.end_round(active_vertices=100)
    meter.begin_round("skewed")
    meter.charge_compute(0, 5000)
    meter.charge_message(0, 1, 64.0)
    meter.end_round(active_vertices=3)
    return meter.profile


def test_one_sample_per_round(profile):
    samples = SystemMonitor().samples_from_profile(profile)
    assert [s.round_name for s in samples] == ["balanced", "skewed"]


def test_utilization_reflects_balance(profile):
    balanced, skewed = SystemMonitor().samples_from_profile(profile)
    assert balanced.cpu_utilization == pytest.approx(1.0)
    # Only 1 of 10 workers busy.
    assert skewed.cpu_utilization == pytest.approx(0.1)
    assert skewed.skew == pytest.approx(10.0)


def test_timestamps_monotonic(profile):
    samples = SystemMonitor().samples_from_profile(profile)
    assert samples[0].timestamp < samples[1].timestamp


def test_network_and_activity_reported(profile):
    _balanced, skewed = SystemMonitor().samples_from_profile(profile)
    assert skewed.network_bytes > 0
    assert skewed.active_vertices == 3


def test_host_statistics_present():
    stats = SystemMonitor().host_statistics()
    assert stats["wall_seconds"] >= 0
    assert stats["cpu_seconds"] >= 0
    assert stats["max_rss_bytes"] > 0


def test_csv_export(profile, tmp_path):
    monitor = SystemMonitor()
    samples = monitor.samples_from_profile(profile)
    path = monitor.write_csv(samples, tmp_path / "out" / "utilization.csv")
    lines = path.read_text().splitlines()
    assert lines[0].startswith("round,timestamp_s")
    assert len(lines) == 1 + len(samples)
    assert lines[1].startswith("balanced,")


class TestMaxRssUnits:
    """ru_maxrss is kilobytes on Linux but bytes on macOS."""

    def _stats_on(self, monkeypatch, platform):
        import repro.core.monitor as monitor_module

        monkeypatch.setattr(monitor_module.sys, "platform", platform)
        return SystemMonitor().host_statistics()

    def test_linux_scales_kilobytes(self, monkeypatch):
        import resource

        stats = self._stats_on(monkeypatch, "linux")
        usage = resource.getrusage(resource.RUSAGE_SELF)
        assert stats["max_rss_bytes"] == pytest.approx(
            usage.ru_maxrss * 1024, rel=0.1
        )

    def test_darwin_reports_bytes_unscaled(self, monkeypatch):
        linux = self._stats_on(monkeypatch, "linux")
        darwin = self._stats_on(monkeypatch, "darwin")
        # Same process, same counter: the only difference is the unit
        # branch, so Darwin must come out 1024x smaller.
        assert darwin["max_rss_bytes"] == pytest.approx(
            linux["max_rss_bytes"] / 1024, rel=0.1
        )
