"""Unit tests for the choke-point analysis (Section 2.1)."""

import pytest

from repro.core.chokepoints import analyze_profile
from repro.core.cost import CostMeter
from repro.core.workload import Algorithm, AlgorithmParams
from repro.platforms.pregel.driver import GiraphPlatform


def _profile(cluster_spec, build):
    meter = CostMeter(cluster_spec)
    build(meter)
    return meter.profile


def test_network_share(cluster_spec):
    def build(meter):
        meter.begin_round("talky")
        meter.charge_shuffle(1e9)
        meter.end_round()

    report = analyze_profile(_profile(cluster_spec, build))
    assert report.total_remote_bytes == 1e9
    assert report.network_time_share > 0.5
    assert report.dominant() == "network"


def test_memory_share(cluster_spec):
    def build(meter):
        meter.allocate_memory(0, cluster_spec.memory_bytes_per_worker * 0.9)
        meter.begin_round("big")
        meter.charge_compute(0, 1)
        meter.end_round()

    report = analyze_profile(_profile(cluster_spec, build))
    assert report.memory_budget_share == pytest.approx(0.9)


def test_locality_share(cluster_spec):
    def build(meter):
        meter.begin_round("chase")
        meter.charge_random_access(0, 900)
        meter.charge_compute(0, 100)
        meter.end_round()

    report = analyze_profile(_profile(cluster_spec, build))
    assert report.random_access_share == pytest.approx(0.9)


def test_skew_and_tail(cluster_spec):
    def build(meter):
        meter.begin_round("busy")
        meter.charge_compute(0, 1000)
        meter.charge_compute(1, 1000)
        meter.end_round(active_vertices=1000)
        for index in range(8):
            meter.begin_round(f"tail-{index}")
            meter.charge_compute(0, 1)
            meter.end_round(active_vertices=1)

    report = analyze_profile(_profile(cluster_spec, build))
    # 8 of 9 rounds are in the convergence tail (1 < 1% of 1000 is
    # false — 1/1000 = 0.1%, below the 1% threshold).
    assert report.tail_rounds == 8
    assert report.tail_round_share == pytest.approx(8 / 9)
    assert report.barrier_time_share > 0.5
    assert report.max_skew >= report.mean_skew >= 1.0


def test_empty_profile(cluster_spec):
    report = analyze_profile(_profile(cluster_spec, lambda meter: None))
    assert report.tail_rounds == 0
    assert report.mean_skew == 1.0
    assert report.network_time_share == 0.0


def test_real_run_tail_detected(cluster_spec, medium_rmat):
    # CONN on a skewed graph converges with low-activity final rounds.
    platform = GiraphPlatform(cluster_spec)
    handle = platform.upload_graph("g", medium_rmat)
    run = platform.run_algorithm(handle, Algorithm.CONN, AlgorithmParams())
    report = analyze_profile(run.profile, tail_threshold=0.05)
    assert report.tail_rounds >= 1
    assert report.max_skew > 1.0


def test_purely_random_rounds_counted_in_skew(cluster_spec):
    # Regression: the skew-sample filter used ``total_ops > 0``, so a
    # round whose work is all random accesses (pointer-chasing
    # traversals) was silently dropped from the skew statistics.
    def build(meter):
        meter.begin_round("pointer-chase")
        meter.charge_random_access(0, 9_000)
        meter.charge_random_access(1, 1_000)
        meter.end_round(active_vertices=10)

    report = analyze_profile(_profile(cluster_spec, build))
    record_skew = 9_000 / ((9_000 + 1_000) / cluster_spec.num_workers)
    assert report.max_skew == pytest.approx(record_skew)
    assert report.mean_skew == pytest.approx(record_skew)
    assert report.busiest_round_skew == pytest.approx(record_skew)


def test_busiest_round_picked_by_combined_work(cluster_spec):
    def build(meter):
        meter.begin_round("ops-light")
        meter.charge_compute(0, 100)
        meter.end_round()
        meter.begin_round("random-heavy")
        meter.charge_random_access(0, 1_000_000)
        meter.end_round()

    report = analyze_profile(_profile(cluster_spec, build))
    # The random-heavy round does the most combined work; its skew
    # (all work on worker 0 of 10) must win the busiest-round slot.
    assert report.busiest_round_skew == pytest.approx(10.0)
