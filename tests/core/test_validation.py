"""Unit tests for the Output Validator."""

import pytest

from repro.algorithms import bfs, connected_components, stats
from repro.algorithms.stats import GraphStats
from repro.core.errors import ValidationFailure
from repro.core.validation import OutputValidator
from repro.core.workload import Algorithm, AlgorithmParams


@pytest.fixture
def validator():
    return OutputValidator()


@pytest.fixture
def params():
    return AlgorithmParams(evo_new_vertices=10)


class TestReference:
    def test_reference_dispatch(self, validator, params, small_rmat):
        # SSSP is the one algorithm with an input requirement: it
        # refuses unweighted graphs, so it dispatches on a weighted
        # twin of the same graph.
        weighted = small_rmat.with_uniform_weights(seed=1)
        for algorithm in Algorithm:
            graph = weighted if algorithm is Algorithm.SSSP else small_rmat
            reference = validator.reference_output(graph, algorithm, params)
            assert reference is not None

    def test_reference_bfs_uses_params_source(self, validator, small_rmat):
        params = AlgorithmParams().with_source(int(small_rmat.vertices[3]))
        reference = validator.reference_output(small_rmat, Algorithm.BFS, params)
        assert reference[int(small_rmat.vertices[3])] == 0


class TestValidate:
    def test_correct_outputs_pass(self, validator, params, small_rmat):
        validator.validate(
            small_rmat, Algorithm.BFS, params,
            bfs(small_rmat, params.resolve_bfs_source(small_rmat)),
        )
        validator.validate(
            small_rmat, Algorithm.CONN, params, connected_components(small_rmat)
        )
        validator.validate(small_rmat, Algorithm.STATS, params, stats(small_rmat))

    def test_wrong_value_rejected(self, validator, params, small_rmat):
        output = connected_components(small_rmat)
        vertex = next(iter(output))
        output[vertex] = output[vertex] + 1
        with pytest.raises(ValidationFailure, match="wrong values"):
            validator.validate(small_rmat, Algorithm.CONN, params, output)

    def test_missing_key_rejected(self, validator, params, small_rmat):
        output = connected_components(small_rmat)
        output.pop(next(iter(output)))
        with pytest.raises(ValidationFailure, match="missing"):
            validator.validate(small_rmat, Algorithm.CONN, params, output)

    def test_extra_key_rejected(self, validator, params, small_rmat):
        output = connected_components(small_rmat)
        output[10 ** 9] = 0
        with pytest.raises(ValidationFailure, match="unexpected"):
            validator.validate(small_rmat, Algorithm.CONN, params, output)

    def test_stats_wrong_counts(self, validator, params, small_rmat):
        correct = stats(small_rmat)
        wrong = GraphStats(
            num_vertices=correct.num_vertices + 1,
            num_edges=correct.num_edges,
            mean_local_clustering=correct.mean_local_clustering,
        )
        with pytest.raises(ValidationFailure, match="vertex count"):
            validator.validate(small_rmat, Algorithm.STATS, params, wrong)

    def test_stats_clustering_tolerance(self, params, small_rmat):
        lenient = OutputValidator(clustering_tolerance=0.5)
        correct = stats(small_rmat)
        drifted = GraphStats(
            num_vertices=correct.num_vertices,
            num_edges=correct.num_edges,
            mean_local_clustering=correct.mean_local_clustering + 0.1,
        )
        lenient.validate(small_rmat, Algorithm.STATS, params, drifted)
        with pytest.raises(ValidationFailure):
            OutputValidator().validate(small_rmat, Algorithm.STATS, params, drifted)

    def test_stats_wrong_type(self, validator, params, small_rmat):
        with pytest.raises(ValidationFailure, match="GraphStats"):
            validator.validate(small_rmat, Algorithm.STATS, params, {"n": 1})

    def test_non_dict_output_described(self, validator, params, small_rmat):
        with pytest.raises(ValidationFailure, match="got list"):
            validator.validate(small_rmat, Algorithm.BFS, params, [1, 2, 3])
