"""Tests for ETL cost building blocks and per-driver ETL estimates."""

import pytest

from repro.core import etl
from repro.core.cost import ClusterSpec
from repro.graph.generators import rmat_graph
from repro.platforms.registry import available_platforms, create_platform


class TestBuildingBlocks:
    def test_edge_file_bytes(self):
        assert etl.edge_file_bytes(1000) == 16000.0

    def test_distributed_read_scales_with_workers(self, cluster_spec):
        single = ClusterSpec.paper_single_node()
        assert etl.distributed_read_seconds(1e9, cluster_spec) < (
            1e9 / single.disk_bandwidth
        )

    def test_partition_shuffle_zero_on_single_node(self, single_node_spec):
        assert etl.partition_shuffle_seconds(1e9, single_node_spec) == 0.0

    def test_replicated_write_counts_replicas(self, cluster_spec):
        once = etl.replicated_write_seconds(1e8, 1, cluster_spec)
        thrice = etl.replicated_write_seconds(1e8, 3, cluster_spec)
        assert thrice > 2.5 * once

    def test_sequential_insert(self, single_node_spec):
        assert etl.sequential_insert_seconds(1e6, 3.0, single_node_spec) == (
            pytest.approx(3e6 * single_node_spec.random_access_seconds)
        )

    def test_sort_superlinear(self, cluster_spec):
        small = etl.sort_seconds(1e4, cluster_spec)
        large = etl.sort_seconds(1e5, cluster_spec)
        assert large > 10 * small
        assert etl.sort_seconds(1, cluster_spec) == 0.0


class TestDriverEstimates:
    @pytest.fixture(scope="class")
    def estimates(self):
        graph = rmat_graph(9, seed=13)
        distributed = ClusterSpec.paper_distributed()
        single = ClusterSpec.paper_single_node()
        values = {}
        from repro.platforms.registry import is_single_machine

        for name in available_platforms():
            if is_single_machine(name):
                platform = create_platform(name)
            else:
                platform = create_platform(name, distributed)
            handle = platform.upload_graph("g", graph)
            values[name] = handle.etl_simulated_seconds
            platform.delete_graph(handle)
        return values

    def test_every_platform_reports_etl(self, estimates):
        assert set(estimates) == set(available_platforms())
        assert all(value > 0 for value in estimates.values())

    def test_mapreduce_cheapest_distributed_loader(self, estimates):
        for name in ("giraph", "graphx", "graphlab"):
            assert estimates["mapreduce"] < estimates[name]

    def test_graphx_pays_more_than_giraph(self, estimates):
        assert estimates["graphx"] > estimates["giraph"]
