"""Exact scalar/bulk equivalence across every converted platform.

The vectorized bulk paths (``pregel/bulk.py``, ``gas/bulk.py``,
``rddgraph/bulk.py``, and the batched MapReduce shuffle accounting)
promise *bit-identical* results to the scalar per-record paths — not
approximately equal. The charges they batch are all integer-valued
floats, and float64 addition of integers below 2**53 is exact, so one
bulk charge of a pre-summed total equals the scalar call sequence
bit for bit (see ``CostMeter.charge_compute_bulk``).

These tests hold every platform to that contract on *every*
algorithm, discovered from the ``Algorithm`` enum rather than
hand-listed — so an algorithm that gains a bulk kernel (BFS, CONN,
and PR have them today) is automatically held to the bar, and an
algorithm without one must still produce identical results and
profiles by running the same scalar path under both flags. The sweep
covers a directed graph, an undirected graph, and a graph with sparse
vertex ids plus an isolated vertex. "Identical" means the algorithm
outputs, the per-round charge structure, and the profile totals
(``simulated_seconds``, ``total_messages``, peak memory) all compare
equal with ``==``.
"""

import pytest

from repro.core.cost import ClusterSpec
from repro.core.workload import Algorithm, AlgorithmParams
from repro.graph.generators import rmat_graph
from repro.graph.graph import Graph
from repro.platforms.gas.driver import GraphLabPlatform
from repro.platforms.mapreduce.driver import MapReducePlatform
from repro.platforms.pregel.driver import GiraphPlatform
from repro.platforms.rddgraph.driver import GraphXPlatform

#: Every platform with a bulk toggle.
CONVERTED_PLATFORMS = [
    GiraphPlatform,
    GraphLabPlatform,
    GraphXPlatform,
    MapReducePlatform,
]

#: Every algorithm, auto-discovered from the enum: new algorithms (and
#: new bulk kernels) join the equivalence sweep without editing this
#: file.
BULK_ALGORITHMS = list(Algorithm)


def _sparse_id_graph() -> Graph:
    """Non-contiguous vertex ids, an isolated vertex, two components."""
    return Graph.from_edges(
        [(10, 20), (20, 400), (400, 10), (7, 9)],
        vertices=[10, 20, 400, 7, 9, 100_000],
        directed=False,
    )


GRAPHS = {
    "rmat-directed": lambda: rmat_graph(
        scale=7, edge_factor=8, seed=42, directed=True
    ),
    "rmat-undirected": lambda: rmat_graph(
        scale=6, edge_factor=8, seed=7, directed=False
    ),
    "sparse-ids": _sparse_id_graph,
}


def profile_key(profile):
    """Everything a profile says, minus nothing: the exactness bar."""
    rounds = tuple(
        (
            record.name,
            tuple(record.ops_per_worker),
            tuple(record.random_accesses_per_worker),
            record.local_messages,
            record.remote_messages,
            record.remote_bytes,
            record.disk_read_bytes,
            record.disk_write_bytes,
            record.active_vertices,
            record.barrier_seconds,
            record.seconds,
        )
        for record in profile.rounds
    )
    return (
        rounds,
        profile.simulated_seconds,
        profile.total_messages,
        tuple(profile.peak_memory_per_worker),
        profile.startup_seconds,
    )


def _run(platform_cls, bulk: bool, graph: Graph, algorithm: Algorithm):
    if algorithm is Algorithm.SSSP and not graph.is_weighted:
        graph = graph.with_uniform_weights(seed=3)
    platform = platform_cls(ClusterSpec.paper_distributed(), bulk=bulk)
    handle = platform.upload_graph("equivalence", graph)
    run = platform.run_algorithm(handle, algorithm, AlgorithmParams())
    return run.output, profile_key(run.profile)


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("algorithm", BULK_ALGORITHMS, ids=lambda a: a.value)
@pytest.mark.parametrize(
    "platform_cls", CONVERTED_PLATFORMS, ids=lambda cls: cls.name
)
def test_bulk_path_is_bit_identical(platform_cls, algorithm, graph_name):
    graph = GRAPHS[graph_name]()
    bulk_output, bulk_profile = _run(platform_cls, True, graph, algorithm)
    scalar_output, scalar_profile = _run(platform_cls, False, graph, algorithm)
    assert bulk_output == scalar_output
    assert bulk_profile == scalar_profile


@pytest.mark.parametrize("algorithm", list(Algorithm), ids=lambda a: a.value)
def test_mapreduce_bulk_covers_every_job(algorithm):
    """Every job chain in ``jobs.py`` is bulk/scalar-identical.

    BFS and CONN exercise the columnar ``RecordBatch`` executor; the
    remaining jobs (CD, STATS, EVO, and the PR/SSSP/LCC chains) stay
    on scalar records under ``bulk=True`` (their jobs carry
    non-columnar values) but still flow through the batched shuffle
    accounting — either way the outputs and full cost profiles must
    match the ``bulk=False`` run exactly.
    """
    graph = GRAPHS["rmat-undirected"]()
    bulk_output, bulk_profile = _run(MapReducePlatform, True, graph, algorithm)
    scalar_output, scalar_profile = _run(
        MapReducePlatform, False, graph, algorithm
    )
    assert bulk_output == scalar_output
    assert bulk_profile == scalar_profile


@pytest.mark.parametrize(
    "platform_cls", CONVERTED_PLATFORMS, ids=lambda cls: cls.name
)
def test_bulk_is_the_default(platform_cls):
    # The fast path must be what the benchmark actually runs.
    assert platform_cls(ClusterSpec.paper_distributed()).bulk is True
