"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_run_command(tmp_path, capsys):
    report = tmp_path / "report.txt"
    db = tmp_path / "results.jsonl"
    code = main(
        [
            "run",
            "--graphs", "graph500-7",
            "--platforms", "giraph,neo4j",
            "--algorithms", "BFS,CONN",
            "--report", str(report),
            "--results-db", str(db),
        ]
    )
    assert code == 0
    assert report.exists()
    out = capsys.readouterr().out
    assert "Graphalytics benchmark report" in out
    assert "results appended" in out
    assert db.exists()


def test_run_command_no_validate(tmp_path):
    report = tmp_path / "report.txt"
    code = main(
        [
            "run",
            "--graphs", "graph500-7",
            "--platforms", "giraph",
            "--algorithms", "STATS",
            "--no-validate",
            "--report", str(report),
        ]
    )
    assert code == 0


def test_datagen_command(tmp_path, capsys):
    output = tmp_path / "social.e"
    code = main(
        [
            "datagen",
            "--persons", "500",
            "--distribution", "geometric",
            "--output", str(output),
        ]
    )
    assert code == 0
    assert output.exists()
    assert "500 persons" in capsys.readouterr().out


def test_characterize_command(capsys):
    code = main(["characterize", "graph500-7"])
    assert code == 0
    out = capsys.readouterr().out
    assert "graph500-7" in out
    assert "AvgCC" in out


def test_quality_command(capsys):
    code = main(["quality", "--root", "src/repro/core"])
    assert code == 0
    out = capsys.readouterr().out
    assert "mean-complexity" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_run_command_html_report(tmp_path):
    html = tmp_path / "report.html"
    code = main(
        [
            "run",
            "--graphs", "graph500-7",
            "--platforms", "giraph",
            "--algorithms", "STATS",
            "--report", str(tmp_path / "report.txt"),
            "--html", str(html),
        ]
    )
    assert code == 0
    assert html.exists()
    assert "<html" in html.read_text()


def test_datagen_weibull(tmp_path):
    output = tmp_path / "w.e"
    code = main(
        ["datagen", "--persons", "300", "--distribution", "weibull",
         "--output", str(output)]
    )
    assert code == 0
    assert output.exists()


def test_leaderboard_command(tmp_path, capsys):
    db = tmp_path / "results.jsonl"
    main(
        [
            "run",
            "--graphs", "graph500-7",
            "--platforms", "giraph,neo4j",
            "--algorithms", "CONN",
            "--report", str(tmp_path / "r.txt"),
            "--results-db", str(db),
        ]
    )
    capsys.readouterr()
    code = main(
        ["leaderboard", "--results-db", str(db),
         "--graph", "graph500-7", "--algorithm", "conn"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "1. neo4j" in out or "1. giraph" in out


def test_leaderboard_empty(tmp_path, capsys):
    code = main(
        ["leaderboard", "--results-db", str(tmp_path / "none.jsonl"),
         "--graph", "g", "--algorithm", "BFS"]
    )
    assert code == 1


def test_run_with_config_file(tmp_path, capsys):
    config = tmp_path / "bench.ini"
    config.write_text(
        "[benchmark]\n"
        "platforms = giraph\n"
        "graphs = graph500-7\n"
        "algorithms = STATS\n"
    )
    code = main(
        [
            "run",
            "--config", str(config),
            "--graphs", "graph500-7",
            "--report", str(tmp_path / "r.txt"),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "giraph" in out
    assert "neo4j" not in out.split("Runtime")[1]  # only configured platform ran


def test_cli_flags_override_config(tmp_path, capsys):
    config = tmp_path / "bench.ini"
    config.write_text("[benchmark]\nplatforms = giraph\nalgorithms = STATS\n")
    code = main(
        [
            "run",
            "--config", str(config),
            "--graphs", "graph500-7",
            "--algorithms", "CONN",
            "--report", str(tmp_path / "r.txt"),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "CONN" in out
    assert "STATS    graph500-7" not in out
