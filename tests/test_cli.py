"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def test_run_command(tmp_path, capsys):
    report = tmp_path / "report.txt"
    db = tmp_path / "results.jsonl"
    code = main(
        [
            "run",
            "--graphs", "graph500-7",
            "--platforms", "giraph,neo4j",
            "--algorithms", "BFS,CONN",
            "--report", str(report),
            "--results-db", str(db),
        ]
    )
    assert code == 0
    assert report.exists()
    out = capsys.readouterr().out
    assert "Graphalytics benchmark report" in out
    assert "results appended" in out
    assert db.exists()


def test_run_command_no_validate(tmp_path):
    report = tmp_path / "report.txt"
    code = main(
        [
            "run",
            "--graphs", "graph500-7",
            "--platforms", "giraph",
            "--algorithms", "STATS",
            "--no-validate",
            "--report", str(report),
        ]
    )
    assert code == 0


def test_datagen_command(tmp_path, capsys):
    output = tmp_path / "social.e"
    code = main(
        [
            "datagen",
            "--persons", "500",
            "--distribution", "geometric",
            "--output", str(output),
        ]
    )
    assert code == 0
    assert output.exists()
    assert "500 persons" in capsys.readouterr().out


def test_characterize_command(capsys):
    code = main(["characterize", "graph500-7"])
    assert code == 0
    out = capsys.readouterr().out
    assert "graph500-7" in out
    assert "AvgCC" in out


def test_quality_command(capsys):
    code = main(["quality", "--root", "src/repro/core"])
    assert code == 0
    out = capsys.readouterr().out
    assert "mean-complexity" in out


def _write_fake_platform_tree(root, engine_source):
    package = root / "repro" / "platforms" / "fake"
    package.mkdir(parents=True)
    (package / "engine.py").write_text(engine_source)
    return root


def test_quality_gate_round_trip(tmp_path, capsys):
    tree = _write_fake_platform_tree(
        tmp_path / "clean",
        'def step(meter):\n    """Doc."""\n    meter.charge_compute(0, 1)\n',
    )
    baseline = tmp_path / "baseline.json"
    code = main(
        ["quality", "--root", str(tree), "--update-baseline",
         "--baseline", str(baseline)]
    )
    assert code == 0
    assert baseline.exists()
    capsys.readouterr()
    code = main(
        ["quality", "--root", str(tree), "--baseline", str(baseline), "--check"]
    )
    assert code == 0
    assert "quality gate passed" in capsys.readouterr().out


def test_quality_gate_fails_on_planted_determinism_bug(tmp_path, capsys):
    tree = _write_fake_platform_tree(
        tmp_path / "clean",
        'def step(meter):\n    """Doc."""\n    meter.charge_compute(0, 1)\n',
    )
    baseline = tmp_path / "baseline.json"
    main(["quality", "--root", str(tree), "--update-baseline",
          "--baseline", str(baseline)])
    capsys.readouterr()
    engine = tree / "repro" / "platforms" / "fake" / "engine.py"
    engine.write_text(
        engine.read_text()
        + "import random\n\n\ndef jitter():\n"
        '    """Doc."""\n    return random.random()\n'
    )
    code = main(
        ["quality", "--root", str(tree), "--baseline", str(baseline), "--check"]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "quality gate FAILED" in out
    assert "[determinism]" in out


def test_quality_gate_fails_on_uncharged_loop(tmp_path, capsys):
    tree = _write_fake_platform_tree(
        tmp_path / "clean",
        'def step(meter):\n    """Doc."""\n    meter.charge_compute(0, 1)\n',
    )
    baseline = tmp_path / "baseline.json"
    main(["quality", "--root", str(tree), "--update-baseline",
          "--baseline", str(baseline)])
    capsys.readouterr()
    engine = tree / "repro" / "platforms" / "fake" / "engine.py"
    engine.write_text(
        engine.read_text()
        + "\n\ndef scan(self):\n"
        '    """Doc."""\n'
        "    total = 0\n"
        "    for vertex in self.adjacency:\n"
        "        total += vertex\n"
        "    return total\n"
    )
    code = main(
        ["quality", "--root", str(tree), "--baseline", str(baseline), "--check"]
    )
    assert code == 1
    assert "[cost-accounting]" in capsys.readouterr().out


def test_quality_check_without_baseline_gates_on_errors(tmp_path, capsys):
    tree = _write_fake_platform_tree(
        tmp_path / "dirty",
        "import random\n\n\ndef jitter():\n"
        '    """Doc."""\n    return random.random()\n',
    )
    code = main(["quality", "--root", str(tree), "--check"])
    assert code == 1
    assert "[determinism]" in capsys.readouterr().out


def test_quality_check_missing_baseline_is_clean_error(tmp_path, capsys):
    code = main(
        ["quality", "--root", "src/repro/analysis",
         "--baseline", str(tmp_path / "absent.json"), "--check"]
    )
    assert code == 2
    assert "does not exist" in capsys.readouterr().out


def test_quality_check_corrupt_baseline_is_clean_error(tmp_path, capsys):
    bad = tmp_path / "corrupt.json"
    bad.write_text("{not json")
    code = main(
        ["quality", "--root", "src/repro/analysis",
         "--baseline", str(bad), "--check"]
    )
    assert code == 2
    assert "unreadable baseline" in capsys.readouterr().out


def test_quality_json_report(tmp_path, capsys):
    import json

    out_path = tmp_path / "quality.json"
    code = main(
        ["quality", "--root", "src/repro/analysis", "--json", str(out_path)]
    )
    assert code == 0
    document = json.loads(out_path.read_text())
    assert document["summary"]["files"] > 0


def test_quality_disable_rule(tmp_path, capsys):
    tree = _write_fake_platform_tree(
        tmp_path / "dirty",
        "import random\n\n\ndef jitter():\n"
        '    """Doc."""\n    return random.random()\n',
    )
    code = main(
        ["quality", "--root", str(tree), "--check", "--disable", "determinism"]
    )
    assert code == 0


def test_shipped_tree_passes_committed_baseline(capsys):
    code = main(
        ["quality", "--root", "src", "--baseline", ".quality-baseline.json",
         "--check"]
    )
    assert code == 0
    assert "quality gate passed" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_run_command_html_report(tmp_path):
    html = tmp_path / "report.html"
    code = main(
        [
            "run",
            "--graphs", "graph500-7",
            "--platforms", "giraph",
            "--algorithms", "STATS",
            "--report", str(tmp_path / "report.txt"),
            "--html", str(html),
        ]
    )
    assert code == 0
    assert html.exists()
    assert "<html" in html.read_text()


def test_datagen_weibull(tmp_path):
    output = tmp_path / "w.e"
    code = main(
        ["datagen", "--persons", "300", "--distribution", "weibull",
         "--output", str(output)]
    )
    assert code == 0
    assert output.exists()


def test_leaderboard_command(tmp_path, capsys):
    db = tmp_path / "results.jsonl"
    main(
        [
            "run",
            "--graphs", "graph500-7",
            "--platforms", "giraph,neo4j",
            "--algorithms", "CONN",
            "--report", str(tmp_path / "r.txt"),
            "--results-db", str(db),
        ]
    )
    capsys.readouterr()
    code = main(
        ["leaderboard", "--results-db", str(db),
         "--graph", "graph500-7", "--algorithm", "conn"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "1. neo4j" in out or "1. giraph" in out


def test_leaderboard_empty(tmp_path, capsys):
    code = main(
        ["leaderboard", "--results-db", str(tmp_path / "none.jsonl"),
         "--graph", "g", "--algorithm", "BFS"]
    )
    assert code == 1


def test_perf_command_quick(tmp_path, capsys):
    output = tmp_path / "BENCH_kernels.json"
    code = main(["perf", "--quick", "--output", str(output)])
    assert code == 0
    assert "kernel timings written" in capsys.readouterr().out
    payload = json.loads(output.read_text(encoding="utf-8"))
    assert payload["schema"] == "graphalytics-perf/2"
    assert payload["repeats"] == 1
    names = [kernel["name"] for kernel in payload["kernels"]]
    assert "pregel-bfs-frontier" in names
    assert "datagen-rmat" in names
    assert "graph-load" in names
    for kernel in payload["kernels"]:
        # Per-kernel wall-clock and simulated-seconds fields, well
        # formed: the contract the tracked report relies on.
        assert kernel["bulk_wall_seconds"] > 0.0
        assert kernel["scalar_wall_seconds"] > 0.0
        assert kernel["bulk_wall_mean"] > 0.0
        assert kernel["scalar_wall_mean"] > 0.0
        assert kernel["bulk_wall_std"] >= 0.0
        assert kernel["scalar_wall_std"] >= 0.0
        if kernel["name"] in ("datagen-rmat", "graph-load"):
            # Micro kernels have no cost model underneath; their
            # match bit asserts artifact equality instead.
            assert kernel["simulated_seconds"] == 0.0
        else:
            assert kernel["simulated_seconds"] > 0.0
            assert (
                kernel["simulated_seconds"]
                == kernel["scalar_simulated_seconds"]
            )
        assert kernel["simulated_match"] is True


def test_perf_command_json_output(tmp_path, capsys):
    output = tmp_path / "BENCH_kernels.json"
    code = main(
        ["perf", "--quick", "--json", "--kernels", "graph-load",
         "--output", str(output)]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "graphalytics-perf/2"
    (kernel,) = payload["kernels"]
    assert kernel["name"] == "graph-load"
    assert "conservative_speedup" in kernel
    assert "bulk_wall_std" in kernel


def test_perf_command_rejects_unknown_kernel(capsys):
    code = main(["perf", "--quick", "--kernels", "no-such-kernel"])
    assert code == 2
    assert "unknown kernels" in capsys.readouterr().out


def test_run_with_config_file(tmp_path, capsys):
    config = tmp_path / "bench.ini"
    config.write_text(
        "[benchmark]\n"
        "platforms = giraph\n"
        "graphs = graph500-7\n"
        "algorithms = STATS\n"
    )
    code = main(
        [
            "run",
            "--config", str(config),
            "--graphs", "graph500-7",
            "--report", str(tmp_path / "r.txt"),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "giraph" in out
    assert "neo4j" not in out.split("Runtime")[1]  # only configured platform ran


def test_run_with_mem_limit_records_failure_cells(tmp_path, capsys):
    report = tmp_path / "report.txt"
    code = main(
        [
            "run",
            "--graphs", "graph500-7",
            "--platforms", "giraph,neo4j",
            "--algorithms", "BFS",
            "--mem-limit", "16K",
            "--report", str(report),
        ]
    )
    # Mixed outcome: giraph fits, neo4j OOMs; the run itself succeeds.
    assert code == 0
    out = capsys.readouterr().out
    assert "OOM" in out
    assert "out-of-memory" in out
    assert "mem-limit = 16384 bytes/worker" in out


def test_run_with_timeout_records_failure_cells(tmp_path, capsys):
    code = main(
        [
            "run",
            "--graphs", "graph500-7",
            "--platforms", "giraph,neo4j",
            "--algorithms", "BFS",
            "--timeout", "1e-9",
            "--report", str(tmp_path / "report.txt"),
        ]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "T/O" in out
    assert "timeout" in out


def test_run_with_injected_transient_fault_and_retry(tmp_path, capsys):
    code = main(
        [
            "run",
            "--graphs", "graph500-7",
            "--platforms", "giraph",
            "--algorithms", "BFS",
            "--inject", "crash:worker=0,round=0;transient:attempts=1",
            "--retries", "1",
            "--report", str(tmp_path / "report.txt"),
        ]
    )
    assert code == 0  # the retry recovered every cell
    assert "No failures." in capsys.readouterr().out


def test_run_with_permanent_injected_crash(tmp_path, capsys):
    code = main(
        [
            "run",
            "--graphs", "graph500-7",
            "--platforms", "giraph",
            "--algorithms", "BFS",
            "--inject", "crash:worker=0,round=0",
            "--report", str(tmp_path / "report.txt"),
        ]
    )
    assert code == 1
    assert "worker-crash" in capsys.readouterr().out


def test_selfcheck_smoke(capsys):
    # --skip-tests: selfcheck must not recurse into the suite that is
    # running it; the quality-gate and quick-perf stages run for real.
    code = main(["selfcheck", "--skip-tests"])
    assert code == 0
    out = capsys.readouterr().out
    assert "selfcheck summary:" in out
    assert "tests          skipped" in out
    assert "quality gate   ok" in out
    assert "audit gate     ok" in out
    assert "perf --quick   ok" in out
    assert "trace replay   ok" in out
    assert "calibrate smoke ok" in out
    assert "selfcheck: PASS" in out


def test_selfcheck_all_stages_skippable(capsys):
    code = main(
        [
            "selfcheck", "--skip-tests", "--skip-quality", "--skip-audit",
            "--skip-perf", "--skip-trace", "--skip-calibrate",
        ]
    )
    assert code == 0
    assert "selfcheck: PASS" in capsys.readouterr().out


def test_cli_flags_override_config(tmp_path, capsys):
    config = tmp_path / "bench.ini"
    config.write_text("[benchmark]\nplatforms = giraph\nalgorithms = STATS\n")
    code = main(
        [
            "run",
            "--config", str(config),
            "--graphs", "graph500-7",
            "--algorithms", "CONN",
            "--report", str(tmp_path / "r.txt"),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "CONN" in out
    assert "STATS    graph500-7" not in out


def _traced_run(tmp_path, capsys):
    trace_dir = tmp_path / "traces"
    code = main(
        [
            "run",
            "--graphs", "graph500-7",
            "--platforms", "giraph",
            "--algorithms", "BFS",
            "--trace", str(trace_dir),
            "--report", str(tmp_path / "report.txt"),
        ]
    )
    assert code == 0
    assert "1 trace file(s) written" in capsys.readouterr().out
    (trace,) = sorted(trace_dir.glob("*.jsonl"))
    return trace


def test_run_with_trace_writes_per_cell_files(tmp_path, capsys):
    trace = _traced_run(tmp_path, capsys)
    assert trace.name == "giraph_graph500-7_BFS.jsonl"
    first = json.loads(trace.read_text().splitlines()[0])
    assert first["event"] == "run-begin"


def test_trace_command_summarizes(tmp_path, capsys):
    trace = _traced_run(tmp_path, capsys)
    code = main(["trace", str(trace), "--rounds"])
    assert code == 0
    out = capsys.readouterr().out
    assert "giraph/graph500-7/bfs" in out
    assert "status=success" in out
    assert "dominant=" in out
    assert "superstep-0" in out


def test_trace_command_missing_file(capsys):
    assert main(["trace", "/nonexistent/trace.jsonl"]) == 2
    assert "cannot read trace" in capsys.readouterr().out


def test_analyze_command_self_comparison_clean(tmp_path, capsys):
    trace = _traced_run(tmp_path, capsys)
    code = main(["analyze", str(trace), str(trace), "--check"])
    assert code == 0
    assert "no regressions" in capsys.readouterr().out


def test_analyze_command_flags_regressions(tmp_path, capsys):
    old = tmp_path / "old.jsonl"
    new = tmp_path / "new.jsonl"
    row = {
        "platform": "giraph", "graph": "tiny", "algorithm": "BFS",
        "status": "success", "runtime_seconds": 10.0, "num_rounds": 5,
        "remote_bytes": 100.0, "dominant_chokepoint": "skew",
    }
    old.write_text(json.dumps(row) + "\n")
    row["runtime_seconds"] = 20.0
    row["dominant_chokepoint"] = "network"
    new.write_text(json.dumps(row) + "\n")
    # Without --check the regressions are reported but not gated.
    assert main(["analyze", str(old), str(new)]) == 0
    out = capsys.readouterr().out
    assert "2 regression(s):" in out
    assert "simulated time grew 100.0%" in out
    assert "dominant choke point moved skew -> network" in out
    assert main(["analyze", str(old), str(new), "--check"]) == 1


def test_analyze_command_unreadable_input(tmp_path, capsys):
    empty = tmp_path / "nothing.jsonl"
    empty.write_text('{"unrelated": 1}\n')
    assert main(["analyze", str(empty), str(empty)]) == 2
    assert "error:" in capsys.readouterr().out
