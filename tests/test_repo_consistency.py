"""Meta-tests keeping code, docs, and benches consistent."""

import ast
import re
from pathlib import Path

import pytest

from repro.core.workload import Algorithm
from repro.platforms.registry import available_platforms

ROOT = Path(__file__).resolve().parent.parent


def test_readme_lists_every_bench_module():
    readme = (ROOT / "README.md").read_text()
    for bench in sorted((ROOT / "benchmarks").glob("test_*.py")):
        if bench.name == "test_ablation_scaling.py":
            continue  # methodology check, grouped under ablations
        assert bench.name in readme, f"README missing {bench.name}"


def test_design_covers_every_registered_platform():
    design = (ROOT / "DESIGN.md").read_text().lower()
    package_of = {
        "giraph": "pregel",
        "mapreduce": "mapreduce",
        "graphx": "rddgraph",
        "neo4j": "graphdb",
        "virtuoso": "columnar",
        "graphlab": "gas",
        "medusa": "gpu",
        "stratosphere": "dataflow",
    }
    for name in available_platforms():
        assert name in package_of, f"DESIGN mapping missing platform {name}"
        assert (
            f"repro.platforms.{package_of[name]}" in design
        ), f"DESIGN.md does not mention the package of {name}"


def test_every_example_is_a_runnable_script():
    examples = sorted((ROOT / "examples").glob("*.py"))
    assert len(examples) >= 7
    for path in examples:
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a module docstring"
        names = {
            node.name
            for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        assert "main" in names, f"{path.name} lacks a main() entry point"
        assert '__name__ == "__main__"' in path.read_text()


def test_experiments_covers_every_figure_and_table():
    experiments = (ROOT / "EXPERIMENTS.md").read_text()
    for anchor in ("Table 1", "Figure 1", "Figure 3", "Figure 4",
                   "Figure 5", "Section 3.4", "Section 3.5"):
        assert anchor in experiments, f"EXPERIMENTS.md missing {anchor}"


def test_all_five_algorithms_everywhere():
    """Every platform package implements all five algorithms."""
    from repro.core.cost import ClusterSpec
    from repro.platforms.registry import create_platform, is_single_machine

    for name in available_platforms():
        platform = (
            create_platform(name)
            if is_single_machine(name)
            else create_platform(name, ClusterSpec.paper_distributed())
        )
        assert set(platform.supported_algorithms()) == set(Algorithm), name


def test_version_consistent_with_pyproject():
    import repro

    pyproject = (ROOT / "pyproject.toml").read_text()
    match = re.search(r'^version = "([^"]+)"', pyproject, re.MULTILINE)
    assert match is not None
    assert repro.__version__ == match.group(1)


def test_static_analysis_gate_is_clean():
    """The analyzer's own verdict on src/repro: no error findings.

    This is the Section 3.5 commit gate in-tree: determinism,
    cost-accounting, and BSP-race violations (all error severity) fail
    the build, and the committed baseline pins the warning counts.
    """
    from repro.analysis import analyze_tree, load_baseline, quality_gate

    report = analyze_tree(ROOT / "src" / "repro")
    errors = [
        f"{file_report.path}:{finding.line}: [{finding.rule}] {finding.message}"
        for file_report, finding in report.error_findings()
    ]
    assert errors == []

    baseline_path = ROOT / ".quality-baseline.json"
    assert baseline_path.exists(), "commit .quality-baseline.json"
    gate = quality_gate(analyze_tree(ROOT / "src"), load_baseline(baseline_path))
    assert gate.passed, [str(r) for r in gate.regressions]


def test_benchmark_audit_gate_is_clean():
    """The shipped experiment suite audits clean against its baseline.

    The SoK-taxonomy audit (single runs, validation off, shape bias,
    seed monoculture, ...) must find nothing to complain about in the
    configs we ship, and the committed zero-finding baseline keeps it
    that way: a new finding is a gate regression, not a silent drift.
    """
    from repro.analysis import audit_paths, load_baseline, quality_gate

    report = audit_paths([ROOT / "configs"])
    errors = [
        f"{file_report.path}:{finding.line}: [{finding.rule}] {finding.message}"
        for file_report, finding in report.error_findings()
    ]
    assert errors == []

    baseline_path = ROOT / ".audit-baseline.json"
    assert baseline_path.exists(), "commit .audit-baseline.json"
    gate = quality_gate(report, load_baseline(baseline_path))
    assert gate.passed, [str(r) for r in gate.regressions]


def test_no_print_debugging_in_library():
    """The library speaks through reports and logs, not stray prints."""
    offenders = []
    for path in sorted((ROOT / "src" / "repro").rglob("*.py")):
        if path.name == "cli.py":  # the CLI legitimately prints
            continue
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                offenders.append(f"{path.name}:{node.lineno}")
    assert offenders == []
