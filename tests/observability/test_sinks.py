"""Unit tests for the trace sinks and the zero-overhead contract."""

import json

import pytest

from repro.core.cost import CostMeter, MemoryBudgetExceeded
from repro.core.monitor import SystemMonitor
from repro.observability import (
    InMemoryAggregator,
    JsonlTraceWriter,
    MonitorSink,
    TraceSink,
    profile_fingerprint,
)


def _metered_run(cluster_spec, sinks=()):
    """A small deterministic charge sequence exercising every event."""
    meter = CostMeter(cluster_spec, sinks=sinks)
    meter.charge_startup()
    meter.begin_round("load")
    meter.allocate_memory(0, 4096.0)
    meter.charge_disk_read(0, 1e6)
    meter.charge_compute(0, 50_000)
    meter.end_round(active_vertices=100)
    meter.begin_round("superstep-0")
    meter.charge_compute(0, 10_000)
    meter.charge_random_access(1, 5_000)
    meter.charge_message(0, 1, 8.0)
    meter.charge_messages_bulk(1, 1, 10, 8.0)
    meter.charge_shuffle(2048.0, count=4)
    meter.charge_disk_write(1, 2e5)
    meter.release_memory(0, 2048.0)
    meter.end_round(active_vertices=40)
    return meter.profile


class TestZeroOverheadContract:
    def test_no_sinks_is_empty_tuple(self, cluster_spec):
        assert CostMeter(cluster_spec).sinks == ()

    def test_profile_identical_with_and_without_sinks(self, cluster_spec):
        bare = _metered_run(cluster_spec)
        observed = _metered_run(
            cluster_spec, sinks=(InMemoryAggregator(), TraceSink())
        )
        assert profile_fingerprint(bare) == profile_fingerprint(observed)

    def test_base_sink_ignores_every_event(self, cluster_spec):
        # TraceSink is the documented no-op: attaching it must never
        # raise, whatever the charge mix.
        _metered_run(cluster_spec, sinks=(TraceSink(),))


class TestInMemoryAggregator:
    def test_totals_match_profile(self, cluster_spec):
        aggregator = InMemoryAggregator()
        profile = _metered_run(cluster_spec, sinks=(aggregator,))
        assert aggregator.rounds == profile.num_rounds
        assert aggregator.remote_bytes == profile.total_remote_bytes
        assert aggregator.messages == profile.total_messages
        assert aggregator.simulated_seconds == pytest.approx(
            profile.simulated_seconds - profile.startup_seconds
        )
        assert aggregator.charge_counts["message"] == 2
        assert aggregator.charge_counts["shuffle"] == 1
        assert aggregator.charge_counts["disk-read"] == 1
        assert aggregator.charge_counts["disk-write"] == 1
        assert aggregator.charge_counts["startup"] == 1
        # allocate + release both stream as memory charges.
        assert aggregator.charge_counts["memory"] == 2

    def test_summary_is_plain_dict(self, cluster_spec):
        aggregator = InMemoryAggregator()
        _metered_run(cluster_spec, sinks=(aggregator,))
        summary = aggregator.summary()
        assert summary["rounds"] == 2
        assert json.dumps(summary)  # JSON-serializable

    def test_oom_recorded_as_fault(self, tiny_memory_spec):
        aggregator = InMemoryAggregator()
        meter = CostMeter(tiny_memory_spec, sinks=(aggregator,))
        meter.begin_round("load")
        with pytest.raises(MemoryBudgetExceeded):
            meter.allocate_memory(0, 1e9)
        assert aggregator.faults == {"out-of-memory": 1}


class TestJsonlTraceWriter:
    def test_file_created_lazily(self, tmp_path):
        writer = JsonlTraceWriter(tmp_path / "deep" / "trace.jsonl")
        assert not writer.path.exists()
        writer.on_fault("test", 0, "detail")
        writer.close()
        assert writer.path.exists()

    def test_close_is_idempotent(self, tmp_path, cluster_spec):
        writer = JsonlTraceWriter(tmp_path / "trace.jsonl")
        _metered_run(cluster_spec, sinks=(writer,))
        writer.close()
        writer.close()

    def test_span_per_round_with_charges_off(self, tmp_path, cluster_spec):
        writer = JsonlTraceWriter(tmp_path / "trace.jsonl")
        with writer:
            profile = _metered_run(cluster_spec, sinks=(writer,))
        events = [
            json.loads(line)
            for line in writer.path.read_text().splitlines()
        ]
        spans = [e for e in events if e["event"] == "round"]
        assert len(spans) == profile.num_rounds
        assert [s["name"] for s in spans] == ["load", "superstep-0"]
        # Default mode: spans only, no fine-grained charge stream.
        assert not [e for e in events if e["event"] == "charge"]

    def test_charges_mode_streams_charge_events(self, tmp_path, cluster_spec):
        writer = JsonlTraceWriter(tmp_path / "trace.jsonl", charges=True)
        with writer:
            _metered_run(cluster_spec, sinks=(writer,))
        events = [
            json.loads(line)
            for line in writer.path.read_text().splitlines()
        ]
        kinds = {e["kind"] for e in events if e["event"] == "charge"}
        assert {"startup", "message", "shuffle", "disk-read",
                "disk-write", "memory"} <= kinds

    def test_attempts_accumulate_in_one_file(self, tmp_path, cluster_spec):
        writer = JsonlTraceWriter(tmp_path / "trace.jsonl")
        with writer:
            writer.on_run_begin("giraph", "g", "BFS", cluster_spec)
            writer.on_run_end(None, "worker-crash")
            writer.on_run_begin("giraph", "g", "BFS", cluster_spec)
            profile = _metered_run(cluster_spec, sinks=(writer,))
            writer.on_run_end(profile, "success")
        assert writer.attempt == 2
        events = [
            json.loads(line)
            for line in writer.path.read_text().splitlines()
        ]
        begins = [e for e in events if e["event"] == "run-begin"]
        assert [e["attempt"] for e in begins] == [1, 2]
        ends = [e for e in events if e["event"] == "run-end"]
        assert [e["status"] for e in ends] == ["worker-crash", "success"]
        assert "simulated_seconds" in ends[1]
        assert "simulated_seconds" not in ends[0]


class TestMonitorSink:
    def test_streamed_series_equals_profile_replay(self, cluster_spec):
        sink = MonitorSink()
        profile = _metered_run(cluster_spec, sinks=(sink,))
        assert sink.samples == SystemMonitor().samples_from_profile(profile)

    def test_run_begin_resets_clock(self, cluster_spec):
        sink = MonitorSink()
        profile = _metered_run(cluster_spec, sinks=(sink,))
        first = list(sink.samples)
        sink.on_run_begin("giraph", "g", "BFS", cluster_spec)
        sink.replay_profile(profile)
        assert sink.samples == first
