"""Unit tests for cross-run metrics loading and regression flagging."""

import dataclasses
import json

import pytest

from repro.observability.analyze import (
    RunMetrics,
    compare_metrics,
    load_metrics,
)


def _metrics(**overrides):
    base = RunMetrics(
        platform="giraph",
        graph="tiny",
        algorithm="BFS",
        status="success",
        simulated_seconds=10.0,
        remote_bytes=1e6,
        num_rounds=8,
        dominant="skew",
    )
    return dataclasses.replace(base, **overrides)


def _keyed(*metrics):
    return {m.key: m for m in metrics}


class TestCompare:
    def test_identical_runs_have_no_regressions(self):
        old = _keyed(_metrics())
        assert compare_metrics(old, dict(old)) == []

    def test_growth_within_threshold_tolerated(self):
        old = _keyed(_metrics())
        new = _keyed(_metrics(simulated_seconds=10.4))
        assert compare_metrics(old, new, threshold=0.05) == []

    def test_time_regression_flagged(self):
        old = _keyed(_metrics())
        new = _keyed(_metrics(simulated_seconds=12.0))
        (regression,) = compare_metrics(old, new, threshold=0.05)
        assert regression.metric == "simulated_seconds"
        assert "20.0%" in regression.detail

    def test_bytes_rounds_and_dominant_flagged_together(self):
        old = _keyed(_metrics())
        new = _keyed(
            _metrics(
                remote_bytes=2e6, num_rounds=16, dominant="network"
            )
        )
        metrics = {r.metric for r in compare_metrics(old, new)}
        assert metrics == {"remote_bytes", "num_rounds", "dominant"}

    def test_improvements_never_flagged(self):
        old = _keyed(_metrics())
        new = _keyed(
            _metrics(simulated_seconds=5.0, remote_bytes=1.0, num_rounds=2)
        )
        assert compare_metrics(old, new) == []

    def test_missing_run_flagged(self):
        assert compare_metrics(_keyed(_metrics()), {})[0].metric == "presence"

    def test_new_extra_run_ignored(self):
        extra = _metrics(platform="graphx")
        assert compare_metrics({}, _keyed(extra)) == []

    def test_success_to_failure_flagged_once(self):
        old = _keyed(_metrics())
        new = _keyed(
            _metrics(
                status="failed",
                simulated_seconds=None,
                remote_bytes=None,
                num_rounds=None,
                dominant=None,
            )
        )
        (regression,) = compare_metrics(old, new)
        assert regression.metric == "status"

    def test_describe_names_the_cell(self):
        old = _keyed(_metrics())
        new = _keyed(_metrics(simulated_seconds=100.0))
        (regression,) = compare_metrics(old, new)
        assert regression.describe().startswith("giraph/tiny/bfs:")


class TestLoadMetrics:
    def test_load_from_trace(self, tmp_path, cluster_spec, small_rmat):
        from repro.core.workload import Algorithm, AlgorithmParams
        from repro.observability import JsonlTraceWriter
        from repro.platforms.pregel.driver import GiraphPlatform

        platform = GiraphPlatform(cluster_spec)
        handle = platform.upload_graph("tiny", small_rmat)
        writer = JsonlTraceWriter(tmp_path / "t.jsonl")
        platform.sinks = (writer,)
        run = platform.run_algorithm(handle, Algorithm.BFS, AlgorithmParams())
        platform.sinks = ()
        writer.close()
        metrics = load_metrics(writer.path)
        entry = metrics[("giraph", "tiny", "BFS")]
        assert entry.simulated_seconds == run.profile.simulated_seconds
        assert entry.num_rounds == run.profile.num_rounds
        assert entry.dominant in {"network", "memory", "locality", "skew"}

    def test_load_from_results_db(self, tmp_path):
        rows = [
            {
                "platform": "giraph",
                "graph": "tiny",
                "algorithm": "BFS",
                "status": "success",
                "runtime_seconds": 3.0,
                "num_rounds": 5,
                "remote_bytes": 10.0,
                "dominant_chokepoint": "network",
            }
        ]
        path = tmp_path / "db.jsonl"
        path.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
        entry = load_metrics(path)[("giraph", "tiny", "BFS")]
        assert entry.simulated_seconds == 3.0
        assert entry.dominant == "network"

    def test_load_from_submission_document(self, tmp_path):
        document = {
            "schema": "graphalytics-results-v1",
            "system": {},
            "results": [
                {
                    "platform": "neo4j",
                    "graph": "patents",
                    "algorithm": "CONN",
                    "status": "success",
                    "runtime_seconds": 42.0,
                }
            ],
        }
        path = tmp_path / "submission.json"
        path.write_text(json.dumps(document))
        entry = load_metrics(path)[("neo4j", "patents", "CONN")]
        assert entry.simulated_seconds == 42.0

    def test_latest_duplicate_wins(self, tmp_path):
        rows = [
            {"platform": "g", "graph": "t", "algorithm": "BFS",
             "status": "success", "runtime_seconds": 9.0},
            {"platform": "g", "graph": "t", "algorithm": "BFS",
             "status": "success", "runtime_seconds": 4.0},
        ]
        path = tmp_path / "db.jsonl"
        path.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
        assert load_metrics(path)[("g", "t", "BFS")].simulated_seconds == 4.0

    def test_unrecognized_file_rejected(self, tmp_path):
        path = tmp_path / "nonsense.jsonl"
        path.write_text('{"unrelated": true}\n')
        with pytest.raises(ValueError, match="no benchmark runs"):
            load_metrics(path)
