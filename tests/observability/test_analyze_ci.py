"""Tests for the CI-aware runtime gate in ``graphalytics analyze``."""

from __future__ import annotations

import json

from repro.observability.analyze import (
    RunMetrics,
    compare_metrics,
    load_metrics,
)


def _metrics(mean, std=None, n=None, **kwargs):
    return RunMetrics(
        platform="giraph",
        graph="graph500-8",
        algorithm="BFS",
        status="success",
        simulated_seconds=mean,
        runtime_std=std,
        num_repetitions=n,
        **kwargs,
    )


def _keyed(metrics):
    return {metrics.key: metrics}


class TestCIGate:
    def test_within_noise_slowdown_passes(self):
        # 8% slower — beyond the 5% ratio threshold — but the CI95
        # intervals overlap: noise, not regression.
        before = _metrics(10.0, std=1.0, n=5)
        after = _metrics(10.8, std=1.0, n=5)
        regressions = compare_metrics(_keyed(before), _keyed(after))
        assert regressions == []

    def test_real_slowdown_fails(self):
        before = _metrics(10.0, std=1.0, n=5)
        after = _metrics(20.0, std=1.0, n=5)
        (regression,) = compare_metrics(_keyed(before), _keyed(after))
        assert regression.metric == "simulated_seconds"
        assert "CI95" in regression.detail
        assert "±" in regression.detail

    def test_speedup_never_flagged(self):
        before = _metrics(20.0, std=0.1, n=5)
        after = _metrics(10.0, std=0.1, n=5)
        assert compare_metrics(_keyed(before), _keyed(after)) == []

    def test_without_stats_ratio_threshold_applies(self):
        # No repetition stats on either side: the original 5%
        # one-sided gate still governs.
        before = _metrics(10.0)
        after = _metrics(10.8)
        (regression,) = compare_metrics(_keyed(before), _keyed(after))
        assert regression.metric == "simulated_seconds"
        assert "grew" in regression.detail

    def test_one_sided_stats_fall_back_to_ratio(self):
        before = _metrics(10.0, std=1.0, n=5)
        after = _metrics(10.8)  # candidate ran once
        (regression,) = compare_metrics(_keyed(before), _keyed(after))
        assert "grew" in regression.detail

    def test_single_repetition_stats_do_not_count(self):
        assert _metrics(10.0, std=0.0, n=1).runtime_stats() is None
        assert _metrics(10.0, std=1.0, n=5).runtime_stats() is not None


class TestLoadMetricsStats:
    def test_results_rows_carry_stats(self, tmp_path):
        row = {
            "platform": "giraph",
            "graph": "graph500-8",
            "algorithm": "BFS",
            "status": "success",
            "runtime_seconds": 10.0,
            "runtime_mean": 10.0,
            "runtime_std": 0.5,
            "num_repetitions": 5,
        }
        path = tmp_path / "results.jsonl"
        path.write_text(json.dumps(row) + "\n")
        metrics = load_metrics(path)
        (loaded,) = metrics.values()
        stats = loaded.runtime_stats()
        assert stats is not None
        assert stats.n == 5

    def test_old_rows_without_stats_still_load(self, tmp_path):
        row = {
            "platform": "giraph",
            "graph": "graph500-8",
            "algorithm": "BFS",
            "status": "success",
            "runtime_seconds": 10.0,
        }
        path = tmp_path / "results.jsonl"
        path.write_text(json.dumps(row) + "\n")
        (loaded,) = load_metrics(path).values()
        assert loaded.runtime_stats() is None
