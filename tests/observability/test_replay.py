"""Trace replay: JSONL traces re-aggregate to exact run profiles."""

import json

import pytest

from repro.core.cost import ClusterSpec, CostMeter
from repro.core.workload import Algorithm, AlgorithmParams
from repro.observability import (
    JsonlTraceWriter,
    parse_trace,
    profile_fingerprint,
    read_trace,
    replay_trace,
    verify_replay,
)
from repro.platforms.pregel.driver import GiraphPlatform
from repro.robustness.faults import FaultInjector, FaultPlan


def _traced_bfs(tmp_path, cluster_spec, small_rmat):
    platform = GiraphPlatform(cluster_spec)
    handle = platform.upload_graph("tiny", small_rmat)
    writer = JsonlTraceWriter(tmp_path / "bfs.jsonl")
    platform.sinks = (writer,)
    try:
        run = platform.run_algorithm(handle, Algorithm.BFS, AlgorithmParams())
    finally:
        platform.sinks = ()
        writer.close()
    return writer.path, run


class TestReplayExactness:
    def test_replay_reconstructs_exact_profile(
        self, tmp_path, cluster_spec, small_rmat
    ):
        path, run = _traced_bfs(tmp_path, cluster_spec, small_rmat)
        replayed = replay_trace(path)
        assert profile_fingerprint(replayed) == profile_fingerprint(
            run.profile
        )
        # Bit-exact, not approximately equal: JSON round-trips floats.
        assert replayed.simulated_seconds == run.profile.simulated_seconds

    def test_verify_replay_clean(self, tmp_path, cluster_spec, small_rmat):
        path, run = _traced_bfs(tmp_path, cluster_spec, small_rmat)
        assert verify_replay(path, run.profile) == []

    def test_verify_replay_detects_tampering(
        self, tmp_path, cluster_spec, small_rmat
    ):
        path, run = _traced_bfs(tmp_path, cluster_spec, small_rmat)
        lines = path.read_text().splitlines()
        doctored = []
        for line in lines:
            event = json.loads(line)
            if event["event"] == "round" and event["index"] == 1:
                event["compute_seconds"] += 1.0
            doctored.append(json.dumps(event))
        path.write_text("\n".join(doctored) + "\n")
        mismatches = verify_replay(path, run.profile)
        assert mismatches
        assert any("round 1" in m for m in mismatches)

    def test_infinite_bandwidth_survives_round_trip(
        self, tmp_path, small_rmat
    ):
        # The single-node spec carries network_bandwidth=inf; JSON's
        # non-strict Infinity must round-trip through the trace.
        spec = ClusterSpec.paper_single_node()
        writer = JsonlTraceWriter(tmp_path / "t.jsonl")
        writer.on_run_begin("neo4j", "tiny", "BFS", spec)
        meter = CostMeter(spec, sinks=(writer,))
        meter.begin_round("scan", barrier=False)
        meter.charge_compute(0, 1000)
        meter.end_round()
        writer.on_run_end(meter.profile, "success")
        writer.close()
        replayed = replay_trace(writer.path)
        assert replayed.cluster == spec


class TestFaultAnnotations:
    def test_crash_annotated_and_attempt_incomplete(
        self, tmp_path, cluster_spec, small_rmat
    ):
        platform = GiraphPlatform(cluster_spec)
        handle = platform.upload_graph("tiny", small_rmat)
        injector = FaultInjector(
            FaultPlan(crash_worker=2, crash_round=3), "giraph"
        )
        injector.begin_attempt()
        platform.faults = injector
        writer = JsonlTraceWriter(tmp_path / "crash.jsonl")
        platform.sinks = (writer,)
        try:
            with pytest.raises(Exception):
                platform.run_algorithm(
                    handle, Algorithm.BFS, AlgorithmParams()
                )
        finally:
            platform.sinks = ()
            platform.faults = None
            writer.close()
        (attempt,) = parse_trace(read_trace(writer.path))
        assert attempt.status == "worker-crash"
        assert not attempt.complete
        assert [f["kind"] for f in attempt.faults] == ["worker-crash"]
        assert attempt.faults[0]["round"] == 3
        with pytest.raises(ValueError, match="no completed attempt"):
            replay_trace(writer.path)

    def test_replay_uses_last_completed_attempt(self, tmp_path, cluster_spec):
        writer = JsonlTraceWriter(tmp_path / "retry.jsonl")
        writer.on_run_begin("giraph", "g", "BFS", cluster_spec)
        writer.on_run_end(None, "worker-crash")
        writer.on_run_begin("giraph", "g", "BFS", cluster_spec)
        meter = CostMeter(cluster_spec, sinks=(writer,))
        meter.begin_round("r0")
        meter.charge_compute(0, 500)
        meter.end_round()
        writer.on_run_end(meter.profile, "success")
        writer.close()
        replayed = replay_trace(writer.path)
        assert profile_fingerprint(replayed) == profile_fingerprint(
            meter.profile
        )

    def test_event_before_run_begin_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "round", "index": 0}\n')
        with pytest.raises(ValueError, match="before any run-begin"):
            parse_trace(read_trace(path))


def test_benchmark_core_traces_verify(tmp_path, cluster_spec, small_rmat):
    """The per-cell traces the Benchmark Core writes replay exactly."""
    from repro.core.benchmark import BenchmarkCore
    from repro.core.workload import BenchmarkRunSpec

    platform = GiraphPlatform(cluster_spec)
    core = BenchmarkCore(
        [platform], {"tiny": small_rmat}, trace_dir=tmp_path
    )
    suite = core.run(BenchmarkRunSpec(algorithms=[Algorithm.BFS]))
    (result,) = suite.results
    assert result.succeeded
    assert result.trace_path is not None
    assert verify_replay(result.trace_path, result.run.profile) == []
    # The per-cell writer is detached afterwards: no sink leaks.
    assert platform.sinks == ()
