"""Differential contract: tracing never changes what gets recorded.

Every platform's benchmark cell must produce a bit-identical
:class:`~repro.core.cost.RunProfile` whether or not a trace sink is
attached, and each written trace must replay to exactly that profile.
This is the acceptance gate of the observability layer: observers
observe; they do not perturb.
"""

import pytest

from repro.core.benchmark import BenchmarkCore
from repro.core.cost import ClusterSpec
from repro.core.workload import Algorithm, BenchmarkRunSpec
from repro.observability import profile_fingerprint, verify_replay
from repro.platforms.registry import available_platforms, create_platform_fleet


def _run_suite(small_rmat, trace_dir=None):
    platforms = create_platform_fleet(ClusterSpec.paper_distributed())
    core = BenchmarkCore(
        platforms, {"tiny": small_rmat}, trace_dir=trace_dir
    )
    return core.run(BenchmarkRunSpec(algorithms=[Algorithm.BFS]))


@pytest.fixture(scope="module")
def traced_and_untraced(tmp_path_factory, request):
    from repro.graph.generators import rmat_graph

    graph = rmat_graph(8, edge_factor=8, seed=7)
    trace_dir = tmp_path_factory.mktemp("traces")
    return _run_suite(graph), _run_suite(graph, trace_dir=trace_dir)


def test_every_platform_ran(traced_and_untraced):
    untraced, traced = traced_and_untraced
    platforms = {r.platform for r in untraced.results}
    assert platforms == set(available_platforms())
    assert all(r.succeeded for r in untraced.results)
    assert all(r.succeeded for r in traced.results)


def test_profiles_bit_identical_with_tracing(traced_and_untraced):
    untraced, traced = traced_and_untraced
    for bare in untraced.results:
        observed = traced.lookup(
            bare.platform, bare.graph_name, bare.algorithm
        )
        assert profile_fingerprint(bare.run.profile) == profile_fingerprint(
            observed.run.profile
        ), f"tracing changed {bare.platform}'s recorded profile"
        assert bare.runtime_seconds == observed.runtime_seconds


def test_every_trace_replays_to_its_profile(traced_and_untraced):
    _untraced, traced = traced_and_untraced
    for result in traced.results:
        assert result.trace_path is not None
        mismatches = verify_replay(result.trace_path, result.run.profile)
        assert mismatches == [], (
            f"{result.platform}: {mismatches}"
        )


def test_chokepoints_attached_to_every_cell(traced_and_untraced):
    untraced, _traced = traced_and_untraced
    for result in untraced.results:
        assert result.chokepoints is not None
        assert result.chokepoints.dominant_letter() in set("NMLS")
