"""Unit tests for edge-list / vertex-list I/O."""

import pytest

from repro.graph.graph import Graph
from repro.graph.io import (
    iter_edge_lines,
    read_edge_list,
    read_vertex_list,
    write_edge_list,
    write_vertex_list,
)


def test_roundtrip(tmp_path, small_rmat):
    # R-MAT graphs have isolated vertices, so a faithful roundtrip
    # needs both the edge file and the vertex file.
    edge_path = tmp_path / "graph.e"
    vertex_path = tmp_path / "graph.v"
    count = write_edge_list(small_rmat, edge_path)
    write_vertex_list([int(v) for v in small_rmat.vertices], vertex_path)
    assert count == small_rmat.num_edges
    loaded = read_edge_list(edge_path, vertex_path=vertex_path)
    assert loaded == small_rmat


def test_roundtrip_gzip(tmp_path, triangle_graph):
    path = tmp_path / "graph.e.gz"
    write_edge_list(triangle_graph, path)
    loaded = read_edge_list(path)
    # The isolated vertex is lost without a vertex file.
    assert loaded.num_edges == triangle_graph.num_edges
    assert loaded.num_vertices == triangle_graph.num_vertices - 1


def test_vertex_file_restores_isolated_vertices(tmp_path, triangle_graph):
    edge_path = tmp_path / "graph.e"
    vertex_path = tmp_path / "graph.v"
    write_edge_list(triangle_graph, edge_path)
    write_vertex_list([int(v) for v in triangle_graph.vertices], vertex_path)
    loaded = read_edge_list(edge_path, vertex_path=vertex_path)
    assert loaded == triangle_graph


def test_comments_and_blank_lines(tmp_path):
    path = tmp_path / "graph.e"
    path.write_text("# header\n\n0 1\n  \n1 2\n# trailing\n")
    assert list(iter_edge_lines(path)) == [(0, 1), (1, 2)]


def test_malformed_edge_line(tmp_path):
    path = tmp_path / "bad.e"
    path.write_text("0 1\n42\n")
    with pytest.raises(ValueError, match="bad.e:2"):
        list(iter_edge_lines(path))


def test_malformed_vertex_line(tmp_path):
    path = tmp_path / "bad.v"
    path.write_text("1\nnope\n")
    with pytest.raises(ValueError, match="bad.v:2"):
        read_vertex_list(path)


def test_directed_load(tmp_path):
    path = tmp_path / "graph.e"
    path.write_text("0 1\n1 0\n")
    directed = read_edge_list(path, directed=True)
    assert directed.num_edges == 2
    undirected = read_edge_list(path, directed=False)
    assert undirected.num_edges == 1


def test_write_creates_parent_dirs(tmp_path, triangle_graph):
    path = tmp_path / "deep" / "nested" / "graph.e"
    write_edge_list(triangle_graph, path)
    assert path.exists()


def test_extra_columns_tolerated(tmp_path):
    # Some SNAP exports carry weights/timestamps; only the first two
    # columns are the edge.
    path = tmp_path / "weighted.e"
    path.write_text("0 1 0.5\n1 2 0.25\n")
    graph = Graph.from_edges(iter_edge_lines(path))
    assert graph.num_edges == 2
