"""Unit tests for the core Graph/GraphBuilder data structures."""

import numpy as np
import pytest

from repro.graph.graph import Graph, GraphBuilder


class TestGraphBuilder:
    def test_deduplicates_edges(self):
        builder = GraphBuilder()
        assert builder.add_edge(1, 2)
        assert not builder.add_edge(1, 2)
        assert not builder.add_edge(2, 1)  # undirected: same edge
        assert builder.num_edges == 1

    def test_directed_keeps_both_orientations(self):
        builder = GraphBuilder(directed=True)
        assert builder.add_edge(1, 2)
        assert builder.add_edge(2, 1)
        assert builder.num_edges == 2

    def test_drops_self_loops_by_default(self):
        builder = GraphBuilder()
        assert not builder.add_edge(3, 3)
        assert builder.num_edges == 0
        # The vertex is not even registered by a rejected self-loop.
        assert builder.num_vertices == 0

    def test_keeps_self_loops_when_allowed(self):
        builder = GraphBuilder(allow_self_loops=True)
        assert builder.add_edge(3, 3)
        assert builder.num_edges == 1

    def test_rejects_negative_vertices(self):
        builder = GraphBuilder()
        with pytest.raises(ValueError):
            builder.add_vertex(-1)
        with pytest.raises(ValueError):
            builder.add_edge(-1, 2)

    def test_remove_edge_keeps_vertices(self):
        builder = GraphBuilder()
        builder.add_edge(1, 2)
        assert builder.remove_edge(2, 1)
        assert not builder.remove_edge(1, 2)
        assert builder.num_vertices == 2

    def test_has_edge_is_orientation_insensitive_undirected(self):
        builder = GraphBuilder()
        builder.add_edge(5, 3)
        assert builder.has_edge(3, 5)
        assert builder.has_edge(5, 3)

    def test_build_produces_graph(self):
        builder = GraphBuilder()
        builder.add_edges([(0, 1), (1, 2)])
        builder.add_vertex(9)
        graph = builder.build()
        assert graph.num_vertices == 4
        assert graph.num_edges == 2


class TestGraph:
    def test_vertices_sorted_and_unique(self):
        graph = Graph.from_edges([(5, 1), (3, 1)], vertices=[7, 7])
        assert list(graph.vertices) == [1, 3, 5, 7]

    def test_neighbors_undirected(self, triangle_graph):
        assert list(triangle_graph.neighbors(2)) == [0, 1, 3]
        assert list(triangle_graph.neighbors(4)) == []

    def test_neighbors_directed(self):
        graph = Graph.from_edges([(0, 1), (0, 2), (2, 0)], directed=True)
        assert list(graph.neighbors(0)) == [1, 2]
        assert list(graph.in_neighbors(0)) == [2]
        assert graph.degree(0) == 2
        assert graph.in_degree(0) == 1

    def test_has_edge_directed_is_directional(self):
        graph = Graph.from_edges([(0, 1)], directed=True)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_has_edge_missing_vertex(self, triangle_graph):
        assert not triangle_graph.has_edge(0, 99)

    def test_edges_canonical_order_undirected(self):
        graph = Graph.from_edges([(9, 2), (4, 1)])
        assert [tuple(e) for e in graph.edges] == [(1, 4), (2, 9)]

    def test_degrees_match_neighbor_counts(self, small_rmat):
        degrees = small_rmat.degrees()
        for vertex in small_rmat.vertices:
            assert degrees[int(vertex)] == len(small_rmat.neighbors(int(vertex)))

    def test_degree_sequence_alignment(self, small_rmat):
        sequence = small_rmat.degree_sequence()
        for index, vertex in enumerate(small_rmat.vertices):
            assert sequence[index] == small_rmat.degree(int(vertex))

    def test_to_directed_roundtrip(self, triangle_graph):
        directed = triangle_graph.to_directed()
        assert directed.directed
        assert directed.num_edges == 2 * triangle_graph.num_edges
        back = directed.to_undirected()
        assert back == triangle_graph

    def test_to_undirected_merges_reciprocal_arcs(self):
        directed = Graph.from_edges([(0, 1), (1, 0)], directed=True)
        undirected = directed.to_undirected()
        assert undirected.num_edges == 1

    def test_subgraph_induced(self, triangle_graph):
        sub = triangle_graph.subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3

    def test_subgraph_unknown_vertex(self, triangle_graph):
        with pytest.raises(ValueError):
            triangle_graph.subgraph([0, 99])

    def test_relabel_dense(self):
        graph = Graph.from_edges([(10, 20), (20, 30)])
        relabeled, mapping = graph.relabel()
        assert list(relabeled.vertices) == [0, 1, 2]
        assert mapping == {10: 0, 20: 1, 30: 2}
        assert relabeled.has_edge(0, 1)

    def test_adjacency_export(self, triangle_graph):
        adjacency = triangle_graph.adjacency()
        assert adjacency[2] == [0, 1, 3]
        assert adjacency[4] == []

    def test_contains_and_len(self, triangle_graph):
        assert 3 in triangle_graph
        assert 99 not in triangle_graph
        assert len(triangle_graph) == 5

    def test_equality(self):
        a = Graph.from_edges([(0, 1), (1, 2)])
        b = Graph.from_edges([(1, 2), (0, 1)])
        c = Graph.from_edges([(0, 1)])
        assert a == b
        assert a != c

    def test_empty_graph(self):
        graph = Graph([], [])
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert list(graph.iter_edges()) == []

    def test_edge_referencing_unknown_vertex_rejected(self):
        with pytest.raises(ValueError):
            Graph([0, 1], [(0, 2)])

    def test_neighbors_are_numpy_vertex_ids(self, triangle_graph):
        neighbors = triangle_graph.neighbors(0)
        assert isinstance(neighbors, np.ndarray)
        assert set(neighbors.tolist()) == {1, 2}


class TestBulkAccessors:
    """The vectorized CSR helpers behind the bulk engine kernels."""

    def test_out_degrees_matches_per_vertex_degree(self, triangle_graph):
        degrees = triangle_graph.out_degrees()
        for position, vertex in enumerate(triangle_graph.vertices):
            assert degrees[position] == triangle_graph.degree(int(vertex))

    def test_out_degrees_directed(self):
        graph = Graph.from_edges([(0, 1), (0, 2), (1, 2)], directed=True)
        assert graph.out_degrees().tolist() == [2, 1, 0]

    def test_indices_of_round_trips(self, triangle_graph):
        ids = triangle_graph.vertices
        idx = triangle_graph.indices_of(ids)
        assert np.array_equal(triangle_graph.vertices[idx], ids)
        # Sparse, unsorted ids map correctly too.
        sparse = Graph.from_edges([(10, 30), (30, 700)])
        assert sparse.indices_of([700, 10]).tolist() == [2, 0]

    def test_indices_of_rejects_unknown_vertices(self, triangle_graph):
        with pytest.raises(KeyError):
            triangle_graph.indices_of([0, 99])
        with pytest.raises(KeyError):
            Graph([], []).indices_of([1])

    def test_indices_of_empty(self, triangle_graph):
        assert triangle_graph.indices_of([]).tolist() == []

    def test_csr_arrays_describe_adjacency(self, triangle_graph):
        offsets, targets = triangle_graph.csr()
        assert len(offsets) == triangle_graph.num_vertices + 1
        idx = triangle_graph.indices_of([2])[0]
        row = targets[offsets[idx] : offsets[idx + 1]]
        assert set(triangle_graph.vertices[row].tolist()) == {0, 1, 3}

    def test_frontier_neighbors_matches_per_vertex_slices(
        self, triangle_graph
    ):
        frontier = [2, 0, 4]
        expected = np.concatenate(
            [triangle_graph.neighbors(v) for v in frontier]
        )
        got = triangle_graph.frontier_neighbors(frontier)
        assert np.array_equal(got, expected)

    def test_frontier_neighbors_keeps_multiplicity(self, triangle_graph):
        doubled = triangle_graph.frontier_neighbors([3, 3])
        assert doubled.tolist() == [2, 2]

    def test_frontier_neighbors_empty_cases(self, triangle_graph):
        assert triangle_graph.frontier_neighbors([]).tolist() == []
        assert triangle_graph.frontier_neighbors([4]).tolist() == []

    def test_frontier_neighbors_sparse_ids(self):
        graph = Graph.from_edges([(10, 30), (30, 700), (10, 700)])
        got = graph.frontier_neighbors([30, 10])
        assert got.tolist() == [10, 700, 30, 700]
