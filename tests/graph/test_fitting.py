"""Unit tests for degree-distribution fitting (Section 2.2 analysis)."""

import numpy as np
import pytest

from repro.graph.fitting import (
    expected_frequencies,
    fit_degree_distribution,
    fit_geometric,
    fit_poisson,
    fit_weibull,
    fit_zeta,
)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(123)


class TestIndividualFits:
    def test_zeta_recovers_exponent(self, rng):
        # Sample from a truncated zeta via inverse CDF.
        alpha = 1.7
        support = np.arange(1, 2000)
        pmf = support ** (-alpha)
        pmf = pmf / pmf.sum()
        sample = rng.choice(support, size=20000, p=pmf)
        fit = fit_zeta(sample)
        assert fit.model == "zeta"
        assert fit.params["alpha"] == pytest.approx(alpha, abs=0.08)

    def test_geometric_recovers_p(self, rng):
        sample = rng.geometric(0.12, size=20000)
        fit = fit_geometric(sample)
        assert fit.params["p"] == pytest.approx(0.12, abs=0.01)

    def test_poisson_recovers_mu(self, rng):
        sample = rng.poisson(9.0, size=20000)
        fit = fit_poisson(sample)
        assert fit.params["mu"] == pytest.approx(9.0, abs=0.15)

    def test_weibull_recovers_shape_roughly(self, rng):
        sample = np.rint(rng.weibull(1.5, size=20000) * 20).astype(int)
        fit = fit_weibull(sample)
        assert fit.params["shape"] == pytest.approx(1.5, rel=0.15)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            fit_poisson([])

    def test_negative_degrees_rejected(self):
        with pytest.raises(ValueError):
            fit_geometric([1, -2])

    def test_zeta_needs_positive_degrees(self):
        with pytest.raises(ValueError):
            fit_zeta([0, 0, 0])


class TestModelSelection:
    def test_selects_zeta_for_powerlaw_sample(self, rng):
        support = np.arange(1, 500)
        pmf = support ** (-2.0)
        pmf = pmf / pmf.sum()
        sample = rng.choice(support, size=5000, p=pmf)
        fits = fit_degree_distribution(sample)
        best = min(fits.values(), key=lambda f: f.aic)
        assert best.model == "zeta"

    def test_selects_poissonish_for_poisson_sample(self, rng):
        sample = rng.poisson(20.0, size=5000)
        fits = fit_degree_distribution(sample)
        best = min(fits.values(), key=lambda f: f.aic)
        assert best.model == "poisson"

    def test_selects_geometric_for_geometric_sample(self, rng):
        sample = rng.geometric(0.2, size=5000)
        fits = fit_degree_distribution(sample)
        best = min(fits.values(), key=lambda f: f.aic)
        assert best.model == "geometric"

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            fit_degree_distribution([1, 2, 3], models=("zeta", "pareto"))

    def test_requested_subset_only(self, rng):
        sample = rng.geometric(0.3, size=500)
        fits = fit_degree_distribution(sample, models=("zeta", "geometric"))
        assert set(fits) == {"zeta", "geometric"}


class TestFitInterface:
    def test_pmf_sums_to_one_geometric(self):
        fit = fit_geometric([1, 2, 3, 4, 5])
        ks = np.arange(1, 2000)
        assert fit.pmf(ks).sum() == pytest.approx(1.0, abs=1e-6)

    def test_expected_frequencies_scale_with_n(self, rng):
        sample = rng.geometric(0.25, size=1000)
        fit = fit_geometric(sample)
        expected = expected_frequencies(fit, np.array([1]))
        assert expected[0] == pytest.approx(1000 * 0.25, rel=0.02)

    def test_aic_penalizes_parameters(self, rng):
        sample = rng.geometric(0.25, size=2000)
        fits = fit_degree_distribution(sample)
        geometric = fits["geometric"]
        weibull = fits["weibull"]
        # Weibull (2 params) can fit at most as well; with AIC the
        # 1-parameter geometric wins on its own data.
        assert geometric.aic < weibull.aic
