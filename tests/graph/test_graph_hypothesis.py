"""Property-based tests for the graph substrate (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.graph import Graph
from repro.graph.properties import (
    average_clustering_coefficient,
    degree_assortativity,
    global_clustering_coefficient,
)

edge_lists = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)),
    min_size=0,
    max_size=120,
)


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_undirected_graph_invariants(edges):
    graph = Graph.from_edges(edges)
    # Handshake lemma: degree sum equals twice the edge count.
    assert int(graph.degree_sequence().sum()) == 2 * graph.num_edges
    # Edges are canonical (source <= target) and unique.
    seen = set()
    for source, target in graph.iter_edges():
        assert source < target  # self-loops dropped, canonical order
        assert (source, target) not in seen
        seen.add((source, target))
    # Neighbor relation is symmetric.
    for vertex in graph.vertices:
        for neighbor in graph.neighbors(int(vertex)):
            assert int(vertex) in set(
                int(u) for u in graph.neighbors(int(neighbor))
            )


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_directed_degree_sums_match(edges):
    graph = Graph.from_edges(edges, directed=True)
    out_sum = sum(graph.degree(int(v)) for v in graph.vertices)
    in_sum = sum(graph.in_degree(int(v)) for v in graph.vertices)
    assert out_sum == in_sum == graph.num_edges


@given(edge_lists)
@settings(max_examples=40, deadline=None)
def test_clustering_coefficients_bounded(edges):
    graph = Graph.from_edges(edges)
    average = average_clustering_coefficient(graph)
    transitivity = global_clustering_coefficient(graph)
    assert 0.0 <= average <= 1.0
    assert 0.0 <= transitivity <= 1.0


@given(edge_lists)
@settings(max_examples=40, deadline=None)
def test_assortativity_in_range_or_nan(edges):
    graph = Graph.from_edges(edges)
    value = degree_assortativity(graph)
    assert math.isnan(value) or -1.0 - 1e-9 <= value <= 1.0 + 1e-9


@given(edge_lists, edge_lists)
@settings(max_examples=40, deadline=None)
def test_graph_equality_is_edge_set_equality(edges_a, edges_b):
    graph_a = Graph.from_edges(edges_a)
    graph_b = Graph.from_edges(edges_b)
    same_vertices = list(graph_a.vertices) == list(graph_b.vertices)
    same_edges = [tuple(e) for e in graph_a.edges] == [
        tuple(e) for e in graph_b.edges
    ]
    assert (graph_a == graph_b) == (same_vertices and same_edges)


@given(edge_lists)
@settings(max_examples=40, deadline=None)
def test_to_directed_to_undirected_roundtrip(edges):
    graph = Graph.from_edges(edges)
    assert graph.to_directed().to_undirected() == graph
