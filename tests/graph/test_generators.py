"""Unit tests for synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    holme_kim_graph,
    rmat_graph,
    watts_strogatz_graph,
)
from repro.graph.properties import (
    average_clustering_coefficient,
    degree_assortativity,
)


class TestRmat:
    def test_vertex_count_is_power_of_two(self):
        graph = rmat_graph(7, seed=1)
        assert graph.num_vertices == 128

    def test_deterministic(self):
        assert rmat_graph(7, seed=5) == rmat_graph(7, seed=5)
        assert rmat_graph(7, seed=5) != rmat_graph(7, seed=6)

    def test_edge_factor_upper_bound(self):
        graph = rmat_graph(8, edge_factor=8, seed=2)
        # Dedup and self-loop removal only ever reduce the count.
        assert graph.num_edges <= 8 * 256
        assert graph.num_edges > 0.5 * 8 * 256

    def test_skewed_degrees(self):
        graph = rmat_graph(10, seed=3)
        degrees = graph.degree_sequence()
        # R-MAT graphs are heavy-tailed: the max degree dwarfs the mean.
        assert degrees.max() > 8 * degrees.mean()

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat_graph(5, probabilities=(0.5, 0.2, 0.2, 0.2))

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            rmat_graph(0)

    def test_directed_variant(self):
        graph = rmat_graph(6, seed=4, directed=True)
        assert graph.directed


class TestErdosRenyi:
    def test_edge_count_near_expectation(self):
        n, p = 200, 0.05
        graph = erdos_renyi_graph(n, p, seed=1)
        expected = p * n * (n - 1) / 2
        assert abs(graph.num_edges - expected) < 0.25 * expected

    def test_p_zero_and_one(self):
        assert erdos_renyi_graph(10, 0.0, seed=1).num_edges == 0
        assert erdos_renyi_graph(10, 1.0, seed=1).num_edges == 45

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 1.5)

    def test_directed(self):
        graph = erdos_renyi_graph(50, 0.1, seed=2, directed=True)
        assert graph.directed
        assert graph.num_vertices == 50


class TestWattsStrogatz:
    def test_high_clustering_at_low_rewiring(self):
        graph = watts_strogatz_graph(500, 8, 0.05, seed=1)
        assert average_clustering_coefficient(graph) > 0.4

    def test_degree_concentration(self):
        graph = watts_strogatz_graph(200, 6, 0.0, seed=1)
        degrees = graph.degree_sequence()
        assert degrees.min() >= 5
        assert np.median(degrees) == 6

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            watts_strogatz_graph(10, 3, 0.1)  # odd k
        with pytest.raises(ValueError):
            watts_strogatz_graph(4, 4, 0.1)  # k >= n


class TestBarabasiAlbert:
    def test_heavy_tail(self):
        graph = barabasi_albert_graph(1000, 2, seed=1)
        degrees = graph.degree_sequence()
        assert degrees.max() > 10 * np.median(degrees)

    def test_edge_count(self):
        graph = barabasi_albert_graph(500, 3, seed=1)
        assert graph.num_edges == pytest.approx(3 * (500 - 3), rel=0.01)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(10, 0)
        with pytest.raises(ValueError):
            barabasi_albert_graph(5, 5)


class TestHolmeKim:
    def test_triad_probability_raises_clustering(self):
        low = holme_kim_graph(2000, 3, 0.05, seed=1)
        high = holme_kim_graph(2000, 3, 0.7, seed=1)
        assert (
            average_clustering_coefficient(high)
            > 2 * average_clustering_coefficient(low)
        )

    def test_negative_assortativity(self):
        graph = holme_kim_graph(3000, 3, 0.2, seed=1)
        assert degree_assortativity(graph) < 0

    def test_deterministic(self):
        assert holme_kim_graph(300, 2, 0.3, seed=9) == holme_kim_graph(
            300, 2, 0.3, seed=9
        )

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            holme_kim_graph(100, 2, 1.5)
        with pytest.raises(ValueError):
            holme_kim_graph(10, 0, 0.5)


class TestBulkScalarEquivalence:
    """The vectorized generator paths build the identical graph.

    ``bulk=True`` feeds numpy edge blocks straight into ``Graph``;
    ``bulk=False`` walks the per-edge ``GraphBuilder`` path. Both
    consume the same RNG stream, so the resulting graphs must compare
    structurally equal — vertices, edges, and orientation.
    """

    @pytest.mark.parametrize("directed", [True, False])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_rmat(self, directed, seed):
        from repro.graph.generators import rmat_graph

        bulk = rmat_graph(scale=7, edge_factor=8, seed=seed, directed=directed)
        scalar = rmat_graph(
            scale=7, edge_factor=8, seed=seed, directed=directed, bulk=False
        )
        assert bulk == scalar

    @pytest.mark.parametrize("diagonal", [0.0, 0.4])
    def test_grid(self, diagonal):
        from repro.graph.generators import grid_graph

        bulk = grid_graph(side=17, diagonal_probability=diagonal, seed=5)
        scalar = grid_graph(
            side=17, diagonal_probability=diagonal, seed=5, bulk=False
        )
        assert bulk == scalar

    def test_bulk_is_the_default(self):
        import inspect

        from repro.graph.generators import grid_graph, rmat_graph

        assert inspect.signature(rmat_graph).parameters["bulk"].default is True
        assert inspect.signature(grid_graph).parameters["bulk"].default is True
