"""Graph ``save``/``load`` round trips and the content-addressed key.

The ``.npy``-per-array on-disk format is the transport the parallel
benchmark runner and the dataset cache use to share CSR graphs across
processes without pickling; these tests pin the round-trip contract
(structural equality, both mmap and in-memory), the format-version
guard, and the ``content_key`` identity.
"""

import json

import numpy as np
import pytest

from repro.graph.generators import rmat_graph
from repro.graph.graph import GRAPH_FORMAT, Graph


@pytest.fixture
def directed_graph():
    return rmat_graph(scale=6, edge_factor=4, seed=3, directed=True)


@pytest.fixture
def undirected_graph():
    return rmat_graph(scale=6, edge_factor=4, seed=4, directed=False)


@pytest.mark.parametrize("mmap", [True, False], ids=["mmap", "heap"])
class TestRoundTrip:
    def test_directed(self, tmp_path, directed_graph, mmap):
        directed_graph.save(tmp_path / "g")
        loaded = Graph.load(tmp_path / "g", mmap=mmap)
        assert loaded == directed_graph
        assert loaded.directed
        assert loaded.num_vertices == directed_graph.num_vertices
        assert loaded.num_edges == directed_graph.num_edges

    def test_undirected(self, tmp_path, undirected_graph, mmap):
        undirected_graph.save(tmp_path / "g")
        loaded = Graph.load(tmp_path / "g", mmap=mmap)
        assert loaded == undirected_graph
        assert not loaded.directed

    def test_neighbors_survive(self, tmp_path, directed_graph, mmap):
        directed_graph.save(tmp_path / "g")
        loaded = Graph.load(tmp_path / "g", mmap=mmap)
        for vertex in list(directed_graph.vertices)[:16]:
            assert list(loaded.neighbors(int(vertex))) == list(
                directed_graph.neighbors(int(vertex))
            )

    def test_sparse_ids(self, tmp_path, mmap):
        graph = Graph([2, 7, 900], [(2, 900), (7, 2)], directed=True)
        graph.save(tmp_path / "g")
        assert Graph.load(tmp_path / "g", mmap=mmap) == graph


def test_mmap_load_is_memory_mapped(tmp_path, directed_graph):
    directed_graph.save(tmp_path / "g")
    loaded = Graph.load(tmp_path / "g", mmap=True)
    assert isinstance(loaded._targets, np.memmap)


def test_heap_load_is_not_memory_mapped(tmp_path, directed_graph):
    directed_graph.save(tmp_path / "g")
    loaded = Graph.load(tmp_path / "g", mmap=False)
    assert not isinstance(loaded._targets, np.memmap)


def test_format_version_guard(tmp_path, directed_graph):
    directed_graph.save(tmp_path / "g")
    meta_path = tmp_path / "g" / "meta.json"
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    meta["format"] = "graphalytics-graph/999"
    meta_path.write_text(json.dumps(meta), encoding="utf-8")
    with pytest.raises(ValueError, match="format"):
        Graph.load(tmp_path / "g")


def test_meta_records_format_and_key(tmp_path, directed_graph):
    directed_graph.save(tmp_path / "g")
    meta = json.loads((tmp_path / "g" / "meta.json").read_text(encoding="utf-8"))
    assert meta["format"] == GRAPH_FORMAT
    assert meta["content_key"] == directed_graph.content_key()
    assert meta["directed"] is True


class TestContentKey:
    def test_deterministic(self, directed_graph):
        assert directed_graph.content_key() == directed_graph.content_key()
        regenerated = rmat_graph(scale=6, edge_factor=4, seed=3, directed=True)
        assert regenerated.content_key() == directed_graph.content_key()

    def test_distinguishes_structure(self, directed_graph):
        other = rmat_graph(scale=6, edge_factor=4, seed=5, directed=True)
        assert other.content_key() != directed_graph.content_key()

    def test_distinguishes_orientation(self):
        directed = Graph([0, 1], [(0, 1)], directed=True)
        undirected = Graph([0, 1], [(0, 1)], directed=False)
        assert directed.content_key() != undirected.content_key()

    def test_survives_round_trip(self, tmp_path, directed_graph):
        directed_graph.save(tmp_path / "g")
        loaded = Graph.load(tmp_path / "g", mmap=True)
        assert loaded.content_key() == directed_graph.content_key()
