"""Unit tests for structural graph properties, cross-checked with networkx."""

import math

import networkx as nx
import pytest

from repro.graph.graph import Graph
from repro.graph.properties import (
    average_clustering_coefficient,
    count_triangles,
    degree_assortativity,
    degree_histogram,
    global_clustering_coefficient,
    graph_characteristics,
    local_clustering_coefficient,
)


def _to_networkx(graph: Graph) -> nx.Graph:
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(int(v) for v in graph.vertices)
    nx_graph.add_edges_from(graph.iter_edges())
    return nx_graph


class TestClustering:
    def test_triangle_local_coefficients(self, triangle_graph):
        assert local_clustering_coefficient(triangle_graph, 0) == 1.0
        assert local_clustering_coefficient(triangle_graph, 1) == 1.0
        # Vertex 2 has neighbors {0, 1, 3}; only (0, 1) is connected.
        assert local_clustering_coefficient(triangle_graph, 2) == pytest.approx(1 / 3)
        # Degree-1 and isolated vertices have coefficient 0.
        assert local_clustering_coefficient(triangle_graph, 3) == 0.0
        assert local_clustering_coefficient(triangle_graph, 4) == 0.0

    def test_average_clustering(self, triangle_graph):
        expected = (1.0 + 1.0 + 1 / 3 + 0.0 + 0.0) / 5
        assert average_clustering_coefficient(triangle_graph) == pytest.approx(expected)

    def test_triangle_count(self, triangle_graph):
        assert count_triangles(triangle_graph) == 1

    def test_global_clustering_triangle(self, triangle_graph):
        # Triplets: v0:1, v1:1, v2:3 -> 5; transitivity = 3*1/5.
        assert global_clustering_coefficient(triangle_graph) == pytest.approx(0.6)

    def test_matches_networkx_on_random_graph(self, small_rmat):
        nx_graph = _to_networkx(small_rmat)
        assert average_clustering_coefficient(small_rmat) == pytest.approx(
            nx.average_clustering(nx_graph), abs=1e-12
        )
        assert global_clustering_coefficient(small_rmat) == pytest.approx(
            nx.transitivity(nx_graph), abs=1e-12
        )

    def test_clique_has_clustering_one(self):
        clique = Graph.from_edges(
            [(i, j) for i in range(5) for j in range(i + 1, 5)]
        )
        assert average_clustering_coefficient(clique) == pytest.approx(1.0)
        assert global_clustering_coefficient(clique) == pytest.approx(1.0)

    def test_tree_has_clustering_zero(self):
        tree = Graph.from_edges([(0, 1), (0, 2), (1, 3), (1, 4)])
        assert average_clustering_coefficient(tree) == 0.0
        assert global_clustering_coefficient(tree) == 0.0

    def test_empty_graph(self):
        empty = Graph([], [])
        assert average_clustering_coefficient(empty) == 0.0
        assert global_clustering_coefficient(empty) == 0.0


class TestAssortativity:
    def test_matches_networkx(self, small_rmat):
        nx_graph = _to_networkx(small_rmat)
        assert degree_assortativity(small_rmat) == pytest.approx(
            nx.degree_assortativity_coefficient(nx_graph), abs=1e-9
        )

    def test_star_is_maximally_disassortative(self):
        star = Graph.from_edges([(0, i) for i in range(1, 6)])
        assert degree_assortativity(star) == pytest.approx(-1.0)

    def test_regular_graph_undefined(self):
        cycle = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        assert math.isnan(degree_assortativity(cycle))

    def test_empty_graph_nan(self):
        assert math.isnan(degree_assortativity(Graph([0, 1], [])))


class TestHistogramAndCharacteristics:
    def test_degree_histogram(self, triangle_graph):
        # Degrees: 0->2, 1->2, 2->3, 3->1, 4->0.
        assert degree_histogram(triangle_graph) == {0: 1, 1: 1, 2: 2, 3: 1}

    def test_characteristics_row(self, triangle_graph):
        row = graph_characteristics(triangle_graph, "tri")
        assert row.name == "tri"
        assert row.num_vertices == 5
        assert row.num_edges == 4
        assert row.as_row()[0] == "tri"

    def test_characteristics_on_directed_graph_use_undirected_view(self):
        directed = Graph.from_edges([(0, 1), (1, 0), (1, 2)], directed=True)
        row = graph_characteristics(directed)
        assert row.num_edges == 2
