"""RDF and SPARQL over the column store (the paper's RDF plan).

The paper: "we plan to support databases for RDF semantic web data and
are working on implementing support for OpenLink Virtuoso, a popular
RDF database." This example loads a Datagen social network as
``knows`` triples into the dictionary-encoded triple store, runs
SPARQL basic graph patterns, and shows the ``+`` property path
computing the same reachability as the paper's SQL ``transitive``
query.

Run with::

    python examples/rdf_sparql.py
"""

from repro.algorithms import bfs
from repro.datasets import snb_graph
from repro.platforms.columnar.rdf import RDFStore, graph_to_triples


def main() -> None:
    graph = snb_graph(3000, seed=77)
    store = RDFStore(graph_to_triples(graph))
    raw_bytes = store.num_triples * 3 * 8
    print(
        f"loaded {store.num_triples} knows-triples; three compressed "
        f"indexes take {store.compressed_bytes / 1e3:.1f} kB "
        f"({raw_bytes / store.compressed_bytes:.1f}x smaller than raw)"
    )

    person = f"person:{int(graph.vertices[0])}"

    friends = store.query(f"SELECT ?x WHERE {{ <{person}> <knows> ?x . }}")
    print(f"\n{person} knows {len(friends)} persons directly")

    friends_of_friends = store.query(
        f"SELECT ?x ?y WHERE {{ <{person}> <knows> ?x . ?x <knows> ?y . }}"
    )
    print(f"two-hop (friend, friend-of-friend) pairs: {len(friends_of_friends)}")

    total = store.query("SELECT (COUNT(*) AS ?n) WHERE { ?s <knows> ?o . }")
    print(f"total knows edges (directed): {total}")

    reachable = store.query(f"SELECT ?x WHERE {{ <{person}> <knows>+ ?x . }}")
    expected = sum(1 for d in bfs(graph, int(graph.vertices[0])).values() if d >= 0)
    print(
        f"\ntransitive closure <knows>+ reaches {len(reachable)} persons "
        f"(BFS cross-check: {expected})"
    )
    assert len(reachable) == expected


if __name__ == "__main__":
    main()
