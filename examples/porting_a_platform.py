"""Porting a new platform to the benchmark (the driver API).

The paper: "adding a new platform to Graphalytics consists of
implementing the algorithms, adding a dataset loading method,
providing a workload processing interface, and logging the
information required for results reporting."

This example walks through exactly those four steps for a toy
"single-threaded in-memory" platform, registers it, and benchmarks it
next to Giraph — everything a third-party platform developer would do.

Run with::

    python examples/porting_a_platform.py
"""

from repro.algorithms import (
    bfs,
    community_detection,
    connected_components,
    forest_fire_links,
    stats,
)
from repro.core.benchmark import BenchmarkCore
from repro.core.cost import ClusterSpec, CostMeter, RunProfile
from repro.core.platform_api import GraphHandle, Platform
from repro.core.report import ReportGenerator
from repro.core.validation import OutputValidator
from repro.core.workload import Algorithm, AlgorithmParams
from repro.datasets import load_dataset
from repro.graph.graph import Graph
from repro.platforms.registry import create_platform, register_platform


class ToyPlatform(Platform):
    """A minimal driver: single machine, adjacency in a Python dict."""

    name = "toy"

    # Step 1 — dataset loading method.
    def _load(self, name: str, graph: Graph) -> GraphHandle:
        undirected = graph.to_undirected()
        return GraphHandle(
            name=name,
            platform=self.name,
            graph=undirected,
            storage_bytes=float(80 * undirected.num_vertices
                                + 48 * undirected.num_edges),
        )

    # Step 2 — workload processing interface (+ step 3, the
    # algorithm implementations; the toy reuses the references).
    def _execute(
        self, handle: GraphHandle, algorithm: Algorithm, params: AlgorithmParams
    ) -> tuple[object, RunProfile]:
        graph = handle.graph
        # Step 4 — log the information required for reporting: the
        # meter records rounds, work, and memory for the harness.
        meter = CostMeter(self.cluster)
        meter.allocate_memory(0, handle.storage_bytes)
        meter.charge_startup()
        meter.begin_round(algorithm.value.lower())
        try:
            if algorithm is Algorithm.BFS:
                output = bfs(graph, params.resolve_bfs_source(graph))
            elif algorithm is Algorithm.CONN:
                output = connected_components(graph)
            elif algorithm is Algorithm.CD:
                output = community_detection(
                    graph, max_iterations=params.cd_max_iterations
                )
            elif algorithm is Algorithm.STATS:
                output = stats(graph)
            else:
                output = forest_fire_links(
                    graph,
                    params.evo_new_vertices,
                    p_forward=params.evo_p_forward,
                    max_hops=params.evo_max_hops,
                    seed=params.evo_seed,
                )
            meter.charge_compute(0, 4.0 * graph.num_edges)
        finally:
            meter.end_round(active_vertices=graph.num_vertices)
            meter.release_memory(0, handle.storage_bytes)
        return output, meter.profile


def main() -> None:
    register_platform(ToyPlatform.name, ToyPlatform)

    graphs = {"graph500-9": load_dataset("graph500-9")}
    core = BenchmarkCore(
        [
            create_platform("toy", ClusterSpec.paper_single_node()),
            create_platform("giraph", ClusterSpec.paper_distributed()),
        ],
        graphs,
        validator=OutputValidator(),
    )
    suite = core.run()
    # The Output Validator held the toy driver to the same standard
    # as the built-in platforms: zero failures means its outputs are
    # byte-identical to the references.
    assert not suite.failures()
    print(ReportGenerator().runtime_matrix(suite))
    print("\nthe toy platform validated on all five algorithms")


if __name__ == "__main__":
    main()
