"""Platform comparison with choke-point analysis (Figures 4 and 5).

Benchmarks all four platforms on Graph500-style, Patents-style, and
SNB-style graphs, prints the runtime matrix and the CONN kTEPS table,
and then explains each run through the Section 2.1 choke points —
which technical challenge (network, memory, locality, skew) dominated.

Run with::

    python examples/platform_comparison.py
"""

from repro.core.benchmark import BenchmarkCore
from repro.core.chokepoints import analyze_profile
from repro.core.cost import ClusterSpec
from repro.core.report import ReportGenerator
from repro.core.validation import OutputValidator
from repro.core.workload import Algorithm
from repro.datasets import load_dataset
from repro.platforms.registry import create_platform_fleet


def main() -> None:
    distributed = ClusterSpec.paper_distributed()
    # Every registered platform: the paper's four plus the announced
    # extensions (GraphLab, Virtuoso, the GPU). Single-machine
    # platforms get their built-in default machines.
    platforms = create_platform_fleet(distributed)
    graphs = {
        "graph500-9": load_dataset("graph500-9"),
        "patents*": load_dataset("patents"),
        "snb*": load_dataset("snb-2000"),
    }

    core = BenchmarkCore(platforms, graphs, validator=OutputValidator())
    suite = core.run()

    generator = ReportGenerator()
    print("Runtime [s] (algorithm x graph x platform); — marks failures")
    print(generator.runtime_matrix(suite))
    print()
    print(generator.kteps_matrix(suite, Algorithm.CONN))

    print("\nChoke-point analysis (dominant challenge per run):")
    print(
        f"{'platform':<12}{'algorithm':<8}{'graph':<14}"
        f"{'dominant':<10}{'net-share':>10}{'skew':>7}{'tail':>6}"
    )
    for result in suite.successes():
        report = analyze_profile(result.run.profile)
        print(
            f"{result.platform:<12}{result.algorithm.value:<8}"
            f"{result.graph_name:<14}{report.dominant():<10}"
            f"{report.network_time_share:>10.2f}{report.mean_skew:>7.2f}"
            f"{report.tail_rounds:>6}"
        )


if __name__ == "__main__":
    main()
