"""BFS on a DBMS: the paper's Section 3.4 Virtuoso experiment.

Loads an SNB-style person-knows-person graph into the column store as
the ``sp_edge`` table (both arc orientations, sorted by source,
compressed), runs the paper's exact transitive SQL query, and prints
the measurements the paper reports: random lookups, edge endpoints
visited, elapsed time, MTEPS, CPU utilization, and the per-operator
CPU profile.

Run with::

    python examples/dbms_bfs.py
"""

from repro.datasets import snb_graph
from repro.platforms.columnar import VirtuosoEngine

#: The paper's start vertex.
START_VERTEX = 420

#: The paper's query, with the start vertex substituted.
QUERY = """
select count (*) from (select spe_to from
(select transitive t_in (1) t_out (2) t_distinct
spe_from, spe_to from sp_edge) derived_table_1
where spe_from = {start}) derived_table_2;
"""


def main() -> None:
    graph = snb_graph(20000, seed=1000)
    arcs = []
    for source, target in graph.iter_edges():
        arcs.append((source, target))
        arcs.append((target, source))

    # The paper's machine: 12-core / 24-thread dual Xeon E5-2630, 2.3 GHz.
    engine = VirtuosoEngine(threads=24, cycles_per_second=2.3e9)
    table = engine.create_edge_table("sp_edge", arcs)
    plain_bytes = table.num_rows * 2 * 8
    print(
        f"sp_edge: {table.num_rows} rows; column-wise compression "
        f"{plain_bytes / table.compressed_bytes:.1f}x "
        f"({table.compressed_bytes / 1e6:.2f} MB compressed)"
    )
    for name, column in table.columns.items():
        print(f"  column {name}: scheme={column.scheme}")

    result = engine.execute(QUERY.format(start=START_VERTEX))
    profile = result.transitive
    print(f"\nquery: count reachable vertices from {START_VERTEX}")
    print(f"result: {result.rows[0][0]} vertices reachable")
    print(f"random lookups:          {profile.random_lookups:.3e}")
    print(f"edge endpoints visited:  {profile.endpoints_visited:.3e}")
    print(f"iterations (BFS depth):  {profile.iterations}")
    print(f"elapsed:                 {profile.elapsed_seconds * 1e3:.2f} ms")
    print(f"rate:                    {profile.mteps:.1f} MTEPS")
    print(
        f"CPU utilization:         {profile.cpu_percent:.0f}% "
        f"(out of {profile.threads * 100}% max)"
    )
    shares = profile.profile.shares()
    print(
        "CPU profile:             "
        f"{shares['hash']:.0%} border hash table, "
        f"{shares['exchange']:.0%} exchange operator, "
        f"{shares['column']:.0%} column access + decompression"
    )


if __name__ == "__main__":
    main()
