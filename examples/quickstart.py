"""Quickstart: benchmark two platforms on one graph and print the report.

This is the paper's Section 2.3 workflow end to end:

1. *Add graphs* — here, a Graph500-style R-MAT graph from the catalog;
2. *Configure the platform* — cluster specs stand in for the testbed;
3. *Choose the workload* — all five algorithms;
4. *Run the benchmark* — report lands on stdout and on disk.

Run with::

    python examples/quickstart.py
"""

from repro.core.benchmark import BenchmarkCore
from repro.core.cost import ClusterSpec
from repro.core.report import ReportGenerator
from repro.core.validation import OutputValidator
from repro.datasets import load_dataset
from repro.platforms.registry import create_platform


def main() -> None:
    # 1. Add graphs.
    graphs = {"graph500-10": load_dataset("graph500-10")}

    # 2. Configure the platforms (the paper's two testbeds).
    distributed = ClusterSpec.paper_distributed()
    single_node = ClusterSpec.paper_single_node()
    platforms = [
        create_platform("giraph", distributed),
        create_platform("neo4j", single_node),
    ]

    # 3 + 4. Choose the workload (default: everything) and run.
    core = BenchmarkCore(platforms, graphs, validator=OutputValidator())
    suite = core.run()

    generator = ReportGenerator(
        configuration={
            "distributed-cluster": distributed.name,
            "single-node": single_node.name,
        }
    )
    print(generator.render(suite))
    path = generator.write(suite, "quickstart-report.txt")
    print(f"\nreport also written to {path}")


if __name__ == "__main__":
    main()
