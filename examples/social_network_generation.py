"""Datagen scenario: generate social networks with controlled structure.

Demonstrates the paper's Section 2.2 extensions:

* pluggable degree distributions (Zeta, Geometric, empirical);
* structural post-processing toward a target clustering coefficient
  and assortativity sign via degree-preserving rewiring;
* degree-distribution fitting (which model best explains a graph?);
* deterministic block-parallel generation with per-hardware cost
  estimates (single node vs the 4-node cluster).

Run with::

    python examples/social_network_generation.py
"""

import numpy as np

from repro.datagen import (
    CLUSTER_4_NODES,
    SINGLE_NODE,
    Datagen,
    DatagenConfig,
    estimate_generation_time,
)
from repro.graph import fit_degree_distribution, graph_characteristics


def generate_with_plugin(name: str, params: dict) -> None:
    """Generate one network and verify its degree distribution."""
    config = DatagenConfig(
        num_persons=5000,
        degree_distribution=name,
        distribution_params=params,
        seed=7,
    )
    graph = Datagen(config).generate()
    row = graph_characteristics(graph, f"datagen-{name}")
    print(f"\n=== {name} plugin {params} ===")
    print(
        f"persons={row.num_vertices} knows-edges={row.num_edges} "
        f"avg-clustering={row.average_clustering:.4f} "
        f"assortativity={row.assortativity:+.4f}"
    )

    # Which theoretical model explains the generated degrees best?
    degrees = graph.degree_sequence()
    fits = fit_degree_distribution(degrees[degrees >= 1])
    best = min(fits.values(), key=lambda fit: fit.aic)
    print(f"best-fitting degree model: {best.model} {best.params}")


def structural_targets() -> None:
    """Rewire a network toward a clustering target, preserving degrees."""
    base = DatagenConfig(num_persons=2000, seed=11)
    shaped = DatagenConfig(
        num_persons=2000,
        seed=11,
        target_clustering=0.25,
        assortativity_sign=1,
        rewiring_swaps=15000,
    )
    graph_base = Datagen(base).generate()
    graph_shaped = Datagen(shaped).generate()
    row_base = graph_characteristics(graph_base, "base")
    row_shaped = graph_characteristics(graph_shaped, "shaped")
    print("\n=== structural post-processing (hill-climbing rewiring) ===")
    print(
        f"before: avg-clustering={row_base.average_clustering:.4f} "
        f"assortativity={row_base.assortativity:+.4f}"
    )
    print(
        f"after:  avg-clustering={row_shaped.average_clustering:.4f} "
        f"assortativity={row_shaped.assortativity:+.4f} "
        f"(target clustering 0.25, positive assortativity)"
    )
    degrees_equal = graph_base.degrees() == graph_shaped.degrees()
    print(f"every vertex degree preserved: {degrees_equal}")


def hardware_estimates() -> None:
    """Where is your generation workload better off? (Figure 3)"""
    print("\n=== generation-time estimates (paper's two systems) ===")
    print(f"{'edges':>10} {'single node':>14} {'4-node cluster':>15}")
    for edges in (100e6, 500e6, 1.3e9, 5e9):
        single = estimate_generation_time(edges, SINGLE_NODE)["total"]
        cluster = estimate_generation_time(edges, CLUSTER_4_NODES)["total"]
        marker = "<- single wins" if single < cluster else "<- cluster wins"
        print(f"{edges / 1e6:8.0f}M {single:12.0f}s {cluster:14.0f}s  {marker}")


def main() -> None:
    generate_with_plugin("zeta", {"alpha": 1.7})
    generate_with_plugin("geometric", {"p": 0.12})
    # The empirical plugin reproduces an observed degree sequence.
    observed = np.concatenate([np.full(800, 2), np.full(150, 10), np.full(50, 40)])
    generate_with_plugin("empirical", {"observed_degrees": observed})
    structural_targets()
    hardware_estimates()


if __name__ == "__main__":
    main()
