"""The Section 2.1 choke-point remedies, demonstrated.

The paper's choke-point analysis names concrete techniques systems
may adopt: "replication schemes, data compression, and advanced
(e.g., min-cut) graph partitioning methods" for the network choke
point, and "asynchronous distributed query processing, and/or adaptive
switching of distributed computation to central computation" for the
synchronization-dominated convergence tail. This example measures all
three implemented remedies on workloads chosen to stress them.

Run with::

    python examples/chokepoint_remedies.py
"""

from repro.core.cost import ClusterSpec, CostMeter
from repro.graph.generators import connected_caveman_graph
from repro.graph.graph import Graph
from repro.platforms.gas.engine import GASEngine
from repro.platforms.gas.programs import GASConnProgram
from repro.platforms.pregel.engine import PregelEngine
from repro.platforms.pregel.partitioning import (
    edge_cut_fraction,
    greedy_partition,
    hash_partition,
)
from repro.platforms.pregel.programs import ConnProgram


def partitioning_demo(spec: ClusterSpec) -> None:
    """Min-cut-style placement on a community graph."""
    graph = connected_caveman_graph(120, 16)
    print("\n=== remedy 1: advanced graph partitioning (network) ===")
    print(f"workload: CONN on a caveman graph ({graph.num_edges} edges)")
    for label, strategy in (("hash (Giraph default)", hash_partition),
                            ("streaming LDG (min-cut-style)", greedy_partition)):
        placement = strategy(graph, spec.num_workers)
        meter = CostMeter(spec)
        PregelEngine(graph, spec, meter, partition=placement).run(ConnProgram())
        print(
            f"  {label:<30} edge-cut={edge_cut_fraction(graph, placement):6.3f} "
            f"remote={meter.profile.total_remote_bytes / 2**20:7.3f} MiB"
        )


def synchronization_demo(spec: ClusterSpec) -> None:
    """Async sweeps and adaptive central mode on a long-tail workload."""
    ring = Graph.from_edges([(i, (i + 1) % 360) for i in range(360)])
    print("\n=== remedies 2+3: asynchronous / adaptive-central execution ===")
    print("workload: CONN on a diameter-180 ring (pure convergence tail)")

    meter = CostMeter(spec)
    sync = PregelEngine(ring, spec, meter).run(ConnProgram())
    print(
        f"  {'synchronous BSP':<30} rounds={sync.supersteps:>4} "
        f"simulated={meter.profile.simulated_seconds:8.1f} s"
    )

    meter = CostMeter(spec)
    adaptive = PregelEngine(
        ring, spec, meter, adaptive_central_fraction=0.5
    ).run(ConnProgram())
    central = sum(
        1 for r in meter.profile.rounds if r.name.endswith("-central")
    )
    print(
        f"  {'adaptive central switching':<30} rounds={adaptive.supersteps:>4} "
        f"simulated={meter.profile.simulated_seconds:8.1f} s "
        f"({central} supersteps centralized)"
    )

    meter = CostMeter(spec)
    asynchronous = GASEngine(ring, spec, meter).run_async(GASConnProgram())
    print(
        f"  {'asynchronous sweeps (GAS)':<30} rounds={asynchronous.rounds:>4} "
        f"simulated={meter.profile.simulated_seconds:8.1f} s"
    )
    print("  (all three runs produce identical component labels)")


def main() -> None:
    spec = ClusterSpec.paper_distributed()
    partitioning_demo(spec)
    synchronization_demo(spec)


if __name__ == "__main__":
    main()
