"""Section 3.5: code quality of the reference implementations.

The paper: "in Graphalytics, the code for the reference
implementations is accompanied by code quality reports, such as code
complexity, bugs discovered through static analysis, etc."

Regenerates that report for this repository's own reference
implementations, and exercises the SonarQube-style regression signal
on a synthetic "bad commit".
"""

import pytest

from benchmarks.conftest import print_table
from repro.core.quality import QualityReport, analyze_source, analyze_tree, detect_regressions

SOURCE_ROOT = "src/repro"


@pytest.mark.benchmark(group="section3.5")
def test_section35_code_quality(benchmark):
    report = benchmark.pedantic(
        analyze_tree, args=(SOURCE_ROOT,), rounds=1, iterations=1
    )

    worst = sorted(report.files, key=lambda f: f.max_complexity, reverse=True)[:5]
    lines = [report.summary(), "", "most complex files:"]
    lines.extend(
        f"  {file.path}: max complexity {file.max_complexity}" for file in worst
    )
    print_table("Section 3.5: code quality report", lines)

    # The reference implementations ship clean: no potential bugs,
    # full public documentation, bounded complexity.
    assert report.total_findings == 0
    assert report.documented_share == 1.0
    assert report.mean_complexity < 6.0
    assert report.total_lines > 5000

    # Regression detection: a commit introducing a bug pattern is
    # flagged, as SonarQube does on the real project.
    bad_commit = QualityReport(
        files=report.files
        + [analyze_source("def rushed(x=[]):\n    return x\n", "rushed.py")]
    )
    signals = detect_regressions(report, bad_commit)
    assert any("potential bugs" in signal for signal in signals)
