"""Ablation: hill-climbing rewiring toward structural targets.

Section 2.2's proposed Datagen extension: "the generation of graphs
with a target average clustering coefficient, but also to decide
whether the assortativity is positive or negative, while preserving
the degree distribution of the graph [...] a post processing step
where the graph is iteratively rewired until the desired values are
achieved, in a hill climbing fashion."

The bench sweeps clustering targets and both assortativity signs over
one Datagen graph and verifies the defining invariant (degrees
preserved) plus monotone improvement toward every target.
"""

import pytest

from benchmarks.conftest import print_table
from repro.datagen import Datagen, DatagenConfig, rewire_to_target
from repro.graph.properties import (
    average_clustering_coefficient,
    degree_assortativity,
)

CLUSTERING_TARGETS = [0.02, 0.10, 0.20]


@pytest.mark.benchmark(group="ablation-rewiring")
def test_ablation_rewiring(benchmark):
    base = Datagen(
        DatagenConfig(num_persons=3000, decay=0.8, window_size=12, seed=31)
    ).generate()
    base_clustering = average_clustering_coefficient(base)
    base_assortativity = degree_assortativity(base)

    def sweep():
        results = {}
        for target in CLUSTERING_TARGETS:
            results[("cc", target)] = rewire_to_target(
                base, target_clustering=target, max_swaps=12000, seed=7
            )
        for sign in (+1, -1):
            results[("sign", sign)] = rewire_to_target(
                base, assortativity_sign=sign, max_swaps=12000, seed=7
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"base graph: avg-clustering={base_clustering:.4f} "
        f"assortativity={base_assortativity:+.4f}",
        f"{'target':<22}{'achieved':>10}{'accepted':>10}{'converged':>11}",
    ]
    for key, result in results.items():
        kind, value = key
        achieved = (
            result.final_clustering if kind == "cc" else result.final_assortativity
        )
        label = f"clustering={value}" if kind == "cc" else f"assort sign {value:+d}"
        lines.append(
            f"{label:<22}{achieved:>10.4f}{result.swaps_accepted:>10}"
            f"{str(result.converged):>11}"
        )
    print_table("Ablation: rewiring toward structural targets", lines)

    base_degrees = base.degrees()
    for key, result in results.items():
        # The defining invariant: every vertex degree preserved.
        assert result.graph.degrees() == base_degrees
        kind, value = key
        if kind == "cc":
            # Strictly closer to the target than the base graph.
            assert abs(result.final_clustering - value) < abs(
                base_clustering - value
            )
        else:
            # Moved toward the requested sign (or already there: the
            # Datagen base is negative, so sign -1 converges with zero
            # swaps — the hill climber does no useless work).
            if value > 0:
                assert result.final_assortativity > base_assortativity
            else:
                assert result.final_assortativity < 0
                assert result.converged

    # Larger swap budgets reach closer to an ambitious target.
    short = rewire_to_target(base, target_clustering=0.3, max_swaps=1500, seed=7)
    long = rewire_to_target(base, target_clustering=0.3, max_swaps=15000, seed=7)
    assert abs(long.final_clustering - 0.3) <= abs(short.final_clustering - 0.3)
