"""ETL comparison across platforms (the paper's declared future work).

The paper: "The runtime measures the complete execution of an
algorithm, from job submission to result availability, but does not
include ETL. Comparing ETL times of different platforms is left as
future work." This bench implements that comparison: the simulated
load time of each platform for each benchmark graph, decomposed by
what the platform's loader actually does (HDFS reads, parsing,
partition shuffles, replicated writes, transactional inserts, sort +
compression).

Expected shape:

* MapReduce has the cheapest ETL (a replicated file copy — nothing to
  build in memory), the mirror image of its slowest runtimes;
* the in-memory cluster platforms (Giraph, GraphX, GraphLab) pay read
  + parse + partition, with GraphX the heaviest (per-record JVM
  deserialization);
* the graph database's transactional, pointer-updating inserts make
  it the most expensive loader per edge — the classic load-time vs
  query-time trade-off.
"""

import pytest

from benchmarks.conftest import print_table
from repro.platforms.registry import (
    available_platforms,
    create_platform,
    is_single_machine,
)


@pytest.mark.benchmark(group="future-etl")
def test_future_etl_comparison(
    benchmark, benchmark_graphs, distributed_spec, single_node_spec
):
    def measure():
        etl: dict[tuple[str, str], float | None] = {}
        for name in available_platforms():
            if name == "neo4j":
                platform = create_platform(name, single_node_spec)
            elif is_single_machine(name):
                # Virtuoso/GPU keep their built-in machines (scaled
                # memory walls do not apply to the ETL comparison).
                platform = create_platform(name)
            else:
                platform = create_platform(name, distributed_spec)
            for graph_name, graph in benchmark_graphs.items():
                try:
                    handle = platform.upload_graph(graph_name, graph)
                except Exception:
                    etl[(name, graph_name)] = None  # cannot load at all
                    continue
                etl[(name, graph_name)] = handle.etl_simulated_seconds
                platform.delete_graph(handle)
        return etl

    etl = benchmark.pedantic(measure, rounds=1, iterations=1)

    platforms = sorted(available_platforms())
    graphs = sorted(benchmark_graphs)
    lines = [f"{'graph':<14}" + "".join(f"{p:>11}" for p in platforms)]
    for graph_name in graphs:
        cells = []
        for platform in platforms:
            value = etl[(platform, graph_name)]
            cells.append(f"{'—':>11}" if value is None else f"{value:>11.1f}")
        lines.append(f"{graph_name:<14}" + "".join(cells))
    print_table("ETL time [simulated s] per platform and graph", lines)

    for graph_name in graphs:
        mapreduce = etl[("mapreduce", graph_name)]
        giraph = etl[("giraph", graph_name)]
        graphx = etl[("graphx", graph_name)]
        # The file copy beats building in-memory structures.
        assert mapreduce < giraph
        # JVM object graphs cost more to build than primitive arrays.
        assert graphx > giraph

    # The graph database pays the highest load cost once there are
    # enough edges for its transactional inserts to dominate the
    # other platforms' fixed job-startup terms.
    assert etl[("neo4j", "graph500-12")] == max(
        etl[(platform, "graph500-12")] for platform in platforms
    )
    # And it cannot load the largest graph at all (matching Figure 4).
    assert etl[("neo4j", "snb-1000*")] is None
