"""Tracked kernel micro-benchmarks (see ``repro.perf``)."""
