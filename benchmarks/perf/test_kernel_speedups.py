"""Tracked perf bars for the vectorized kernel paths.

Runs the ``repro.perf`` harness on the tracked configuration — R-MAT
scale 13 with edge factor 16, ~131k directed edges (the "~100k-edge
graph" the targets are stated against) — refreshes the repository's
``BENCH_kernels.json``, and asserts the speedup floors:

* every converted platform's vectorized BFS frontier kernel must beat
  the scalar path by at least 3x;
* both paths must report identical simulated seconds (the
  accounting-equivalence contract; ``tests/test_bulk_equivalence.py``
  checks it structurally, this checks it end-to-end at scale).
"""

import json
from pathlib import Path

import pytest

from repro.perf import run_perf, write_report

REPO_ROOT = Path(__file__).resolve().parents[2]
TRACKED_REPORT = REPO_ROOT / "BENCH_kernels.json"

#: The BFS frontier kernels with a hard speedup floor. MapReduce's
#: batched path is bookkeeping-only (the shuffle accounting), so it
#: carries no floor — it just must not regress below parity-ish.
BFS_FRONTIER_KERNELS = (
    "pregel-bfs-frontier",
    "gas-bfs-frontier",
    "graphx-bfs-frontier",
)
SPEEDUP_FLOOR = 3.0


@pytest.fixture(scope="module")
def perf_report(graph_cache):
    """One harness run on the tracked graph, shared by every test."""
    graph = graph_cache("rmat", 13, 1, edge_factor=16, directed=True)
    report = run_perf(scale=13, edge_factor=16, seed=1, repeats=2, graph=graph)
    write_report(report, TRACKED_REPORT)
    return report


def test_graph_is_the_tracked_configuration(perf_report):
    assert perf_report.graph["edges"] >= 100_000


@pytest.mark.parametrize("kernel", BFS_FRONTIER_KERNELS)
def test_bfs_frontier_speedup(perf_report, kernel):
    timing = perf_report.lookup(kernel)
    assert timing is not None, f"kernel {kernel} not measured"
    assert timing.speedup >= SPEEDUP_FLOOR, (
        f"{kernel}: bulk path only {timing.speedup:.1f}x over scalar "
        f"(floor {SPEEDUP_FLOOR}x); bulk={timing.bulk_wall_seconds:.3f}s "
        f"scalar={timing.scalar_wall_seconds:.3f}s"
    )


def test_conn_frontier_also_vectorized(perf_report):
    # CONN shares the frontier machinery; a regression that only hits
    # CONN (e.g. a fallback to scalar) should fail loudly here.
    for kernel in ("pregel-conn-frontier", "gas-conn-frontier",
                   "graphx-conn-frontier"):
        timing = perf_report.lookup(kernel)
        assert timing is not None and timing.speedup >= SPEEDUP_FLOOR, kernel


def test_simulated_seconds_identical_on_every_kernel(perf_report):
    mismatched = [t.name for t in perf_report.kernels if not t.simulated_match]
    assert mismatched == []


def test_tracked_report_written(perf_report):
    payload = json.loads(TRACKED_REPORT.read_text(encoding="utf-8"))
    assert payload["schema"] == "graphalytics-perf/1"
    assert payload["graph"]["edges"] == perf_report.graph["edges"]
    for kernel in payload["kernels"]:
        assert kernel["bulk_wall_seconds"] > 0
        assert kernel["scalar_wall_seconds"] > 0
        assert kernel["simulated_seconds"] > 0
        assert kernel["simulated_match"] is True
