"""Tracked perf bars for the vectorized kernel paths.

Runs the ``repro.perf`` harness on the tracked configuration — R-MAT
scale 13 with edge factor 16, ~131k directed edges (the "~100k-edge
graph" the targets are stated against), with the datagen micro kernel
at scale 18 (multi-million-edge regime) — refreshes the repository's
``BENCH_kernels.json``, and asserts the speedup floors:

* every converted platform's vectorized BFS frontier kernel must beat
  the scalar path by at least 3x;
* every converted platform's all-active PageRank kernel must beat the
  scalar path by at least 3x (PR sends a message per edge per round,
  so the bulk path has the most scalar overhead to amortize);
* the columnar MapReduce executor must beat the per-record engine by
  at least 3x (``mapreduce-bfs-shuffle``);
* vectorized R-MAT generation must beat the per-edge builder by at
  least 10x at scale 18, and mmap graph loading must beat the pickle
  round-trip by at least 3x;
* both paths must report identical simulated seconds (the
  accounting-equivalence contract; ``tests/test_bulk_equivalence.py``
  checks it structurally, this checks it end-to-end at scale).

Floors are asserted against ``conservative_speedup`` — the scalar
mean minus one std over the bulk mean plus one std — so a single
lucky sample cannot carry a gate.
"""

import json
from pathlib import Path

import pytest

from repro.perf import run_perf, write_report

REPO_ROOT = Path(__file__).resolve().parents[2]
TRACKED_REPORT = REPO_ROOT / "BENCH_kernels.json"

#: Kernels with a hard conservative-speedup floor.
SPEEDUP_FLOORS = {
    "pregel-bfs-frontier": 3.0,
    "gas-bfs-frontier": 3.0,
    "graphx-bfs-frontier": 3.0,
    "pregel-conn-frontier": 3.0,
    "gas-conn-frontier": 3.0,
    "graphx-conn-frontier": 3.0,
    "pregel-pagerank-allactive": 3.0,
    "gas-pagerank-allactive": 3.0,
    "graphx-pagerank-allactive": 3.0,
    "mapreduce-bfs-shuffle": 3.0,
    "datagen-rmat": 10.0,
    "graph-load": 3.0,
}
#: Kernels with no cost model underneath (their ``simulated_seconds``
#: is 0 and ``simulated_match`` asserts artifact equality instead).
MICRO_KERNELS = ("datagen-rmat", "graph-load")


@pytest.fixture(scope="module")
def perf_report(graph_cache):
    """One harness run on the tracked graph, shared by every test."""
    graph = graph_cache("rmat", 13, 1, edge_factor=16, directed=True)
    report = run_perf(
        scale=13, edge_factor=16, seed=1, repeats=2, graph=graph,
        datagen_scale=18,
    )
    write_report(report, TRACKED_REPORT)
    return report


def test_graph_is_the_tracked_configuration(perf_report):
    assert perf_report.graph["edges"] >= 100_000
    assert perf_report.graph["datagen_scale"] == 18


@pytest.mark.parametrize("kernel", sorted(SPEEDUP_FLOORS))
def test_kernel_speedup_floor(perf_report, kernel):
    floor = SPEEDUP_FLOORS[kernel]
    timing = perf_report.lookup(kernel)
    assert timing is not None, f"kernel {kernel} not measured"
    assert timing.conservative_speedup >= floor, (
        f"{kernel}: conservative speedup only "
        f"{timing.conservative_speedup:.1f}x over scalar (floor {floor}x); "
        f"bulk={timing.bulk_wall_mean:.3f}s±{timing.bulk_wall_std:.3f} "
        f"scalar={timing.scalar_wall_mean:.3f}s±{timing.scalar_wall_std:.3f}"
    )


def test_simulated_seconds_identical_on_every_kernel(perf_report):
    mismatched = [t.name for t in perf_report.kernels if not t.simulated_match]
    assert mismatched == []


def test_variance_columns_present(perf_report):
    for timing in perf_report.kernels:
        assert timing.bulk_wall_mean > 0.0
        assert timing.scalar_wall_mean > 0.0
        assert timing.bulk_wall_std >= 0.0
        assert timing.scalar_wall_std >= 0.0
        assert timing.conservative_speedup > 0.0


def test_tracked_report_written(perf_report):
    payload = json.loads(TRACKED_REPORT.read_text(encoding="utf-8"))
    assert payload["schema"] == "graphalytics-perf/2"
    assert payload["graph"]["edges"] == perf_report.graph["edges"]
    for kernel in payload["kernels"]:
        assert kernel["bulk_wall_seconds"] > 0
        assert kernel["scalar_wall_seconds"] > 0
        if kernel["name"] in MICRO_KERNELS:
            assert kernel["simulated_seconds"] == 0.0
        else:
            assert kernel["simulated_seconds"] > 0
        assert kernel["simulated_match"] is True
