"""Multi-million-edge acceptance run for the columnar data plane.

The paper benchmarks Graph500 scale-22..26 graphs (millions to
billions of edges); the seed harness topped out around scale 13
(~131k edges) because datagen and graph transport were per-edge
Python loops. This module is the end-to-end gate for the vectorized
path at the paper's working scale:

1. generate a scale-18 R-MAT graph (>= 2M directed edges) with the
   bulk generator,
2. store it in a content-addressed :class:`DatasetCache` and load it
   back memory-mapped,
3. run BFS on the Giraph platform against the mmap-backed graph and
   check the output against the in-memory original.

Each stage carries a wall-clock budget far above the measured times
(generation ~3s, load ~ms, BFS ~10s) but far below what the scalar
paths would need (scalar datagen alone is ~35s), so a regression to
per-edge behaviour fails loudly rather than just slowly.
"""

import time

import numpy as np
import pytest

from repro.core.cost import ClusterSpec
from repro.core.workload import Algorithm
from repro.datasets import DatasetCache, dataset_key
from repro.graph.generators import rmat_graph
from repro.graph.graph import Graph
from repro.platforms.pregel.driver import GiraphPlatform

SCALE = 18
EDGE_FACTOR = 16
SEED = 1

#: Wall-clock budgets (seconds) per stage; generous against the bulk
#: path, unreachable for the scalar one.
GENERATE_BUDGET = 30.0
LOAD_BUDGET = 5.0
BFS_BUDGET = 120.0


@pytest.fixture(scope="module")
def cached_graph(tmp_path_factory):
    """Generate-and-cache the scale-18 graph; returns (graph, cache, key)."""
    cache = DatasetCache(tmp_path_factory.mktemp("graph-store"))
    params = {"scale": SCALE, "edge_factor": EDGE_FACTOR, "directed": True}
    start = time.perf_counter()
    graph = cache.get_or_generate(
        "rmat",
        params,
        SEED,
        lambda: rmat_graph(
            scale=SCALE, edge_factor=EDGE_FACTOR, seed=SEED, directed=True
        ),
        mmap=False,
    )
    elapsed = time.perf_counter() - start
    assert elapsed < GENERATE_BUDGET, (
        f"scale-{SCALE} generation+store took {elapsed:.1f}s "
        f"(budget {GENERATE_BUDGET}s)"
    )
    return graph, cache, dataset_key("rmat", params, SEED)


def test_graph_is_multi_million_edge(cached_graph):
    graph, _, _ = cached_graph
    assert graph.num_edges >= 2_000_000
    assert graph.num_vertices == 2**SCALE


def test_cache_round_trip_is_mmap_backed(cached_graph):
    graph, cache, key = cached_graph
    assert cache.contains(key)
    start = time.perf_counter()
    loaded = cache.load(key, mmap=True)
    elapsed = time.perf_counter() - start
    assert elapsed < LOAD_BUDGET, f"mmap load took {elapsed:.1f}s"
    # Memory-mapped arrays, not heap copies.
    assert isinstance(loaded._targets, np.memmap)
    assert loaded == graph


def test_bfs_completes_on_mmap_graph(cached_graph):
    graph, cache, key = cached_graph
    loaded = cache.load(key, mmap=True)
    platform = GiraphPlatform(ClusterSpec.paper_distributed())
    start = time.perf_counter()
    handle = platform.upload_graph(f"rmat-{SCALE}", loaded)
    run = platform.run_algorithm(handle, Algorithm.BFS)
    elapsed = time.perf_counter() - start
    assert elapsed < BFS_BUDGET, (
        f"scale-{SCALE} BFS took {elapsed:.1f}s (budget {BFS_BUDGET}s)"
    )
    assert run.output
    # The mmap-backed run must agree with an in-memory run on the
    # source vertex's own distance (full-output equality is covered at
    # smaller scale by tests/test_bulk_equivalence.py).
    source = min(run.output)
    assert run.output[source] == 0
    reached = sum(1 for d in run.output.values() if d >= 0)
    assert reached > 1
