"""Ablation: validity of the scaled-testbed methodology.

The benches run graphs ~2048x smaller than the paper's and scale the
cluster's throughputs down by the same factor (EXPERIMENTS.md,
"Scaling"). That substitution is only sound if *relative* platform
behaviour is invariant under the joint scaling. This ablation checks
it directly: the same workload at two different (graph size,
throughput scale) points must produce

* proportional per-platform runtimes once fixed costs (startup,
  barriers — deliberately not scaled) are subtracted, and
* the same platform ordering.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core.cost import ClusterSpec
from repro.core.workload import Algorithm, AlgorithmParams
from repro.datasets import graph500_graph
from repro.platforms.registry import create_platform

PLATFORMS = ("giraph", "graphx", "mapreduce")


def _variable_runtime(platform_name, spec, graph, algorithm):
    """Simulated runtime minus the unscaled fixed costs."""
    platform = create_platform(platform_name, spec)
    handle = platform.upload_graph("g", graph)
    try:
        run = platform.run_algorithm(handle, algorithm, AlgorithmParams())
    finally:
        platform.delete_graph(handle)
    profile = run.profile
    fixed = profile.startup_seconds + sum(r.barrier_seconds for r in profile.rounds)
    return run.simulated_seconds - fixed


@pytest.mark.benchmark(group="ablation-scaling")
def test_ablation_scaling_invariance(benchmark):
    base = ClusterSpec.paper_distributed()
    # Two joint (graph, throughput) scale points, a factor 4 apart:
    # graph500-12 has ~4x the edges of graph500-10.
    small_graph = graph500_graph(10)
    large_graph = graph500_graph(12)
    small_spec = base.scaled(8192.0, memory=1.0)
    large_spec = base.scaled(2048.0, memory=1.0)

    def measure():
        results = {}
        for name in PLATFORMS:
            for algorithm in (Algorithm.BFS, Algorithm.CONN):
                results[(name, algorithm, "small")] = _variable_runtime(
                    name, small_spec, small_graph, algorithm
                )
                results[(name, algorithm, "large")] = _variable_runtime(
                    name, large_spec, large_graph, algorithm
                )
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [f"{'platform':<11}{'algorithm':<7}{'small [s]':>11}{'large [s]':>11}{'ratio':>7}"]
    for name in PLATFORMS:
        for algorithm in (Algorithm.BFS, Algorithm.CONN):
            small = results[(name, algorithm, "small")]
            large = results[(name, algorithm, "large")]
            lines.append(
                f"{name:<11}{algorithm.value:<7}{small:>11.2f}{large:>11.2f}"
                f"{large / small if small else float('nan'):>7.2f}"
            )
    print_table(
        "Ablation: variable runtime under joint graph+throughput scaling "
        "(ratio ~ workload growth, identically across platforms)",
        lines,
    )

    # The platform ordering is identical at both scale points.
    for algorithm in (Algorithm.BFS, Algorithm.CONN):
        small_order = sorted(
            PLATFORMS, key=lambda n: results[(n, algorithm, "small")]
        )
        large_order = sorted(
            PLATFORMS, key=lambda n: results[(n, algorithm, "large")]
        )
        assert small_order == large_order

    # Ratios agree across platforms within a factor ~2 (graph shape
    # changes slightly with R-MAT scale; gross divergence would mean
    # the scaled-testbed methodology distorts comparisons).
    for algorithm in (Algorithm.BFS, Algorithm.CONN):
        ratios = [
            results[(n, algorithm, "large")] / results[(n, algorithm, "small")]
            for n in PLATFORMS
        ]
        assert max(ratios) < 2.5 * min(ratios), ratios
