"""Figure 1: node degree of Datagen graphs vs Zeta/Geometric models.

Regenerates the paper's Figure 1: graphs generated with the Zeta
(alpha = 1.7) and Geometric (p = 0.12) degree-distribution plugins,
with the observed degree frequencies printed against the theoretical
model curves. The assertions check the figure's claim — "Datagen can
reliably reproduce these two distributions."
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.datagen import Datagen, DatagenConfig
from repro.graph.fitting import fit_degree_distribution

NUM_PERSONS = 20000

CASES = {
    "zeta(alpha=1.7)": ("zeta", {"alpha": 1.7}),
    "geometric(p=0.12)": ("geometric", {"p": 0.12}),
}


@pytest.mark.benchmark(group="figure1")
@pytest.mark.parametrize("label", sorted(CASES))
def test_figure1_degree_distributions(benchmark, label):
    name, params = CASES[label]
    config = DatagenConfig(
        num_persons=NUM_PERSONS,
        degree_distribution=name,
        distribution_params=params,
        seed=17,
    )

    def generate():
        return Datagen(config).generate()

    graph = benchmark.pedantic(generate, rounds=1, iterations=1)

    degrees = graph.degree_sequence()
    positive = degrees[degrees >= 1]
    distribution = config.resolve_distribution()

    ks = np.array([1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144])
    expected = distribution.expected_pmf(ks) * positive.size
    observed = np.array([int(np.sum(positive == k)) for k in ks])
    lines = [f"{'Degree':>7}{'Datagen':>10}{label:>22}"]
    for k, obs, exp in zip(ks, observed, expected):
        lines.append(f"{k:>7}{obs:>10}{exp:>22.1f}")
    print_table(f"Figure 1: degree frequencies, Datagen vs {label}", lines)

    # The frequencies track the model over the meaningful range.
    meaningful = expected > 30
    ratio = observed[meaningful] / expected[meaningful]
    assert np.all(ratio > 0.5), ratio
    assert np.all(ratio < 2.0), ratio

    # And the model-selection machinery picks the generating model.
    fits = fit_degree_distribution(positive)
    best = min(fits.values(), key=lambda fit: fit.aic)
    assert best.model == name
