"""Extension platforms: the paper's announced additions, benchmarked.

The paper's conclusion: "The reference Graphalytics implementation
covers currently 4 popular platforms, and will soon include 6 more
platforms for which we already have shown proof-of-concept
implementations [4, 5]." This bench runs three of those directions —
GraphLab (GAS over a vertex cut), Virtuoso (the column store as a full
platform, per the paper's RDF/DBMS plan), and Medusa (GPU) — through
the identical harness, next to Giraph as the incumbent reference.

Shape assertions:

* every platform's outputs validate (the harness holds extensions to
  the same Output Validator standard);
* GraphLab's vertex cut keeps hub traffic bounded: its CONN network
  volume on the hub-heavy Graph500 graph is below Giraph's
  (per-mirror partial sums versus per-edge messages after combining);
* the GPU's dense kernels make its cost insensitive to frontier
  sparsity: BFS and CONN cost nearly the same, unlike Giraph where
  CONN's extra active rounds cost visibly more;
* the single-machine platforms (Virtuoso, Medusa) avoid all network
  traffic but hit their memory walls on graphs the cluster platforms
  can still grow into.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core.benchmark import BenchmarkCore
from repro.core.report import ReportGenerator
from repro.core.validation import OutputValidator
from repro.core.workload import Algorithm, AlgorithmParams, BenchmarkRunSpec
from repro.platforms.registry import create_platform

EXTENSION_PLATFORMS = ("giraph", "graphlab", "stratosphere", "virtuoso", "medusa")
PARAMS = AlgorithmParams(evo_new_vertices=100)


def run_extension_suite(benchmark_graphs, distributed_spec):
    """All extension platforms over the bench graphs."""
    platforms = []
    for name in EXTENSION_PLATFORMS:
        if name in ("giraph", "graphlab", "stratosphere"):
            platforms.append(create_platform(name, distributed_spec))
        else:
            platforms.append(create_platform(name))  # built-in machine
    core = BenchmarkCore(platforms, benchmark_graphs, validator=OutputValidator())
    return core.run(BenchmarkRunSpec(params=PARAMS))


@pytest.mark.benchmark(group="extension-platforms")
def test_extension_platforms(benchmark, benchmark_graphs, distributed_spec):
    suite = benchmark.pedantic(
        run_extension_suite,
        args=(benchmark_graphs, distributed_spec),
        rounds=1,
        iterations=1,
    )

    generator = ReportGenerator()
    print_table(
        "Extension platforms: runtime [s] (— marks failures)",
        generator.runtime_matrix(suite).splitlines(),
    )

    # Everything that ran, validated (no 'invalid' results at all).
    assert not [r for r in suite.results if r.status == "invalid"]

    # All four extension platforms completed the small Patents graph.
    for platform in EXTENSION_PLATFORMS:
        for algorithm in Algorithm:
            assert suite.lookup(platform, "patents*", algorithm).succeeded, (
                platform,
                algorithm,
            )

    # GraphLab's vertex cut bounds hub traffic structurally: its CONN
    # traffic is far below a combiner-less Pregel run (per-mirror
    # partial sums vs per-edge messages) and lands in the same band as
    # Giraph *with* its min combiner — the two known-good designs for
    # the network choke point agree.
    def conn_bytes(platform):
        result = suite.lookup(platform, "graph500-12", Algorithm.CONN)
        return result.run.profile.total_remote_bytes

    from repro.core.cost import CostMeter
    from repro.platforms.pregel.engine import PregelEngine
    from repro.platforms.pregel.programs import ConnProgram

    class _UncombinedConn(ConnProgram):
        """CONN stripped of Giraph's min combiner."""

        def combiner(self):
            """Disabled: every edge message hits the wire."""
            return None

    meter = CostMeter(distributed_spec)
    PregelEngine(
        benchmark_graphs["graph500-12"], distributed_spec, meter
    ).run(_UncombinedConn())
    uncombined_bytes = meter.profile.total_remote_bytes
    assert conn_bytes("graphlab") < 0.8 * uncombined_bytes
    assert conn_bytes("graphlab") < 3.0 * conn_bytes("giraph")

    # GPU dense kernels: BFS and CONN cost about the same (the device
    # pays for every vertex regardless of activity); Giraph's extra
    # CONN work is visible.
    def runtime(platform, algorithm):
        result = suite.lookup(platform, "graph500-12", algorithm)
        return result.runtime_seconds if result.succeeded else None

    gpu_bfs = runtime("medusa", Algorithm.BFS)
    gpu_conn = runtime("medusa", Algorithm.CONN)
    if gpu_bfs is not None and gpu_conn is not None:
        assert gpu_conn < 1.5 * gpu_bfs

    # Single-machine platforms: zero network traffic.
    for platform in ("virtuoso", "medusa"):
        for algorithm in Algorithm:
            result = suite.lookup(platform, "patents*", algorithm)
            assert result.run.profile.total_remote_bytes == 0
