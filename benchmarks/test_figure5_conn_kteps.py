"""Figure 5: thousands of traversed edges per second (kTEPS) for CONN.

Regenerates the paper's Figure 5: CONN performance of every platform
on the three benchmark graphs, in kTEPS. "The size of the processed
graph is included in this metric, which reveals the influence of the
graph characteristics on performance."

Shape assertions:

* Giraph reaches an order of magnitude more kTEPS on the SNB graph
  than on the Patents graph (the paper: 6272 vs 364 kTEPS);
* GraphX trails Giraph by roughly 3x;
* missing values appear exactly where Figure 4 reported failures.
"""

import pytest

from benchmarks.conftest import print_table
from benchmarks.test_figure4_platform_runtimes import PAPER_PLATFORMS
from repro.core.report import ReportGenerator
from repro.core.workload import Algorithm, AlgorithmParams, BenchmarkRunSpec
from repro.platforms.registry import create_platform


def run_conn_suite(benchmark_graphs, distributed_spec, single_node_spec):
    """CONN-only run across the paper's platforms and graphs."""
    from repro.core.benchmark import BenchmarkCore
    from repro.core.validation import OutputValidator

    platforms = [
        create_platform(
            name, single_node_spec if name == "neo4j" else distributed_spec
        )
        for name in PAPER_PLATFORMS
    ]
    core = BenchmarkCore(platforms, benchmark_graphs, validator=OutputValidator())
    return core.run(
        BenchmarkRunSpec(algorithms=[Algorithm.CONN], params=AlgorithmParams())
    )


@pytest.mark.benchmark(group="figure5")
def test_figure5_conn_kteps(
    benchmark, benchmark_graphs, distributed_spec, single_node_spec
):
    suite = benchmark.pedantic(
        run_conn_suite,
        args=(benchmark_graphs, distributed_spec, single_node_spec),
        rounds=1,
        iterations=1,
    )

    print_table(
        "Figure 5: kTEPS for all implementations of CONN "
        "(missing values indicate failures)",
        ReportGenerator().kteps_matrix(suite, Algorithm.CONN).splitlines(),
    )

    def conn_kteps(platform, graph):
        result = suite.lookup(platform, graph, Algorithm.CONN)
        return result.kteps if result.succeeded else None

    # Giraph is an order of magnitude faster (per edge) on the social
    # SNB graph than on Patents — the paper's 6272 vs 364 contrast.
    giraph_snb = conn_kteps("giraph", "snb-1000*")
    giraph_patents = conn_kteps("giraph", "patents*")
    assert giraph_snb > 5 * giraph_patents

    # GraphX trails Giraph on every graph it completes.
    for graph in benchmark_graphs:
        graphx = conn_kteps("graphx", graph)
        giraph = conn_kteps("giraph", graph)
        if graphx is not None:
            assert graphx < giraph

    # MapReduce has the lowest rate everywhere.
    for graph in benchmark_graphs:
        mapreduce = conn_kteps("mapreduce", graph)
        assert mapreduce < conn_kteps("giraph", graph)

    # Neo4j's missing value on the largest graph matches Figure 4.
    assert conn_kteps("neo4j", "snb-1000*") is None
    assert conn_kteps("neo4j", "patents*") is not None
