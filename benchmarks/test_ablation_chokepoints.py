"""Ablation: the Section 2.1 choke points, made measurable.

The paper's methodological claim is that its workloads *stress the
identified choke points*. This ablation demonstrates each choke point
as a measurable contrast on the simulated platforms:

* **excessive network utilization** — STATS (adjacency exchange)
  moves orders of magnitude more bytes than BFS on the same graph,
  and message combining (Giraph's combiner) cuts CONN traffic;
* **skewed execution intensity** — per-round worker skew is higher on
  the hub-heavy Graph500 R-MAT graph than on the Patents graph;
* **convergence tail** — CONN spends its final rounds with almost no
  active vertices, where barrier latency dominates;
* **poor access locality** — the graph database's pointer chasing is
  dominated by random accesses, unlike the sequential MapReduce scan.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core.chokepoints import analyze_profile
from repro.core.workload import Algorithm, AlgorithmParams
from repro.platforms.registry import create_platform

PARAMS = AlgorithmParams()


def _profile(platform, graph, name, algorithm):
    handle = platform.upload_graph(name, graph)
    try:
        return platform.run_algorithm(handle, algorithm, PARAMS).profile
    finally:
        platform.delete_graph(handle)


@pytest.mark.benchmark(group="ablation-chokepoints")
def test_ablation_chokepoints(
    benchmark, benchmark_graphs, distributed_spec, single_node_spec
):
    def run_all(tail_threshold=0.05):
        giraph = create_platform("giraph", distributed_spec)
        mapreduce = create_platform("mapreduce", distributed_spec)
        neo4j = create_platform("neo4j", single_node_spec)
        g500 = benchmark_graphs["graph500-12"]
        patents = benchmark_graphs["patents*"]
        return {
            "stats-g500": analyze_profile(
                _profile(giraph, g500, "g", Algorithm.STATS), tail_threshold
            ),
            "bfs-g500": analyze_profile(
                _profile(giraph, g500, "g", Algorithm.BFS), tail_threshold
            ),
            "conn-g500": analyze_profile(
                _profile(giraph, g500, "g", Algorithm.CONN), tail_threshold
            ),
            "conn-patents": analyze_profile(
                _profile(giraph, patents, "p", Algorithm.CONN), tail_threshold
            ),
            "db-bfs": analyze_profile(
                _profile(neo4j, g500, "g", Algorithm.BFS)
            ),
            "mr-bfs": analyze_profile(
                _profile(mapreduce, g500, "g", Algorithm.BFS)
            ),
        }

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        f"{'run':<14}{'net MiB':>9}{'net-share':>10}{'skew':>7}"
        f"{'tail':>6}{'rand-share':>11}{'dominant':>10}"
    ]
    for name, report in reports.items():
        lines.append(
            f"{name:<14}{report.total_remote_bytes / 2**20:>9.2f}"
            f"{report.network_time_share:>10.2f}{report.mean_skew:>7.2f}"
            f"{report.tail_rounds:>6}{report.random_access_share:>11.2f}"
            f"{report.dominant():>10}"
        )
    print_table("Choke-point indicators per run", lines)

    # Network: STATS moves far more bytes than BFS on the same graph.
    assert (
        reports["stats-g500"].total_remote_bytes
        > 20 * reports["bfs-g500"].total_remote_bytes
    )
    assert reports["stats-g500"].dominant() == "network"

    # Skew: the hub-heavy R-MAT graph beats the Patents graph on the
    # round doing the most work (the tail rounds of a tiny graph are
    # noisy, so the busiest round isolates the hub effect).
    assert (
        reports["conn-g500"].busiest_round_skew
        > reports["conn-patents"].busiest_round_skew
    )

    # Convergence tail: CONN has low-activity final rounds (under 5%
    # of the peak frontier) where barriers dominate the useful work.
    assert reports["conn-g500"].tail_rounds >= 1
    assert reports["conn-g500"].barrier_time_share > 0.05

    # Locality: pointer chasing vs streaming.
    assert reports["db-bfs"].random_access_share > 0.9
    assert reports["mr-bfs"].random_access_share < 0.1


@pytest.mark.benchmark(group="ablation-chokepoints")
def test_ablation_message_combining(benchmark, benchmark_graphs, distributed_spec):
    """Combiners are a real network optimization (choke-point remedy)."""
    from repro.platforms.pregel.driver import GiraphPlatform
    from repro.platforms.pregel.engine import PregelEngine
    from repro.platforms.pregel.programs import ConnProgram

    class UncombinedConn(ConnProgram):
        """CONN without Giraph's min combiner."""

        def combiner(self):
            """Disabled for the ablation."""
            return None

    graph = benchmark_graphs["graph500-12"]

    def run_both():
        combined_engine = PregelEngine(graph, distributed_spec)
        combined_engine.run(ConnProgram())
        uncombined_engine = PregelEngine(graph, distributed_spec)
        uncombined_engine.run(UncombinedConn())
        return (
            combined_engine.meter.profile,
            uncombined_engine.meter.profile,
        )

    combined, uncombined = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print_table(
        "Ablation: CONN message combining",
        [
            f"with combiner:    {combined.total_remote_bytes / 2**20:8.2f} MiB, "
            f"{combined.simulated_seconds:7.1f} s",
            f"without combiner: {uncombined.total_remote_bytes / 2**20:8.2f} MiB, "
            f"{uncombined.simulated_seconds:7.1f} s",
        ],
    )

    # Combining strictly reduces traffic and time on a hubby graph.
    assert combined.total_remote_bytes < 0.8 * uncombined.total_remote_bytes
    assert combined.simulated_seconds <= uncombined.simulated_seconds


@pytest.mark.benchmark(group="ablation-chokepoints")
def test_ablation_partitioning(benchmark, distributed_spec):
    """Min-cut-style partitioning is a real network remedy.

    The paper names "advanced (e.g., min-cut) graph partitioning
    methods" among the remedies for the network choke point. CONN on
    a community-structured graph: streaming-LDG placement versus
    Giraph's default hash placement, same engine, same outputs.
    """
    from repro.core.cost import CostMeter
    from repro.graph.generators import connected_caveman_graph
    from repro.platforms.pregel.engine import PregelEngine
    from repro.platforms.pregel.partitioning import (
        edge_cut_fraction,
        greedy_partition,
        hash_partition,
    )
    from repro.platforms.pregel.programs import ConnProgram

    graph = connected_caveman_graph(120, 16)

    def run_both():
        results = {}
        for label, strategy in (("hash", hash_partition), ("greedy", greedy_partition)):
            placement = strategy(graph, distributed_spec.num_workers)
            meter = CostMeter(distributed_spec)
            outcome = PregelEngine(
                graph, distributed_spec, meter, partition=placement
            ).run(ConnProgram())
            results[label] = (
                edge_cut_fraction(graph, placement),
                meter.profile.total_remote_bytes,
                outcome.values,
            )
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print_table(
        "Ablation: partitioning strategy (CONN on a community graph)",
        [
            f"{label:<8} edge-cut={cut:6.3f}  remote={remote / 2**20:8.3f} MiB"
            for label, (cut, remote, _values) in results.items()
        ],
    )

    hash_cut, hash_bytes, hash_values = results["hash"]
    greedy_cut, greedy_bytes, greedy_values = results["greedy"]
    # Same output either way; an order of magnitude less cut and far
    # less traffic with the min-cut-style placement.
    assert greedy_values == hash_values
    assert greedy_cut < 0.25 * hash_cut
    assert greedy_bytes < 0.5 * hash_bytes


@pytest.mark.benchmark(group="ablation-chokepoints")
def test_ablation_remedies(benchmark, distributed_spec):
    """The paper's other named remedies, measured.

    Section 2.1 suggests, for the skew/synchronization choke point,
    "the use of asynchronous distributed query processing, and/or
    adaptive switching of distributed computation to central
    computation to handle iterations with little work". Both are
    implemented; this bench quantifies them on a long-tail workload
    (CONN on a high-diameter graph), where barrier latency dominates.
    """
    from repro.core.cost import CostMeter
    from repro.graph.graph import Graph
    from repro.platforms.gas.engine import GASEngine
    from repro.platforms.gas.programs import GASConnProgram
    from repro.platforms.pregel.engine import PregelEngine
    from repro.platforms.pregel.programs import ConnProgram

    # A 360-vertex ring: diameter 180, the worst case for barriered
    # label propagation (every round moves the minimum label one hop).
    ring = Graph.from_edges([(i, (i + 1) % 360) for i in range(360)])

    def run_all():
        results = {}
        meter = CostMeter(distributed_spec)
        sync = PregelEngine(ring, distributed_spec, meter).run(ConnProgram())
        results["pregel-sync"] = (meter.profile, sync.supersteps, sync.values)

        meter = CostMeter(distributed_spec)
        adaptive = PregelEngine(
            ring, distributed_spec, meter, adaptive_central_fraction=0.5
        ).run(ConnProgram())
        results["pregel-adaptive"] = (
            meter.profile,
            adaptive.supersteps,
            adaptive.values,
        )

        meter = CostMeter(distributed_spec)
        asynchronous = GASEngine(ring, distributed_spec, meter).run_async(
            GASConnProgram()
        )
        results["gas-async"] = (
            meter.profile,
            asynchronous.rounds,
            asynchronous.values,
        )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_table(
        "Ablation: synchronization remedies (CONN on a diameter-180 ring)",
        [
            f"{label:<16} rounds={rounds:>5}  simulated={profile.simulated_seconds:9.1f} s"
            for label, (profile, rounds, _values) in results.items()
        ],
    )

    sync_profile, sync_rounds, sync_values = results["pregel-sync"]
    adaptive_profile, _adaptive_rounds, adaptive_values = results["pregel-adaptive"]
    async_profile, async_rounds, async_values = results["gas-async"]

    # All three compute the same components.
    assert adaptive_values == sync_values
    assert async_values == sync_values

    # Adaptive central computation trims the barrier-bound tail.
    assert (
        adaptive_profile.simulated_seconds < 0.8 * sync_profile.simulated_seconds
    )
    # Asynchronous sweeps collapse ~180 barriered rounds to a handful.
    assert async_rounds < sync_rounds / 20
    assert async_profile.simulated_seconds < 0.2 * sync_profile.simulated_seconds
