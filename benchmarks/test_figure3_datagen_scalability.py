"""Figure 3: scalability of Datagen.

Regenerates the paper's Figure 3: generation time against edge count
(100M to 5000M edges) on the paper's two systems — the single more
modern machine and the 4-node cluster. The small sizes *really run*
through the block runtime (real edge generation, simulated hardware);
the paper-scale points apply the identical cost formulas analytically.

Shape assertions: the single node wins while generation is CPU-bound;
the cluster overtakes once it becomes I/O-bound; the single node
generates 1.3B edges in "about 3 hours".
"""

import pytest

from benchmarks.conftest import print_table
from repro.datagen import (
    CLUSTER_4_NODES,
    SINGLE_NODE,
    Datagen,
    DatagenConfig,
    estimate_generation_time,
)

PAPER_SCALE_EDGES = [100e6, 200e6, 500e6, 1000e6, 1300e6, 2000e6, 5000e6]


@pytest.mark.benchmark(group="figure3")
def test_figure3_datagen_scalability(benchmark):
    # Executed part: really generate a graph through both hardware
    # profiles' block runtimes and check the output is identical.
    config = DatagenConfig(num_persons=4000, seed=23, block_size=512)

    def run_both():
        graph_single, report_single = Datagen(config).generate_on(SINGLE_NODE)
        graph_cluster, report_cluster = Datagen(config).generate_on(
            CLUSTER_4_NODES
        )
        return graph_single, graph_cluster, report_single, report_cluster

    graph_single, graph_cluster, report_single, report_cluster = (
        benchmark.pedantic(run_both, rounds=1, iterations=1)
    )
    assert graph_single == graph_cluster  # determinism across hardware
    assert report_single.num_edges == report_cluster.num_edges

    # Analytic part: the paper's full 100M-5000M sweep.
    lines = [f"{'Edges':>8} {'Single [s]':>12} {'Cluster [s]':>12}  winner"]
    crossover_seen = False
    previous_winner = None
    for edges in PAPER_SCALE_EDGES:
        single = estimate_generation_time(edges, SINGLE_NODE)["total"]
        cluster = estimate_generation_time(edges, CLUSTER_4_NODES)["total"]
        winner = "single" if single < cluster else "cluster"
        if previous_winner == "single" and winner == "cluster":
            crossover_seen = True
        previous_winner = winner
        lines.append(f"{edges / 1e6:>7.0f}M {single:>12.0f} {cluster:>12.0f}  {winner}")
    print_table("Figure 3: Datagen generation time vs edge count", lines)

    # Shape: single node wins small, cluster wins large, one crossover.
    small_single = estimate_generation_time(100e6, SINGLE_NODE)["total"]
    small_cluster = estimate_generation_time(100e6, CLUSTER_4_NODES)["total"]
    assert small_single < small_cluster
    large_single = estimate_generation_time(5000e6, SINGLE_NODE)["total"]
    large_cluster = estimate_generation_time(5000e6, CLUSTER_4_NODES)["total"]
    assert large_cluster < large_single
    assert crossover_seen

    # Absolute anchor: 1.3B edges in about 3 hours on the single node.
    anchor = estimate_generation_time(1.3e9, SINGLE_NODE)["total"]
    assert 1.5 * 3600 < anchor < 4.5 * 3600

    # I/O-boundedness grows with size (the paper's explanation).
    small = estimate_generation_time(100e6, SINGLE_NODE)
    large = estimate_generation_time(5000e6, SINGLE_NODE)
    assert large["io"] / large["total"] > small["io"] / small["total"]
