"""Section 3.4: BFS on a DBMS (the Virtuoso column-store experiment).

Regenerates the paper's DBMS experiment: the SNB graph loaded as the
``sp_edge`` table, the paper's exact transitive SQL query (start
vertex 420), and the measurements the paper reports — random lookups,
edge endpoints visited, elapsed time, MTEPS, CPU utilization, and the
CPU profile split between the border hash table, the exchange
operator, and column access + decompression.

Shape assertions:

* endpoints visited far exceed random lookups (the paper: 2.89e8 vs
  2.28e6 — two orders of magnitude);
* the CPU profile ranks column access > hash table > exchange and is
  close to the paper's 57% / 33% / 10% split;
* CPU utilization is high but below the maximum (the paper: 1930% of
  2400%);
* the result of the SQL query equals the BFS-reachable set size.
"""

import pytest

from benchmarks.conftest import print_table
from repro.algorithms.bfs import bfs
from repro.datasets import snb_graph
from repro.platforms.columnar import VirtuosoEngine

START_VERTEX = 420
NUM_PERSONS = 20000

QUERY = f"""
select count (*) from (select spe_to from
(select transitive t_in (1) t_out (2) t_distinct
spe_from, spe_to from sp_edge) derived_table_1
where spe_from = {START_VERTEX}) derived_table_2;
"""


@pytest.mark.benchmark(group="section3.4")
def test_section34_dbms_bfs(benchmark):
    graph = snb_graph(NUM_PERSONS, seed=1000)
    arcs = []
    for source, target in graph.iter_edges():
        arcs.append((source, target))
        arcs.append((target, source))
    engine = VirtuosoEngine(threads=24, cycles_per_second=2.3e9)
    engine.create_edge_table("sp_edge", arcs)

    result = benchmark.pedantic(
        lambda: engine.execute(QUERY), rounds=1, iterations=1
    )
    profile = result.transitive
    shares = profile.profile.shares()

    print_table(
        "Section 3.4: BFS on the column store (paper values in parens)",
        [
            f"reachable vertices:     {result.rows[0][0]}",
            f"random lookups:         {profile.random_lookups:.3e}  (2.28e6)",
            f"edge endpoints visited: {profile.endpoints_visited:.3e}  (2.89e8)",
            f"elapsed:                {profile.elapsed_seconds:.4f} s  (7 s)",
            f"rate:                   {profile.mteps:.1f} MTEPS  (41.3)",
            f"CPU utilization:        {profile.cpu_percent:.0f}%  (1930% of 2400%)",
            f"CPU profile:            hash {shares['hash']:.0%} (33%), "
            f"exchange {shares['exchange']:.0%} (10%), "
            f"column {shares['column']:.0%} (57%)",
        ],
    )

    # Correctness: the SQL count equals BFS reachability.
    reachable = sum(1 for d in bfs(graph, START_VERTEX).values() if d >= 0)
    assert result.rows[0][0] == reachable

    # Work profile shape: endpoints >> lookups.
    assert profile.endpoints_visited > 10 * profile.random_lookups

    # CPU profile ordering and rough split.
    assert shares["column"] > shares["hash"] > shares["exchange"]
    assert shares["column"] == pytest.approx(0.57, abs=0.10)
    assert shares["hash"] == pytest.approx(0.33, abs=0.08)
    assert shares["exchange"] == pytest.approx(0.10, abs=0.05)

    # High-but-not-full parallelism, as in the paper.
    assert 0.5 * 2400 < profile.cpu_percent < 2400

    # A healthy MTEPS rate (the absolute value scales with graph size;
    # the paper measured 41.3 MTEPS at SNB-1000 scale).
    assert profile.mteps > 1.0
