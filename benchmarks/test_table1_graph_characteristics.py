"""Table 1: characteristics of real graphs.

Regenerates the paper's Table 1 — nodes, edges, global clustering
coefficient, average clustering coefficient, assortativity — over the
synthetic stand-ins for the five SNAP graphs, printing the paper's
values next to ours. The assertion checks the table's *point*: the
configuration space is heterogeneous (no dominant configuration).
"""

import pytest

from benchmarks.conftest import print_table
from repro.datasets import TABLE1_PAPER_VALUES, standin_graph, standin_names
from repro.graph.properties import graph_characteristics

SCALE_DIVISOR = 512


@pytest.mark.benchmark(group="table1")
def test_table1_graph_characteristics(benchmark):
    def compute():
        return {
            name: graph_characteristics(
                standin_graph(name, scale_divisor=SCALE_DIVISOR), name
            )
            for name in standin_names()
        }

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = [
        f"{'Dataset':<13}{'Nodes':>9}{'Edges':>9}{'Gl. CC':>9}{'Avg. CC':>9}"
        f"{'Asrt.':>9}   paper: Gl.CC / Avg.CC / Asrt."
    ]
    for name in ("amazon", "youtube", "livejournal", "patents", "wikipedia"):
        row = rows[name]
        paper = TABLE1_PAPER_VALUES[name]
        lines.append(
            f"{name:<13}{row.num_vertices:>9}{row.num_edges:>9}"
            f"{row.global_clustering:>9.4f}{row.average_clustering:>9.4f}"
            f"{row.assortativity:>9.4f}   "
            f"{paper.global_clustering:.4f} / {paper.average_clustering:.4f} "
            f"/ {paper.assortativity:+.4f}"
        )
    print_table(
        f"Table 1: characteristics of real graphs "
        f"(stand-ins at 1/{SCALE_DIVISOR} scale)",
        lines,
    )

    # The table's observation: heterogeneous configuration space.
    clusterings = [row.average_clustering for row in rows.values()]
    assert max(clusterings) > 5 * min(clusterings)
    assert {row.assortativity > 0 for row in rows.values()} == {True, False}
    # Density ordering from the paper: livejournal densest, wikipedia
    # and youtube sparsest.
    densities = {
        name: row.num_edges / row.num_vertices for name, row in rows.items()
    }
    assert densities["livejournal"] == max(densities.values())
    # Amazon is the clustering champion, as in the paper.
    assert rows["amazon"].average_clustering == max(clusterings)
