"""Figure 4: runtimes for all algorithms on all platforms and graphs.

Regenerates the paper's Figure 4: the runtime of every (algorithm,
platform, graph) combination over Graph500-, Patents-, and SNB-style
graphs, with failures reported as missing values. Outputs are
validated against the reference implementations, so every number in
the matrix is a *correct* run.

Shape assertions (the paper's findings, at bench scale):

* MapReduce is one to two orders of magnitude slower than the
  in-memory platforms, but never fails ("does not crash even when
  processing the largest workload");
* GraphX is ~3x slower than Giraph for CONN and fails workloads
  Giraph completes (its neighbor-list exchange exceeds worker
  memory);
* Neo4j is the fastest platform on the graph that comfortably fits
  its machine, but cannot load the largest graph at all;
* Giraph completes everything.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core.benchmark import BenchmarkCore
from repro.core.report import ReportGenerator
from repro.core.validation import OutputValidator
from repro.core.workload import Algorithm, AlgorithmParams, BenchmarkRunSpec
from repro.platforms.registry import create_platform

PARAMS = AlgorithmParams(evo_new_vertices=100)

#: The paper's Figure 4 evaluates exactly these four platforms; the
#: extension platforms (graphlab, virtuoso, medusa) have their own
#: bench (test_extension_platforms.py).
PAPER_PLATFORMS = ("giraph", "graphx", "mapreduce", "neo4j")


def run_figure4_suite(benchmark_graphs, distributed_spec, single_node_spec):
    """Run the full Figure 4 matrix; shared with the Figure 5 bench."""
    platforms = [
        create_platform(
            name, single_node_spec if name == "neo4j" else distributed_spec
        )
        for name in PAPER_PLATFORMS
    ]
    core = BenchmarkCore(platforms, benchmark_graphs, validator=OutputValidator())
    return core.run(BenchmarkRunSpec(params=PARAMS))


@pytest.fixture(scope="session")
def figure4_suite(benchmark_graphs, distributed_spec, single_node_spec):
    return run_figure4_suite(benchmark_graphs, distributed_spec, single_node_spec)


@pytest.mark.benchmark(group="figure4")
def test_figure4_platform_runtimes(
    benchmark, benchmark_graphs, distributed_spec, single_node_spec
):
    suite = benchmark.pedantic(
        run_figure4_suite,
        args=(benchmark_graphs, distributed_spec, single_node_spec),
        rounds=1,
        iterations=1,
    )

    generator = ReportGenerator()
    print_table(
        "Figure 4: runtime [s] for all implementations of all algorithms "
        "(missing values indicate failures)",
        generator.runtime_matrix(suite).splitlines(),
    )
    failure_lines = generator.failure_section(suite).splitlines()
    print_table("Figure 4 failures", failure_lines)

    def runtime(platform, graph, algorithm):
        result = suite.lookup(platform, graph, algorithm)
        assert result is not None
        return result.runtime_seconds

    # --- MapReduce: slowest, but completes every workload. -------------
    for graph in benchmark_graphs:
        for algorithm in Algorithm:
            assert suite.lookup("mapreduce", graph, algorithm).succeeded
    for graph in benchmark_graphs:
        for algorithm in (Algorithm.BFS, Algorithm.CONN, Algorithm.CD):
            assert runtime("mapreduce", graph, algorithm) > 4 * runtime(
                "giraph", graph, algorithm
            )
    # On the skewed Graph500 workload the gap is the widest.
    assert runtime("mapreduce", "graph500-12", Algorithm.BFS) > 7 * runtime(
        "giraph", "graph500-12", Algorithm.BFS
    )

    # --- Giraph: completes everything. -----------------------------------
    assert all(
        suite.lookup("giraph", graph, algorithm).succeeded
        for graph in benchmark_graphs
        for algorithm in Algorithm
    )

    # --- GraphX: ~3x slower CONN; fails workloads Giraph completes. ------
    for graph in benchmark_graphs:
        ratio = runtime("graphx", graph, Algorithm.CONN) / runtime(
            "giraph", graph, Algorithm.CONN
        )
        assert 1.5 < ratio < 6.0, (graph, ratio)
    graphx_failures = [
        (result.graph_name, result.algorithm)
        for result in suite.failures()
        if result.platform == "graphx"
    ]
    assert graphx_failures, "expected GraphX out-of-memory failures"
    for graph, algorithm in graphx_failures:
        # Everything GraphX fails, Giraph completes.
        assert suite.lookup("giraph", graph, algorithm).succeeded

    # --- Neo4j: fastest where it fits, fails the largest graph. ----------
    for algorithm in Algorithm:
        result = suite.lookup("neo4j", "snb-1000*", algorithm)
        assert not result.succeeded
        assert "out-of-memory" in result.failure_reason
        assert runtime("neo4j", "patents*", algorithm) < runtime(
            "giraph", "patents*", algorithm
        )
