"""Shared fixtures for the paper-reproduction benchmarks.

Every module under ``benchmarks/`` regenerates one table or figure of
the paper (see DESIGN.md's per-experiment index). Graphs are scaled
down from the paper's (they ran 10-machine JVM clusters; we simulate),
and the cluster specs are scaled down by the same factor via
:meth:`ClusterSpec.scaled`, which preserves the paper's relative
platform behaviour and keeps the simulated times in the paper's
ballpark.
"""

from __future__ import annotations

import pytest

from repro.core.cost import ClusterSpec
from repro.datasets import load_dataset, standin_graph
from repro.graph.generators import rmat_graph

#: The paper's graphs are ~2048x larger than the bench graphs below;
#: all throughputs scale down with them.
THROUGHPUT_SCALE = 2048.0
#: Memory budgets scale so that the paper's out-of-memory failure
#: boundaries fall at the bench graph sizes: 24 GiB/worker becomes
#: 24 MiB/worker (GraphX's neighbor-list exchange no longer fits;
#: Giraph's leaner representation does), and Neo4j's 192 GiB machine
#: becomes 4 MiB (the SNB-1000* record store exceeds it). See
#: EXPERIMENTS.md for the calibration.
DISTRIBUTED_MEMORY_SCALE = 1024.0
SINGLE_NODE_MEMORY_SCALE = 49152.0


@pytest.fixture(scope="session")
def distributed_spec() -> ClusterSpec:
    """The paper's 10-worker cluster, scaled to the bench graphs."""
    return ClusterSpec.paper_distributed().scaled(
        THROUGHPUT_SCALE, memory=DISTRIBUTED_MEMORY_SCALE
    )


@pytest.fixture(scope="session")
def single_node_spec() -> ClusterSpec:
    """The paper's Neo4j machine, scaled to the bench graphs."""
    return ClusterSpec.paper_single_node().scaled(
        THROUGHPUT_SCALE, memory=SINGLE_NODE_MEMORY_SCALE
    )


@pytest.fixture(scope="session")
def benchmark_graphs() -> dict:
    """The paper's three benchmark graphs, scaled ~2048x down.

    * ``graph500-12`` stands in for Graph500 scale-23 (the most
      skewed workload);
    * ``patents*`` is the Patents stand-in at matching scale (the
      smallest);
    * ``snb-1000*`` is the SNB social network (the most edges).
    """
    return {
        "graph500-12": load_dataset("graph500-12"),
        "patents*": standin_graph("patents", scale_divisor=2048),
        "snb-1000*": load_dataset("snb-8000"),
    }


#: Generator registry for :func:`graph_cache`. Every factory takes
#: ``(scale, seed, **kwargs)`` and is fully deterministic.
_GENERATORS = {
    "rmat": rmat_graph,
}


@pytest.fixture(scope="session")
def graph_cache():
    """Session-scoped memoized graph generation.

    Generating the larger R-MAT graphs dominates several benches'
    setup time; this cache hands out one shared instance per
    ``(generator, scale, seed)`` key (plus any extra generator
    keywords). Sharing is safe because every consumer treats graphs
    as immutable — the platform drivers never mutate their inputs.
    """
    cache: dict = {}

    def get(generator: str, scale: int, seed: int, **kwargs):
        key = (generator, scale, seed, tuple(sorted(kwargs.items())))
        if key not in cache:
            cache[key] = _GENERATORS[generator](scale=scale, seed=seed, **kwargs)
        return cache[key]

    return get


def print_table(title: str, lines: list[str]) -> None:
    """Uniform table rendering for the bench reports."""
    print()
    print(title)
    print("-" * max(len(title), *(len(line) for line in lines)))
    for line in lines:
        print(line)
