"""Analysis targets beyond Python source: experiment artifacts.

The static-analysis subsystem originally only read ``*.py`` files.
The benchmark self-audit generalizes it: the same registry, severity
model, suppression comments, baseline gate, and reporters now run over
the *artifacts of an experiment* — benchmark/graph configuration files,
results-database rows, and execution traces. This module owns the
target abstraction:

* :class:`ArtifactContext` — one loaded artifact (the analogue of the
  engine's ``ModuleContext``), carrying its raw lines, a sniffed
  ``kind``, and a typed payload in ``data``.
* :class:`AuditContext` — every artifact of one audit run at once (the
  analogue of ``ProjectContext``); audit rules are whole-suite rules
  because the faults they detect (single dataset shape, one seed
  everywhere) are properties of the suite, not of one file.
* :class:`ArtifactRule` + its registry — same shape as the engine's
  project rules: ``check`` yields ``(artifact, finding)`` pairs.

Artifact kinds and payloads:

========================  =====================================
kind                      ``data`` payload
========================  =====================================
``benchmark-config``      :class:`BenchmarkManifest`
``graph-config``          :class:`GraphManifest`
``results``               :class:`ResultsArtifact`
``trace``                 :class:`TraceArtifact`
========================  =====================================

Artifacts that fail to load become ``parse-error`` findings, exactly
like unparseable Python files do in ``analyze_tree``.
"""

from __future__ import annotations

import configparser
import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.analysis.engine import AnalysisConfig
from repro.analysis.model import ERROR, Finding
from repro.core.config import GraphConfig
from repro.core.errors import ConfigurationError
from repro.core.workload import BenchmarkRunSpec

__all__ = [
    "ArtifactContext",
    "AuditContext",
    "ArtifactRule",
    "BenchmarkManifest",
    "GraphManifest",
    "ResultsArtifact",
    "ResultRow",
    "TraceArtifact",
    "register_artifact_rule",
    "registered_artifact_rules",
    "default_artifact_rules",
    "load_artifact",
    "discover_artifacts",
    "parse_error_finding",
]

#: Artifact kinds the loaders can produce.
BENCHMARK_CONFIG = "benchmark-config"
GRAPH_CONFIG = "graph-config"
RESULTS = "results"
TRACE = "trace"


@dataclass(frozen=True)
class BenchmarkManifest:
    """Parsed benchmark configuration: the run spec plus raw sections."""

    spec: BenchmarkRunSpec
    time_limit: float | None
    #: Raw ``{section: {key: value}}`` mapping, for key-level rules.
    sections: dict[str, dict[str, str]]


@dataclass(frozen=True)
class GraphManifest:
    """Parsed graph configuration plus its raw sections."""

    config: GraphConfig
    sections: dict[str, dict[str, str]]


@dataclass(frozen=True)
class ResultRow:
    """One results-database row with the line it came from."""

    line: int
    data: dict


@dataclass(frozen=True)
class ResultsArtifact:
    """A results-database (or submission) artifact: parsed rows."""

    rows: tuple[ResultRow, ...]


@dataclass(frozen=True)
class TraceArtifact:
    """A structured-trace artifact: its parsed attempts."""

    attempts: tuple


@dataclass
class ArtifactContext:
    """Everything an audit rule sees about one loaded artifact."""

    path: str
    kind: str
    lines: list[str]
    data: object
    #: Load-failure message; when set, ``data`` is ``None`` and the
    #: audit reports a ``parse-error`` finding instead of running rules.
    error: str | None = None

    def line_of(self, section: str, key: str | None = None) -> int:
        """1-based line of an INI section header or key, best effort.

        Anchors findings on the offending configuration line so the
        text reporter's source excerpt shows the fault. Falls back to
        line 1 when the raw text does not contain the pattern.
        """
        in_section = False
        for number, raw in enumerate(self.lines, start=1):
            stripped = raw.strip()
            if stripped.startswith("[") and stripped.rstrip().endswith("]"):
                if key is None and stripped[1:-1].strip() == section:
                    return number
                in_section = stripped[1:-1].strip() == section
                continue
            if key is not None and in_section:
                name = stripped.split("=", 1)[0].split(":", 1)[0].strip()
                if name == key:
                    return number
        return 1


@dataclass
class AuditContext:
    """Every artifact of one audit run, for whole-suite rules.

    ``cache`` is a scratch dict shared by all rules of the run, like
    the engine's ``ProjectContext.cache``.
    """

    artifacts: list[ArtifactContext]
    config: AnalysisConfig
    cache: dict = field(default_factory=dict)

    def of_kind(self, kind: str) -> list[ArtifactContext]:
        """The run's successfully loaded artifacts of one kind."""
        return [
            artifact
            for artifact in self.artifacts
            if artifact.kind == kind and artifact.error is None
        ]

    def benchmark_manifests(self) -> list[ArtifactContext]:
        """Artifacts carrying a :class:`BenchmarkManifest`."""
        return self.of_kind(BENCHMARK_CONFIG)

    def graph_manifests(self) -> list[ArtifactContext]:
        """Artifacts carrying a :class:`GraphManifest`."""
        return self.of_kind(GRAPH_CONFIG)

    def results_artifacts(self) -> list[ArtifactContext]:
        """Artifacts carrying a :class:`ResultsArtifact`."""
        return self.of_kind(RESULTS)

    def trace_artifacts(self) -> list[ArtifactContext]:
        """Artifacts carrying a :class:`TraceArtifact`."""
        return self.of_kind(TRACE)


class ArtifactRule:
    """Base class of experiment-artifact audit rules.

    Same contract as the engine's ``ProjectRule``: ``check`` receives
    the whole :class:`AuditContext` and yields ``(artifact, finding)``
    pairs so each finding lands in (and can be suppressed from) the
    artifact it belongs to.
    """

    id: str = ""
    severity: str = "warning"
    category: str = "experiment"

    def check(
        self, audit: AuditContext
    ) -> Iterator[tuple[ArtifactContext, Finding]]:
        """Yield ``(artifact, finding)`` pairs over the whole suite."""
        raise NotImplementedError

    def finding(self, message: str, line: int) -> Finding:
        """Construct a finding carrying this rule's id and severity."""
        return Finding(
            rule=self.id,
            message=message,
            line=line,
            severity=self.severity,
            category=self.category,
        )


_ARTIFACT_REGISTRY: dict[str, type[ArtifactRule]] = {}


def register_artifact_rule(
    rule_class: type[ArtifactRule],
) -> type[ArtifactRule]:
    """Class decorator adding an artifact rule to the registry."""
    if not rule_class.id:
        raise ValueError(f"{rule_class.__name__} has no rule id")
    if rule_class.id in _ARTIFACT_REGISTRY:
        raise ValueError(f"duplicate artifact rule id {rule_class.id!r}")
    _ARTIFACT_REGISTRY[rule_class.id] = rule_class
    return rule_class


def registered_artifact_rules() -> dict[str, type[ArtifactRule]]:
    """The artifact rule registry (id -> rule class), as a copy."""
    _load_builtin_artifact_rules()
    return dict(_ARTIFACT_REGISTRY)


def default_artifact_rules(config: AnalysisConfig) -> list[ArtifactRule]:
    """Instantiate every registered artifact rule the config enables."""
    _load_builtin_artifact_rules()
    return [
        rule_class()
        for rule_id, rule_class in sorted(_ARTIFACT_REGISTRY.items())
        if config.is_enabled(rule_id)
    ]


def _load_builtin_artifact_rules() -> None:
    # Lazy, so the registry self-populates regardless of import order
    # (same pattern as the engine's _load_builtin_rules).
    from repro.analysis import rules_audit  # noqa: F401


# -- loading ---------------------------------------------------------------


def _sections_of(parser: configparser.ConfigParser) -> dict[str, dict[str, str]]:
    return {
        section: dict(parser[section]) for section in parser.sections()
    }


def _load_ini(path: Path, lines: list[str]) -> ArtifactContext:
    """Load one INI artifact, sniffing benchmark vs graph config."""
    from repro.core.config import load_benchmark_config, load_graph_config

    parser = configparser.ConfigParser(inline_comment_prefixes=(";", "#"))
    try:
        parser.read_string("\n".join(lines), source=str(path))
    except configparser.Error as error:
        return ArtifactContext(
            str(path), BENCHMARK_CONFIG, lines, None, error=str(error)
        )
    kind = BENCHMARK_CONFIG if "benchmark" in parser else GRAPH_CONFIG
    try:
        with warnings.catch_warnings():
            # Unknown-key warnings become audit findings, not noise.
            warnings.simplefilter("ignore")
            if kind == BENCHMARK_CONFIG:
                spec, time_limit = load_benchmark_config(path)
                data: object = BenchmarkManifest(
                    spec=spec,
                    time_limit=time_limit,
                    sections=_sections_of(parser),
                )
            else:
                data = GraphManifest(
                    config=load_graph_config(path),
                    sections=_sections_of(parser),
                )
    except ConfigurationError as error:
        return ArtifactContext(str(path), kind, lines, None, error=str(error))
    return ArtifactContext(str(path), kind, lines, data)


def _load_jsonl(path: Path, lines: list[str]) -> ArtifactContext:
    """Load one JSONL artifact, sniffing trace vs results rows."""
    rows: list[ResultRow] = []
    is_trace = False
    for number, raw in enumerate(lines, start=1):
        stripped = raw.strip()
        # Comment lines hold audit suppressions for the next record.
        if not stripped or stripped.startswith("#"):
            continue
        try:
            record = json.loads(stripped)
        except ValueError:
            continue
        if not isinstance(record, dict):
            continue
        if "event" in record:
            is_trace = True
            break
        rows.append(ResultRow(line=number, data=record))
    if is_trace:
        from repro.observability.replay import parse_trace, read_trace

        try:
            attempts = tuple(parse_trace(read_trace(path)))
        except (ValueError, KeyError, OSError) as error:
            return ArtifactContext(
                str(path), TRACE, lines, None, error=f"unreadable trace: {error}"
            )
        return ArtifactContext(str(path), TRACE, lines, TraceArtifact(attempts))
    return ArtifactContext(
        str(path), RESULTS, lines, ResultsArtifact(tuple(rows))
    )


def _load_submission(path: Path, lines: list[str]) -> ArtifactContext:
    """Load a ``.json`` submission document as a results artifact."""
    try:
        document = json.loads("\n".join(lines))
    except ValueError as error:
        return ArtifactContext(
            str(path), RESULTS, lines, None, error=f"invalid JSON: {error}"
        )
    if isinstance(document, dict) and isinstance(
        document.get("results"), list
    ):
        rows = tuple(
            ResultRow(line=1, data=row)
            for row in document["results"]
            if isinstance(row, dict)
        )
        return ArtifactContext(str(path), RESULTS, lines, ResultsArtifact(rows))
    return ArtifactContext(
        str(path),
        RESULTS,
        lines,
        None,
        error="not a submission document (no 'results' list)",
    )


def load_artifact(path: str | Path) -> ArtifactContext:
    """Load one experiment artifact, sniffing its kind from content.

    ``*.ini`` files become benchmark or graph configs (by section),
    ``*.jsonl`` files become traces (``"event"`` keys) or results
    databases, and ``*.json`` files are read as submission documents.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        return ArtifactContext(
            str(path), RESULTS, [], None, error=f"unreadable artifact: {error}"
        )
    lines = text.splitlines()
    suffix = path.suffix.lower()
    if suffix == ".ini":
        return _load_ini(path, lines)
    if suffix == ".json":
        return _load_submission(path, lines)
    return _load_jsonl(path, lines)


def discover_artifacts(paths: list[str | Path]) -> list[ArtifactContext]:
    """Load artifacts from files and directories.

    Directories contribute their ``*.ini`` and ``*.jsonl`` files
    (recursively, sorted); explicitly named files of any recognized
    suffix are loaded as given. Unknown directory contents — goldens,
    reports, Python sources — are left to the quality engine.
    """
    artifacts: list[ArtifactContext] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            found = sorted(
                [
                    candidate
                    for pattern in ("*.ini", "*.jsonl")
                    for candidate in entry.rglob(pattern)
                ]
            )
            artifacts.extend(load_artifact(candidate) for candidate in found)
        else:
            artifacts.append(load_artifact(entry))
    return artifacts


def parse_error_finding(artifact: ArtifactContext) -> Finding:
    """The ``parse-error`` finding for an artifact that failed to load."""
    return Finding(
        rule="parse-error",
        message=artifact.error or "artifact failed to load",
        line=1,
        severity=ERROR,
        category="parse",
    )
