"""Generic bug-pattern and maintainability rules.

These are the language-level rules the original Section 3.5 analyzer
shipped with (bare excepts, mutable default arguments, ``== None``),
plus a configurable complexity ceiling. Domain-aware rules live in
:mod:`repro.analysis.rules_determinism` and
:mod:`repro.analysis.rules_bsp`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import (
    ModuleContext,
    Rule,
    function_anchor,
    register_rule,
)
from repro.analysis.model import Finding, WARNING

__all__ = [
    "BareExceptRule",
    "MutableDefaultRule",
    "EqNoneRule",
    "HighComplexityRule",
]


@register_rule
class BareExceptRule(Rule):
    """Flag ``except:`` clauses that swallow every exception."""

    id = "bare-except"
    severity = WARNING
    category = "bug"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    "bare 'except:' swallows all errors", node.lineno
                )


@register_rule
class MutableDefaultRule(Rule):
    """Flag mutable default arguments (shared across calls)."""

    id = "mutable-default"
    severity = WARNING
    category = "bug"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module."""
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                    # Anchor at the def line, not the default's own
                    # line: in a multi-line signature the default can
                    # sit lines below the def, where a suppression
                    # comment (and a reader) would never look.
                    yield self.finding(
                        f"function {node.name!r} has a mutable default",
                        function_anchor(node),
                    )


@register_rule
class EqNoneRule(Rule):
    """Flag ``== None`` / ``!= None`` comparisons."""

    id = "eq-none"
    severity = WARNING
    category = "bug"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            for op, comparator in zip(node.ops, node.comparators):
                is_none = (
                    isinstance(comparator, ast.Constant)
                    and comparator.value is None
                )
                if is_none and isinstance(op, (ast.Eq, ast.NotEq)):
                    yield self.finding(
                        "compare to None with 'is', not '=='", node.lineno
                    )


@register_rule
class HighComplexityRule(Rule):
    """Flag functions above the configured complexity ceiling."""

    id = "high-complexity"
    severity = WARNING
    category = "maintainability"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module."""
        ceiling = module.config.max_complexity
        for metrics in module.functions:
            if metrics.complexity > ceiling:
                yield self.finding(
                    f"function {metrics.name!r} has cyclomatic complexity "
                    f"{metrics.complexity} (ceiling {ceiling})",
                    metrics.line,
                )
