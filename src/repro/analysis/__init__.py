"""Static analysis subsystem (Section 3.5): the quality gate.

A pluggable, domain-aware rule engine replacing the original
single-file analyzer. Besides the generic bug patterns (bare excepts,
mutable defaults, ``== None``), it enforces this repository's
simulation contract: wall-clock and unseeded-randomness bans inside
the engines (``determinism``), charged work for every engine loop over
simulated data (``cost-accounting``), and freedom from cross-vertex
shared-state races in BSP kernels (``bsp-race``). A committed baseline
snapshot plus ``graphalytics quality --check`` turns the analyzer into
the commit gate the paper describes.

The :mod:`repro.analysis.dataflow` package adds interprocedural
analyses on top: per-function control-flow graphs, a project call
graph, CostMeter-lifecycle typestate checking (``cost-protocol``) and
nondeterminism taint tracking (``nondeterminism-flow``), both wired
into the same registry, reporters, and gate as the syntactic rules.
"""

from repro.analysis.baseline import (
    GateResult,
    Regression,
    compare_to_baseline,
    detect_regressions,
    load_baseline,
    quality_gate,
    save_baseline,
    snapshot,
)
from repro.analysis.engine import (
    STALE_IGNORE_RULE,
    AnalysisConfig,
    ModuleContext,
    ProjectContext,
    ProjectRule,
    Rule,
    analyze_file,
    analyze_source,
    analyze_tree,
    default_project_rules,
    default_rules,
    function_anchor,
    register_project_rule,
    register_rule,
    registered_project_rules,
    registered_rules,
)
from repro.analysis.model import (
    ERROR,
    INFO,
    SEVERITIES,
    WARNING,
    FileReport,
    Finding,
    FunctionMetrics,
    QualityReport,
    severity_rank,
)
from repro.analysis.audit import audit_artifacts, audit_paths, audit_spec
from repro.analysis.reporters import (
    render_json,
    render_rule_profile,
    render_text,
)
from repro.analysis.targets import (
    ArtifactContext,
    ArtifactRule,
    AuditContext,
    default_artifact_rules,
    discover_artifacts,
    load_artifact,
    register_artifact_rule,
    registered_artifact_rules,
)

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "SEVERITIES",
    "severity_rank",
    "Finding",
    "FunctionMetrics",
    "FileReport",
    "QualityReport",
    "AnalysisConfig",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "ProjectRule",
    "STALE_IGNORE_RULE",
    "function_anchor",
    "register_rule",
    "register_project_rule",
    "registered_rules",
    "registered_project_rules",
    "default_rules",
    "default_project_rules",
    "analyze_source",
    "analyze_file",
    "analyze_tree",
    "Regression",
    "GateResult",
    "snapshot",
    "save_baseline",
    "load_baseline",
    "compare_to_baseline",
    "detect_regressions",
    "quality_gate",
    "render_text",
    "render_json",
    "render_rule_profile",
    "ArtifactContext",
    "ArtifactRule",
    "AuditContext",
    "register_artifact_rule",
    "registered_artifact_rules",
    "default_artifact_rules",
    "load_artifact",
    "discover_artifacts",
    "audit_artifacts",
    "audit_paths",
    "audit_spec",
]
