"""Text and JSON reporters for quality reports.

The text rendering is what ``graphalytics quality`` prints (summary
line, most complex files, findings with severities); the JSON
rendering is the machine-readable artifact CI tooling consumes.
"""

from __future__ import annotations

import json

from repro.analysis.baseline import snapshot
from repro.analysis.model import QualityReport, severity_rank

__all__ = ["render_text", "render_json", "render_rule_profile"]


def render_text(report: QualityReport, worst_files: int = 5) -> str:
    """Human-readable quality report."""
    lines = [report.summary()]
    ranked = sorted(
        report.files, key=lambda f: f.max_complexity, reverse=True
    )[:worst_files]
    if ranked:
        lines.append("most complex files:")
        lines.extend(
            f"  {file_report.path}: max complexity {file_report.max_complexity}"
            for file_report in ranked
        )
    findings = sorted(
        report.iter_findings(),
        key=lambda pair: (
            -severity_rank(pair[1].severity),
            pair[0].path,
            pair[1].line,
        ),
    )
    for file_report, finding in findings:
        lines.append(
            f"  {file_report.path}:{finding.line}: {finding.severity} "
            f"[{finding.rule}] {finding.message}"
        )
    if report.total_suppressed:
        lines.append(
            f"  ({report.total_suppressed} finding(s) suppressed by "
            "'# quality: ignore' comments)"
        )
    return "\n".join(lines)


def render_rule_profile(timings: dict[str, float]) -> str:
    """Per-rule wall-clock table (``quality --profile-rules``).

    Sorted slowest first, with each rule's share of the total. Rule
    families that compute once and fan results out to sub-rules bill
    the shared computation to whichever member ran first.
    """
    if not timings:
        return "rule profile: no rules ran"
    total = sum(timings.values())
    width = max(len(rule_id) for rule_id in timings)
    lines = [f"rule profile ({total:.2f}s total):"]
    for rule_id, seconds in sorted(
        timings.items(), key=lambda item: (-item[1], item[0])
    ):
        share = 100.0 * seconds / total if total else 0.0
        lines.append(f"  {rule_id:<{width}}  {seconds:8.3f}s  {share:5.1f}%")
    return "\n".join(lines)


def render_json(report: QualityReport) -> str:
    """Machine-readable quality report (one JSON document)."""
    document = {
        "summary": snapshot(report),
        "files": [
            {
                "path": file_report.path,
                "lines_of_code": file_report.lines_of_code,
                "functions": len(file_report.functions),
                "max_complexity": file_report.max_complexity,
                "documented_share": round(file_report.documented_share, 4),
                "suppressed": file_report.suppressed,
                "findings": [
                    {
                        "rule": finding.rule,
                        "severity": finding.severity,
                        "category": finding.category,
                        "line": finding.line,
                        "message": finding.message,
                    }
                    for finding in file_report.findings
                ],
            }
            for file_report in report.files
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
