"""SoK benchmark-fault rules over experiment artifacts.

Each rule encodes one entry of the SoK fault taxonomy for systems
benchmarks ("SoK: A Systematic Review of Performance Evaluation in
Systems Research" lineage; see PAPERS.md): faults that make a
published comparison unsound without making any single run wrong.
They run through ``graphalytics audit`` over the suite's configuration
files, results databases, and traces — not over Python source.

The family, by severity:

* ``single-run`` (error) — fewer measured repetitions than the
  configured minimum; a single sample has no variance.
* ``validation-off`` (error) — output validation disabled; fast wrong
  answers would rank first.
* ``no-warmup`` (warning) — no warmup executions before measurement.
* ``missing-variance`` (warning) — success rows without repetition
  statistics.
* ``dataset-shape-bias`` (warning) — every dataset has the same shape
  or scale; conclusions will not generalize.
* ``seed-monoculture`` (warning) — several graphs pinned to one seed.
* ``unexplained-failure`` (warning) — failure rows without a reason,
  or truncated trace attempts.
* ``overlapping-ci`` (warning) — a ranking whose adjacent runtimes
  have overlapping confidence intervals.
* ``config-unknown-key`` (warning) — misspelled configuration keys
  that silently change the experiment.
* ``no-time-limit`` (info) — unbounded cells; hangs become missing
  data instead of timeouts.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.model import ERROR, INFO, WARNING, Finding
from repro.analysis.targets import (
    ArtifactContext,
    ArtifactRule,
    AuditContext,
    BenchmarkManifest,
    GraphManifest,
    ResultsArtifact,
    TraceArtifact,
    register_artifact_rule,
)
from repro.core.config import (
    BENCHMARK_CONFIG_SECTIONS,
    GRAPH_CONFIG_SECTIONS,
    unknown_config_keys,
)
from repro.core.stats import RuntimeStats

__all__: list[str] = []

#: Max/min estimated-vertex ratio below which a suite's datasets all
#: count as "the same scale" for the shape-bias rule.
_SCALE_SPREAD = 4.0


def _spec_pairs(audit: AuditContext):
    """The audit's benchmark manifests as (artifact, manifest) pairs."""
    return [
        (artifact, artifact.data)
        for artifact in audit.benchmark_manifests()
        if isinstance(artifact.data, BenchmarkManifest)
    ]


def _graph_pairs(audit: AuditContext):
    """The audit's graph manifests as (artifact, manifest) pairs."""
    return [
        (artifact, artifact.data)
        for artifact in audit.graph_manifests()
        if isinstance(artifact.data, GraphManifest)
    ]


def _suite_anchor(audit: AuditContext) -> ArtifactContext | None:
    """The artifact suite-level findings anchor on, if any.

    Prefers a benchmark manifest (the file that *should* declare the
    missing rigor); falls back to the first graph config.
    """
    manifests = audit.benchmark_manifests()
    if manifests:
        return manifests[0]
    graphs = audit.graph_manifests()
    if graphs:
        return graphs[0]
    return None


@register_artifact_rule
class SingleRunRule(ArtifactRule):
    """Flags suites measuring fewer repetitions than the minimum."""

    id = "single-run"
    severity = ERROR

    def check(self, audit: AuditContext) -> Iterator[tuple[ArtifactContext, Finding]]:
        """Flag benchmark manifests with repetitions below the minimum."""
        minimum = audit.config.min_repetitions
        pairs = _spec_pairs(audit)
        for artifact, manifest in pairs:
            if manifest.spec.repetitions < minimum:
                line = artifact.line_of("benchmark", "repetitions")
                yield artifact, self.finding(
                    f"suite measures {manifest.spec.repetitions} "
                    f"repetition(s) per cell; need >= {minimum} for any "
                    "variance estimate",
                    line,
                )
        if not pairs:
            # Graph configs with no benchmark manifest at all: the
            # suite implicitly runs everything once.
            anchor = _suite_anchor(audit)
            if anchor is not None:
                yield anchor, self.finding(
                    "no benchmark configuration declares repetitions; "
                    "the suite defaults to a single run per cell",
                    1,
                )


@register_artifact_rule
class NoWarmupRule(ArtifactRule):
    """Flags suites that measure cold runs."""

    id = "no-warmup"
    severity = WARNING

    def check(self, audit: AuditContext) -> Iterator[tuple[ArtifactContext, Finding]]:
        """Flag benchmark manifests without warmup executions."""
        for artifact, manifest in _spec_pairs(audit):
            if manifest.spec.warmup_runs <= 0:
                yield artifact, self.finding(
                    "no warmup runs before measurement; first-execution "
                    "effects (JIT, cache population) pollute the samples",
                    artifact.line_of("benchmark"),
                )


@register_artifact_rule
class ValidationOffRule(ArtifactRule):
    """Flags suites that skip output validation."""

    id = "validation-off"
    severity = ERROR

    def check(self, audit: AuditContext) -> Iterator[tuple[ArtifactContext, Finding]]:
        """Flag benchmark manifests with validate = false."""
        for artifact, manifest in _spec_pairs(audit):
            if not manifest.spec.validate_outputs:
                yield artifact, self.finding(
                    "output validation is disabled; a platform returning "
                    "wrong results would still be ranked",
                    artifact.line_of("benchmark", "validate"),
                )


@register_artifact_rule
class NoTimeLimitRule(ArtifactRule):
    """Notes suites without a per-cell time limit."""

    id = "no-time-limit"
    severity = INFO

    def check(self, audit: AuditContext) -> Iterator[tuple[ArtifactContext, Finding]]:
        """Note benchmark manifests lacking time_limit_seconds."""
        for artifact, manifest in _spec_pairs(audit):
            if manifest.time_limit is None:
                yield artifact, self.finding(
                    "no time_limit_seconds; a hanging cell stalls the "
                    "suite instead of recording a timeout",
                    artifact.line_of("benchmark"),
                )


@register_artifact_rule
class DatasetShapeBiasRule(ArtifactRule):
    """Flags suites whose datasets all share one shape or scale."""

    id = "dataset-shape-bias"
    severity = WARNING

    def check(self, audit: AuditContext) -> Iterator[tuple[ArtifactContext, Finding]]:
        """Flag single-shape or single-scale dataset selections."""
        from repro.datasets.catalog import dataset_profile

        anchor = _suite_anchor(audit)
        if anchor is None:
            return
        names: list[str] = []
        for _, manifest in _graph_pairs(audit):
            names.append(manifest.config.catalog or manifest.config.name)
        for _, manifest in _spec_pairs(audit):
            names.extend(manifest.spec.graphs or [])
        unique = sorted(set(names))
        if not unique:
            return
        if len(unique) == 1:
            yield anchor, self.finding(
                f"suite benchmarks a single dataset ({unique[0]}); "
                "conclusions cannot generalize across graph shapes",
                1,
            )
            return
        profiles = [dataset_profile(name) for name in unique]
        known = [profile for profile in profiles if profile is not None]
        if not known:
            return
        shapes = {profile.shape for profile in known}
        if shapes == {"powerlaw"}:
            yield anchor, self.finding(
                "every recognized dataset is power-law shaped; include "
                "a road-network profile (e.g. road-<side>) so "
                "high-diameter behaviour is measured too",
                1,
            )
        sizes = [profile.est_vertices for profile in known]
        if len(known) > 1 and max(sizes) / max(min(sizes), 1.0) < _SCALE_SPREAD:
            yield anchor, self.finding(
                "all recognized datasets sit at one scale "
                f"(estimated vertices {min(sizes):.0f}..{max(sizes):.0f}); "
                "scalability claims need a scale spread",
                1,
            )


@register_artifact_rule
class SeedMonocultureRule(ArtifactRule):
    """Flags suites generating several graphs from one seed."""

    id = "seed-monoculture"
    severity = WARNING

    def check(self, audit: AuditContext) -> Iterator[tuple[ArtifactContext, Finding]]:
        """Flag repeated explicit seeds across graph configs."""
        by_seed: dict[int, list[tuple[ArtifactContext, GraphManifest]]] = {}
        for artifact, manifest in _graph_pairs(audit):
            if manifest.config.seed is not None:
                by_seed.setdefault(manifest.config.seed, []).append(
                    (artifact, manifest)
                )
        for seed, entries in sorted(by_seed.items()):
            if len(entries) < 2:
                continue
            names = ", ".join(
                manifest.config.name for _, manifest in entries
            )
            for artifact, _ in entries:
                yield artifact, self.finding(
                    f"seed {seed} pinned by {len(entries)} graph configs "
                    f"({names}); a structural artifact of one seed "
                    "repeats across the whole suite",
                    artifact.line_of("graph", "seed"),
                )


@register_artifact_rule
class MissingVarianceRule(ArtifactRule):
    """Flags success results recorded without repetition statistics."""

    id = "missing-variance"
    severity = WARNING

    def check(self, audit: AuditContext) -> Iterator[tuple[ArtifactContext, Finding]]:
        """Flag success rows lacking std/repetition columns."""
        for artifact in audit.results_artifacts():
            assert isinstance(artifact.data, ResultsArtifact)
            for row in artifact.data.rows:
                if row.data.get("status") != "success":
                    continue
                repetitions = row.data.get("num_repetitions")
                if (
                    repetitions is None
                    or repetitions < 2
                    or row.data.get("runtime_std") is None
                ):
                    label = _row_label(row.data)
                    yield artifact, self.finding(
                        f"{label}: success recorded without repetition "
                        "statistics (std/n); the measurement has no "
                        "variance estimate",
                        row.line,
                    )


@register_artifact_rule
class UnexplainedFailureRule(ArtifactRule):
    """Flags failure cells with no recorded reason."""

    id = "unexplained-failure"
    severity = WARNING

    def check(self, audit: AuditContext) -> Iterator[tuple[ArtifactContext, Finding]]:
        """Flag reasonless failure rows and truncated trace attempts."""
        for artifact in audit.results_artifacts():
            assert isinstance(artifact.data, ResultsArtifact)
            for row in artifact.data.rows:
                status = row.data.get("status")
                if status in (None, "success"):
                    continue
                if not row.data.get("failure_reason"):
                    yield artifact, self.finding(
                        f"{_row_label(row.data)}: cell failed "
                        f"({status}) with no recorded reason; the "
                        "empty cell is unexplained in the report",
                        row.line,
                    )
        for artifact in audit.trace_artifacts():
            assert isinstance(artifact.data, TraceArtifact)
            for attempt in artifact.data.attempts:
                if attempt.status == "incomplete":
                    yield artifact, self.finding(
                        f"{attempt.platform}/{attempt.graph}/"
                        f"{attempt.algorithm.lower()}: trace attempt has "
                        "no run-end event; the run vanished without an "
                        "explanation",
                        1,
                    )


@register_artifact_rule
class OverlappingCIRule(ArtifactRule):
    """Flags rankings whose adjacent CIs overlap."""

    id = "overlapping-ci"
    severity = WARNING

    def check(self, audit: AuditContext) -> Iterator[tuple[ArtifactContext, Finding]]:
        """Flag platform pairs whose runtime CIs overlap per workload."""
        for artifact in audit.results_artifacts():
            assert isinstance(artifact.data, ResultsArtifact)
            cells: dict[tuple[str, str], list] = {}
            for row in artifact.data.rows:
                data = row.data
                stats = _row_stats(data)
                if data.get("status") != "success" or stats is None:
                    continue
                key = (str(data.get("graph")), str(data.get("algorithm")))
                cells.setdefault(key, []).append(
                    (stats.mean, str(data.get("platform")), stats, row.line)
                )
            for (graph, algorithm), entries in sorted(cells.items()):
                entries.sort()
                for (m1, p1, s1, line), (m2, p2, s2, _) in zip(
                    entries, entries[1:]
                ):
                    if p1 != p2 and s1.overlaps(s2):
                        yield artifact, self.finding(
                            f"{graph}/{algorithm.lower()}: ranking "
                            f"{p1} ({s1.describe()}) ahead of {p2} "
                            f"({s2.describe()}) is not statistically "
                            "significant — the CI95 intervals overlap",
                            line,
                        )


@register_artifact_rule
class ConfigUnknownKeyRule(ArtifactRule):
    """Flags unknown/misspelled configuration keys as audit findings."""

    id = "config-unknown-key"
    severity = WARNING

    def check(self, audit: AuditContext) -> Iterator[tuple[ArtifactContext, Finding]]:
        """Flag unknown sections/keys in benchmark and graph configs."""
        for artifact, schema in [
            *(
                (artifact, BENCHMARK_CONFIG_SECTIONS)
                for artifact, _ in _spec_pairs(audit)
            ),
            *(
                (artifact, GRAPH_CONFIG_SECTIONS)
                for artifact, _ in _graph_pairs(audit)
            ),
        ]:
            sections = artifact.data.sections
            parser = _parser_from_sections(sections)
            for section, key, nearest in unknown_config_keys(parser, schema):
                if key:
                    message = f"unknown key '{key}' in [{section}]"
                    line = artifact.line_of(section, key)
                else:
                    message = f"unknown section [{section}]"
                    line = artifact.line_of(section)
                if nearest:
                    message += f"; did you mean '{nearest}'?"
                message += " — the setting is silently ignored"
                yield artifact, self.finding(message, line)


def _parser_from_sections(sections: dict[str, dict[str, str]]):
    """Rebuild a ConfigParser from captured raw sections."""
    import configparser

    parser = configparser.ConfigParser()
    parser.read_dict(sections)
    return parser


def _row_label(data: dict) -> str:
    """Human label of one results row."""
    algorithm = str(data.get("algorithm", "?"))
    return (
        f"{data.get('platform', '?')}/{data.get('graph', '?')}/"
        f"{algorithm.lower()}"
    )


def _row_stats(data: dict) -> RuntimeStats | None:
    """Repetition statistics of one results row, when present."""
    mean = data.get("runtime_mean", data.get("runtime_seconds"))
    std = data.get("runtime_std")
    n = data.get("num_repetitions")
    if mean is None or std is None or n is None or n < 2:
        return None
    return RuntimeStats.from_moments(float(mean), float(std), int(n))
