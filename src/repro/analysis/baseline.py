"""Baseline snapshots and the severity-aware quality gate.

The paper (Section 3.5): "all code commits are statically analyzed
[...] which automatically signals regressions, such as an increase in
the number of potential bugs". The baseline is a committed JSON
snapshot of the analysis (``.quality-baseline.json``); the gate
compares a fresh report against it and fails — with the offending
rule ids — when any rule's finding count grows, when error-severity
findings appear, when mean complexity inflates, or when documentation
coverage drops.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.model import ERROR, WARNING, QualityReport, severity_rank

__all__ = [
    "BASELINE_VERSION",
    "Regression",
    "GateResult",
    "snapshot",
    "save_baseline",
    "load_baseline",
    "compare_to_baseline",
    "detect_regressions",
    "quality_gate",
]

BASELINE_VERSION = 1

#: Relative mean-complexity growth tolerated before signalling.
_COMPLEXITY_TOLERANCE = 1.10
#: Absolute documentation-coverage drop tolerated before signalling.
_DOC_TOLERANCE = 0.05


@dataclass(frozen=True)
class Regression:
    """One signalled regression, with the severity it gates at."""

    message: str
    severity: str = WARNING
    rule: str | None = None

    def __str__(self):
        return self.message


@dataclass(frozen=True)
class GateResult:
    """Outcome of one quality-gate evaluation."""

    passed: bool
    regressions: tuple[Regression, ...] = ()

    @property
    def exit_code(self) -> int:
        """Process exit code the CLI should return."""
        return 0 if self.passed else 1


def snapshot(report: QualityReport) -> dict:
    """The JSON-serializable baseline snapshot of a report."""
    return {
        "version": BASELINE_VERSION,
        "files": len(report.files),
        "lines_of_code": report.total_lines,
        "functions": report.total_functions,
        "total_findings": report.total_findings,
        "suppressed_findings": report.total_suppressed,
        "mean_complexity": round(report.mean_complexity, 4),
        "documented_share": round(report.documented_share, 4),
        "findings_by_rule": dict(sorted(report.findings_by_rule().items())),
        "findings_by_severity": report.findings_by_severity(),
    }


def save_baseline(report: QualityReport, path: str | Path) -> Path:
    """Write a baseline snapshot to disk; returns the path written."""
    path = Path(path)
    path.write_text(
        json.dumps(snapshot(report), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_baseline(path: str | Path) -> dict:
    """Read a baseline snapshot from disk."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} in {path}"
        )
    return data


def _severity_of_rule(report: QualityReport, rule: str) -> str:
    worst = WARNING
    for _, finding in report.iter_findings():
        if finding.rule == rule and (
            severity_rank(finding.severity) > severity_rank(worst)
        ):
            worst = finding.severity
    return worst


def compare_to_baseline(
    baseline: dict, report: QualityReport
) -> list[Regression]:
    """Severity-aware regression signals of a report versus a baseline."""
    regressions: list[Regression] = []
    before_total = baseline.get("total_findings", 0)
    if report.total_findings > before_total:
        regressions.append(
            Regression(
                f"potential bugs increased: {before_total} -> "
                f"{report.total_findings}",
                severity=WARNING,
            )
        )
    before_rules = baseline.get("findings_by_rule", {})
    for rule, count in sorted(report.findings_by_rule().items()):
        before = before_rules.get(rule, 0)
        if count > before:
            severity = _severity_of_rule(report, rule)
            regressions.append(
                Regression(
                    f"[{rule}] findings increased: {before} -> {count} "
                    f"({severity})",
                    severity=severity,
                    rule=rule,
                )
            )
    before_errors = baseline.get("findings_by_severity", {}).get(ERROR, 0)
    after_errors = report.findings_by_severity().get(ERROR, 0)
    if after_errors > before_errors:
        regressions.append(
            Regression(
                f"error-severity findings increased: {before_errors} -> "
                f"{after_errors}",
                severity=ERROR,
            )
        )
    before_complexity = baseline.get("mean_complexity", 0.0)
    if report.mean_complexity > before_complexity * _COMPLEXITY_TOLERANCE:
        regressions.append(
            Regression(
                f"mean complexity increased: {before_complexity:.2f} -> "
                f"{report.mean_complexity:.2f}",
                severity=WARNING,
            )
        )
    before_docs = baseline.get("documented_share", 0.0)
    if report.documented_share < before_docs - _DOC_TOLERANCE:
        regressions.append(
            Regression(
                f"documentation coverage dropped: {before_docs:.0%} -> "
                f"{report.documented_share:.0%}",
                severity=WARNING,
            )
        )
    return regressions


def detect_regressions(
    before: QualityReport | dict, after: QualityReport
) -> list[str]:
    """SonarQube-style regression signals between two reports.

    Accepts either a live report or a loaded baseline snapshot for
    ``before``; returns human-readable signal strings (the original
    Section 3.5 API, kept for compatibility).
    """
    baseline = before if isinstance(before, dict) else snapshot(before)
    return [str(regression) for regression in compare_to_baseline(baseline, after)]


def quality_gate(
    report: QualityReport, baseline: dict | None = None
) -> GateResult:
    """Evaluate the quality gate for a report.

    With a baseline, any regression versus the snapshot fails the
    gate. Without one, the gate fails on error-severity findings —
    the bootstrap behaviour before a baseline is committed.
    """
    if baseline is not None:
        regressions = tuple(compare_to_baseline(baseline, report))
        return GateResult(passed=not regressions, regressions=regressions)
    regressions = tuple(
        Regression(
            f"[{finding.rule}] {file_report.path}:{finding.line}: "
            f"{finding.message}",
            severity=ERROR,
            rule=finding.rule,
        )
        for file_report, finding in report.error_findings()
    )
    return GateResult(passed=not regressions, regressions=regressions)
