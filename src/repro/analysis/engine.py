"""The pluggable rule engine behind ``graphalytics quality``.

Rules are small classes with an ``id``, ``severity`` and ``category``
registered in a module-level registry; an :class:`AnalysisConfig`
enables or disables them, and ``# quality: ignore[rule-id]`` comments
suppress individual findings at the offending line. The engine parses
each file once, collects function metrics (cyclomatic complexity,
length, documentation), and hands the module to every enabled rule.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.model import (
    ERROR,
    FileReport,
    Finding,
    FunctionMetrics,
    QualityReport,
)

__all__ = [
    "AnalysisConfig",
    "ModuleContext",
    "Rule",
    "register_rule",
    "registered_rules",
    "default_rules",
    "analyze_source",
    "analyze_file",
    "analyze_tree",
]

#: Decision points that add one to cyclomatic complexity.
_BRANCH_NODES = (
    ast.If,
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ExceptHandler,
    ast.With,
    ast.AsyncWith,
    ast.Assert,
    ast.IfExp,
)

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: ``# quality: ignore`` or ``# quality: ignore[rule-a, rule-b]``.
_SUPPRESSION = re.compile(
    r"#\s*quality:\s*ignore(?:\[(?P<rules>[\w\-, ]*)\])?"
)

#: Sentinel meaning "every rule is suppressed on this line".
_ALL_RULES = "*"


@dataclass(frozen=True)
class AnalysisConfig:
    """Configuration of one analysis run.

    ``disabled`` removes rules by id; ``enabled_only``, when set,
    restricts the run to exactly those rule ids. ``max_complexity``
    parameterizes the ``high-complexity`` rule.
    """

    disabled: frozenset[str] = frozenset()
    enabled_only: frozenset[str] | None = None
    max_complexity: int = 25

    def is_enabled(self, rule_id: str) -> bool:
        """Whether a rule id participates in this run."""
        if rule_id in self.disabled:
            return False
        if self.enabled_only is not None:
            return rule_id in self.enabled_only
        return True


@dataclass
class ModuleContext:
    """Everything a rule sees about one parsed module."""

    path: str
    tree: ast.Module
    lines: list[str]
    config: AnalysisConfig
    functions: list[FunctionMetrics] = field(default_factory=list)

    @property
    def posix_path(self) -> str:
        """The module path with forward slashes (for scope matching)."""
        return Path(self.path).as_posix()

    def in_scope(self, prefixes: Iterable[str]) -> bool:
        """Whether the module lies under any of the path fragments."""
        path = self.posix_path
        return any(fragment in path for fragment in prefixes)


class Rule:
    """Base class of all analysis rules.

    Subclasses set the class attributes and implement :meth:`check`;
    registration happens through :func:`register_rule`.
    """

    id: str = ""
    severity: str = "warning"
    category: str = "bug"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError

    def finding(self, message: str, line: int) -> Finding:
        """Construct a finding carrying this rule's id and severity."""
        return Finding(
            rule=self.id,
            message=message,
            line=line,
            severity=self.severity,
            category=self.category,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.id:
        raise ValueError(f"{rule_class.__name__} has no rule id")
    if rule_class.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.id!r}")
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def registered_rules() -> dict[str, type[Rule]]:
    """The rule registry (id -> rule class), as a copy."""
    _load_builtin_rules()
    return dict(_REGISTRY)


def default_rules(config: AnalysisConfig) -> list[Rule]:
    """Instantiate every registered rule the config enables."""
    _load_builtin_rules()
    return [
        rule_class()
        for rule_id, rule_class in sorted(_REGISTRY.items())
        if config.is_enabled(rule_id)
    ]


def _load_builtin_rules() -> None:
    # Imported lazily so the registry self-populates regardless of
    # which analysis module the caller imported first.
    from repro.analysis import rules_bsp  # noqa: F401
    from repro.analysis import rules_determinism  # noqa: F401
    from repro.analysis import rules_generic  # noqa: F401


# -- metrics ---------------------------------------------------------------


def _function_complexity(node: ast.AST) -> int:
    """Cyclomatic complexity of one function, nested functions excluded.

    Each ``ast.BoolOp`` contributes one decision per *extra* operand
    (``a or b or c`` adds 2), and the walk stops at nested function
    boundaries: a closure's branches belong to the closure's own
    metrics, not to the enclosing function's.
    """
    complexity = 1
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, _FUNCTION_NODES + (ast.Lambda,)):
            continue
        if isinstance(child, ast.BoolOp):
            complexity += len(child.values) - 1
        elif isinstance(child, _BRANCH_NODES):
            complexity += 1
        stack.extend(ast.iter_child_nodes(child))
    return complexity


class _MetricsCollector(ast.NodeVisitor):
    """Collects per-function metrics for one module."""

    def __init__(self):
        self.functions: list[FunctionMetrics] = []
        self._function_depth = 0

    def _visit_function(self, node) -> None:
        end = getattr(node, "end_lineno", node.lineno)
        self.functions.append(
            FunctionMetrics(
                name=node.name,
                line=node.lineno,
                complexity=_function_complexity(node),
                length=end - node.lineno + 1,
                has_docstring=ast.get_docstring(node) is not None,
                nested=self._function_depth > 0,
            )
        )
        self._function_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._function_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Collect metrics for a function definition."""
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Collect metrics for an async function definition."""
        self._visit_function(node)


# -- suppressions ----------------------------------------------------------


def _suppressions(lines: list[str]) -> dict[int, set[str]]:
    """Map 1-based line numbers to the rule ids suppressed there."""
    suppressed: dict[int, set[str]] = {}
    for number, line in enumerate(lines, start=1):
        match = _SUPPRESSION.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None or not rules.strip():
            suppressed[number] = {_ALL_RULES}
        else:
            suppressed[number] = {
                rule.strip() for rule in rules.split(",") if rule.strip()
            }
    return suppressed


def _is_suppressed(finding: Finding, suppressed: dict[int, set[str]]) -> bool:
    rules = suppressed.get(finding.line)
    if rules is None:
        return False
    return _ALL_RULES in rules or finding.rule in rules


# -- analysis entry points -------------------------------------------------


def _parse_error_report(path: str, message: str, line: int) -> FileReport:
    return FileReport(
        path=path,
        findings=[
            Finding(
                rule="parse-error",
                message=message,
                line=line,
                severity=ERROR,
                category="parse",
            )
        ],
    )


def analyze_source(
    source: str,
    path: str = "<string>",
    config: AnalysisConfig | None = None,
) -> FileReport:
    """Analyze one Python source string."""
    config = config or AnalysisConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return _parse_error_report(
            path, f"syntax error: {error.msg}", error.lineno or 1
        )
    except ValueError as error:  # e.g. null bytes in the source
        return _parse_error_report(path, f"unparseable source: {error}", 1)

    lines = source.splitlines()
    collector = _MetricsCollector()
    collector.visit(tree)
    module = ModuleContext(
        path=path,
        tree=tree,
        lines=lines,
        config=config,
        functions=collector.functions,
    )
    suppressed = _suppressions(lines)
    findings: list[Finding] = []
    suppressed_count = 0
    for rule in default_rules(config):
        for finding in rule.check(module):
            if _is_suppressed(finding, suppressed):
                suppressed_count += 1
            else:
                findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.rule))
    lines_of_code = sum(
        1
        for line in lines
        if line.strip() and not line.strip().startswith("#")
    )
    return FileReport(
        path=path,
        lines_of_code=lines_of_code,
        functions=collector.functions,
        findings=findings,
        suppressed=suppressed_count,
    )


def analyze_file(
    path: str | Path, config: AnalysisConfig | None = None
) -> FileReport:
    """Analyze one Python file; unreadable files yield a parse-error."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except UnicodeDecodeError:
        return _parse_error_report(str(path), "file is not valid UTF-8", 1)
    except OSError as error:
        return _parse_error_report(str(path), f"unreadable file: {error}", 1)
    return analyze_source(source, str(path), config)


def analyze_tree(
    root: str | Path, config: AnalysisConfig | None = None
) -> QualityReport:
    """Analyze every ``*.py`` file under a directory."""
    root = Path(root)
    report = QualityReport()
    for file_path in sorted(root.rglob("*.py")):
        report.files.append(analyze_file(file_path, config))
    return report
