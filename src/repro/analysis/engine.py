"""The pluggable rule engine behind ``graphalytics quality``.

Rules are small classes with an ``id``, ``severity`` and ``category``
registered in a module-level registry; an :class:`AnalysisConfig`
enables or disables them, and ``# quality: ignore[rule-id]`` comments
suppress individual findings at the offending line. The engine parses
each file once, collects function metrics (cyclomatic complexity,
length, documentation), and hands the module to every enabled rule.

Two rule shapes exist:

* :class:`Rule` — sees one :class:`ModuleContext` at a time (the
  original per-file shape; all the syntactic rules).
* :class:`ProjectRule` — sees a :class:`ProjectContext` holding every
  parsed module of the run at once. The interprocedural dataflow rules
  (``cost-protocol``, ``nondeterminism-flow``) are project rules: they
  build a package-wide call graph and propagate facts across function
  and module boundaries.

The engine also owns one postpass of its own, ``stale-ignore``: after
every rule has run, any ``# quality: ignore[...]`` comment that did
not suppress a single finding is itself reported. Stale suppressions
are how sanctioned exceptions rot into unreviewed blind spots, so the
gate surfaces them. A stale-ignore finding can only be silenced by a
comment that *names* ``stale-ignore`` explicitly — a bare wildcard
``# quality: ignore`` cannot vouch for itself.
"""

from __future__ import annotations

import ast
import io
import re
import time
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.model import (
    ERROR,
    WARNING,
    FileReport,
    Finding,
    FunctionMetrics,
    QualityReport,
)

__all__ = [
    "AnalysisConfig",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "ProjectRule",
    "register_rule",
    "register_project_rule",
    "registered_rules",
    "registered_project_rules",
    "default_rules",
    "default_project_rules",
    "function_anchor",
    "statement_anchors",
    "rule_pattern_matches",
    "STALE_IGNORE_RULE",
    "analyze_source",
    "analyze_file",
    "analyze_tree",
]

#: Decision points that add one to cyclomatic complexity.
_BRANCH_NODES = (
    ast.If,
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ExceptHandler,
    ast.With,
    ast.AsyncWith,
    ast.Assert,
    ast.IfExp,
)

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: ``# quality: ignore`` or ``# quality: ignore[rule-a, rule-b]``.
#: Anchored at the start of the comment: a suppression is the comment
#: itself, not a mention of the syntax inside one (or inside prose).
#: Entries may name a whole rule family with a trailing wildcard
#: (``cost-units.*``), hence the dot and star in the character class.
_SUPPRESSION = re.compile(
    r"^#\s*quality:\s*ignore(?:\[(?P<rules>[\w\-.*, ]*)\])?"
)

#: Sentinel meaning "every rule is suppressed on this line".
_ALL_RULES = "*"

#: Rule id of the engine-owned stale-suppression postpass.
STALE_IGNORE_RULE = "stale-ignore"


def rule_pattern_matches(pattern: str, rule_id: str) -> bool:
    """Whether a rule pattern names a rule id.

    A pattern is either an exact rule id or a family wildcard with a
    trailing ``.*`` (``cost-units.*`` matches every ``cost-units.x``
    sub-rule). Used uniformly by suppression comments, the
    ``disabled``/``enabled_only`` config sets, and the stale-ignore
    postpass, so the three never disagree about what a name covers.
    """
    if pattern == rule_id:
        return True
    return pattern.endswith(".*") and rule_id.startswith(pattern[:-1])


def function_anchor(node: ast.AST) -> int:
    """Line of the ``def``/``class`` keyword, never of a decorator.

    On CPython >= 3.8 ``node.lineno`` already points at the keyword,
    but older parsers anchored decorated definitions at the first
    decorator; taking the max over decorator end lines keeps finding
    anchors on executable code either way (and pins the contract for
    the line-accuracy tests).
    """
    line = node.lineno
    for decorator in getattr(node, "decorator_list", []):
        line = max(line, getattr(decorator, "end_lineno", decorator.lineno) + 1)
    return line


#: Expression nodes whose bodies execute lazily, detached from the
#: statement that builds them.
_DEFERRED_EXPRS = (
    ast.Lambda,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


def statement_anchors(tree: ast.AST) -> dict[int, int]:
    """Map ``id(node)`` to the enclosing statement's line for every
    node inside a ``lambda`` or comprehension body.

    A multi-line lambda or nested comprehension places its body on
    continuation lines; a finding anchored there points at a line no
    suppression comment or editor jump naturally targets. Rules look
    their flagged node up here (``anchors.get(id(node), node.lineno)``)
    so such findings land on the statement that builds the deferred
    expression instead.
    """
    anchors: dict[int, int] = {}
    for stmt in ast.walk(tree):
        if not isinstance(stmt, ast.stmt):
            continue
        # Only the statement's own expressions: nested statements own
        # theirs, and ast.walk visits outer statements first, so the
        # setdefault keeps the innermost enclosing statement's line.
        stack = [
            child
            for child in ast.iter_child_nodes(stmt)
            if isinstance(child, ast.expr)
        ]
        while stack:
            node = stack.pop()
            if isinstance(node, _DEFERRED_EXPRS):
                for sub in ast.walk(node):
                    anchors.setdefault(id(sub), stmt.lineno)
                continue
            stack.extend(ast.iter_child_nodes(node))
    return anchors


@dataclass(frozen=True)
class AnalysisConfig:
    """Configuration of one analysis run.

    ``disabled`` removes rules by id; ``enabled_only``, when set,
    restricts the run to exactly those rule ids. ``max_complexity``
    parameterizes the ``high-complexity`` rule; ``min_repetitions``
    parameterizes the artifact audit's ``single-run`` rule.
    """

    disabled: frozenset[str] = frozenset()
    enabled_only: frozenset[str] | None = None
    max_complexity: int = 25
    min_repetitions: int = 3

    def is_enabled(self, rule_id: str) -> bool:
        """Whether a rule id participates in this run.

        Both sets accept family wildcards: disabling ``cost-units.*``
        switches off every sub-rule of the family at once.
        """
        if any(rule_pattern_matches(p, rule_id) for p in self.disabled):
            return False
        if self.enabled_only is not None:
            return any(
                rule_pattern_matches(p, rule_id) for p in self.enabled_only
            )
        return True


@dataclass
class ModuleContext:
    """Everything a rule sees about one parsed module."""

    path: str
    tree: ast.Module
    lines: list[str]
    config: AnalysisConfig
    functions: list[FunctionMetrics] = field(default_factory=list)

    @property
    def posix_path(self) -> str:
        """The module path with forward slashes (for scope matching)."""
        return Path(self.path).as_posix()

    def in_scope(self, prefixes: Iterable[str]) -> bool:
        """Whether the module lies under any of the path fragments."""
        path = self.posix_path
        return any(fragment in path for fragment in prefixes)


@dataclass
class ProjectContext:
    """Every parsed module of one analysis run, for project rules.

    ``cache`` is a scratch dict shared by all project rules of the
    run; the dataflow rules use it to build the package call graph
    exactly once per run instead of once per rule.
    """

    modules: list[ModuleContext]
    config: AnalysisConfig
    cache: dict = field(default_factory=dict)


class Rule:
    """Base class of all per-module analysis rules.

    Subclasses set the class attributes and implement :meth:`check`;
    registration happens through :func:`register_rule`.
    """

    id: str = ""
    severity: str = "warning"
    category: str = "bug"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError

    def finding(self, message: str, line: int) -> Finding:
        """Construct a finding carrying this rule's id and severity."""
        return Finding(
            rule=self.id,
            message=message,
            line=line,
            severity=self.severity,
            category=self.category,
        )


class ProjectRule(Rule):
    """Base class of whole-project (interprocedural) analysis rules.

    ``check`` receives the :class:`ProjectContext` and yields
    ``(module, finding)`` pairs so findings land in the right file's
    report (and under that file's suppression comments).
    """

    def check(self, project: ProjectContext) -> Iterator[tuple[ModuleContext, Finding]]:
        """Yield ``(module, finding)`` pairs over the whole project."""
        raise NotImplementedError


_REGISTRY: dict[str, type[Rule]] = {}
_PROJECT_REGISTRY: dict[str, type[ProjectRule]] = {}


def register_rule(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a per-module rule to the registry."""
    if not rule_class.id:
        raise ValueError(f"{rule_class.__name__} has no rule id")
    if rule_class.id in _REGISTRY or rule_class.id in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.id!r}")
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def register_project_rule(rule_class: type[ProjectRule]) -> type[ProjectRule]:
    """Class decorator adding a project rule to the registry."""
    if not rule_class.id:
        raise ValueError(f"{rule_class.__name__} has no rule id")
    if rule_class.id in _REGISTRY or rule_class.id in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.id!r}")
    _PROJECT_REGISTRY[rule_class.id] = rule_class
    return rule_class


def registered_rules() -> dict[str, type[Rule]]:
    """The per-module rule registry (id -> rule class), as a copy."""
    _load_builtin_rules()
    return dict(_REGISTRY)


def registered_project_rules() -> dict[str, type[ProjectRule]]:
    """The project rule registry (id -> rule class), as a copy."""
    _load_builtin_rules()
    return dict(_PROJECT_REGISTRY)


def default_rules(config: AnalysisConfig) -> list[Rule]:
    """Instantiate every registered per-module rule the config enables."""
    _load_builtin_rules()
    return [
        rule_class()
        for rule_id, rule_class in sorted(_REGISTRY.items())
        if config.is_enabled(rule_id)
    ]


def default_project_rules(config: AnalysisConfig) -> list[ProjectRule]:
    """Instantiate every registered project rule the config enables."""
    _load_builtin_rules()
    return [
        rule_class()
        for rule_id, rule_class in sorted(_PROJECT_REGISTRY.items())
        if config.is_enabled(rule_id)
    ]


def _load_builtin_rules() -> None:
    # Imported lazily so the registry self-populates regardless of
    # which analysis module the caller imported first.
    from repro.analysis import rules_bsp  # noqa: F401
    from repro.analysis import rules_determinism  # noqa: F401
    from repro.analysis import rules_generic  # noqa: F401
    from repro.analysis.dataflow import taint  # noqa: F401
    from repro.analysis.dataflow import typestate  # noqa: F401
    from repro.analysis.dataflow import units  # noqa: F401


# -- metrics ---------------------------------------------------------------


def _function_complexity(node: ast.AST) -> int:
    """Cyclomatic complexity of one function, nested functions excluded.

    Each ``ast.BoolOp`` contributes one decision per *extra* operand
    (``a or b or c`` adds 2), each ``case`` of a ``match`` statement
    contributes one (like an ``elif`` arm), and the walk stops at
    nested function boundaries: a closure's branches belong to the
    closure's own metrics, not to the enclosing function's.
    """
    complexity = 1
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, _FUNCTION_NODES + (ast.Lambda,)):
            continue
        if isinstance(child, ast.BoolOp):
            complexity += len(child.values) - 1
        elif isinstance(child, ast.match_case):
            complexity += 1
        elif isinstance(child, _BRANCH_NODES):
            complexity += 1
        stack.extend(ast.iter_child_nodes(child))
    return complexity


class _MetricsCollector(ast.NodeVisitor):
    """Collects per-function metrics for one module."""

    def __init__(self):
        self.functions: list[FunctionMetrics] = []
        self._function_depth = 0

    def _visit_function(self, node) -> None:
        anchor = function_anchor(node)
        end = getattr(node, "end_lineno", anchor)
        self.functions.append(
            FunctionMetrics(
                name=node.name,
                line=anchor,
                complexity=_function_complexity(node),
                length=end - anchor + 1,
                has_docstring=ast.get_docstring(node) is not None,
                nested=self._function_depth > 0,
            )
        )
        self._function_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._function_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Collect metrics for a function definition."""
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Collect metrics for an async function definition."""
        self._visit_function(node)


# -- suppressions ----------------------------------------------------------


def _comment_lines(lines: list[str]) -> dict[int, str]:
    """Map 1-based line numbers to genuine comment text.

    Tokenizing keeps suppression syntax *mentioned* inside string
    literals and docstrings (as in this very module) from being read
    as live suppressions — and, downstream, from being reported as
    stale ones. Falls back to raw lines if tokenization fails.
    """
    source = "\n".join(lines)
    try:
        return {
            token.start[0]: token.string
            for token in tokenize.generate_tokens(io.StringIO(source).readline)
            if token.type == tokenize.COMMENT
        }
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {
            number: line[line.index("#"):]
            for number, line in enumerate(lines, start=1)
            if "#" in line
        }


def _suppressions(lines: list[str]) -> dict[int, set[str]]:
    """Map 1-based line numbers to the rule ids suppressed there."""
    suppressed: dict[int, set[str]] = {}
    for number, line in sorted(_comment_lines(lines).items()):
        match = _SUPPRESSION.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None or not rules.strip():
            suppressed[number] = {_ALL_RULES}
        else:
            suppressed[number] = {
                rule.strip() for rule in rules.split(",") if rule.strip()
            }
    return suppressed


def _is_suppressed(finding: Finding, suppressed: dict[int, set[str]]) -> bool:
    rules = suppressed.get(finding.line)
    if rules is None:
        return False
    if finding.rule == STALE_IGNORE_RULE:
        # A suppression comment cannot wildcard-silence the report
        # that it is itself dead; only an explicit opt-out counts.
        return STALE_IGNORE_RULE in rules
    return _ALL_RULES in rules or any(
        rule_pattern_matches(pattern, finding.rule) for pattern in rules
    )


# -- analysis entry points -------------------------------------------------


class _ModuleAnalysis:
    """Mutable per-file state while a run is in flight."""

    def __init__(self, module: ModuleContext):
        self.module = module
        self.suppressions = _suppressions(module.lines)
        self.findings: list[Finding] = []
        self.suppressed_count = 0
        #: Suppression-comment lines that silenced at least one finding.
        self.used_lines: set[int] = set()

    def record(self, finding: Finding) -> None:
        """File a finding, honouring this file's suppression comments."""
        if _is_suppressed(finding, self.suppressions):
            self.suppressed_count += 1
            self.used_lines.add(finding.line)
        else:
            self.findings.append(finding)

    def run_module_rules(
        self, timings: dict[str, float] | None = None
    ) -> None:
        """Apply every enabled per-module rule.

        With ``timings``, each rule's wall-clock (including generator
        consumption) is accumulated under its rule id.
        """
        for rule in default_rules(self.module.config):
            started = time.perf_counter()
            for finding in rule.check(self.module):
                self.record(finding)
            if timings is not None:
                timings[rule.id] = (
                    timings.get(rule.id, 0.0) + time.perf_counter() - started
                )

    def run_stale_ignore_postpass(self) -> None:
        """Report suppression comments that silenced nothing this run.

        A comment is only provably stale when every rule it could
        vouch for actually ran: lines naming a disabled (or not
        registered) rule id are skipped rather than reported.
        """
        config = self.module.config
        if not config.is_enabled(STALE_IGNORE_RULE):
            return
        known = set(registered_rules()) | set(registered_project_rules())
        known.add(STALE_IGNORE_RULE)

        def vouched(pattern: str) -> bool:
            # The pattern names at least one registered, enabled rule
            # (a family wildcard counts when any member is live).
            return any(
                rule_pattern_matches(pattern, rule) and config.is_enabled(rule)
                for rule in known
            )

        for line, rules in sorted(self.suppressions.items()):
            if line in self.used_lines:
                continue
            named = rules - {_ALL_RULES}
            if any(not vouched(pattern) for pattern in named):
                continue
            label = ", ".join(sorted(named)) if named else _ALL_RULES
            self.record(
                Finding(
                    rule=STALE_IGNORE_RULE,
                    message=(
                        f"suppression '# quality: ignore[{label}]' no longer "
                        "suppresses any finding; delete it or re-justify it"
                    ),
                    line=line,
                    severity=WARNING,
                    category="maintainability",
                )
            )

    def finish(self) -> FileReport:
        """Freeze the per-file state into a :class:`FileReport`."""
        self.findings.sort(key=lambda f: (f.line, f.rule))
        lines_of_code = sum(
            1
            for line in self.module.lines
            if line.strip() and not line.strip().startswith("#")
        )
        return FileReport(
            path=self.module.path,
            lines_of_code=lines_of_code,
            functions=self.module.functions,
            findings=self.findings,
            suppressed=self.suppressed_count,
        )


def _parse_error_report(path: str, message: str, line: int) -> FileReport:
    return FileReport(
        path=path,
        findings=[
            Finding(
                rule="parse-error",
                message=message,
                line=line,
                severity=ERROR,
                category="parse",
            )
        ],
    )


def _build_module(
    source: str, path: str, config: AnalysisConfig
) -> ModuleContext | FileReport:
    """Parse one source string; a :class:`FileReport` means parse failure."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return _parse_error_report(
            path, f"syntax error: {error.msg}", error.lineno or 1
        )
    except ValueError as error:  # e.g. null bytes in the source
        return _parse_error_report(path, f"unparseable source: {error}", 1)
    collector = _MetricsCollector()
    collector.visit(tree)
    return ModuleContext(
        path=path,
        tree=tree,
        lines=source.splitlines(),
        config=config,
        functions=collector.functions,
    )


def _run_project_rules(
    project: ProjectContext,
    analyses: dict[int, _ModuleAnalysis],
    timings: dict[str, float] | None = None,
) -> None:
    """Run every enabled project rule, routing findings to their files."""
    by_identity = {id(a.module): a for a in analyses.values()}
    for rule in default_project_rules(project.config):
        started = time.perf_counter()
        for module, finding in rule.check(project):
            analysis = by_identity.get(id(module))
            if analysis is not None:
                analysis.record(finding)
        if timings is not None:
            timings[rule.id] = (
                timings.get(rule.id, 0.0) + time.perf_counter() - started
            )


def analyze_source(
    source: str,
    path: str = "<string>",
    config: AnalysisConfig | None = None,
) -> FileReport:
    """Analyze one Python source string.

    Project rules run too, over a single-module project — so the
    interprocedural rules still see calls that stay within the file.
    """
    config = config or AnalysisConfig()
    module = _build_module(source, path, config)
    if isinstance(module, FileReport):
        return module
    analysis = _ModuleAnalysis(module)
    analysis.run_module_rules()
    project = ProjectContext(modules=[module], config=config)
    _run_project_rules(project, {0: analysis})
    analysis.run_stale_ignore_postpass()
    return analysis.finish()


def analyze_file(
    path: str | Path, config: AnalysisConfig | None = None
) -> FileReport:
    """Analyze one Python file; unreadable files yield a parse-error."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except UnicodeDecodeError:
        return _parse_error_report(str(path), "file is not valid UTF-8", 1)
    except OSError as error:
        return _parse_error_report(str(path), f"unreadable file: {error}", 1)
    return analyze_source(source, str(path), config)


def _prepare_file(
    file_path: str,
    config: AnalysisConfig,
    timings: dict[str, float] | None = None,
) -> FileReport | _ModuleAnalysis:
    """Read, parse, and run the per-module rules over one file.

    The per-file half of :func:`analyze_tree` — everything that needs
    no sight of the other modules, so it can run in a worker process.
    """
    try:
        source = Path(file_path).read_text(encoding="utf-8")
    except UnicodeDecodeError:
        return _parse_error_report(file_path, "file is not valid UTF-8", 1)
    except OSError as error:
        return _parse_error_report(file_path, f"unreadable file: {error}", 1)
    module = _build_module(source, file_path, config)
    if isinstance(module, FileReport):
        return module
    analysis = _ModuleAnalysis(module)
    analysis.run_module_rules(timings)
    return analysis


def _prepare_file_worker(
    item: tuple[str, AnalysisConfig, bool],
) -> tuple[FileReport | _ModuleAnalysis, dict[str, float]]:
    """Process-pool entry point: one file plus its rule timings."""
    file_path, config, profile = item
    timings: dict[str, float] = {}
    return _prepare_file(file_path, config, timings if profile else None), timings


def analyze_tree(
    root: str | Path,
    config: AnalysisConfig | None = None,
    jobs: int = 1,
    rule_timings: dict[str, float] | None = None,
) -> QualityReport:
    """Analyze every ``*.py`` file under a directory.

    Every file is parsed once; the per-module rules run file by file,
    then the project rules see all modules together (that is what lets
    ``cost-protocol`` and ``nondeterminism-flow`` follow calls across
    module boundaries), and finally the stale-suppression postpass
    runs with the complete used-suppression picture.

    ``jobs > 1`` fans the per-file half out over a process pool (the
    project rules stay in this process: they need every module at
    once). Pass a dict as ``rule_timings`` to collect per-rule
    wall-clock seconds; note the interprocedural families that share
    one cached analysis bill the whole computation to whichever member
    runs first.
    """
    config = config or AnalysisConfig()
    root = Path(root)
    paths = [str(path) for path in sorted(root.rglob("*.py"))]
    ordered: list[FileReport | _ModuleAnalysis] = []
    if jobs > 1 and len(paths) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for entry, timings in pool.map(
                _prepare_file_worker,
                [(path, config, rule_timings is not None) for path in paths],
                chunksize=4,
            ):
                ordered.append(entry)
                if rule_timings is not None:
                    for rule_id, seconds in timings.items():
                        rule_timings[rule_id] = (
                            rule_timings.get(rule_id, 0.0) + seconds
                        )
    else:
        for path in paths:
            ordered.append(_prepare_file(path, config, rule_timings))
    analyses = {
        index: entry
        for index, entry in enumerate(ordered)
        if isinstance(entry, _ModuleAnalysis)
    }
    project = ProjectContext(
        modules=[a.module for a in analyses.values()], config=config
    )
    _run_project_rules(project, analyses, rule_timings)
    report = QualityReport()
    for entry in ordered:
        if isinstance(entry, _ModuleAnalysis):
            entry.run_stale_ignore_postpass()
            report.files.append(entry.finish())
        else:
            report.files.append(entry)
    return report
