"""Data model of the static-analysis subsystem (Section 3.5).

Findings carry a severity (``error`` > ``warning`` > ``info``) and a
category so that the quality gate can fail builds on regressions of
the severe classes while merely reporting the informational ones —
the SonarQube behaviour the paper describes ("all code commits are
statically analyzed [...] which automatically signals regressions").
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "SEVERITIES",
    "severity_rank",
    "Finding",
    "FunctionMetrics",
    "FileReport",
    "QualityReport",
]

#: Severity levels, most severe first.
ERROR = "error"
WARNING = "warning"
INFO = "info"
SEVERITIES = (ERROR, WARNING, INFO)

_RANK = {ERROR: 2, WARNING: 1, INFO: 0}


def severity_rank(severity: str) -> int:
    """Numeric rank of a severity (higher is more severe)."""
    try:
        return _RANK[severity]
    except KeyError:
        raise ValueError(f"unknown severity {severity!r}") from None


@dataclass(frozen=True)
class Finding:
    """One potential defect discovered by static analysis."""

    rule: str
    message: str
    line: int
    severity: str = WARNING
    category: str = "bug"


@dataclass(frozen=True)
class FunctionMetrics:
    """Static metrics of one function or method."""

    name: str
    line: int
    complexity: int
    length: int
    has_docstring: bool
    #: True for closures defined inside another function; excluded
    #: from documentation coverage (they are not API surface).
    nested: bool = False


@dataclass
class FileReport:
    """Metrics and findings for one source file."""

    path: str
    lines_of_code: int = 0
    functions: list[FunctionMetrics] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    #: Findings silenced by ``# quality: ignore[...]`` comments.
    suppressed: int = 0

    @property
    def max_complexity(self) -> int:
        """Highest cyclomatic complexity in the file."""
        return max((f.complexity for f in self.functions), default=0)

    @property
    def documented_share(self) -> float:
        """Fraction of public top-level functions with docstrings."""
        public = [
            f
            for f in self.functions
            if not f.name.startswith("_") and not f.nested
        ]
        if not public:
            return 1.0
        return sum(1 for f in public if f.has_docstring) / len(public)

    def error_findings(self) -> list[Finding]:
        """The file's error-severity findings."""
        return [f for f in self.findings if f.severity == ERROR]


@dataclass
class QualityReport:
    """Aggregate report over a source tree."""

    files: list[FileReport] = field(default_factory=list)

    @property
    def total_lines(self) -> int:
        """Non-blank, non-comment lines over all files."""
        return sum(f.lines_of_code for f in self.files)

    @property
    def total_functions(self) -> int:
        """Function definitions over all files."""
        return sum(len(f.functions) for f in self.files)

    @property
    def total_findings(self) -> int:
        """Potential bugs over all files."""
        return sum(len(f.findings) for f in self.files)

    @property
    def total_suppressed(self) -> int:
        """Findings silenced by suppression comments over all files."""
        return sum(f.suppressed for f in self.files)

    @property
    def mean_complexity(self) -> float:
        """Mean cyclomatic complexity over all functions."""
        metrics = [m.complexity for f in self.files for m in f.functions]
        return sum(metrics) / len(metrics) if metrics else 0.0

    @property
    def documented_share(self) -> float:
        """Fraction of public top-level functions with docstrings."""
        public = [
            m
            for f in self.files
            for m in f.functions
            if not m.name.startswith("_") and not m.nested
        ]
        if not public:
            return 1.0
        return sum(1 for m in public if m.has_docstring) / len(public)

    def iter_findings(self):
        """Yield ``(file_report, finding)`` pairs over all files."""
        for file_report in self.files:
            for finding in file_report.findings:
                yield file_report, finding

    def findings_by_rule(self) -> dict[str, int]:
        """Finding counts keyed by rule id."""
        counts: dict[str, int] = {}
        for _, finding in self.iter_findings():
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def findings_by_severity(self) -> dict[str, int]:
        """Finding counts keyed by severity."""
        counts = {severity: 0 for severity in SEVERITIES}
        for _, finding in self.iter_findings():
            counts[finding.severity] = counts.get(finding.severity, 0) + 1
        return counts

    def error_findings(self) -> list[tuple[FileReport, Finding]]:
        """All error-severity findings with their files."""
        return [
            (file_report, finding)
            for file_report, finding in self.iter_findings()
            if finding.severity == ERROR
        ]

    def summary(self) -> str:
        """One-line aggregate summary (the report header)."""
        return (
            f"files={len(self.files)} loc={self.total_lines} "
            f"functions={self.total_functions} "
            f"mean-complexity={self.mean_complexity:.2f} "
            f"documented={self.documented_share:.0%} "
            f"potential-bugs={self.total_findings}"
        )
