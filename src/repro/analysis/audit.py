"""The benchmark self-audit: SoK fault rules over experiment artifacts.

``graphalytics audit [paths...]`` runs the artifact rule family of
:mod:`repro.analysis.rules_audit` over a suite's configuration files,
results databases, and traces, and reports through the same
:class:`~repro.analysis.model.QualityReport` model, reporters, and
baseline gate as ``graphalytics quality`` — one severity vocabulary,
one suppression discipline, one ``--check`` semantics for both source
and experiments.

Suppressions use INI/JSONL comment syntax, mirroring the Python
engine's ``# quality: ignore[...]``::

    [benchmark]
    validate = false   ; audit: ignore[validation-off]

A *standalone* comment line attaches to the next content line, which
is how JSONL artifacts (whose records cannot carry inline comments)
sanction a finding::

    # audit: ignore[single-run]
    {"platform": "giraph", "graph": "graph500-22", ...}

and both forms rot the same way: a suppression that silences nothing
is itself reported as ``stale-ignore``, anchored on the comment.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis.engine import STALE_IGNORE_RULE, AnalysisConfig
from repro.analysis.model import (
    WARNING,
    FileReport,
    Finding,
    QualityReport,
)
from repro.analysis.targets import (
    ArtifactContext,
    AuditContext,
    BenchmarkManifest,
    default_artifact_rules,
    discover_artifacts,
    parse_error_finding,
    registered_artifact_rules,
)
from repro.core.workload import BenchmarkRunSpec

__all__ = ["audit_paths", "audit_artifacts", "audit_spec"]

#: ``; audit: ignore`` / ``# audit: ignore[rule-a, rule-b]`` anywhere
#: in a line (INI inline comments use ``;`` or ``#``; in JSONL only
#: whole comment lines exist, and those attach to the next record).
_AUDIT_SUPPRESSION = re.compile(
    r"[;#]\s*audit:\s*ignore(?:\[(?P<rules>[\w\-, ]*)\])?"
)

_ALL_RULES = "*"


def _parse_rules(match: re.Match) -> set[str]:
    rules = match.group("rules")
    if rules is None or not rules.strip():
        return {_ALL_RULES}
    return {rule.strip() for rule in rules.split(",") if rule.strip()}


def _suppressions(
    lines: list[str],
) -> tuple[dict[int, set[str]], dict[int, int]]:
    """Map effective line numbers to suppressed audit rule ids.

    An inline suppression applies to its own line. A suppression on a
    *standalone* comment line applies to the next content line — the
    only way to sanction a JSONL record, whose syntax admits no inline
    comment. The second mapping gives each effective line the comment
    line it came from, so stale-suppression reports anchor on the
    comment the user should delete.
    """
    suppressed: dict[int, set[str]] = {}
    anchors: dict[int, int] = {}
    pending: list[tuple[int, set[str]]] = []
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        is_comment = stripped.startswith((";", "#"))
        match = _AUDIT_SUPPRESSION.search(line)
        if match is not None:
            if is_comment:
                pending.append((number, _parse_rules(match)))
                continue
            suppressed.setdefault(number, set()).update(_parse_rules(match))
            anchors.setdefault(number, number)
        if stripped and not is_comment:
            for anchor, rules in pending:
                suppressed.setdefault(number, set()).update(rules)
                anchors.setdefault(number, anchor)
            pending = []
    for anchor, rules in pending:
        # Trailing comments with no content line to guard: keep them
        # addressable so the stale postpass can still report them.
        suppressed.setdefault(anchor, set()).update(rules)
        anchors.setdefault(anchor, anchor)
    return suppressed, anchors


class _ArtifactAnalysis:
    """Mutable per-artifact state while an audit run is in flight."""

    def __init__(self, artifact: ArtifactContext):
        self.artifact = artifact
        self.suppressions, self.anchors = _suppressions(artifact.lines)
        self.findings: list[Finding] = []
        self.suppressed_count = 0
        self.used_lines: set[int] = set()

    def record(self, finding: Finding) -> None:
        """File a finding, honouring the artifact's suppressions."""
        rules = self.suppressions.get(finding.line)
        if rules is not None and (
            _ALL_RULES in rules or finding.rule in rules
        ):
            if finding.rule == STALE_IGNORE_RULE and (
                STALE_IGNORE_RULE not in rules
            ):
                # A suppression cannot wildcard-silence the report
                # that it is itself dead (engine rule, kept here).
                self.findings.append(finding)
                return
            self.suppressed_count += 1
            self.used_lines.add(finding.line)
            return
        self.findings.append(finding)

    def run_stale_ignore_postpass(self, config: AnalysisConfig) -> None:
        """Report audit suppressions that silenced nothing this run."""
        if not config.is_enabled(STALE_IGNORE_RULE):
            return
        known = set(registered_artifact_rules())
        known.add(STALE_IGNORE_RULE)
        for line, rules in sorted(self.suppressions.items()):
            if line in self.used_lines:
                continue
            named = rules - {_ALL_RULES}
            if any(
                rule not in known or not config.is_enabled(rule)
                for rule in named
            ):
                continue
            label = ", ".join(sorted(named)) if named else _ALL_RULES
            self.record(
                Finding(
                    rule=STALE_IGNORE_RULE,
                    message=(
                        f"suppression 'audit: ignore[{label}]' no longer "
                        "suppresses any finding; delete it or re-justify it"
                    ),
                    line=self.anchors.get(line, line),
                    severity=WARNING,
                    category="maintainability",
                )
            )

    def finish(self) -> FileReport:
        """Freeze the per-artifact state into a :class:`FileReport`."""
        self.findings.sort(key=lambda f: (f.line, f.rule))
        lines_of_code = sum(
            1
            for line in self.artifact.lines
            if line.strip() and not line.strip().startswith(("#", ";"))
        )
        return FileReport(
            path=self.artifact.path,
            lines_of_code=lines_of_code,
            findings=self.findings,
            suppressed=self.suppressed_count,
        )


def audit_artifacts(
    artifacts: list[ArtifactContext], config: AnalysisConfig | None = None
) -> QualityReport:
    """Run every enabled audit rule over already-loaded artifacts.

    Artifacts that failed to load contribute a single ``parse-error``
    finding; the others are analyzed together as one suite, because
    the SoK faults (shape bias, seed monoculture, missing rigor) are
    suite-level properties.
    """
    config = config or AnalysisConfig()
    analyses = {
        id(artifact): _ArtifactAnalysis(artifact) for artifact in artifacts
    }
    for analysis in analyses.values():
        if analysis.artifact.error is not None:
            analysis.record(parse_error_finding(analysis.artifact))
    audit = AuditContext(
        artifacts=[a for a in artifacts if a.error is None], config=config
    )
    for rule in default_artifact_rules(config):
        for artifact, finding in rule.check(audit):
            analysis = analyses.get(id(artifact))
            if analysis is not None:
                analysis.record(finding)
    report = QualityReport()
    for artifact in artifacts:
        analysis = analyses[id(artifact)]
        analysis.run_stale_ignore_postpass(config)
        report.files.append(analysis.finish())
    return report


def audit_paths(
    paths: list[str | Path], config: AnalysisConfig | None = None
) -> QualityReport:
    """Audit experiment artifacts found at the given paths.

    Directories contribute their ``*.ini`` and ``*.jsonl`` files;
    explicit file paths are loaded as given (``.json`` submission
    documents included). The result plugs into the same reporters and
    baseline gate as ``analyze_tree``.
    """
    return audit_artifacts(discover_artifacts(list(paths)), config)


def audit_spec(
    spec: BenchmarkRunSpec,
    time_limit: float | None = None,
    path: str = "<spec>",
    config: AnalysisConfig | None = None,
) -> FileReport:
    """Audit one in-memory run spec (the ``run --audit`` preflight).

    Wraps the spec as a synthetic benchmark-config artifact so the
    benchmark-manifest rules (repetitions, warmup, validation, time
    limit) apply before any cell executes. Suite-level rules that need
    graph configs or results see none and stay silent.
    """
    artifact = ArtifactContext(
        path=path,
        kind="benchmark-config",
        lines=[],
        data=BenchmarkManifest(spec=spec, time_limit=time_limit, sections={}),
    )
    report = audit_artifacts([artifact], config)
    return report.files[0]
