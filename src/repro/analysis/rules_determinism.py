"""Domain-aware rules: determinism and cost accounting.

The simulation contract of this repository (see ``core/cost.py``) is
that *all* time comes from the :class:`~repro.core.cost.CostMeter` and
*all* randomness from an injected, seeded RNG. Wall-clock reads or
unseeded randomness inside ``repro/platforms`` or ``repro/core`` make
benchmark results irreproducible — the silent-rot failure mode the
"SoK: The Faults in our Graph Benchmarks" study documents. Likewise,
an engine loop over adjacency, partitions, or message lists that never
charges the meter performs *free* simulated work, which corrupts every
runtime figure downstream.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.analysis.engine import (
    ModuleContext,
    Rule,
    register_rule,
    statement_anchors,
)
from repro.analysis.model import ERROR, Finding

__all__ = ["DeterminismRule", "CostAccountingRule"]

#: Path fragments the determinism contract covers.
DETERMINISM_SCOPE = ("repro/platforms", "repro/core")

#: Wall-clock calls (fully qualified, aliases resolved).
_BANNED_CLOCKS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: numpy.random constructors that are deterministic *when seeded*.
_SEEDED_CONSTRUCTORS = {"default_rng", "Generator", "SeedSequence", "RandomState"}


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the fully qualified names they import."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def _dotted_name(func: ast.expr, aliases: dict[str, str]) -> str | None:
    """Fully qualified dotted name of a call target, or ``None``."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


@register_rule
class DeterminismRule(Rule):
    """Flag wall-clock reads and unseeded randomness in the simulation."""

    id = "determinism"
    severity = ERROR
    category = "determinism"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module."""
        if not module.in_scope(DETERMINISM_SCOPE):
            return
        aliases = _import_aliases(module.tree)
        # Calls inside lambda/comprehension bodies anchor on the
        # enclosing statement, where the suppression comment can live.
        anchors = statement_anchors(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted_name(node.func, aliases)
            if name is None:
                continue
            finding = self._classify(
                name, node, anchors.get(id(node), node.lineno)
            )
            if finding is not None:
                yield finding

    def _classify(
        self, name: str, node: ast.Call, line: int
    ) -> Finding | None:
        if name in _BANNED_CLOCKS:
            return self.finding(
                f"wall-clock call {name}(); simulated time must come "
                "from the CostMeter",
                line,
            )
        has_args = bool(node.args or node.keywords)
        if name.startswith("random."):
            tail = name[len("random."):]
            if tail == "Random" and has_args:
                return None  # seeded random.Random(seed) instance
            return self.finding(
                f"unseeded randomness {name}(); inject a seeded RNG "
                "instead of module-level random state",
                line,
            )
        if name.startswith("numpy.random."):
            tail = name[len("numpy.random."):]
            if tail in _SEEDED_CONSTRUCTORS and has_args:
                return None  # e.g. numpy.random.default_rng(seed)
            return self.finding(
                f"unseeded randomness {name}(); pass an explicit seed "
                "or inject a seeded Generator",
                line,
            )
        return None


#: Engine/driver modules the cost-accounting contract covers.
COST_SCOPE = "repro/platforms"
COST_BASENAMES = {
    "engine.py",
    "driver.py",
    "jobs.py",
    "rdd.py",
    "graphx.py",
    "store.py",
    "traversal.py",
    # The vectorized kernel paths charge through the batched
    # CostMeter APIs (charge_compute_bulk, charge_messages_bulk);
    # their loops are bound by the same contract as the scalar
    # engines'.
    "bulk.py",
}

#: Identifier fragments marking a loop as simulated work.
_COSTED_TOKENS = (
    "adjacency",
    "neighbors",
    "partition",
    "messages",
    "inbox",
    "outbox",
    "edges",
    "workset",
    "frontier",
)

#: Method names that account for work on the CostMeter (directly or,
#: for the message-sending helpers, transitively).
_ACCOUNTING_ATTRS = {
    "allocate_memory",
    "release_memory",
    "begin_round",
    "end_round",
    "send",
    "send_to_neighbors",
    "_send",
}


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested functions."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _costed_token(expr: ast.AST) -> str | None:
    """The first costed-collection token an expression mentions."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            identifier = node.id.lower()
        elif isinstance(node, ast.Attribute):
            identifier = node.attr.lower()
        else:
            continue
        for token in _COSTED_TOKENS:
            if token in identifier:
                return token
    return None


def _has_accounting(func: ast.AST) -> bool:
    # The "charge_" prefix covers the scalar APIs (charge_compute,
    # charge_message, ...) and the batched ones (charge_compute_bulk,
    # charge_messages_bulk) alike; see tests/analysis for the pin.
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr.startswith("charge_") or attr in _ACCOUNTING_ATTRS:
                return True
    return False


@register_rule
class CostAccountingRule(Rule):
    """Flag engine/driver loops over simulated data that never charge."""

    id = "cost-accounting"
    severity = ERROR
    category = "cost-accounting"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module."""
        if COST_SCOPE not in module.posix_path:
            return
        if Path(module.path).name not in COST_BASENAMES:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name == "__init__":
                # Partition/topology construction happens before the
                # metered run starts; load-time costs are charged by
                # the drivers' explicit ETL accounting.
                continue
            finding = self._check_function(node)
            if finding is not None:
                yield finding

    def _check_function(self, func: ast.AST) -> Finding | None:
        first_loop: tuple[int, str] | None = None
        for node in _own_nodes(func):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                token = _costed_token(node.iter)
            elif isinstance(node, ast.While):
                token = _costed_token(node.test)
            else:
                continue
            if token is not None and (
                first_loop is None or node.lineno < first_loop[0]
            ):
                first_loop = (node.lineno, token)
        if first_loop is None or _has_accounting(func):
            return None
        line, token = first_loop
        return self.finding(
            f"function {func.name!r} loops over {token} without any "
            "CostMeter charge; uncharged work corrupts simulated runtimes",
            line,
        )
