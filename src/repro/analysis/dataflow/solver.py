"""A generic forward dataflow solver over :mod:`~repro.analysis.dataflow.cfg`.

Chaotic-iteration worklist algorithm with collecting (may) semantics:
an analysis supplies the initial state, a monotone transfer function,
and a join; the solver computes the least fixpoint of per-node
*in-states*. Exception edges propagate ``join(in, out)`` of the source
node — the raise may fire before or after the statement's own effects,
so handlers must be prepared for both.
"""

from __future__ import annotations

from typing import Callable, Generic, Hashable, TypeVar

from repro.analysis.dataflow.cfg import CFG, EXCEPTION, CFGNode

__all__ = ["ForwardAnalysis", "solve_forward"]

State = TypeVar("State", bound=Hashable)


class ForwardAnalysis(Generic[State]):
    """Base class for forward dataflow analyses.

    States must be immutable/hashable values; ``transfer`` must be
    monotone w.r.t. ``join`` for the fixpoint to terminate (all
    lattices used here are finite powersets, so any monotone transfer
    terminates).
    """

    def initial_state(self) -> State:
        """The state holding at function entry."""
        raise NotImplementedError

    def transfer(self, node: CFGNode, state: State) -> State:
        """The state after executing one node from ``state``."""
        raise NotImplementedError

    def join(self, a: State, b: State) -> State:
        """Least upper bound of two states."""
        raise NotImplementedError


def solve_forward(
    cfg: CFG,
    analysis: ForwardAnalysis[State],
    max_steps: int = 100_000,
) -> dict[int, State]:
    """Compute per-node in-states; unreachable nodes are absent.

    ``max_steps`` bounds worklist iterations as a defensive backstop
    (the finite lattices used by the shipped analyses converge in a
    handful of passes; hitting the bound raises rather than silently
    under-approximating).
    """
    in_states: dict[int, State] = {CFG.ENTRY: analysis.initial_state()}
    worklist: list[int] = [CFG.ENTRY]
    queued = {CFG.ENTRY}
    steps = 0
    while worklist:
        steps += 1
        if steps > max_steps:
            raise RuntimeError(
                f"dataflow solver did not converge within {max_steps} steps"
            )
        index = worklist.pop()
        queued.discard(index)
        state = in_states[index]
        node = cfg.nodes[index]
        out = analysis.transfer(node, state)
        for target, edge in node.succs:
            contribution = (
                analysis.join(state, out) if edge == EXCEPTION else out
            )
            if target in in_states:
                merged = analysis.join(in_states[target], contribution)
                if merged == in_states[target]:
                    continue
                in_states[target] = merged
            else:
                in_states[target] = contribution
            if target not in queued:
                worklist.append(target)
                queued.add(target)
    return in_states
