"""Interprocedural dimensional analysis over the cost plumbing.

The simulated cost model is the paper's load-bearing wall, and its two
worst historical bug classes were *unit* mistakes: the ``ru_maxrss``
KiB-recorded-as-bytes fix (PR 4) and the cost-physics fixes of the
hardware-profile refactor (PR 9). Both classes are statically visible
once every quantity carries a dimension, which is what this pass does:

* **Lattice.** A :class:`Unit` is a product of integer powers of base
  dimensions (``seconds``, ``bytes``, ``kibibytes``, ``ops``,
  ``messages``, ``workers``, ...), so rates compose naturally:
  ``bytes / (bytes/second) = seconds``. ``dimensionless`` is the empty
  product; ``unknown`` (no information) and ``conflict`` (joined
  incompatible facts) complete the lattice. Scalar *counts* — worker
  indices, message counts, ``num_workers`` — are deliberately seeded
  dimensionless: ``num_workers * bandwidth`` is a legitimate aggregate
  rate, and a count that multiplies a per-unit rate acts as a pure
  number. The ``workers``/``messages`` dimensions are reserved for
  quantities that *are* the collective (``record.remote_messages``),
  which is what makes ``remote_messages * message_latency_seconds``
  (messages x seconds/message) come out in seconds.
* **Seeding.** A declarative registry annotates the ``CostMeter``
  charge API, the ``RoundRecord``/``RoundTimes``/``ChokePointReport``
  fields, and the ``HardwareProfile``/``CpuModel``/``NicModel``/
  ``DiskModel`` parameters; naming conventions (``*_seconds``,
  ``*_bytes``, ``*_bandwidth``, ...) cover everything shaped like the
  cost layer; and a ``# units: <expr>`` pragma pins local variables
  and platform constants the conventions cannot see.
* **Propagation.** Assignments bind, multiply/divide compose
  dimensions, add/subtract/compare require compatibility, and calls
  go through per-function :class:`UnitSummary` fixpoints over the
  project call graph, so a helper that returns ``bytes / bandwidth``
  is known to return seconds at every call site.

Findings (the ``cost-units`` family):

* ``cost-units.mixed-arithmetic`` — adding, subtracting, comparing, or
  binding quantities of incompatible dimensions.
* ``cost-units.call-argument`` — an argument whose unit contradicts
  the parameter's declared unit.
* ``cost-units.keyword-swap`` — two arguments whose units match each
  other's slots crosswise (a transposed call).
* ``cost-units.rate-inversion`` — a product with a squared dimension,
  the signature of multiplying by a bandwidth where dividing is needed.
* ``cost-units.unconverted`` — same dimension, wrong scale: kibibytes
  bound to a ``*_bytes`` target without the ``* 1024``.

Precision bias: ``unknown`` and ``dimensionless`` are always
compatible, so only two *positively known, incompatible* units ever
produce a finding — the gate wants actionable reports, not dimension
annotations for their own sake.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.dataflow.callgraph import (
    CallGraph,
    FunctionInfo,
    dotted_chain,
    project_call_graph,
)
from repro.analysis.dataflow.cfg import CFG
from repro.analysis.dataflow.solver import ForwardAnalysis, solve_forward
from repro.analysis.dataflow.typestate import _cached_cfg
from repro.analysis.engine import (
    ModuleContext,
    ProjectContext,
    ProjectRule,
    _comment_lines,
    register_project_rule,
    statement_anchors,
)
from repro.analysis.model import ERROR, Finding

__all__ = [
    "Unit",
    "UNKNOWN",
    "CONFLICT",
    "DIMENSIONLESS",
    "UnitSummary",
    "parse_unit",
    "unit_of_name",
    "UNITS_SCOPE",
    "SIGNATURES",
    "NAME_UNITS",
    "SUFFIX_UNITS",
    "CONVERSIONS",
]

#: Path fragments the dimensional contract covers: the cost meter, the
#: host-resource monitor, the hardware package, and every platform
#: cost model.
UNITS_SCOPE = (
    "repro/core/cost",
    "repro/core/monitor",
    "repro/core/chokepoints",
    "repro/hardware",
    "repro/platforms",
)


# -- the unit lattice ------------------------------------------------------


@dataclass(frozen=True)
class Unit:
    """One point of the unit lattice.

    ``kind`` is ``"unit"`` for a concrete product of dimensions (held
    in ``dims`` as sorted ``(dimension, exponent)`` pairs), or the
    lattice specials ``"unknown"`` / ``"conflict"``.
    """

    kind: str = "unit"
    dims: tuple[tuple[str, int], ...] = ()

    @property
    def concrete(self) -> bool:
        """Whether this is a known product of dimensions."""
        return self.kind == "unit"

    @property
    def dimensionless(self) -> bool:
        """Whether this is the empty product (a pure number)."""
        return self.concrete and not self.dims

    def __str__(self) -> str:
        if not self.concrete:
            return self.kind
        if not self.dims:
            return "dimensionless"

        def part(dim: str, exp: int) -> str:
            return dim if exp == 1 else f"{dim}^{exp}"

        num = [part(d, e) for d, e in self.dims if e > 0]
        den = [part(d, -e) for d, e in self.dims if e < 0]
        text = "*".join(num) if num else "1"
        if den:
            text += "/" + "*".join(den)
        return text


UNKNOWN = Unit(kind="unknown")
CONFLICT = Unit(kind="conflict")
DIMENSIONLESS = Unit()


def base_unit(dimension: str) -> Unit:
    """The unit of one base dimension to the first power."""
    return Unit(dims=((dimension, 1),))


def _combine(a: Unit, b: Unit, sign: int) -> Unit:
    """Multiply (``sign=+1``) or divide (``sign=-1``) two units."""
    if a.kind == "conflict" or b.kind == "conflict":
        return CONFLICT
    if not a.concrete or not b.concrete:
        return UNKNOWN
    exponents = dict(a.dims)
    for dim, exp in b.dims:
        exponents[dim] = exponents.get(dim, 0) + sign * exp
        if exponents[dim] == 0:
            del exponents[dim]
    return Unit(dims=tuple(sorted(exponents.items())))


def unit_mul(a: Unit, b: Unit) -> Unit:
    """Product of two units (dimension exponents add)."""
    return _combine(a, b, +1)


def unit_div(a: Unit, b: Unit) -> Unit:
    """Quotient of two units (dimension exponents subtract)."""
    return _combine(a, b, -1)


def unit_join(a: Unit, b: Unit) -> Unit:
    """Least upper bound: equal units stay, disagreements widen."""
    if a == b:
        return a
    if a.kind == "conflict" or b.kind == "conflict":
        return CONFLICT
    if not a.concrete or not b.concrete:
        return UNKNOWN
    # Two different concrete units joined: the value's unit depends on
    # the path taken — a real inconsistency, kept as lattice top.
    return CONFLICT


def compatible(a: Unit, b: Unit) -> bool:
    """Whether two units may meet in add/subtract/compare.

    Unknown/conflict carry no positive information and a pure number
    participates freely (literal zero inits, ``+ 1`` idioms), so only
    two concrete, non-dimensionless, *different* units are incompatible.
    """
    if not a.concrete or not b.concrete:
        return True
    if a.dimensionless or b.dimensionless:
        return True
    return a == b


# -- the declarative registry ----------------------------------------------

#: Scaled units convertible into a canonical one by multiplying the
#: *number* by the factor: a count of kibibytes times 1024 is a count
#: of bytes; a count of microseconds times 1e-6 is a count of seconds.
CONVERSIONS: dict[tuple[str, float], str] = {
    ("kibibytes", 1024.0): "bytes",
    ("mebibytes", 1024.0 ** 2): "bytes",
    ("microseconds", 1e-6): "seconds",
    ("milliseconds", 1e-3): "seconds",
}

#: Inverse view: dividing a canonical count by the factor recovers the
#: scaled unit (bytes / 1024 -> kibibytes).
_INVERSE_CONVERSIONS = {
    (canonical, factor): scaled
    for (scaled, factor), canonical in CONVERSIONS.items()
}

#: Pairs of same-dimension units and the factor between them, for the
#: ``cost-units.unconverted`` hint.
_RELATED: dict[frozenset[str], tuple[str, str, float]] = {
    frozenset({scaled, canonical}): (scaled, canonical, factor)
    for (scaled, factor), canonical in CONVERSIONS.items()
}

#: Dimension-name aliases accepted by the pragma/registry grammar.
_ALIASES = {
    "seconds": "seconds", "second": "seconds", "s": "seconds",
    "bytes": "bytes", "byte": "bytes",
    "kibibytes": "kibibytes", "kibibyte": "kibibytes", "kib": "kibibytes",
    "mebibytes": "mebibytes", "mebibyte": "mebibytes", "mib": "mebibytes",
    "microseconds": "microseconds", "microsecond": "microseconds",
    "us": "microseconds",
    "milliseconds": "milliseconds", "millisecond": "milliseconds",
    "ms": "milliseconds",
    "ops": "ops", "op": "ops", "operations": "ops", "operation": "ops",
    "accesses": "ops", "access": "ops",
    "messages": "messages", "message": "messages",
    "msgs": "messages", "msg": "messages",
    "workers": "workers", "worker": "workers",
    "vertices": "vertices", "vertex": "vertices",
    "edges": "edges", "edge": "edges",
}

#: Tokens meaning "a pure number" in pragmas and the registry.
_DIMENSIONLESS_TOKENS = {"1", "dimensionless", "scalar", "count"}

#: Dimensions that denote measured quantities (as opposed to entity
#: counts like ``vertices`` or ``workers``, which the name conventions
#: treat as pure numbers).
_QUANTITY_DIMS = {
    "seconds", "bytes", "kibibytes", "mebibytes",
    "microseconds", "milliseconds", "ops", "messages",
}


def parse_unit(text: str) -> Unit | None:
    """Parse ``bytes``, ``bytes/second``, ``ops*seconds``, ``1``, ...

    Grammar: ``term ('*' term)*`` segments separated by ``/``; the
    first segment is the numerator, every later one divides. Unknown
    dimension names make the whole expression unparseable (``None``)
    rather than silently dimensionless.
    """
    unit = DIMENSIONLESS
    for index, segment in enumerate(text.strip().lower().split("/")):
        for token in segment.split("*"):
            token = token.strip()
            if not token or token in _DIMENSIONLESS_TOKENS:
                continue
            dimension = _ALIASES.get(token)
            if dimension is None:
                return None
            factor = base_unit(dimension)
            unit = unit_mul(unit, factor) if index == 0 else unit_div(unit, factor)
    return unit


#: Exact identifier names (variables, attributes, parameters) with a
#: declared unit; consulted before the suffix conventions. These cover
#: the rusage interface, the hardware models, and the per-rate fields
#: whose ``_seconds`` suffix alone would mis-declare them (a
#: per-message latency is seconds *per message*).
NAME_UNITS: dict[str, str] = {
    # resource.getrusage: Linux reports ru_maxrss in kibibytes (the
    # PR 4 bug was recording that figure as bytes).
    "ru_maxrss": "kibibytes",
    # CostMeter / RoundRecord / RoundTimes.
    "ops": "ops",
    "seconds": "seconds",
    "random_accesses": "ops",
    "local_messages": "messages",
    "remote_messages": "messages",
    # Hardware models (CpuModel / NicModel / DiskModel / profiles).
    "bandwidth": "bytes/second",
    "ops_per_second": "ops/second",
    "worker_ops_per_second": "ops/second",
    "message_latency_seconds": "seconds/message",
    "nic_message_latency_seconds": "seconds/message",
    "random_access_seconds": "seconds/op",
    # Pure counts: scale aggregate rates as plain numbers (see the
    # module docstring for why these are not the `workers` dimension).
    "num_workers": "1",
    "cores": "1",
    "count": "1",
    "active_vertices": "1",
    "worker": "1",
    "src_worker": "1",
    "dst_worker": "1",
}

#: Suffix conventions, applied after the exact-name table (and after
#: stripping a trailing ``_per_worker``: a per-worker bytes list still
#: holds bytes). Matched case-insensitively.
SUFFIX_UNITS: tuple[tuple[str, str], ...] = (
    ("_seconds", "seconds"),
    ("_bytes", "bytes"),
    ("_kib", "kibibytes"),
    ("_ops", "ops"),
    ("_messages", "messages"),
    ("_bandwidth", "bytes/second"),
    ("_factor", "1"),
    ("_fraction", "1"),
    ("_ratio", "1"),
)

#: Name segments stripped before suffix matching.
_STRIPPABLE = ("_per_worker",)


def unit_of_name(name: str) -> Unit | None:
    """The declared unit of an identifier, by registry or convention."""
    lowered = name.lower()
    for candidate in (lowered,) + tuple(
        lowered[: -len(strippable)]
        for strippable in _STRIPPABLE
        if lowered.endswith(strippable)
    ):
        declared = NAME_UNITS.get(candidate)
        if declared is not None:
            return parse_unit(declared)
        for suffix, unit_text in SUFFIX_UNITS:
            if candidate.endswith(suffix):
                return parse_unit(unit_text)
        # A bare quantity word left behind by stripping
        # (``bytes_per_worker`` strips to ``bytes``) declares that unit
        # directly. Entity-count words (``vertices_per_worker`` strips
        # to ``vertices``) stay unknown: counts are dimensionless in
        # this registry, not quantities of an entity dimension.
        if candidate != lowered and _ALIASES.get(candidate) in _QUANTITY_DIMS:
            return parse_unit(candidate)
    return None


#: Annotated signatures, keyed by function/method name, as ordered
#: ``(parameter, unit-or-None)`` pairs with the receiver omitted.
#: ``None`` leaves a parameter unchecked (booleans, duck-typed
#: records); ``"1"`` *declares* a pure count, so passing bytes into a
#: count slot (a transposed call) is a finding. Used both when a call
#: resolves through the call graph and — keyed by attribute name — for
#: unresolved method calls like ``meter.charge_message(...)``.
SIGNATURES: dict[str, tuple[tuple[str, str | None], ...]] = {
    # CostMeter charge API.
    "charge_compute": (("worker", "1"), ("ops", "ops")),
    "charge_random_access": (("worker", "1"), ("count", "ops")),
    "charge_compute_bulk": (
        ("worker", "1"), ("ops", "ops"), ("random_accesses", "ops"),
    ),
    "charge_message": (
        ("src_worker", "1"), ("dst_worker", "1"),
        ("payload_bytes", "bytes"), ("count", "1"),
    ),
    "charge_messages_bulk": (
        ("src_worker", "1"), ("dst_worker", "1"),
        ("count", "1"), ("payload_bytes", "bytes"),
    ),
    "charge_shuffle": (("num_bytes", "bytes"), ("count", "1")),
    "charge_disk_read": (("worker", None), ("num_bytes", "bytes")),
    "charge_disk_write": (("worker", None), ("num_bytes", "bytes")),
    "charge_disk_random": (
        ("worker", "1"), ("num_bytes", "bytes"), ("write", None),
    ),
    "allocate_memory": (("worker", "1"), ("num_bytes", "bytes")),
    "release_memory": (("worker", "1"), ("num_bytes", "bytes")),
    "end_round": (("active_vertices", "1"), ("barrier_seconds", "seconds")),
    # HardwareProfile and the component device models.
    "round_times": (
        ("charges", None), ("num_workers", "1"),
        ("straggler_penalty_seconds", "seconds"),
        ("barrier_override", "seconds"),
    ),
    "worker_seconds": (("ops", "ops"), ("random_accesses", "ops")),
    "service_seconds": (
        ("remote_bytes", "bytes"), ("remote_messages", "messages"),
        ("num_workers", "1"),
    ),
    "queueing_seconds": (
        ("service_seconds", "seconds"), ("compute_seconds", "seconds"),
    ),
    "round_seconds": (
        ("striped_read_bytes", "bytes"), ("striped_write_bytes", "bytes"),
        ("bytes_per_worker", "bytes"), ("random_bytes_per_worker", "bytes"),
        ("num_workers", "1"),
    ),
    "memory_pressure_multiplier": (("live_memory_bytes", "bytes"),),
    "straggler_penalty_seconds": (
        ("ops_per_worker", "ops"), ("random_accesses_per_worker", "ops"),
        ("worker_ops_per_second", "ops/second"),
        ("random_access_seconds", "seconds/op"),
    ),
}

#: ``# units: <expr>`` — declares the unit of the assignment target(s)
#: on the same line. Anchored like the quality suppressions: the
#: pragma is the comment, not prose mentioning it.
_PRAGMA = re.compile(r"^#\s*units:\s*(?P<expr>[\w*/ .^-]+)")

#: Builtins that return their (first) argument's unit unchanged.
_UNIT_PRESERVING_CALLS = {
    "float", "int", "abs", "round", "min", "max", "sum", "sorted",
}

#: Builtins returning a pure count.
_DIMENSIONLESS_CALLS = {"len", "range", "enumerate", "id", "hash", "ord"}


# -- severities ------------------------------------------------------------

_RULE_IDS = (
    "cost-units.mixed-arithmetic",
    "cost-units.call-argument",
    "cost-units.keyword-swap",
    "cost-units.rate-inversion",
    "cost-units.unconverted",
)

_CATEGORY = "cost-units"


def _make_finding(rule: str, message: str, line: int) -> Finding:
    return Finding(
        rule=rule, message=message, line=line, severity=ERROR,
        category=_CATEGORY,
    )


# -- summaries -------------------------------------------------------------


@dataclass(frozen=True)
class UnitSummary:
    """Interprocedural summary of one function.

    ``params`` are the declared parameter units (registry signature,
    pragma, or naming convention — stable across fixpoint rounds);
    ``returns`` is the join over every return expression's unit, so a
    helper computing ``bytes / bandwidth`` summarizes as seconds.
    """

    params: tuple[tuple[str, Unit], ...]
    returns: Unit = UNKNOWN


def _declared_params(name: str, param_names: list[str]) -> dict[str, Unit]:
    """Declared parameter units of a function, registry first."""
    declared: dict[str, Unit] = {}
    signature = SIGNATURES.get(name)
    if signature is not None:
        for param, unit_text in signature:
            if unit_text is not None:
                unit = parse_unit(unit_text)
                if unit is not None:
                    declared[param] = unit
    for param in param_names:
        if param not in declared:
            unit = unit_of_name(param)
            if unit is not None:
                declared[param] = unit
    return declared


def _signature_slots(
    call: ast.Call, info: FunctionInfo | None
) -> list[tuple[str, Unit | None]]:
    """Positional ``(param, declared-unit)`` slots for a call site.

    Resolved callees contribute their real parameter list (receiver
    dropped); unresolved attribute calls fall back to the registry
    signature for the attribute name.
    """
    if info is not None:
        params = info.param_names
        if info.receiver_name is not None and params:
            params = params[1:]
        declared = _declared_params(info.name, params)
        return [(param, declared.get(param)) for param in params]
    chain = dotted_chain(call.func)
    name = chain[-1] if chain else None
    signature = SIGNATURES.get(name or "")
    if signature is None:
        return []
    return [
        (param, parse_unit(unit_text) if unit_text is not None else None)
        for param, unit_text in signature
    ]


# -- per-function environment analysis -------------------------------------

_State = tuple[tuple[str, Unit], ...]


def _bind(state: _State, name: str, unit: Unit) -> _State:
    env = dict(state)
    env[name] = unit
    return tuple(sorted(env.items()))


class _EnvAnalysis(ForwardAnalysis):
    """Forward per-name unit environment over one function's CFG."""

    def __init__(self, evaluator: "_FunctionEvaluator"):
        self.evaluator = evaluator

    def initial_state(self) -> _State:
        return self.evaluator.initial_state

    def join(self, a: _State, b: _State) -> _State:
        left, right = dict(a), dict(b)
        merged: dict[str, Unit] = {}
        for name in left.keys() | right.keys():
            if name in left and name in right:
                merged[name] = unit_join(left[name], right[name])
            else:
                merged[name] = left.get(name) or right.get(name)
        return tuple(sorted(merged.items()))

    def transfer(self, node, state: _State) -> _State:
        stmt = node.stmt
        if stmt is None:
            return state
        return self.evaluator.transfer(stmt, state)


class _FunctionEvaluator:
    """Evaluates expressions to units inside one function.

    One instance serves both the summary fixpoint (``sink=None``,
    effects only) and the reporting pass (``sink`` collects findings);
    the transfer function itself never reports, so re-running it to a
    fixpoint cannot duplicate findings.
    """

    def __init__(
        self,
        owner: "_UnitsAnalysis",
        info: FunctionInfo,
        summaries: dict[str, UnitSummary],
    ):
        self.owner = owner
        self.info = info
        self.summaries = summaries
        self.pragmas = owner.pragmas_of(info.module)
        self.constants = owner.constants_of(info.module)
        self.sink: list[Finding] | None = None
        self.anchors: dict[int, int] = {}
        declared = _declared_params(info.name, info.param_names)
        env: dict[str, Unit] = {}
        receiver = info.receiver_name
        for param in info.param_names:
            if param == receiver:
                continue
            unit = declared.get(param)
            if unit is not None:
                env[param] = unit
        self.initial_state: _State = tuple(sorted(env.items()))

    # -- reporting helpers -------------------------------------------------

    def _line(self, node: ast.AST) -> int:
        line = getattr(node, "lineno", 1)
        return self.anchors.get(id(node), line)

    def _report(self, rule: str, message: str, node: ast.AST) -> None:
        if self.sink is not None:
            self.sink.append(_make_finding(rule, message, self._line(node)))

    def _report_incompatible(
        self, context: str, value: Unit, declared: Unit, node: ast.AST
    ) -> None:
        """Classify an incompatibility as unconverted vs mixed."""
        related = self._relation(value, declared)
        if related is not None:
            scaled, canonical, factor = related
            direction = (
                f"multiply by {factor:g}"
                if str(value) == scaled
                else f"divide by {factor:g}"
            )
            self._report(
                "cost-units.unconverted",
                f"{context}: value in {value} where {declared} is "
                f"expected; {direction} to convert",
                node,
            )
        else:
            self._report(
                "cost-units.mixed-arithmetic",
                f"{context}: {value} is incompatible with {declared}",
                node,
            )

    @staticmethod
    def _relation(a: Unit, b: Unit) -> tuple[str, str, float] | None:
        if not (a.concrete and b.concrete):
            return None
        if len(a.dims) != 1 or len(b.dims) != 1:
            return None
        if a.dims[0][1] != 1 or b.dims[0][1] != 1:
            return None
        return _RELATED.get(frozenset({a.dims[0][0], b.dims[0][0]}))

    # -- expression evaluation ---------------------------------------------

    def lookup(self, name: str, env: dict[str, Unit]) -> Unit:
        bound = env.get(name)
        if bound is not None:
            return bound
        constant = self.constants.get(name)
        if constant is not None:
            return constant
        declared = unit_of_name(name)
        return declared if declared is not None else UNKNOWN

    def unit_of(self, expr: ast.expr, env: dict[str, Unit]) -> Unit:
        """The unit of one expression, reporting en route when armed."""
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, (int, float)) and not isinstance(
                expr.value, bool
            ):
                return DIMENSIONLESS
            return UNKNOWN
        if isinstance(expr, ast.Name):
            return self.lookup(expr.id, env)
        if isinstance(expr, ast.Attribute):
            # The attribute name alone declares the unit — a
            # ``record.remote_bytes`` is bytes whatever ``record`` is.
            self.unit_of(expr.value, env)
            declared = unit_of_name(expr.attr)
            if declared is not None:
                return declared
            constant = self.constants.get(expr.attr)
            return constant if constant is not None else UNKNOWN
        if isinstance(expr, ast.BinOp):
            return self._binop_unit(expr, env)
        if isinstance(expr, ast.UnaryOp):
            return self.unit_of(expr.operand, env)
        if isinstance(expr, ast.BoolOp):
            unit = UNKNOWN
            for value in expr.values:
                unit = unit_join(unit, self.unit_of(value, env))
            return unit
        if isinstance(expr, ast.Compare):
            left_unit = self.unit_of(expr.left, env)
            for comparator in expr.comparators:
                right_unit = self.unit_of(comparator, env)
                if not compatible(left_unit, right_unit):
                    self._report_incompatible(
                        "comparison", left_unit, right_unit, expr
                    )
                left_unit = right_unit
            return DIMENSIONLESS
        if isinstance(expr, ast.Call):
            return self._call_unit(expr, env)
        if isinstance(expr, ast.IfExp):
            self.unit_of(expr.test, env)
            return unit_join(
                self.unit_of(expr.body, env), self.unit_of(expr.orelse, env)
            )
        if isinstance(expr, ast.Subscript):
            # Containers carry their element unit (a per-worker bytes
            # list is bytes); indexing passes it through.
            self.unit_of(expr.slice, env)
            return self.unit_of(expr.value, env)
        if isinstance(expr, (ast.Starred, ast.NamedExpr)):
            return self.unit_of(expr.value, env)
        return self._container_unit(expr, env)

    def _container_unit(self, expr: ast.expr, env: dict[str, Unit]) -> Unit:
        """Units of the container/comprehension expression forms."""
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            unit = UNKNOWN
            for element in expr.elts:
                element_unit = self.unit_of(element, env)
                unit = (
                    element_unit
                    if unit is UNKNOWN
                    else unit_join(unit, element_unit)
                )
            return unit
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            inner = self._comprehension_env(expr, env)
            return self.unit_of(expr.elt, inner)
        if isinstance(expr, ast.DictComp):
            inner = self._comprehension_env(expr, env)
            self.unit_of(expr.key, inner)
            return self.unit_of(expr.value, inner)
        if isinstance(expr, ast.Dict):
            for key in expr.keys:
                if key is not None:
                    self.unit_of(key, env)
            for value in expr.values:
                self.unit_of(value, env)
        return UNKNOWN

    def _comprehension_env(self, expr, env: dict[str, Unit]) -> dict[str, Unit]:
        inner = dict(env)
        for generator in expr.generators:
            iter_unit = self.unit_of(generator.iter, inner)
            for name in self._target_names(generator.target):
                inner[name] = iter_unit if len(
                    self._target_names(generator.target)
                ) == 1 else UNKNOWN
            for condition in generator.ifs:
                self.unit_of(condition, inner)
        return inner

    @staticmethod
    def _target_names(target: ast.expr) -> list[str]:
        if isinstance(target, ast.Name):
            return [target.id]
        if isinstance(target, (ast.Tuple, ast.List)):
            names: list[str] = []
            for element in target.elts:
                names.extend(_FunctionEvaluator._target_names(element))
            return names
        return []

    # -- arithmetic --------------------------------------------------------

    @staticmethod
    def _const_value(expr: ast.expr) -> float | None:
        """Fold a literal numeric expression (1024, 2**20, 1024*1024)."""
        if isinstance(expr, ast.Constant) and isinstance(
            expr.value, (int, float)
        ) and not isinstance(expr.value, bool):
            return float(expr.value)
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
            value = _FunctionEvaluator._const_value(expr.operand)
            return -value if value is not None else None
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.Mult, ast.Pow)
        ):
            left = _FunctionEvaluator._const_value(expr.left)
            right = _FunctionEvaluator._const_value(expr.right)
            if left is None or right is None:
                return None
            return left * right if isinstance(expr.op, ast.Mult) else left ** right
        return None

    @staticmethod
    def _converted(unit: Unit, factor: float) -> Unit | None:
        """Unit after multiplying the *number* by a conversion literal."""
        if not unit.concrete or len(unit.dims) != 1 or unit.dims[0][1] != 1:
            return None
        target = CONVERSIONS.get((unit.dims[0][0], factor))
        return base_unit(target) if target is not None else None

    @staticmethod
    def _deconverted(unit: Unit, factor: float) -> Unit | None:
        """Unit after dividing the *number* by a conversion literal."""
        if not unit.concrete or len(unit.dims) != 1 or unit.dims[0][1] != 1:
            return None
        source = _INVERSE_CONVERSIONS.get((unit.dims[0][0], factor))
        return base_unit(source) if source is not None else None

    def _binop_unit(self, expr: ast.BinOp, env: dict[str, Unit]) -> Unit:
        left = self.unit_of(expr.left, env)
        right = self.unit_of(expr.right, env)
        op = expr.op
        if isinstance(op, ast.Mult):
            for unit, other_expr in ((left, expr.right), (right, expr.left)):
                factor = self._const_value(other_expr)
                if factor is not None:
                    converted = self._converted(unit, factor)
                    if converted is not None:
                        return converted
            result = unit_mul(left, right)
            self._check_inversion(expr, left, right, result)
            return result
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            factor = self._const_value(expr.right)
            if factor is not None:
                deconverted = self._deconverted(left, factor)
                if deconverted is not None:
                    return deconverted
            result = unit_div(left, right)
            self._check_inversion(expr, left, right, result)
            return result
        if isinstance(op, (ast.Add, ast.Sub)):
            if not compatible(left, right):
                operation = "sum" if isinstance(op, ast.Add) else "difference"
                self._report_incompatible(operation, left, right, expr)
            if left.concrete and not left.dimensionless:
                return left
            if right.concrete and not right.dimensionless:
                return right
            return unit_join(left, right)
        if isinstance(op, ast.Mod):
            return left
        if isinstance(op, ast.Pow):
            return DIMENSIONLESS if left.dimensionless else UNKNOWN
        return UNKNOWN

    def _check_inversion(
        self, expr: ast.BinOp, left: Unit, right: Unit, result: Unit
    ) -> None:
        """A squared dimension means a rate was applied upside down."""
        if not (left.concrete and right.concrete and result.concrete):
            return
        if left.dimensionless or right.dimensionless:
            return
        if any(abs(exp) >= 2 for _, exp in result.dims):
            operation = (
                "multiplying" if isinstance(expr.op, ast.Mult) else "dividing"
            )
            self._report(
                "cost-units.rate-inversion",
                f"{operation} {left} by {right} yields {result}; a rate "
                "applied in the wrong direction (divide by a bandwidth "
                "to get seconds, never multiply)",
                expr,
            )

    # -- calls -------------------------------------------------------------

    def _call_unit(self, call: ast.Call, env: dict[str, Unit]) -> Unit:
        chain = dotted_chain(call.func)
        name = chain[-1] if chain else None
        arg_units = [self.unit_of(arg, env) for arg in call.args]
        kw_units = [
            (kw.arg, self.unit_of(kw.value, env)) for kw in call.keywords
        ]
        if name in _DIMENSIONLESS_CALLS and len(chain or []) == 1:
            return DIMENSIONLESS
        if name in _UNIT_PRESERVING_CALLS and len(chain or []) == 1:
            unit = UNKNOWN
            for arg_unit in arg_units:
                unit = (
                    arg_unit if unit is UNKNOWN else unit_join(unit, arg_unit)
                )
            return unit
        callee = self.owner.resolve(self.info, call)
        self._check_call(call, callee, arg_units, kw_units)
        if callee is not None:
            summary = self.summaries.get(callee.qualname)
            if summary is not None and summary.returns.concrete:
                return summary.returns
            declared = unit_of_name(callee.name)
            if declared is not None:
                return declared
            return UNKNOWN
        if name is not None:
            declared = unit_of_name(name)
            if declared is not None:
                return declared
        return UNKNOWN

    def _check_call(
        self,
        call: ast.Call,
        callee: FunctionInfo | None,
        arg_units: list[Unit],
        kw_units: list[tuple[str | None, Unit]],
    ) -> None:
        if self.sink is None:
            return
        mismatches = self._call_mismatches(call, callee, arg_units, kw_units)
        reported = self._report_swaps(call, mismatches)
        for index, (param, declared, value) in enumerate(mismatches):
            if index in reported:
                continue
            if self._relation(value, declared) is not None:
                self._report_incompatible(
                    f"argument {param!r}", value, declared, call
                )
            else:
                self._report(
                    "cost-units.call-argument",
                    f"argument {param!r} expects {declared} but received "
                    f"{value}",
                    call,
                )

    def _call_mismatches(
        self,
        call: ast.Call,
        callee: FunctionInfo | None,
        arg_units: list[Unit],
        kw_units: list[tuple[str | None, Unit]],
    ) -> list[tuple[str, Unit, Unit]]:
        """``(param, declared, received)`` triples that disagree."""
        slots = _signature_slots(call, callee)
        slot_units = dict(slots)
        checked: list[tuple[str, Unit, Unit | None]] = []
        for (param, declared), value in zip(slots, arg_units):
            checked.append((param, value, declared))
        for keyword, value in kw_units:
            if keyword is None:
                continue
            declared = slot_units.get(keyword)
            if declared is None and keyword not in slot_units:
                # Generalized keyword check: the keyword's own name
                # declares a unit even on unresolved constructors
                # (``RoundTimes(compute_seconds=...)``).
                declared = unit_of_name(keyword)
            checked.append((keyword, value, declared))
        mismatches: list[tuple[str, Unit, Unit]] = []
        for param, value, declared in checked:
            if declared is None or not declared.concrete:
                continue
            if not value.concrete or value.dimensionless:
                continue
            if value != declared:
                mismatches.append((param, declared, value))
        return mismatches

    def _report_swaps(
        self, call: ast.Call, mismatches: list[tuple[str, Unit, Unit]]
    ) -> set[int]:
        """Report transposed pairs: units fitting each other crosswise."""
        reported: set[int] = set()
        for i in range(len(mismatches)):
            for j in range(i + 1, len(mismatches)):
                if i in reported or j in reported:
                    continue
                p_i, d_i, v_i = mismatches[i]
                p_j, d_j, v_j = mismatches[j]
                if v_i == d_j and v_j == d_i:
                    self._report(
                        "cost-units.keyword-swap",
                        f"arguments {p_i!r} and {p_j!r} appear swapped: "
                        f"{p_i} received {v_i} (expects {d_i}) and {p_j} "
                        f"received {v_j} (expects {d_j})",
                        call,
                    )
                    reported.update({i, j})
        return reported

    # -- statements --------------------------------------------------------

    def transfer(self, stmt: ast.stmt, state: _State) -> _State:
        env = dict(state)
        if isinstance(stmt, ast.Assign):
            value_unit = self.unit_of(stmt.value, env)
            for target in stmt.targets:
                state = self._bind_target(stmt, target, stmt.value, value_unit, state)
            return state
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value_unit = self.unit_of(stmt.value, env)
            return self._bind_target(
                stmt, stmt.target, stmt.value, value_unit, state
            )
        if isinstance(stmt, ast.AugAssign):
            value_unit = self.unit_of(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                current = self.lookup(stmt.target.id, env)
                if isinstance(stmt.op, (ast.Add, ast.Sub)):
                    if current.concrete and not current.dimensionless:
                        merged = current
                    elif value_unit.concrete and not value_unit.dimensionless:
                        merged = value_unit
                    else:
                        merged = unit_join(current, value_unit)
                    return _bind(state, stmt.target.id, merged)
                if isinstance(stmt.op, ast.Mult):
                    return _bind(
                        state, stmt.target.id, unit_mul(current, value_unit)
                    )
                if isinstance(stmt.op, (ast.Div, ast.FloorDiv)):
                    return _bind(
                        state, stmt.target.id, unit_div(current, value_unit)
                    )
                return _bind(state, stmt.target.id, UNKNOWN)
            return state
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_unit = self.unit_of(stmt.iter, env)
            names = self._target_names(stmt.target)
            for name in names:
                state = _bind(
                    state, name, iter_unit if len(names) == 1 else UNKNOWN
                )
            return state
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.unit_of(item.context_expr, env)
                if item.optional_vars is not None:
                    for name in self._target_names(item.optional_vars):
                        state = _bind(state, name, UNKNOWN)
            return state
        return state

    def _bind_target(
        self,
        stmt: ast.stmt,
        target: ast.expr,
        value: ast.expr,
        value_unit: Unit,
        state: _State,
    ) -> _State:
        declared = self._declared_target_unit(stmt, target)
        if isinstance(target, ast.Name):
            if declared is not None:
                if value_unit.concrete and not value_unit.dimensionless:
                    state = _bind(state, target.id, value_unit)
                else:
                    state = _bind(state, target.id, declared)
            else:
                state = _bind(state, target.id, value_unit)
            return state
        if isinstance(target, (ast.Tuple, ast.List)):
            elements = (
                value.elts
                if isinstance(value, (ast.Tuple, ast.List))
                and len(value.elts) == len(target.elts)
                else None
            )
            env = dict(state)
            for index, element in enumerate(target.elts):
                element_unit = (
                    self.unit_of(elements[index], env)
                    if elements is not None
                    else UNKNOWN
                )
                state = self._bind_target(
                    stmt, element, value, element_unit, state
                )
            return state
        return state

    def _declared_target_unit(
        self, stmt: ast.stmt, target: ast.expr
    ) -> Unit | None:
        pragma = self.pragmas.get(stmt.lineno)
        if pragma is not None:
            return pragma
        if isinstance(target, ast.Name):
            return unit_of_name(target.id)
        if isinstance(target, ast.Attribute):
            return unit_of_name(target.attr)
        return None

    # -- the reporting pass ------------------------------------------------

    def report_statement(self, stmt: ast.stmt, state: _State) -> None:
        """Emit findings for one statement given its in-state."""
        env = dict(state)
        if isinstance(stmt, ast.Assign):
            value_unit = self.unit_of(stmt.value, env)
            for target in stmt.targets:
                self._check_binding(stmt, target, value_unit)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value_unit = self.unit_of(stmt.value, env)
            self._check_binding(stmt, stmt.target, value_unit)
            return
        if isinstance(stmt, ast.AugAssign):
            value_unit = self.unit_of(stmt.value, env)
            declared = self._declared_target_unit(stmt, stmt.target)
            if isinstance(stmt.target, ast.Name) and declared is None:
                declared = env.get(stmt.target.id)
            if (
                isinstance(stmt.op, (ast.Add, ast.Sub))
                and declared is not None
                and not compatible(declared, value_unit)
            ):
                self._report_incompatible(
                    f"augmented assignment to {self._target_label(stmt.target)}",
                    value_unit,
                    declared,
                    stmt,
                )
            return
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self.unit_of(stmt.value, env)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.unit_of(child, env)

    def _check_binding(
        self, stmt: ast.stmt, target: ast.expr, value_unit: Unit
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            return
        declared = self._declared_target_unit(stmt, target)
        if declared is None or not declared.concrete or declared.dimensionless:
            return
        if not value_unit.concrete or value_unit.dimensionless:
            return
        if value_unit != declared:
            self._report_incompatible(
                f"assignment to {self._target_label(target)}",
                value_unit,
                declared,
                stmt,
            )

    @staticmethod
    def _target_label(target: ast.expr) -> str:
        if isinstance(target, ast.Name):
            return repr(target.id)
        if isinstance(target, ast.Attribute):
            return repr(target.attr)
        return "target"


# -- project-level orchestration -------------------------------------------


class _UnitsAnalysis:
    """Shared per-run state: pragmas, constants, summaries, findings."""

    def __init__(self, project: ProjectContext):
        self.project = project
        self.graph: CallGraph = project_call_graph(project)
        self.cfgs: dict[str, CFG] = project.cache.setdefault("cfgs", {})
        self._pragmas: dict[int, dict[int, Unit]] = {}
        self._constants: dict[int, dict[str, Unit]] = {}
        self._anchors: dict[int, dict[int, int]] = {}

    # -- per-module tables -------------------------------------------------

    def pragmas_of(self, module: ModuleContext) -> dict[int, Unit]:
        cached = self._pragmas.get(id(module))
        if cached is None:
            cached = {}
            for line, comment in _comment_lines(module.lines).items():
                match = _PRAGMA.search(comment)
                if match is None:
                    continue
                unit = parse_unit(match.group("expr"))
                if unit is not None:
                    cached[line] = unit
            self._pragmas[id(module)] = cached
        return cached

    def constants_of(self, module: ModuleContext) -> dict[str, Unit]:
        """Module/class-level numeric constants and their units.

        A pragma on the constant's line wins; otherwise the name
        conventions apply; otherwise a bare numeric literal is a pure
        number (so ``RHO_CAP = 0.95`` participates in arithmetic
        without widening everything it touches to unknown).
        """
        cached = self._constants.get(id(module))
        if cached is None:
            cached = {}
            pragmas = self.pragmas_of(module)
            scopes: list[list[ast.stmt]] = [module.tree.body]
            for stmt in module.tree.body:
                if isinstance(stmt, ast.ClassDef):
                    scopes.append(stmt.body)
            for scope in scopes:
                for stmt in scope:
                    if not isinstance(stmt, ast.Assign):
                        continue
                    value = _FunctionEvaluator._const_value(stmt.value)
                    pragma = pragmas.get(stmt.lineno)
                    for target in stmt.targets:
                        if not isinstance(target, ast.Name):
                            continue
                        if pragma is not None:
                            cached[target.id] = pragma
                        else:
                            declared = unit_of_name(target.id)
                            if declared is not None:
                                cached[target.id] = declared
                            elif value is not None:
                                cached[target.id] = DIMENSIONLESS
            self._constants[id(module)] = cached
        return cached

    def anchors_of(self, module: ModuleContext) -> dict[int, int]:
        cached = self._anchors.get(id(module))
        if cached is None:
            cached = statement_anchors(module.tree)
            self._anchors[id(module)] = cached
        return cached

    def resolve(
        self, caller: FunctionInfo, call: ast.Call
    ) -> FunctionInfo | None:
        return self.graph.resolve_call(caller, call)

    # -- the pass ----------------------------------------------------------

    def scoped_functions(self) -> list[FunctionInfo]:
        functions: list[FunctionInfo] = []
        for module in self.project.modules:
            if not module.in_scope(UNITS_SCOPE):
                continue
            functions.extend(self.graph.functions_of(module))
        return functions

    def run(self) -> list[tuple[ModuleContext, Finding]]:
        functions = self.scoped_functions()
        summaries = self._fixpoint_summaries(functions)
        results: list[tuple[ModuleContext, Finding]] = []
        for info in functions:
            evaluator = _FunctionEvaluator(self, info, summaries)
            evaluator.anchors = self.anchors_of(info.module)
            cfg = _cached_cfg(self.cfgs, info)
            in_states = solve_forward(cfg, _EnvAnalysis(evaluator))
            findings: list[Finding] = []
            evaluator.sink = findings
            for node in cfg.statement_nodes():
                state = in_states.get(node.index)
                if state is None:
                    continue
                evaluator.report_statement(node.stmt, state)
            evaluator.sink = None
            seen: set[tuple[str, int, str]] = set()
            for finding in findings:
                key = (finding.rule, finding.line, finding.message)
                if key in seen:
                    continue
                seen.add(key)
                results.append((info.module, finding))
        return results

    def _fixpoint_summaries(
        self, functions: list[FunctionInfo]
    ) -> dict[str, UnitSummary]:
        """Bounded interprocedural fixpoint over return units.

        Return units only ever move up the (finite) product lattice
        through joins, so four passes settle every realistic call
        chain; the bound is a defensive backstop against pathological
        mutual recursion, exactly like the typestate rule's.
        """
        summaries: dict[str, UnitSummary] = {}
        for _ in range(4):
            changed = False
            for info in functions:
                summary = self._summarize(info, summaries)
                if summaries.get(info.qualname) != summary:
                    summaries[info.qualname] = summary
                    changed = True
            if not changed:
                break
        return summaries

    def _summarize(
        self, info: FunctionInfo, summaries: dict[str, UnitSummary]
    ) -> UnitSummary:
        evaluator = _FunctionEvaluator(self, info, summaries)
        cfg = _cached_cfg(self.cfgs, info)
        in_states = solve_forward(cfg, _EnvAnalysis(evaluator))
        returns = UNKNOWN
        first = True
        for node in cfg.statement_nodes():
            stmt = node.stmt
            if not isinstance(stmt, ast.Return) or stmt.value is None:
                continue
            state = in_states.get(node.index)
            if state is None:
                continue
            unit = evaluator.unit_of(stmt.value, dict(state))
            returns = unit if first else unit_join(returns, unit)
            first = False
        return UnitSummary(params=evaluator.initial_state, returns=returns)


def _project_results(
    project: ProjectContext,
) -> list[tuple[ModuleContext, Finding]]:
    """The cost-units findings of one run, computed once and cached."""
    results = project.cache.get("cost-units")
    if results is None:
        results = _UnitsAnalysis(project).run()
        project.cache["cost-units"] = results
    return results


class _UnitRule(ProjectRule):
    """One sub-rule of the family; the analysis itself runs once."""

    severity = ERROR
    category = _CATEGORY

    def check(
        self, project: ProjectContext
    ) -> Iterator[tuple[ModuleContext, Finding]]:
        """Yield this sub-rule's findings over the whole project."""
        for module, finding in _project_results(project):
            if finding.rule == self.id:
                yield module, finding


@register_project_rule
class MixedArithmeticRule(_UnitRule):
    """Adding/comparing/binding quantities of incompatible dimensions."""

    id = "cost-units.mixed-arithmetic"


@register_project_rule
class CallArgumentRule(_UnitRule):
    """An argument whose unit contradicts the declared parameter unit."""

    id = "cost-units.call-argument"


@register_project_rule
class KeywordSwapRule(_UnitRule):
    """Two arguments whose units fit each other's slots crosswise."""

    id = "cost-units.keyword-swap"


@register_project_rule
class RateInversionRule(_UnitRule):
    """A product with a squared dimension: a rate applied upside down."""

    id = "cost-units.rate-inversion"


@register_project_rule
class UnconvertedRule(_UnitRule):
    """Same dimension at the wrong scale (kibibytes where bytes)."""

    id = "cost-units.unconverted"
