"""Intraprocedural control-flow graphs over Python AST.

One :class:`CFG` is built per function. Nodes are statements (plus
three synthetic nodes: entry, normal exit, and exceptional exit);
edges carry a kind — ``normal`` for fallthrough/branch edges and
``exception`` for may-raise edges into handler dispatch.

Soundness/precision choices (documented because the typestate and
taint analyses inherit them):

* **Branches** (``if``/``while``/``for``/``match``) take both arms
  unconditionally — no constant folding, so ``while True:`` still has
  a loop-exit edge. That adds infeasible paths (over-approximation)
  but never hides feasible ones.
* **Exceptions.** Inside a ``try`` body, *every* statement gets an
  exception edge to the try's handler-dispatch node, and the edge
  propagates the join of the statement's in- and out-state (the raise
  may happen before or after the statement's own effects). Outside
  any ``try``, only explicit ``raise`` statements produce exceptional
  edges — an uncaught exception ends the function, and the analyses
  deliberately do not judge the state at the exceptional exit (a run
  that is dying mid-round is the *caller's* failure-handling problem;
  see the cost-protocol rule).
* **``finally``** bodies are built once and shared by every path that
  traverses them; the region's exit fans out to every continuation
  the protected region can take (fallthrough, function return, loop
  break/continue, exception propagation). Different continuations
  therefore observe the joined state — sound for the collecting
  semantics used here, imprecise only when two continuations would
  need different facts.
* ``with`` bodies are sequential; the context manager's ``__exit__``
  is treated as pass-through.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "NORMAL",
    "EXCEPTION",
    "CFGNode",
    "CFG",
    "build_cfg",
    "node_exprs",
    "node_calls",
]

#: Edge kinds.
NORMAL = "normal"
EXCEPTION = "exception"


@dataclass
class CFGNode:
    """One control-flow node: a statement or a synthetic marker."""

    index: int
    stmt: ast.stmt | None
    kind: str
    succs: list[tuple[int, str]] = field(default_factory=list)

    def add_succ(self, target: int, edge: str = NORMAL) -> None:
        """Add an out-edge (idempotent)."""
        if (target, edge) not in self.succs:
            self.succs.append((target, edge))


@dataclass
class CFG:
    """Control-flow graph of one function."""

    func: ast.FunctionDef | ast.AsyncFunctionDef
    nodes: list[CFGNode]

    ENTRY = 0
    EXIT = 1
    RAISE_EXIT = 2

    def statement_nodes(self) -> list[CFGNode]:
        """The non-synthetic nodes, in creation (document) order."""
        return [node for node in self.nodes if node.stmt is not None]


class _LoopFrame:
    """Targets for break/continue while building a loop body."""

    def __init__(self, head: int):
        self.head = head
        #: Nodes whose break edge must be patched to the loop's after.
        self.breaks: list[int] = []


class _TryFrame:
    """Exception routing while building a protected region."""

    def __init__(self, target: int):
        #: Node that may-raise statements get an exception edge to
        #: (a handler-dispatch node, or a finally entry marker).
        self.target = target
        #: Continuations the region's finally must fan out to.
        self.saw_return = False
        self.breaks: list[_LoopFrame] = []
        self.continues: list[_LoopFrame] = []


class _Builder:
    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef):
        self.func = func
        self.nodes: list[CFGNode] = []
        self._synthetic("entry")
        self._synthetic("exit")
        self._synthetic("raise-exit")
        self.loop_stack: list[_LoopFrame] = []
        self.try_stack: list[_TryFrame] = []

    # -- node helpers -----------------------------------------------------

    def _synthetic(self, kind: str) -> int:
        node = CFGNode(index=len(self.nodes), stmt=None, kind=kind)
        self.nodes.append(node)
        return node.index

    def _stmt_node(self, stmt: ast.stmt, kind: str = "stmt") -> int:
        node = CFGNode(index=len(self.nodes), stmt=stmt, kind=kind)
        self.nodes.append(node)
        if self.try_stack:
            # Anything in a protected region may raise into dispatch.
            node.add_succ(self.try_stack[-1].target, EXCEPTION)
        return node.index

    def _connect(self, preds: list[int], target: int) -> None:
        for pred in preds:
            self.nodes[pred].add_succ(target)

    # -- statement dispatch ----------------------------------------------

    def build(self) -> CFG:
        exits = self._build_body(self.func.body, [CFG.ENTRY])
        self._connect(exits, CFG.EXIT)
        return CFG(func=self.func, nodes=self.nodes)

    def _build_body(self, stmts: list[ast.stmt], preds: list[int]) -> list[int]:
        for stmt in stmts:
            preds = self._build_stmt(stmt, preds)
        return preds

    def _build_stmt(self, stmt: ast.stmt, preds: list[int]) -> list[int]:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, preds)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, preds)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            head = self._stmt_node(stmt, "with")
            self._connect(preds, head)
            return self._build_body(stmt.body, [head])
        if isinstance(stmt, ast.Match):
            return self._build_match(stmt, preds)
        if isinstance(stmt, ast.Return):
            node = self._stmt_node(stmt, "return")
            self._connect(preds, node)
            self._route_jump(node, CFG.EXIT, want_return=True)
            return []
        if isinstance(stmt, ast.Raise):
            node = self._stmt_node(stmt, "raise")
            self._connect(preds, node)
            if not self.try_stack:
                self.nodes[node].add_succ(CFG.RAISE_EXIT, EXCEPTION)
            return []
        if isinstance(stmt, ast.Break):
            node = self._stmt_node(stmt, "break")
            self._connect(preds, node)
            if self.loop_stack:
                self._route_break(node, self.loop_stack[-1])
            return []
        if isinstance(stmt, ast.Continue):
            node = self._stmt_node(stmt, "continue")
            self._connect(preds, node)
            if self.loop_stack:
                self._route_continue(node, self.loop_stack[-1])
            return []
        node = self._stmt_node(stmt)
        self._connect(preds, node)
        return [node]

    # -- jump routing through finally regions -----------------------------

    def _innermost_finally(self) -> _TryFrame | None:
        for frame in reversed(self.try_stack):
            if getattr(frame, "is_finally_frame", False):
                return frame
        return None

    def _route_jump(self, node: int, target: int, want_return: bool) -> None:
        """Route a return through the innermost finally, or straight out."""
        frame = self._innermost_finally()
        if frame is None:
            self.nodes[node].add_succ(target)
        else:
            self.nodes[node].add_succ(frame.target)
            if want_return:
                frame.saw_return = True

    def _route_break(self, node: int, loop: _LoopFrame) -> None:
        frame = self._innermost_finally()
        if frame is None or self._frame_outside_loop(frame):
            loop.breaks.append(node)
        else:
            self.nodes[node].add_succ(frame.target)
            frame.breaks.append(loop)

    def _route_continue(self, node: int, loop: _LoopFrame) -> None:
        frame = self._innermost_finally()
        if frame is None or self._frame_outside_loop(frame):
            self.nodes[node].add_succ(loop.head)
        else:
            self.nodes[node].add_succ(frame.target)
            frame.continues.append(loop)

    def _frame_outside_loop(self, frame: _TryFrame) -> bool:
        # A finally frame opened before the innermost loop does not
        # intercept that loop's break/continue.
        return getattr(frame, "loop_depth", 0) < len(self.loop_stack)

    # -- compound statements ----------------------------------------------

    def _build_if(self, stmt: ast.If, preds: list[int]) -> list[int]:
        head = self._stmt_node(stmt, "if")
        self._connect(preds, head)
        exits = self._build_body(stmt.body, [head])
        if stmt.orelse:
            exits += self._build_body(stmt.orelse, [head])
        else:
            exits.append(head)
        return exits

    def _build_loop(self, stmt, preds: list[int]) -> list[int]:
        head = self._stmt_node(stmt, "loop")
        self._connect(preds, head)
        frame = _LoopFrame(head)
        self.loop_stack.append(frame)
        try:
            body_exits = self._build_body(stmt.body, [head])
        finally:
            self.loop_stack.pop()
        self._connect(body_exits, head)  # back edge
        exits = (
            self._build_body(stmt.orelse, [head]) if stmt.orelse else [head]
        )
        # Breaks bypass the else clause and join the loop's after; the
        # caller connects our returned exits there, so patch breaks by
        # handing back their nodes as pending exits.
        exits += frame.breaks
        return exits

    def _build_match(self, stmt: ast.Match, preds: list[int]) -> list[int]:
        head = self._stmt_node(stmt, "match")
        self._connect(preds, head)
        exits: list[int] = [head]  # no case may match
        for case in stmt.cases:
            exits += self._build_body(case.body, [head])
        return exits

    def _build_try(self, stmt: ast.Try, preds: list[int]) -> list[int]:
        has_finally = bool(stmt.finalbody)
        finally_entry = self._synthetic("finally-entry") if has_finally else None
        dispatch = (
            self._synthetic("except-dispatch") if stmt.handlers else None
        )

        # The finally frame wraps the whole statement: body raises land
        # on the dispatch first (when handlers exist), but returns,
        # breaks, continues, and handler/orelse raises all traverse the
        # finally region.
        finally_frame: _TryFrame | None = None
        if has_finally:
            finally_frame = _TryFrame(finally_entry)
            finally_frame.is_finally_frame = True
            finally_frame.loop_depth = len(self.loop_stack)
            self.try_stack.append(finally_frame)

        dispatch_frame: _TryFrame | None = None
        if dispatch is not None:
            dispatch_frame = _TryFrame(dispatch)
            dispatch_frame.loop_depth = len(self.loop_stack)
            self.try_stack.append(dispatch_frame)
        try:
            body_exits = self._build_body(stmt.body, preds)
        finally:
            if dispatch_frame is not None:
                self.try_stack.pop()

        if stmt.orelse:
            # else runs after a no-raise body; its own raises are NOT
            # caught by this try's handlers.
            body_exits = self._build_body(stmt.orelse, body_exits)

        # Handlers: their raises propagate past this try (through the
        # finally region when there is one — still on the stack).
        handler_exits: list[int] = []
        for handler in stmt.handlers:
            head = self._stmt_node(handler, "except")
            self.nodes[dispatch].add_succ(head)
            handler_exits += self._build_body(handler.body, [head])
        if dispatch is not None:
            # No handler matches: propagate (through finally).
            if finally_entry is not None:
                self.nodes[dispatch].add_succ(finally_entry, EXCEPTION)
            elif self.try_stack:
                self.nodes[dispatch].add_succ(
                    self.try_stack[-1].target, EXCEPTION
                )
            else:
                self.nodes[dispatch].add_succ(CFG.RAISE_EXIT, EXCEPTION)

        if finally_frame is not None:
            self.try_stack.pop()
        if not has_finally:
            return body_exits + handler_exits

        # Finally region: entered from the body/handler fallthroughs
        # and from every abrupt path; exits fan out to each observed
        # continuation. The region itself raises to the *enclosing*
        # frame (it is popped above before building the final body).
        self._connect(body_exits + handler_exits, finally_entry)
        finally_exits = self._build_body(stmt.finalbody, [finally_entry])
        for exit_node in finally_exits:
            if finally_frame.saw_return:
                self.nodes[exit_node].add_succ(CFG.EXIT)
            for loop in finally_frame.breaks:
                loop.breaks.append(exit_node)
            for loop in finally_frame.continues:
                self.nodes[exit_node].add_succ(loop.head)
            # Exceptional traversal continues past the finally.
            if self.try_stack:
                self.nodes[exit_node].add_succ(
                    self.try_stack[-1].target, EXCEPTION
                )
            else:
                self.nodes[exit_node].add_succ(CFG.RAISE_EXIT, EXCEPTION)
        return finally_exits


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the control-flow graph of one function definition."""
    return _Builder(func).build()


def node_exprs(node: CFGNode) -> list[ast.expr]:
    """The expressions a CFG node evaluates when control reaches it.

    For compound statements only the *header* belongs to the node —
    the body statements are CFG nodes of their own — so an ``if``
    contributes its test, a ``for`` its iterable, and so on. Simple
    statements contribute all their expressions.
    """
    stmt = node.stmt
    if stmt is None:
        return []
    if isinstance(stmt, ast.If):
        return [stmt.test]
    if isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        exprs: list[ast.expr] = []
        for item in stmt.items:
            exprs.append(item.context_expr)
            if item.optional_vars is not None:
                exprs.append(item.optional_vars)
        return exprs
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.Raise):
        return [e for e in (stmt.exc, stmt.cause) if e is not None]
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, ast.Try):
        return []
    # Simple statements own every expression under them.
    return [
        child
        for child in ast.iter_child_nodes(stmt)
        if isinstance(child, ast.expr)
    ]


def node_calls(node: CFGNode) -> list[ast.Call]:
    """Call expressions a CFG node evaluates, in document order."""
    calls = [
        sub
        for expr in node_exprs(node)
        for sub in ast.walk(expr)
        if isinstance(sub, ast.Call)
    ]
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls
