"""Module- and package-level call graph over parsed modules.

Resolves, statically and conservatively:

* direct calls to module-level and nested functions (``helper(x)``);
* ``self.method()`` / ``cls.method()`` calls, walking base classes
  that are defined anywhere in the analyzed project (bases are matched
  by name — nominal, not structural);
* calls through import aliases (``from repro.x import f``,
  ``import repro.x.y as z; z.f()``), including relative imports;
* one level of simple assignment aliases (``g = helper; g(x)``).

Anything else — calls on arbitrary objects, dynamic dispatch through
containers, decorators that replace functions — resolves to ``None``
and the dataflow rules treat the callee as unknown (no effects, no
taint propagation). That is an under-approximation at call *edges*
but keeps every reported interprocedural fact witnessed by a real
syntactic path, which is the precision bias the quality gate wants:
findings must be actionable, not speculative.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Iterator

from repro.analysis.engine import ModuleContext, ProjectContext

__all__ = [
    "FunctionInfo",
    "CallGraph",
    "build_call_graph",
    "project_call_graph",
    "module_name",
    "own_nodes",
    "dotted_chain",
]

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def module_name(path: str) -> str:
    """Dotted module name of a source path.

    Anchored at the last ``src`` component when present (the repo
    layout), else at the first ``repro`` component, else just the file
    stem — good enough to match absolute imports inside the project.
    """
    pure = PurePosixPath(path.replace("\\", "/"))
    parts = list(pure.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:] if parts else ["<module>"]
    return ".".join(parts) or "<module>"


def own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body without entering nested functions."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, _FUNCTION_NODES + (ast.Lambda,)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def dotted_chain(expr: ast.expr) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``, or ``None`` if not a chain."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


@dataclass
class FunctionInfo:
    """One analyzed function or method."""

    qualname: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    module: ModuleContext
    class_name: str | None = None
    parent: str | None = None  # enclosing function's qualname

    @property
    def param_names(self) -> list[str]:
        """Positional parameter names, in order."""
        args = self.node.args
        return [a.arg for a in args.posonlyargs + args.args]

    @property
    def receiver_name(self) -> str | None:
        """The ``self``/``cls`` parameter name for methods."""
        if self.class_name is None:
            return None
        params = self.param_names
        return params[0] if params else None


@dataclass
class _ClassInfo:
    qualname: str
    module_name: str
    bases: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)  # name -> qualname


def _import_aliases(tree: ast.Module, package: str) -> dict[str, str]:
    """Local name -> dotted target for this module's imports."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package.split(".") if package else []
                cut = node.level - 1
                if cut:
                    base_parts = base_parts[:-cut] if cut <= len(base_parts) else []
                base = ".".join(base_parts)
            else:
                base = ""
            module = node.module or ""
            prefix = ".".join(part for part in (base, module) if part)
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{prefix}.{alias.name}" if prefix else alias.name
                aliases[alias.asname or alias.name] = target
    return aliases


class CallGraph:
    """Functions, classes, and resolved call edges of one project."""

    def __init__(self):
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, _ClassInfo] = {}  # qualname -> info
        self._classes_by_name: dict[str, list[_ClassInfo]] = {}
        self._module_functions: dict[str, dict[str, str]] = {}
        self._nested: dict[str, dict[str, str]] = {}
        self._aliases: dict[str, dict[str, str]] = {}
        self._module_names: dict[int, str] = {}  # id(ModuleContext) -> name
        self._by_module: dict[int, list[FunctionInfo]] = {}
        self._call_cache: dict[str, list[tuple[ast.Call, FunctionInfo | None]]] = {}

    # -- registration (build time) ---------------------------------------

    def _add_function(self, info: FunctionInfo) -> None:
        self.functions[info.qualname] = info
        self._by_module.setdefault(id(info.module), []).append(info)

    # -- queries ----------------------------------------------------------

    def functions_of(self, module: ModuleContext) -> list[FunctionInfo]:
        """This module's functions, in document order."""
        return list(self._by_module.get(id(module), []))

    def calls_of(self, info: FunctionInfo) -> list[tuple[ast.Call, FunctionInfo | None]]:
        """The function's own call sites with resolved callees.

        Document order (by position); nested functions' calls belong
        to the nested function, not to the enclosing one.
        """
        cached = self._call_cache.get(info.qualname)
        if cached is None:
            calls = [
                node for node in own_nodes(info.node) if isinstance(node, ast.Call)
            ]
            calls.sort(key=lambda c: (c.lineno, c.col_offset))
            cached = [(call, self.resolve_call(info, call)) for call in calls]
            self._call_cache[info.qualname] = cached
        return cached

    def resolve_call(
        self, caller: FunctionInfo, call: ast.Call
    ) -> FunctionInfo | None:
        """Resolve one call site to a project function, if possible."""
        chain = dotted_chain(call.func)
        if chain is None:
            return None
        module = self._module_names[id(caller.module)]
        if len(chain) == 1:
            return self._resolve_name(caller, module, chain[0], depth=0)
        receiver = caller.receiver_name
        if receiver is not None and chain[0] == receiver and len(chain) == 2:
            return self._resolve_method(
                f"{module}.{caller.class_name}", chain[1], set()
            )
        # Import-alias chains: z.f(), repro.x.y.f().
        aliases = self._aliases.get(module, {})
        root = aliases.get(chain[0], chain[0] if chain[0] == "repro" else None)
        if root is None:
            return None
        dotted = ".".join([root] + chain[1:])
        info = self.functions.get(dotted)
        if info is not None:
            return info
        # z.Class.method / from-imported class: resolve final attr as
        # a method of a known class.
        head, _, method = dotted.rpartition(".")
        class_info = self.classes.get(head)
        if class_info is not None:
            return self._resolve_method(head, method, set())
        return None

    def _resolve_name(
        self, caller: FunctionInfo, module: str, name: str, depth: int
    ) -> FunctionInfo | None:
        # Nested functions of the caller (and its enclosing chain).
        scope: FunctionInfo | None = caller
        while scope is not None:
            nested = self._nested.get(scope.qualname, {})
            if name in nested:
                return self.functions.get(nested[name])
            scope = self.functions.get(scope.parent) if scope.parent else None
        # Module-level functions.
        qualname = self._module_functions.get(module, {}).get(name)
        if qualname is not None:
            return self.functions.get(qualname)
        # from-imports of project functions.
        target = self._aliases.get(module, {}).get(name)
        if target is not None and target in self.functions:
            return self.functions[target]
        # One level of simple local aliasing: g = helper; g(x).
        if depth == 0:
            original = self._local_alias(caller, name)
            if original is not None:
                return self._resolve_name(caller, module, original, depth=1)
        return None

    def _local_alias(self, caller: FunctionInfo, name: str) -> str | None:
        sources: set[str] = set()
        assignments = 0
        for node in own_nodes(caller.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    assignments += 1
                    if isinstance(node.value, ast.Name):
                        sources.add(node.value.id)
        if assignments == 1 and len(sources) == 1:
            return sources.pop()
        return None

    def _resolve_method(
        self, class_qualname: str, method: str, seen: set[str]
    ) -> FunctionInfo | None:
        if class_qualname in seen:
            return None
        seen.add(class_qualname)
        class_info = self.classes.get(class_qualname)
        if class_info is None:
            return None
        if method in class_info.methods:
            return self.functions.get(class_info.methods[method])
        for base_name in class_info.bases:
            base = self._find_class(base_name, class_info.module_name)
            if base is not None:
                found = self._resolve_method(base.qualname, method, seen)
                if found is not None:
                    return found
        return None

    def _find_class(self, name: str, prefer_module: str) -> _ClassInfo | None:
        candidates = self._classes_by_name.get(name, [])
        if not candidates:
            return None
        for candidate in candidates:
            if candidate.module_name == prefer_module:
                return candidate
        return candidates[0] if len(candidates) == 1 else None


def _collect_module(graph: CallGraph, module: ModuleContext) -> None:
    name = module_name(module.path)
    graph._module_names[id(module)] = name
    # Relative imports resolve against the containing package: the
    # module's own name for an ``__init__`` (module_name already
    # stripped the suffix), its parent otherwise.
    if module.path.replace("\\", "/").endswith("__init__.py"):
        package = name
    else:
        package = name.rpartition(".")[0]
    graph._aliases[name] = _import_aliases(module.tree, package)
    toplevel: dict[str, str] = {}
    graph._module_functions[name] = toplevel

    def add_function(
        node, qualname: str, class_name: str | None, parent: str | None
    ) -> FunctionInfo:
        info = FunctionInfo(
            qualname=qualname,
            name=node.name,
            node=node,
            module=module,
            class_name=class_name,
            parent=parent,
        )
        graph._add_function(info)
        collect_nested(node, info)
        return info

    def collect_nested(func, owner: FunctionInfo) -> None:
        nested: dict[str, str] = {}
        # Direct nested defs only; grandchildren are collected by the
        # recursive add_function call on each child.
        stack = list(ast.iter_child_nodes(func))
        while stack:
            child = stack.pop()
            if isinstance(child, _FUNCTION_NODES):
                qualname = f"{owner.qualname}.{child.name}"
                nested[child.name] = qualname
                add_function(child, qualname, owner.class_name, owner.qualname)
                continue
            if isinstance(child, (ast.Lambda, ast.ClassDef)):
                continue
            stack.extend(ast.iter_child_nodes(child))
        if nested:
            graph._nested[owner.qualname] = nested

    for stmt in module.tree.body:
        if isinstance(stmt, _FUNCTION_NODES):
            qualname = f"{name}.{stmt.name}"
            toplevel[stmt.name] = qualname
            add_function(stmt, qualname, None, None)
        elif isinstance(stmt, ast.ClassDef):
            class_qualname = f"{name}.{stmt.name}"
            bases = []
            for base in stmt.bases:
                chain = dotted_chain(base)
                if chain:
                    bases.append(chain[-1])
            class_info = _ClassInfo(
                qualname=class_qualname, module_name=name, bases=bases
            )
            graph.classes[class_qualname] = class_info
            graph._classes_by_name.setdefault(stmt.name, []).append(class_info)
            for item in stmt.body:
                if isinstance(item, _FUNCTION_NODES):
                    method_qualname = f"{class_qualname}.{item.name}"
                    class_info.methods[item.name] = method_qualname
                    add_function(item, method_qualname, stmt.name, None)


def build_call_graph(modules: list[ModuleContext]) -> CallGraph:
    """Build the call graph of a set of parsed modules."""
    graph = CallGraph()
    for module in modules:
        _collect_module(graph, module)
    return graph


def project_call_graph(project: ProjectContext) -> CallGraph:
    """The project's call graph, built once and cached on the context."""
    graph = project.cache.get("callgraph")
    if graph is None:
        graph = build_call_graph(project.modules)
        project.cache["callgraph"] = graph
    return graph
