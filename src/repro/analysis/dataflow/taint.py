"""``nondeterminism-flow``: taint tracking for nondeterministic values.

The determinism contract (see ``rules_determinism``) bans wall-clock
and unseeded-randomness *calls* syntactically. This rule closes the
remaining gap: a nondeterministic **value** — an iteration order, an
OS directory listing, an object address — flowing into an output that
the benchmark's reproducibility depends on. Sources:

* iteration over a ``set`` (order is salted per process) or over
  ``os.listdir`` results (filesystem order); ``dict`` iteration is
  insertion-ordered in CPython but the *construction* order of dicts
  built from unordered inputs is not, so dict iteration seeds taint
  too — the conservative side of the trade-off;
* ``time.*`` reads, unseeded ``random.*`` draws, and ``id()``.

Sinks: message emission (``send``/``send_to_neighbors``/``_send``),
``charge_*`` arguments, writes into result/trace containers, and
partition-key computations. A value laundered *through a helper* is
still caught: the call graph supplies per-function summaries (does it
return taint? do its parameters reach a sink inside it? does it
return an unordered container?) so the report lands at the caller's
call site with the helper named.

Sanitizers kill taint: ``sorted(...)``, ``min``/``max``/``sum``/
``len`` — anything that reduces an unordered collection to an
order-independent value.

Precision choices (deliberate, documented for the DESIGN notes):
container types are inferred for **locals only** and only when every
binding of the name is a literal/constructor — ``self.adjacency``
stays untyped, so engines iterating instance state do not light up;
parameter summaries are all-or-nothing (a helper whose *any* param
reaches a sink flags *any* tainted argument) — an over-approximation
at the interprocedural edge that keeps the analysis one-pass per
function.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.dataflow.callgraph import (
    CallGraph,
    FunctionInfo,
    dotted_chain,
    own_nodes,
    project_call_graph,
)
from repro.analysis.dataflow.cfg import CFG, CFGNode, node_exprs
from repro.analysis.dataflow.solver import ForwardAnalysis, solve_forward
from repro.analysis.dataflow.typestate import CHARGE_IN_ROUND, _cached_cfg
from repro.analysis.engine import (
    ModuleContext,
    ProjectContext,
    ProjectRule,
    register_project_rule,
)
from repro.analysis.model import ERROR, Finding
from repro.analysis.rules_determinism import DETERMINISM_SCOPE

__all__ = ["NondeterminismFlowRule", "TaintSummary"]

#: Calls whose result is nondeterministic, by dotted name.
_SOURCE_CALLS = {
    "os.listdir": "os.listdir() filesystem order",
    "os.scandir": "os.scandir() filesystem order",
    "id": "id() object address",
}

#: Methods whose arguments are message/trace/charge sinks.
_SINK_ATTRS = {
    "send": "message emission",
    "send_to_neighbors": "message emission",
    "_send": "message emission",
}

#: Order-destroying calls: their result is deterministic even when
#: their input is an unordered collection.
_SANITIZERS = {"sorted", "len", "min", "max", "sum", "frozenset", "set"}

#: Name fragments marking an assignment target as a result/trace sink.
_RESULT_TOKENS = ("result", "trace", "record", "profile")

#: Name fragments marking a call as a partition-key computation.
_PARTITION_TOKENS = ("partition", "owner_of", "shard")


@dataclass(frozen=True)
class TaintSummary:
    """Interprocedural taint facts about one function.

    ``returns_taint`` — the return value may be nondeterministic from
    the function's *own* sources; ``taints_params_to_return`` — a
    tainted argument may flow to the return value; ``params_reach_sink``
    — a tainted argument may reach a sink inside the function (the
    caller's call site is then the reportable flow); ``returns_unordered``
    — the function returns a set/dict, so iterating its result seeds
    order taint at the caller.
    """

    returns_taint: str | None = None  # source label, or None
    taints_params_to_return: bool = False
    params_reach_sink: str | None = None  # sink label, or None
    returns_unordered: bool = False


_NEUTRAL = TaintSummary()


def _unordered_locals(func: ast.AST) -> set[str]:
    """Names provably bound to set/dict values (locals only).

    A name qualifies only when *every* binding of it in the function
    is a set/dict literal, constructor call, or comprehension —
    single-source, flow-insensitive, no attribute inference.
    """
    unordered: set[str] = set()
    disqualified: set[str] = set()
    for node in own_nodes(func):
        if not isinstance(node, ast.Assign):
            continue
        is_unordered = _is_unordered_expr(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                (unordered if is_unordered else disqualified).add(target.id)
            else:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        disqualified.add(sub.id)
    return unordered - disqualified


def _is_unordered_expr(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp, ast.Dict, ast.DictComp)):
        return True
    if isinstance(expr, ast.Call):
        chain = dotted_chain(expr.func)
        return chain is not None and chain[-1] in ("set", "dict", "frozenset")
    return False


def _expr_names(expr: ast.expr) -> Iterator[ast.Name]:
    yield from (n for n in ast.walk(expr) if isinstance(n, ast.Name))


class _TaintAnalysis(ForwardAnalysis):
    """Tainted-local-names analysis over one function.

    The state is the frozenset of tainted names; ``labels`` records a
    human-readable source description per name (best effort — a side
    table, not part of the lattice).
    """

    def __init__(
        self,
        graph: CallGraph,
        info: FunctionInfo,
        summaries: dict[str, TaintSummary],
        seed_params: bool,
    ):
        self.graph = graph
        self.info = info
        self.summaries = summaries
        self.seed_params = seed_params
        self.unordered = _unordered_locals(info.node)
        self.labels: dict[str, str] = {}

    def initial_state(self):
        if not self.seed_params:
            return frozenset()
        params = self.info.param_names
        if self.info.receiver_name is not None:
            params = params[1:]  # self/cls is not caller data
        for name in params:
            self.labels.setdefault(name, "tainted argument")
        return frozenset(params)

    def join(self, a, b):
        return a | b

    def transfer(self, node: CFGNode, state):
        stmt = node.stmt
        if stmt is None:
            return state
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            label = self.iteration_taint(stmt.iter, state)
            targets = [n.id for n in _expr_names(stmt.target)]
            if label is not None:
                for name in targets:
                    self.labels[name] = label
                return state | frozenset(targets)
            return state - frozenset(targets)
        if isinstance(stmt, ast.Assign):
            label = self.expr_taint(stmt.value, state)
            names: list[str] = []
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.append(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    names.extend(n.id for n in _expr_names(target))
            if label is not None:
                for name in names:
                    self.labels[name] = label
                return state | frozenset(names)
            return state - frozenset(names)
        if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            label = self.expr_taint(stmt.value, state)
            if label is not None:
                self.labels[stmt.target.id] = label
                return state | frozenset({stmt.target.id})
            return state
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if stmt.value is None:
                return state
            label = self.expr_taint(stmt.value, state)
            if label is not None:
                self.labels[stmt.target.id] = label
                return state | frozenset({stmt.target.id})
            return state - frozenset({stmt.target.id})
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            tainted: set[str] = set()
            for item in stmt.items:
                if item.optional_vars is None:
                    continue
                label = self.expr_taint(item.context_expr, state)
                if label is not None:
                    for name_node in _expr_names(item.optional_vars):
                        self.labels[name_node.id] = label
                        tainted.add(name_node.id)
            return state | frozenset(tainted)
        return state

    # -- expression classification ----------------------------------------

    def iteration_taint(self, iterable: ast.expr, state) -> str | None:
        """Why iterating ``iterable`` yields nondeterministic order."""
        if isinstance(iterable, ast.Name):
            if iterable.id in self.unordered:
                return "set/dict iteration order"
            if iterable.id in state:
                return self.labels.get(iterable.id, "tainted value")
            return None
        if isinstance(iterable, (ast.Set, ast.SetComp, ast.Dict, ast.DictComp)):
            return "set/dict iteration order"
        if isinstance(iterable, ast.Call):
            chain = dotted_chain(iterable.func)
            if chain is not None:
                if chain[-1] in ("keys", "values", "items") and isinstance(
                    iterable.func, ast.Attribute
                ) and isinstance(iterable.func.value, ast.Name) and (
                    iterable.func.value.id in self.unordered
                ):
                    return "set/dict iteration order"
                if chain[-1] in ("set", "frozenset"):
                    return "set/dict iteration order"
            callee = self.graph.resolve_call(self.info, iterable)
            if callee is not None and self.summaries.get(
                callee.qualname, _NEUTRAL
            ).returns_unordered:
                return (
                    f"unordered container returned by {callee.name!r}"
                )
        return self.expr_taint(iterable, state)

    def expr_taint(self, expr: ast.expr, state) -> str | None:
        """Source label if ``expr``'s value may be nondeterministic."""
        if isinstance(expr, ast.Call):
            chain = dotted_chain(expr.func)
            if chain is not None:
                name = chain[-1] if len(chain) == 1 else ".".join(chain)
                if chain[-1] in _SANITIZERS and len(chain) == 1:
                    return None  # order destroyed / order-independent
                if name in _SOURCE_CALLS:
                    return _SOURCE_CALLS[name]
                if chain[0] == "time":
                    return f"wall-clock {name}()"
                if chain[0] == "random":
                    return f"unseeded {name}()"
            callee = self.graph.resolve_call(self.info, expr)
            if callee is not None:
                summary = self.summaries.get(callee.qualname, _NEUTRAL)
                if summary.returns_taint is not None:
                    return (
                        f"{summary.returns_taint} via {callee.name!r}"
                    )
                if summary.taints_params_to_return:
                    for arg in _call_args(expr):
                        label = self.expr_taint(arg, state)
                        if label is not None:
                            return f"{label} via {callee.name!r}"
                    return None
                # Known project function with a neutral summary: its
                # return value is clean even if arguments are tainted.
                return None
            # Unknown callee: conservatively propagate argument and
            # receiver taint through the call.
            for sub in _call_args(expr):
                label = self.expr_taint(sub, state)
                if label is not None:
                    return label
            if isinstance(expr.func, ast.Attribute):
                return self.expr_taint(expr.func.value, state)
            return None
        if isinstance(expr, ast.Name):
            if expr.id in state:
                return self.labels.get(expr.id, "tainted value")
            return None
        label = None
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                label = self.expr_taint(child, state)
                if label is not None:
                    return label
        return label


def _call_args(call: ast.Call) -> Iterator[ast.expr]:
    for arg in call.args:
        yield arg.value if isinstance(arg, ast.Starred) else arg
    for keyword in call.keywords:
        yield keyword.value


def _returns_unordered(info: FunctionInfo) -> bool:
    unordered = _unordered_locals(info.node)
    saw_return = False
    for node in own_nodes(info.node):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        saw_return = True
        value = node.value
        if _is_unordered_expr(value):
            continue
        if isinstance(value, ast.Name) and value.id in unordered:
            continue
        return False
    return saw_return


@dataclass(frozen=True)
class _Flow:
    """One observed taint-to-sink flow inside a function."""

    line: int
    source: str
    sink: str


@register_project_rule
class NondeterminismFlowRule(ProjectRule):
    """Report nondeterministic values flowing into benchmark outputs."""

    id = "nondeterminism-flow"
    severity = ERROR
    category = "determinism"

    def check(self, project: ProjectContext) -> Iterator[tuple[ModuleContext, Finding]]:
        """Yield ``(module, finding)`` taint flows in scoped modules."""
        graph = project_call_graph(project)
        cfgs: dict[str, CFG] = project.cache.setdefault("cfgs", {})
        summaries = self._fixpoint_summaries(graph, cfgs)
        for module in project.modules:
            if not module.in_scope(DETERMINISM_SCOPE):
                continue
            for info in graph.functions_of(module):
                # Only flows from the function's *own* sources are
                # reported here; a flow that exists only when the
                # parameters are assumed tainted is the callee half of
                # an interprocedural path and is reported at the
                # caller that supplies the tainted argument.
                intrinsic = self._run(
                    graph, info, summaries, cfgs, seed_params=False
                )
                for flow in intrinsic.flows:
                    yield module, self.finding(
                        f"{info.name!r}: nondeterministic value "
                        f"({flow.source}) reaches {flow.sink}; order- or "
                        "time-dependent output breaks run reproducibility "
                        "— sort or derive the value deterministically",
                        flow.line,
                    )

    # -- summaries --------------------------------------------------------

    def _fixpoint_summaries(
        self, graph: CallGraph, cfgs: dict[str, CFG]
    ) -> dict[str, TaintSummary]:
        summaries: dict[str, TaintSummary] = {}
        ordered = [
            graph.functions[qualname] for qualname in sorted(graph.functions)
        ]
        for _ in range(4):
            changed = False
            for info in ordered:
                summary = self._summarize(graph, info, summaries, cfgs)
                if summaries.get(info.qualname) != summary:
                    summaries[info.qualname] = summary
                    changed = True
            if not changed:
                break
        return summaries

    def _summarize(
        self,
        graph: CallGraph,
        info: FunctionInfo,
        summaries: dict[str, TaintSummary],
        cfgs: dict[str, CFG],
    ) -> TaintSummary:
        intrinsic = self._run(graph, info, summaries, cfgs, seed_params=False)
        with_params = self._run(graph, info, summaries, cfgs, seed_params=True)
        # Differential attribution: anything the seeded run observes
        # beyond the intrinsic run is caused by the parameters.
        intrinsic_sites = {(flow.line, flow.sink) for flow in intrinsic.flows}
        param_sink = next(
            (
                flow.sink
                for flow in with_params.flows
                if (flow.line, flow.sink) not in intrinsic_sites
            ),
            None,
        )
        return TaintSummary(
            returns_taint=intrinsic.returned,
            taints_params_to_return=(
                with_params.returned is not None and intrinsic.returned is None
            ),
            params_reach_sink=param_sink,
            returns_unordered=_returns_unordered(info),
        )

    # -- per-function runs -------------------------------------------------

    def _run(
        self,
        graph: CallGraph,
        info: FunctionInfo,
        summaries: dict[str, TaintSummary],
        cfgs: dict[str, CFG],
        seed_params: bool,
    ):
        cfg = _cached_cfg(cfgs, info)
        analysis = _TaintAnalysis(graph, info, summaries, seed_params)
        in_states = solve_forward(cfg, analysis)
        flows: list[_Flow] = []
        returned: str | None = None
        for node in cfg.statement_nodes():
            state = in_states.get(node.index)
            if state is None:
                continue
            stmt = node.stmt
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                label = analysis.expr_taint(stmt.value, state)
                if label is not None and returned is None:
                    returned = label
            flows.extend(
                self._judge_node(graph, info, summaries, analysis, node, state)
            )
        return _RunResult(flows=flows, returned=returned)

    def _judge_node(
        self,
        graph: CallGraph,
        info: FunctionInfo,
        summaries: dict[str, TaintSummary],
        analysis: _TaintAnalysis,
        node: CFGNode,
        state,
    ) -> Iterator[_Flow]:
        stmt = node.stmt
        # Result/trace container writes.
        if isinstance(stmt, (ast.Assign, ast.AugAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    root = _sink_container(target)
                    if root is not None:
                        label = analysis.expr_taint(stmt.value, state)
                        if label is not None:
                            yield _Flow(
                                line=stmt.lineno,
                                source=label,
                                sink=f"the {root} store",
                            )
        for expr in node_exprs(node):
            for call in (
                n for n in ast.walk(expr) if isinstance(n, ast.Call)
            ):
                yield from self._judge_call(
                    graph, info, summaries, analysis, call, state
                )

    def _judge_call(
        self,
        graph: CallGraph,
        info: FunctionInfo,
        summaries: dict[str, TaintSummary],
        analysis: _TaintAnalysis,
        call: ast.Call,
        state,
    ) -> Iterator[_Flow]:
        chain = dotted_chain(call.func)
        attr = chain[-1] if chain else None
        sink: str | None = None
        if attr in _SINK_ATTRS:
            sink = _SINK_ATTRS[attr]
        elif attr is not None and attr in CHARGE_IN_ROUND:
            sink = f"{attr}() cost accounting"
        elif attr is not None and any(
            token in attr.lower() for token in _PARTITION_TOKENS
        ):
            sink = f"the {attr}() partition key"
        elif attr is not None and any(
            token in attr.lower() for token in _RESULT_TOKENS
        ) and isinstance(call.func, ast.Attribute) and attr in (
            "append", "add", "extend", "update", "insert",
        ):
            sink = "a result/trace container"
        if sink is None and isinstance(call.func, ast.Attribute) and (
            call.func.attr in ("append", "extend", "insert", "add", "update")
        ):
            root = _sink_container(call.func.value)
            if root is not None:
                sink = f"the {root} store"
        if sink is None:
            # Interprocedural: tainted argument to a helper whose
            # params reach a sink inside it.
            callee = graph.resolve_call(info, call)
            if callee is None:
                return
            summary = summaries.get(callee.qualname, _NEUTRAL)
            if summary.params_reach_sink is None:
                return
            sink = f"{summary.params_reach_sink} inside {callee.name!r}"
        # One flow per call site: the first tainted argument wins.
        for arg in _call_args(call):
            label = analysis.expr_taint(arg, state)
            if label is not None:
                yield _Flow(line=call.lineno, source=label, sink=sink)
                return


@dataclass
class _RunResult:
    flows: list[_Flow]
    returned: str | None


def _sink_container(target: ast.expr) -> str | None:
    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        name = node.attr if isinstance(node, ast.Attribute) else None
        if name is not None and any(t in name.lower() for t in _RESULT_TOKENS):
            return name
        node = node.value
    if isinstance(node, ast.Name) and any(
        t in node.id.lower() for t in _RESULT_TOKENS
    ):
        return node.id
    return None
