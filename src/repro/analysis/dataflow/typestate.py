"""``cost-protocol``: typestate checking of the CostMeter lifecycle.

The contract every engine relies on (see ``repro/core/cost.py``):

* ``begin_round`` opens a round; opening twice without an intervening
  ``end_round`` raises at runtime — here it is caught statically;
* every ``begin_round`` is matched by exactly one ``end_round`` on
  **all** paths, including paths through exception handlers that
  swallow an error raised mid-round;
* the in-round ``charge_*`` family must not run while no round is
  open (``charge_startup``/``allocate_memory``/``release_memory`` are
  exempt — they are legal outside rounds);
* the :class:`RoundRecord` returned by ``end_round`` is closed — any
  later write to it silently corrupts recorded profiles and breaks
  trace replay (the exact GPU-engine bug PR 4 fixed by hand; the
  regression fixture in ``tests/analysis/fixtures`` reintroduces it).

Analysis shape: a forward dataflow over the function CFG tracking the
set of possible open-round depths (0, 1, 2 — capped; the cap only
loses precision beyond a double-begin, which is already a violation).
Entry is assumed depth 0 — in this codebase rounds never span call
boundaries in the opening direction (validated by the sweep), and the
assumption is what makes local verdicts possible. Functions that do
not touch ``begin_round``/``end_round`` themselves are not judged
locally; instead they get a *summary* — net round delta at return,
and whether they (transitively) charge the meter — and call sites in
round-managing functions apply the summary, which is how a charge
buried two helpers deep is still caught against the caller's closed
state. Exceptions that *escape* a function mid-round are deliberately
not reported: the driver layer converts those runs into failures, and
the record never reaches a report. Exceptions that are *swallowed*
with a round open are reported, because execution then continues on a
corrupted meter.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.dataflow.callgraph import (
    CallGraph,
    FunctionInfo,
    dotted_chain,
    own_nodes,
    project_call_graph,
)
from repro.analysis.dataflow.cfg import CFG, CFGNode, build_cfg, node_calls
from repro.analysis.dataflow.solver import ForwardAnalysis, solve_forward
from repro.analysis.engine import (
    ModuleContext,
    ProjectContext,
    ProjectRule,
    function_anchor,
    register_project_rule,
)
from repro.analysis.model import ERROR, Finding

__all__ = ["CostProtocolRule", "ProtocolSummary"]

#: CostMeter methods that require an open round (they charge into the
#: current RoundRecord). charge_startup, allocate_memory and
#: release_memory are legal outside rounds and therefore absent.
CHARGE_IN_ROUND = {
    "charge_compute",
    "charge_random_access",
    "charge_compute_bulk",
    "charge_messages_bulk",
    "charge_message",
    "charge_shuffle",
    "charge_disk_read",
    "charge_disk_write",
}

_OPEN = "begin_round"
_CLOSE = "end_round"

#: Open-depth cap; beyond a double-begin precision no longer matters.
_MAX_DEPTH = 2

#: In-place mutators that count as writes to a closed record.
_MUTATORS = {
    "append", "add", "extend", "update", "insert", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
}


@dataclass(frozen=True)
class ProtocolSummary:
    """Interprocedural facts about one function.

    ``exit_deltas`` — possible net changes to the caller's open-round
    depth when the function returns normally (assuming it entered with
    none of its own rounds open). ``requires_open`` — the function
    (transitively) charges the meter at a point where it has not
    opened a round of its own, i.e. it relies on the caller holding
    one.
    """

    exit_deltas: frozenset[int] = frozenset({0})
    requires_open: bool = False


_NEUTRAL = ProtocolSummary()


def _call_event(call: ast.Call) -> str | None:
    """Classify a call as a protocol event by method name."""
    chain = dotted_chain(call.func)
    if chain is None or len(chain) < 2:
        return None
    attr = chain[-1]
    if attr == _OPEN:
        return "open"
    if attr == _CLOSE:
        return "close"
    if attr in CHARGE_IN_ROUND:
        return "charge"
    return None


class _ProtocolAnalysis(ForwardAnalysis):
    """Depth-set analysis over one function."""

    def __init__(self, graph: CallGraph, info: FunctionInfo,
                 summaries: dict[str, ProtocolSummary]):
        self.graph = graph
        self.info = info
        self.summaries = summaries

    def initial_state(self):
        return frozenset({0})

    def join(self, a, b):
        return a | b

    def transfer(self, node: CFGNode, state):
        for call in node_calls(node):
            state = self._apply(call, state)
        return state

    def _apply(self, call: ast.Call, state):
        event = _call_event(call)
        if event == "open":
            return frozenset(min(d + 1, _MAX_DEPTH) for d in state)
        if event == "close":
            return frozenset(max(d - 1, 0) for d in state)
        if event == "charge":
            return state
        callee = self.graph.resolve_call(self.info, call)
        if callee is None:
            return state
        summary = self.summaries.get(callee.qualname, _NEUTRAL)
        if summary.exit_deltas == frozenset({0}):
            return state
        return frozenset(
            min(max(d + delta, 0), _MAX_DEPTH)
            for d in state
            for delta in summary.exit_deltas
        )


def _cached_cfg(cfgs: dict[str, CFG], info: FunctionInfo) -> CFG:
    cfg = cfgs.get(info.qualname)
    if cfg is None:
        cfg = build_cfg(info.node)
        cfgs[info.qualname] = cfg
    return cfg


def _analyze_function(
    graph: CallGraph,
    info: FunctionInfo,
    summaries: dict[str, ProtocolSummary],
    cfgs: dict[str, CFG],
) -> tuple[ProtocolSummary, CFG, dict[int, frozenset]]:
    cfg = _cached_cfg(cfgs, info)
    analysis = _ProtocolAnalysis(graph, info, summaries)
    in_states = solve_forward(cfg, analysis)
    exit_state = in_states.get(CFG.EXIT, frozenset({0}))
    requires_open = False
    for node in cfg.statement_nodes():
        state = in_states.get(node.index)
        if state is None:
            continue
        for call in node_calls(node):
            event = _call_event(call)
            if event == "charge":
                if 0 in state:
                    requires_open = True
            elif event is None:
                callee = graph.resolve_call(info, call)
                if callee is not None and summaries.get(
                    callee.qualname, _NEUTRAL
                ).requires_open and 0 in state:
                    requires_open = True
            # Opens/closes change state within _apply below.
            state = analysis._apply(call, state)
    return (
        ProtocolSummary(
            exit_deltas=exit_state or frozenset({0}),
            requires_open=requires_open,
        ),
        cfg,
        in_states,
    )


def _mentions_protocol(info: FunctionInfo) -> bool:
    for node in own_nodes(info.node):
        if isinstance(node, ast.Attribute) and (
            node.attr in CHARGE_IN_ROUND or node.attr in (_OPEN, _CLOSE)
        ):
            return True
    return False


def _relevant_functions(graph: CallGraph) -> set[str]:
    """Functions that (transitively) touch the CostMeter protocol.

    Everything else has the neutral summary by construction, so the
    fixpoint never needs to analyze it — the pruning that keeps the
    full-src run inside the selfcheck timing budget.
    """
    relevant = {
        qualname
        for qualname, info in graph.functions.items()
        if _mentions_protocol(info)
    }
    changed = True
    while changed:
        changed = False
        for qualname, info in graph.functions.items():
            if qualname in relevant:
                continue
            for _, callee in graph.calls_of(info):
                if callee is not None and callee.qualname in relevant:
                    relevant.add(qualname)
                    changed = True
                    break
    return relevant


def _manages_rounds(info: FunctionInfo) -> bool:
    for node in own_nodes(info.node):
        if isinstance(node, ast.Attribute) and node.attr in (_OPEN, _CLOSE):
            return True
    return False


@register_project_rule
class CostProtocolRule(ProjectRule):
    """Statically verify the CostMeter begin/charge/end lifecycle."""

    id = "cost-protocol"
    severity = ERROR
    category = "cost-accounting"

    def check(self, project: ProjectContext) -> Iterator[tuple[ModuleContext, Finding]]:
        """Yield ``(module, finding)`` protocol violations."""
        graph = project_call_graph(project)
        cfgs: dict[str, CFG] = project.cache.setdefault("cfgs", {})
        summaries = self._fixpoint_summaries(graph, cfgs)
        for module in project.modules:
            for info in graph.functions_of(module):
                if _manages_rounds(info):
                    yield from (
                        (module, finding)
                        for finding in self._check_manager(
                            graph, info, summaries, cfgs
                        )
                    )
                yield from (
                    (module, finding)
                    for finding in self._check_closed_records(info)
                )

    # -- summaries --------------------------------------------------------

    def _fixpoint_summaries(
        self, graph: CallGraph, cfgs: dict[str, CFG]
    ) -> dict[str, ProtocolSummary]:
        summaries: dict[str, ProtocolSummary] = {}
        ordered = [
            graph.functions[qualname]
            for qualname in sorted(_relevant_functions(graph))
        ]
        # Finite lattice (depth sets + one bool) and monotone updates:
        # a handful of passes reaches the fixpoint even through
        # recursion; the bound is a defensive backstop.
        for _ in range(8):
            changed = False
            for info in ordered:
                summary, _, _ = _analyze_function(graph, info, summaries, cfgs)
                if summaries.get(info.qualname) != summary:
                    summaries[info.qualname] = summary
                    changed = True
            if not changed:
                break
        return summaries

    # -- local verdicts ---------------------------------------------------

    def _check_manager(
        self,
        graph: CallGraph,
        info: FunctionInfo,
        summaries: dict[str, ProtocolSummary],
        cfgs: dict[str, CFG],
    ) -> Iterator[Finding]:
        _, cfg, in_states = _analyze_function(graph, info, summaries, cfgs)
        analysis = _ProtocolAnalysis(graph, info, summaries)
        for node in cfg.statement_nodes():
            state = in_states.get(node.index)
            if state is None:
                continue
            for call in node_calls(node):
                yield from self._judge_call(graph, info, summaries, call, state)
                state = analysis._apply(call, state)
        exit_state = in_states.get(CFG.EXIT)
        if exit_state and any(depth > 0 for depth in exit_state):
            yield self.finding(
                f"{info.name!r} can return with a round still open: some "
                "path (possibly through an exception handler that swallows "
                "an error raised mid-round) misses end_round",
                function_anchor(info.node),
            )

    def _judge_call(
        self,
        graph: CallGraph,
        info: FunctionInfo,
        summaries: dict[str, ProtocolSummary],
        call: ast.Call,
        state: frozenset,
    ) -> Iterator[Finding]:
        event = _call_event(call)
        if event == "open":
            if any(depth >= 1 for depth in state):
                yield self.finding(
                    f"{info.name!r} calls begin_round while a round may "
                    "already be open (end_round missing on some path into "
                    "this point)",
                    call.lineno,
                )
        elif event == "close":
            if state == frozenset({0}):
                yield self.finding(
                    f"{info.name!r} calls end_round with no round open",
                    call.lineno,
                )
        elif event == "charge":
            if state == frozenset({0}):
                attr = dotted_chain(call.func)[-1]
                yield self.finding(
                    f"{info.name!r} calls {attr} with no round open; "
                    "in-round charges outside begin_round/end_round raise "
                    "at runtime",
                    call.lineno,
                )
        else:
            callee = graph.resolve_call(info, call)
            if (
                callee is not None
                and summaries.get(callee.qualname, _NEUTRAL).requires_open
                and state == frozenset({0})
            ):
                yield self.finding(
                    f"{info.name!r} calls {callee.name!r}, which charges "
                    "the meter, while no round is open here",
                    call.lineno,
                )

    # -- closed-record immutability ---------------------------------------

    def _check_closed_records(self, info: FunctionInfo) -> Iterator[Finding]:
        """Flag writes to names bound from ``end_round(...)`` results.

        Flow-insensitive by design: a name is a *closed record* only
        when every assignment to it in the function is an
        ``end_round(...)`` result, so rebinding to anything else
        disqualifies it and no reaching-definition machinery is
        needed.
        """
        bound_from_close: set[str] = set()
        bound_otherwise: set[str] = set()
        for node in own_nodes(info.node):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
                value_is_close = (
                    isinstance(node.value, ast.Call)
                    and _call_event(node.value) == "close"
                )
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.NamedExpr)):
                targets = [node.target]
                value_is_close = False
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets = [node.target]
                value_is_close = False
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    if value_is_close:
                        bound_from_close.add(target.id)
                    else:
                        bound_otherwise.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List, ast.Starred)):
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            bound_otherwise.add(name_node.id)
                # Attribute/Subscript targets are *writes into* an
                # object, not rebindings of the root name — the write
                # detector below judges those.
        closed = bound_from_close - bound_otherwise
        if not closed:
            return
        for node in own_nodes(info.node):
            written: ast.expr | None = None
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                node_targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in node_targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        if _root_name(target) in closed:
                            written = target
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ) and node.func.attr in _MUTATORS:
                if _root_name(node.func.value) in closed:
                    written = node.func
            if written is not None:
                yield self.finding(
                    f"{info.name!r} writes to closed round record "
                    f"'{ast.unparse(written)}' after end_round returned it; "
                    "closed rounds are immutable (trace replay and profile "
                    "fingerprints depend on it) — pass overrides to "
                    "end_round instead",
                    written.lineno,
                )


def _root_name(node: ast.expr) -> str | None:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None
