"""Interprocedural dataflow analyses for the quality gate.

Layers, bottom up:

* :mod:`~repro.analysis.dataflow.cfg` — per-function control-flow
  graphs over the Python AST (branches, loops, ``try``/``except``/
  ``finally``, ``with``, early returns, exception edges);
* :mod:`~repro.analysis.dataflow.solver` — a generic forward worklist
  solver with collecting (may) semantics;
* :mod:`~repro.analysis.dataflow.callgraph` — a project call graph
  resolving direct calls, ``self.``/``cls.`` methods, and import
  aliases, the carrier for per-function summaries;
* :mod:`~repro.analysis.dataflow.typestate` — the ``cost-protocol``
  rule: CostMeter ``begin_round``/``end_round`` lifecycle checking;
* :mod:`~repro.analysis.dataflow.taint` — the ``nondeterminism-flow``
  rule: nondeterministic values tracked to benchmark outputs.
"""

from repro.analysis.dataflow.callgraph import (
    CallGraph,
    FunctionInfo,
    build_call_graph,
    project_call_graph,
)
from repro.analysis.dataflow.cfg import (
    CFG,
    EXCEPTION,
    NORMAL,
    CFGNode,
    build_cfg,
    node_calls,
    node_exprs,
)
from repro.analysis.dataflow.solver import ForwardAnalysis, solve_forward
from repro.analysis.dataflow.taint import NondeterminismFlowRule, TaintSummary
from repro.analysis.dataflow.typestate import CostProtocolRule, ProtocolSummary

__all__ = [
    "NORMAL",
    "EXCEPTION",
    "CFG",
    "CFGNode",
    "build_cfg",
    "node_exprs",
    "node_calls",
    "ForwardAnalysis",
    "solve_forward",
    "CallGraph",
    "FunctionInfo",
    "build_call_graph",
    "project_call_graph",
    "CostProtocolRule",
    "ProtocolSummary",
    "NondeterminismFlowRule",
    "TaintSummary",
]
