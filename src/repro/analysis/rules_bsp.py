"""The BSP race detector.

Under the Pregel model the engine simulates, ``compute`` runs once per
vertex per superstep, conceptually in parallel across workers; the GAS
model's ``gather``/``apply``/``scatter`` kernels run per edge or per
vertex the same way. The only sanctioned communication channels are
the context object (``ctx.value``, ``ctx.send``, aggregators) and the
delivered message list. Anything else a kernel touches is shared
between concurrently executing vertices, so a *write* to it — or a
read of another vertex's state that did not arrive as a message — is a
genuine data race on a real BSP platform, even though this simulator's
sequential execution happens to make it look deterministic.

The detector statically analyzes every class deriving from a
``*Program`` base and flags, inside the kernel methods:

* attribute or subscript writes rooted at ``self`` (the program object
  is one shared instance across all vertices and workers);
* writes or known mutator-method calls on closure/global names (state
  captured from an enclosing scope is shared the same way);
* reads of private engine internals through the context object
  (``ctx._engine``-style access bypasses message delivery).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext, Rule, register_rule
from repro.analysis.model import ERROR, Finding

__all__ = ["BSPRaceRule", "KERNEL_METHODS"]

#: Kernel methods analyzed per program model (Pregel / GAS / dataflow).
KERNEL_METHODS = {"compute", "gather", "apply", "scatter", "gather_sum"}

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "append",
    "add",
    "extend",
    "update",
    "insert",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "sort",
    "reverse",
}


def _base_names(class_def: ast.ClassDef) -> list[str]:
    names = []
    for base in class_def.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _is_program_class(class_def: ast.ClassDef) -> bool:
    return any(name.endswith("Program") for name in _base_names(class_def))


def _root_name(node: ast.expr) -> str | None:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _collect_locals(func: ast.AST, declared: set[str]) -> set[str]:
    """Names bound inside the kernel (excluding global/nonlocal ones)."""
    bound: set[str] = set()

    def bind(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            if target.id not in declared:
                bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                bind(element)
        elif isinstance(target, ast.Starred):
            bind(target.value)

    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bind(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.NamedExpr)):
            bind(node.target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bind(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bind(item.optional_vars)
        elif isinstance(node, ast.comprehension):
            bind(node.target)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not func:
                bound.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
    return bound


@register_rule
class BSPRaceRule(Rule):
    """Flag cross-vertex shared-state access in BSP kernel methods."""

    id = "bsp-race"
    severity = ERROR
    category = "concurrency"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and _is_program_class(node):
                yield from self._check_class(node)

    def _check_class(self, class_def: ast.ClassDef) -> Iterator[Finding]:
        for item in class_def.body:
            if (
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name in KERNEL_METHODS
            ):
                yield from self._check_kernel(class_def.name, item)

    def _check_kernel(self, class_name: str, func: ast.AST) -> Iterator[Finding]:
        args = func.args
        params = {
            arg.arg
            for arg in (
                args.posonlyargs + args.args + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            )
        }
        self_name = None
        ordered = args.posonlyargs + args.args
        if ordered:
            self_name = ordered[0].arg
        declared: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                declared.update(node.names)
        local_names = _collect_locals(func, declared)
        kernel = f"{class_name}.{func.name}"

        def classify_write(target: ast.expr, line: int) -> Finding | None:
            if isinstance(target, ast.Name):
                if target.id in declared:
                    return self.finding(
                        f"{kernel} writes {target.id!r} declared "
                        "global/nonlocal: shared across vertices under BSP",
                        line,
                    )
                return None  # plain local rebind
            root = _root_name(target)
            if root is None:
                return None
            if root == self_name:
                return self.finding(
                    f"{kernel} writes shared program state "
                    f"'{ast.unparse(target)}': the program instance is "
                    "shared by every vertex and worker",
                    line,
                )
            if root not in local_names and root not in params:
                return self.finding(
                    f"{kernel} mutates captured state "
                    f"'{ast.unparse(target)}': closure/global objects are "
                    "shared across vertices under BSP",
                    line,
                )
            return None

        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    finding = classify_write(target, node.lineno)
                    if finding is not None:
                        yield finding
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                finding = classify_write(node.target, node.lineno)
                if finding is not None:
                    yield finding
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    finding = classify_write(target, node.lineno)
                    if finding is not None:
                        yield finding
            elif isinstance(node, ast.Call):
                finding = self._classify_call(
                    node, kernel, self_name, params, local_names
                )
                if finding is not None:
                    yield finding
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                finding = self._classify_read(
                    node, kernel, self_name, params
                )
                if finding is not None:
                    yield finding

    def _classify_call(
        self,
        node: ast.Call,
        kernel: str,
        self_name: str | None,
        params: set[str],
        local_names: set[str],
    ) -> Finding | None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _MUTATORS:
            return None
        root = _root_name(func.value)
        if root is None:
            return None
        if root == self_name:
            return self.finding(
                f"{kernel} mutates shared program state via "
                f"'{ast.unparse(func)}()': the program instance is shared "
                "by every vertex and worker",
                node.lineno,
            )
        if root not in local_names and root not in params:
            return self.finding(
                f"{kernel} mutates captured state via "
                f"'{ast.unparse(func)}()': closure/global objects are "
                "shared across vertices under BSP",
                node.lineno,
            )
        return None

    def _classify_read(
        self,
        node: ast.Attribute,
        kernel: str,
        self_name: str | None,
        params: set[str],
    ) -> Finding | None:
        # Private-attribute reads through a parameter other than self
        # reach engine internals (ctx._engine, ctx._state): vertex
        # state must arrive via messages, not via the engine's tables.
        if not node.attr.startswith("_") or node.attr.startswith("__"):
            return None
        if not isinstance(node.value, ast.Name):
            return None
        root = node.value.id
        if root in params and root != self_name:
            return self.finding(
                f"{kernel} reads engine internals "
                f"'{ast.unparse(node)}': other vertices' state must be "
                "delivered via messages",
                node.lineno,
            )
        return None
