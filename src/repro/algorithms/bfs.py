"""BFS: breadth-first search from a seed vertex.

The paper: "The breadth-first search (BFS) algorithm traverses the
graph starting from a seed vertex, visiting first all the neighbors of
a vertex before moving to the neighbors of the neighbors."

The Graphalytics output convention is a per-vertex distance map:
unreachable vertices are assigned :data:`UNREACHABLE` (matching the
"infinity" marker real drivers emit).
"""

from __future__ import annotations

from collections import deque

from repro.graph.graph import Graph

__all__ = ["bfs", "UNREACHABLE"]

#: Distance assigned to vertices the traversal never reaches.
UNREACHABLE = -1


def bfs(graph: Graph, source: int) -> dict[int, int]:
    """Hop distance from ``source`` to every vertex.

    Parameters
    ----------
    graph:
        Input graph; directed graphs are traversed along out-edges.
    source:
        Seed vertex; must exist in the graph.

    Returns
    -------
    dict
        ``{vertex: distance}`` for every vertex in the graph, with
        :data:`UNREACHABLE` for vertices not reachable from the seed.
    """
    if not graph.has_vertex(source):
        raise ValueError(f"source vertex {source} not in graph")
    distances = {int(v): UNREACHABLE for v in graph.vertices}
    distances[int(source)] = 0
    frontier = deque([int(source)])
    while frontier:
        vertex = frontier.popleft()
        next_distance = distances[vertex] + 1
        for neighbor in graph.neighbors(vertex):
            neighbor = int(neighbor)
            if distances[neighbor] == UNREACHABLE:
                distances[neighbor] = next_distance
                frontier.append(neighbor)
    return distances
