"""Reference implementations of the five Graphalytics algorithms.

Section 3.2 of the paper defines the workload: general statistics
(STATS), breadth-first search (BFS), connected components (CONN),
community detection (CD, after Leung et al.), and graph evolution
(EVO, forest-fire model after Leskovec et al.).

These single-threaded reference implementations define the *correct*
answer for each algorithm; the Output Validator compares every
platform's output against them.
"""

from repro.algorithms.stats import GraphStats, stats
from repro.algorithms.bfs import bfs
from repro.algorithms.conn import connected_components
from repro.algorithms.cd import community_detection
from repro.algorithms.evo import forest_fire_evolution, forest_fire_links

__all__ = [
    "GraphStats",
    "stats",
    "bfs",
    "connected_components",
    "community_detection",
    "forest_fire_evolution",
    "forest_fire_links",
]
