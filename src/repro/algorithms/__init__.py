"""Reference implementations of the Graphalytics algorithms.

Section 3.2 of the paper defines the original workload: general
statistics (STATS), breadth-first search (BFS), connected components
(CONN), community detection (CD, after Leung et al.), and graph
evolution (EVO, forest-fire model after Leskovec et al.). The LDBC
Graphalytics v1.0 successor added PageRank (PR), weighted single-
source shortest paths (SSSP), and local clustering coefficient (LCC),
closing the gap to its six-algorithm workload.

These single-threaded reference implementations define the *correct*
answer for each algorithm; the Output Validator compares every
platform's output against them.
"""

from repro.algorithms.stats import GraphStats, stats
from repro.algorithms.bfs import bfs
from repro.algorithms.conn import connected_components
from repro.algorithms.cd import community_detection
from repro.algorithms.evo import forest_fire_evolution, forest_fire_links
from repro.algorithms.pagerank import pagerank
from repro.algorithms.sssp import sssp
from repro.algorithms.lcc import lcc, lcc_value

__all__ = [
    "GraphStats",
    "stats",
    "bfs",
    "connected_components",
    "community_detection",
    "forest_fire_evolution",
    "forest_fire_links",
    "pagerank",
    "sssp",
    "lcc",
    "lcc_value",
]
