"""SSSP: single-source shortest paths over weighted edges.

LDBC Graphalytics' weighted workload: unlike BFS's hop counts, SSSP
minimizes the *sum of edge weights* along paths, which exercises a
different choke point — label-correcting relaxation with active-set
dynamics, where a vertex can be re-activated after it already settled
once.

The reference is a single-threaded Dijkstra. Distances are exact
min-plus floats: every implementation computes the same candidate sums
``dist[u] + w(u, v)`` and takes minima of the same values, so the
fixpoint is bitwise identical regardless of relaxation order and the
validator compares SSSP outputs exactly. Unreachable vertices map to
:data:`UNREACHABLE_DISTANCE` (``float("inf")``), the Graphalytics
"infinity" output convention.

Like every algorithm in the suite, SSSP runs on the undirected view
(the platforms all symmetrize their input).
"""

from __future__ import annotations

import heapq

from repro.graph.graph import Graph

__all__ = ["sssp", "UNREACHABLE_DISTANCE"]

#: Distance reported for vertices the source cannot reach.
UNREACHABLE_DISTANCE = float("inf")


def sssp(graph: Graph, source: int) -> dict[int, float]:
    """Weighted shortest-path distance from ``source`` to every vertex.

    Parameters
    ----------
    graph:
        A *weighted* graph (``graph.weights`` must not be ``None``);
        weights must be positive, which the :class:`Graph` constructor
        enforces.
    source:
        Seed vertex; must exist in the graph.

    Returns
    -------
    dict
        ``{vertex: distance}`` with ``0.0`` for the source and
        ``float("inf")`` for unreachable vertices.
    """
    if not graph.has_vertex(source):
        raise ValueError(f"source vertex {source} not in graph")
    if graph.weights is None:
        raise ValueError("SSSP requires a weighted graph")
    undirected = graph.to_undirected()
    adjacency = undirected.weighted_adjacency()
    distances = {int(v): UNREACHABLE_DISTANCE for v in undirected.vertices}
    source = int(source)
    distances[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        dist, vertex = heapq.heappop(heap)
        if dist > distances[vertex]:
            continue  # stale queue entry
        for neighbor, weight in adjacency[vertex]:
            candidate = dist + weight
            if candidate < distances[neighbor]:
                distances[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return distances
