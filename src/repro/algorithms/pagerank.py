"""PageRank: fixed-iteration ranking over the undirected view.

LDBC Graphalytics v1.0 (the successor of the paper's workload, see
PAPERS.md) standardized PageRank as one of its six algorithms because
it stresses a choke point the frontier algorithms never touch: *every*
vertex is active in *every* round, so per-round message volume is the
full arc count and barrier skew is maximal.

Semantics (matching Giraph's classic ``SimplePageRankComputation``,
which every simulated platform reproduces):

* all ranks start at ``1/n``;
* each iteration, every vertex ``v`` updates to
  ``(1 - d)/n + d * sum(rank[u] / degree(u) for u in neighbors(v))``;
* exactly ``iterations`` update rounds are run — no convergence test,
  no dangling-mass redistribution (the platforms symmetrize the graph,
  so a vertex with an edge always has out-degree >= 1; isolated
  vertices simply converge to ``(1 - d)/n``).

Because the benchmark's platforms operate on the undirected view of
every dataset, the reference does too; rank mass is therefore
conserved exactly at 1 for graphs without isolated vertices.
"""

from __future__ import annotations

from repro.graph.graph import Graph

__all__ = ["pagerank", "DEFAULT_DAMPING", "DEFAULT_ITERATIONS"]

#: The canonical damping factor.
DEFAULT_DAMPING = 0.85
#: Fixed iteration count (LDBC runs PageRank a fixed number of
#: rounds; small enough that the 20-graph differential sweep stays
#: fast, large enough that ranks differentiate).
DEFAULT_ITERATIONS = 10


def pagerank(
    graph: Graph,
    damping: float = DEFAULT_DAMPING,
    iterations: int = DEFAULT_ITERATIONS,
) -> dict[int, float]:
    """Rank every vertex; returns ``{vertex: rank}``.

    Ranks are floats; cross-implementation comparison must use a
    per-vertex tolerance (see ``OutputValidator``), as summation order
    differs between platforms.
    """
    if iterations < 0:
        raise ValueError("iterations must be >= 0")
    if not 0.0 <= damping <= 1.0:
        raise ValueError("damping must be in [0, 1]")
    undirected = graph.to_undirected()
    n = undirected.num_vertices
    if n == 0:
        return {}
    vertices = [int(v) for v in undirected.vertices]
    adjacency = {v: [int(u) for u in undirected.neighbors(v)] for v in vertices}
    degree = {v: len(adjacency[v]) for v in vertices}
    base = (1.0 - damping) / n
    ranks = {v: 1.0 / n for v in vertices}
    for _ in range(iterations):
        shares = {
            v: ranks[v] / degree[v] for v in vertices if degree[v] > 0
        }
        ranks = {
            v: base + damping * sum(shares[u] for u in adjacency[v])
            for v in vertices
        }
    return ranks
