"""CONN: connected components.

The paper: "The connected components (CONN) algorithm determines for
each vertex the connected component it belongs to."

Following the Graphalytics convention (and what every platform driver
implements), each component is labeled by its smallest vertex id, and
directed graphs are treated as undirected (weakly connected
components).
"""

from __future__ import annotations

from repro.graph.graph import Graph

__all__ = ["connected_components"]


def connected_components(graph: Graph) -> dict[int, int]:
    """Label every vertex with the smallest vertex id in its component.

    Uses union-find with path compression and union by size, so the
    reference implementation stays fast enough to validate the largest
    graphs the simulated platforms process.
    """
    undirected = graph.to_undirected()
    parent: dict[int, int] = {int(v): int(v) for v in undirected.vertices}
    size: dict[int, int] = {int(v): 1 for v in undirected.vertices}

    def find(vertex: int) -> int:
        root = vertex
        while parent[root] != root:
            root = parent[root]
        while parent[vertex] != root:
            parent[vertex], vertex = root, parent[vertex]
        return root

    for source, target in undirected.iter_edges():
        root_s, root_t = find(source), find(target)
        if root_s == root_t:
            continue
        if size[root_s] < size[root_t]:
            root_s, root_t = root_t, root_s
        parent[root_t] = root_s
        size[root_s] += size[root_t]

    # Second pass: a component's label is its minimum vertex id.
    label: dict[int, int] = {}
    for vertex in parent:
        root = find(vertex)
        current = label.get(root)
        if current is None or vertex < current:
            label[root] = vertex
    return {vertex: label[find(vertex)] for vertex in parent}
