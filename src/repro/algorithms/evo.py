"""EVO: graph evolution under the forest-fire model.

The paper: "The graph evolution (EVO) algorithm predicts the evolution
of the graph according to the 'forest fire' model [11]" — reference
[11] being Leskovec, Kleinberg, Faloutsos, *Graphs over time* (KDD
2005).

The forest-fire model adds new vertices. Each new vertex picks an
*ambassador* among the existing vertices and starts a "fire": from
each burning vertex it burns a deterministically-sized set of
not-yet-burned neighbors (geometrically distributed with forward
burning probability ``p``), recursively up to ``max_hops``. The new
vertex then links to every burned vertex.

Benchmark variant: arrivals are **independent** — every new vertex's
fire burns over the *original* graph, so arrivals can be processed in
parallel. This is the batch formulation used by graph-processing
benchmark implementations of EVO (a strictly sequential model cannot
be expressed as a data-parallel workload); it preserves the
computational pattern the algorithm stresses (randomized multi-source
expansion) while making the output well-defined across platforms.

All randomness is derived from a pure hash of ``(seed, new_vertex,
burning_vertex)``; any implementation following this specification —
including the Pregel, MapReduce, RDD, and graph-database versions in
:mod:`repro.platforms` — reproduces the byte-identical evolved graph,
which is what lets the Output Validator check EVO results exactly.
"""

from __future__ import annotations

import hashlib


from repro.graph.graph import Graph

__all__ = [
    "forest_fire_evolution",
    "forest_fire_links",
    "ambassador_for",
    "burn_budget",
    "burn_victims",
    "single_fire",
]

#: Default forward burning probability from the paper's model.
DEFAULT_P_FORWARD = 0.3
#: Default cap on fire propagation depth (keeps EVO bounded on the
#: highly connected SNB-like graphs).
DEFAULT_MAX_HOPS = 2


def _hash_fraction(*parts: int) -> float:
    """Deterministic uniform-[0,1) value from integer parts."""
    payload = ":".join(str(int(part)) for part in parts).encode("ascii")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def ambassador_for(seed: int, new_vertex: int, existing: list[int]) -> int:
    """Deterministic ambassador choice for a new vertex.

    ``existing`` must be the sorted list of original vertex ids; all
    platform implementations pass the same list and therefore agree.
    """
    if not existing:
        raise ValueError("cannot pick an ambassador in an empty graph")
    index = int(_hash_fraction(seed, new_vertex, 0xA3BA55AD) * len(existing))
    return existing[min(index, len(existing) - 1)]


def burn_budget(seed: int, new_vertex: int, at_vertex: int, p_forward: float) -> int:
    """Geometric number of neighbors to burn from ``at_vertex``.

    Mean is ``p / (1 - p)``, per the forest-fire model's definition of
    the forward burning probability.
    """
    if not 0.0 <= p_forward < 1.0:
        raise ValueError("p_forward must be in [0, 1)")
    count = 0
    while _hash_fraction(seed, new_vertex, at_vertex, count) < p_forward:
        count += 1
    return count


def burn_victims(
    candidates: list[int],
    budget: int,
    seed: int,
    new_vertex: int,
    at_vertex: int,
) -> list[int]:
    """Deterministically select ``budget`` burn victims from candidates.

    Candidates are ranked by a per-candidate hash so the selection is
    stable regardless of input order.
    """
    if budget >= len(candidates):
        return sorted(candidates)
    ranked = sorted(
        candidates,
        key=lambda c: (_hash_fraction(seed, new_vertex, at_vertex, c), c),
    )
    return sorted(ranked[:budget])


def single_fire(
    adjacency: dict[int, list[int]] | dict[int, set[int]],
    existing: list[int],
    new_vertex: int,
    p_forward: float,
    max_hops: int,
    seed: int,
) -> list[int]:
    """Burned vertex set for one arrival (sorted).

    This is the per-arrival kernel every platform implementation
    reproduces: pick the ambassador, then breadth-first burning with
    deterministic budgets and victim selection.

    Victims are chosen among *all* neighbors of a burning vertex;
    already-burned victims simply ignore the (re-)burn attempt. This
    receiver-side deduplication is what a message-passing
    implementation naturally computes — a sender cannot know the
    global burned set — so the specification adopts it, keeping the
    reference and every distributed implementation byte-identical.
    """
    ambassador = ambassador_for(seed, new_vertex, existing)
    burned = {ambassador}
    frontier = [ambassador]
    depth = 0
    while frontier and depth < max_hops:
        next_frontier: set[int] = set()
        for at_vertex in sorted(frontier):
            candidates = sorted(adjacency[at_vertex])
            budget = burn_budget(seed, new_vertex, at_vertex, p_forward)
            for victim in burn_victims(candidates, budget, seed, new_vertex, at_vertex):
                if victim not in burned:
                    burned.add(victim)
                    next_frontier.add(victim)
        frontier = sorted(next_frontier)
        depth += 1
    return sorted(burned)


def forest_fire_links(
    graph: Graph,
    num_new_vertices: int,
    p_forward: float = DEFAULT_P_FORWARD,
    max_hops: int = DEFAULT_MAX_HOPS,
    seed: int = 0,
) -> dict[int, list[int]]:
    """Predicted links for each new vertex: ``{new_vertex: [targets]}``.

    New vertex ids continue after the current maximum id. This mapping
    is the EVO algorithm's validated output.
    """
    if num_new_vertices < 0:
        raise ValueError("num_new_vertices must be >= 0")
    undirected = graph.to_undirected()
    if undirected.num_vertices == 0:
        raise ValueError("cannot evolve an empty graph")
    adjacency = undirected.adjacency()
    existing = sorted(adjacency)
    next_id = existing[-1] + 1
    return {
        next_id + arrival: single_fire(
            adjacency, existing, next_id + arrival, p_forward, max_hops, seed
        )
        for arrival in range(num_new_vertices)
    }


def forest_fire_evolution(
    graph: Graph,
    num_new_vertices: int,
    p_forward: float = DEFAULT_P_FORWARD,
    max_hops: int = DEFAULT_MAX_HOPS,
    seed: int = 0,
) -> Graph:
    """Grow the graph by ``num_new_vertices`` forest-fire arrivals.

    Convenience wrapper over :func:`forest_fire_links` that
    materializes the evolved graph.
    """
    links = forest_fire_links(graph, num_new_vertices, p_forward, max_hops, seed)
    undirected = graph.to_undirected()
    edges = list(undirected.iter_edges())
    vertices = [int(v) for v in undirected.vertices] + sorted(links)
    for new_vertex, targets in links.items():
        edges.extend((target, new_vertex) for target in targets)
    return Graph(vertices, edges, directed=False)
