"""CD: community detection via label propagation.

The paper: "The community detection (CD) algorithm detects groups of
nodes that are connected to each other stronger than they are
connected to the rest of the graph [12]" — reference [12] being Leung
et al., *Towards real-time community detection in large networks*
(Phys. Rev. E 79, 2009), i.e. label propagation with hop attenuation
and node preference.

To make outputs comparable across the simulated platforms (a
requirement of the Output Validator), the reproduction fixes the
nondeterminism of classic label propagation: updates are synchronous
(all vertices update from the previous iteration's labels) and ties
are broken toward the smallest label. Every platform implements this
same synchronous rule, so CD outputs validate exactly.
"""

from __future__ import annotations

from repro.graph.graph import Graph

__all__ = ["community_detection", "propagation_step"]

#: Default hop-attenuation factor (delta in Leung et al.).
DEFAULT_HOP_ATTENUATION = 0.1
#: Default node-preference exponent (m in Leung et al.); weights a
#: neighbor's vote by degree**m.
DEFAULT_NODE_PREFERENCE = 0.1


def propagation_step(
    graph: Graph,
    labels: dict[int, int],
    scores: dict[int, float],
    degrees: dict[int, int],
    hop_attenuation: float,
    node_preference: float,
) -> tuple[dict[int, int], dict[int, float], int]:
    """One synchronous Leung et al. update; returns (labels, scores, changes).

    Each vertex collects, per candidate label, the sum over neighbors
    carrying that label of ``score(neighbor) * degree(neighbor)**m``,
    adopts the strongest label (ties to smallest label), and sets its
    own score to the maximum score among neighbors voting for the
    adopted label minus the hop attenuation ``delta``.
    """
    undirected = graph.to_undirected()
    new_labels: dict[int, int] = {}
    new_scores: dict[int, float] = {}
    changes = 0
    for vertex in undirected.vertices:
        vertex = int(vertex)
        neighbors = undirected.neighbors(vertex)
        if len(neighbors) == 0:
            new_labels[vertex] = labels[vertex]
            new_scores[vertex] = scores[vertex]
            continue
        weight_by_label: dict[int, float] = {}
        best_score_by_label: dict[int, float] = {}
        for neighbor in neighbors:
            neighbor = int(neighbor)
            label = labels[neighbor]
            vote = scores[neighbor] * degrees[neighbor] ** node_preference
            weight_by_label[label] = weight_by_label.get(label, 0.0) + vote
            previous_best = best_score_by_label.get(label, float("-inf"))
            if scores[neighbor] > previous_best:
                best_score_by_label[label] = scores[neighbor]
        # Strongest label; ties break toward the smaller label id so
        # that every platform implementation agrees.
        best_label = min(
            weight_by_label,
            key=lambda lbl: (-weight_by_label[lbl], lbl),
        )
        if best_label == labels[vertex]:
            new_labels[vertex] = labels[vertex]
            new_scores[vertex] = scores[vertex]
        else:
            new_labels[vertex] = best_label
            new_scores[vertex] = best_score_by_label[best_label] - hop_attenuation
            changes += 1
    return new_labels, new_scores, changes


def community_detection(
    graph: Graph,
    max_iterations: int = 10,
    hop_attenuation: float = DEFAULT_HOP_ATTENUATION,
    node_preference: float = DEFAULT_NODE_PREFERENCE,
) -> dict[int, int]:
    """Assign a community label to each vertex.

    Parameters
    ----------
    graph:
        Input graph (treated as undirected).
    max_iterations:
        Upper bound on propagation rounds; the algorithm also stops
        early once no vertex changes label.
    hop_attenuation:
        Score decay per hop (prevents one label flooding the graph).
    node_preference:
        Exponent weighting votes by neighbor degree.

    Returns
    -------
    dict
        ``{vertex: community label}``; labels are vertex ids (each
        community is named after one of its members).
    """
    if max_iterations < 0:
        raise ValueError("max_iterations must be >= 0")
    undirected = graph.to_undirected()
    labels = {int(v): int(v) for v in undirected.vertices}
    scores = {int(v): 1.0 for v in undirected.vertices}
    degrees = undirected.degrees()
    for _iteration in range(max_iterations):
        labels, scores, changes = propagation_step(
            undirected, labels, scores, degrees, hop_attenuation, node_preference
        )
        if changes == 0:
            break
    return labels
