"""STATS: general graph statistics.

The paper: "The general statistics (STATS) algorithm counts the
numbers of vertices and edges in the graph and computes the mean local
clustering coefficient."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.graph import Graph
from repro.graph.properties import average_clustering_coefficient

__all__ = ["GraphStats", "stats"]


@dataclass(frozen=True)
class GraphStats:
    """Output record of the STATS algorithm."""

    num_vertices: int
    num_edges: int
    mean_local_clustering: float


def stats(graph: Graph) -> GraphStats:
    """Compute vertex count, edge count, and mean local clustering.

    Edge count follows the graph's directedness: each undirected edge
    counts once, each arc of a directed graph counts once.
    """
    return GraphStats(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        mean_local_clustering=average_clustering_coefficient(graph),
    )
