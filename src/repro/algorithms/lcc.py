"""LCC: per-vertex local clustering coefficient.

LDBC Graphalytics' triangle workload. Where STATS reports one *mean*
clustering number for the whole graph, LCC outputs the coefficient of
every vertex — the same quantity the paper's Table 1 averages — which
makes it random-access bound: every vertex intersects its neighbor
lists with its neighbors' neighbor lists.

The coefficient of a vertex ``v`` with degree ``k`` (undirected view)
is ``2 * links / (k * (k - 1))``, where ``links`` counts connected
neighbor pairs once; vertices with ``k < 2`` score ``0.0``, matching
:func:`repro.graph.properties.local_clustering_coefficient` and the
networkx convention.

Cross-platform float identity: every platform counts the integer
``links`` and then calls :func:`lcc_value`, so the resulting floats
are bitwise identical and the validator compares LCC outputs exactly.
"""

from __future__ import annotations

from repro.graph.graph import Graph

__all__ = ["lcc", "lcc_value"]


def lcc_value(links: int, degree: int) -> float:
    """Coefficient from the integer pair count and the degree.

    ``links`` is the number of *unordered* connected neighbor pairs
    (each triangle through the vertex counts once). Using one shared
    float expression across the reference and all eight platforms
    keeps the outputs bit-for-bit comparable.
    """
    if degree < 2:
        return 0.0
    return 2.0 * links / (degree * (degree - 1))


def lcc(graph: Graph) -> dict[int, float]:
    """Local clustering coefficient of every vertex.

    Returns ``{vertex: coefficient}`` over the undirected view.
    """
    undirected = graph.to_undirected()
    neighbor_sets = {
        int(v): set(int(u) for u in undirected.neighbors(int(v)))
        for v in undirected.vertices
    }
    out: dict[int, float] = {}
    for vertex, neighbors in neighbor_sets.items():
        links = 0
        for u in neighbors:
            # Each connected pair {u, w} counted once via u < w.
            links += sum(
                1 for w in neighbor_sets[u] if w > u and w in neighbors
            )
        out[vertex] = lcc_value(links, len(neighbors))
    return out
