"""Medusa (GPU) platform driver."""

from __future__ import annotations

from repro.core import etl
from repro.core.cost import ClusterSpec, CostMeter, RunProfile
from repro.core.platform_api import GraphHandle, Platform
from repro.core.workload import Algorithm, AlgorithmParams
from repro.graph.graph import Graph
from repro.platforms.gpu.engine import EDGE_BYTES, VERTEX_BYTES, GPUEngine, gpu_device_spec
from repro.platforms.pregel.driver import GiraphPlatform

__all__ = ["MedusaPlatform"]


class MedusaPlatform(GiraphPlatform):
    """GPU BSP platform (Medusa stand-in).

    Reuses the Giraph driver's vertex programs and output extraction —
    Medusa's programming model is vertex-centric message passing — but
    executes them on the GPU engine: dense kernels, warp-granular
    costs, device-memory limits, PCIe ETL. Where the graph fits the
    device, thousands of cores make it the fastest platform; one byte
    past device memory and it fails outright (the paper's GPU study's
    recurring observation).
    """

    name = "medusa"
    single_machine = True

    def __init__(self, cluster: ClusterSpec | None = None):
        super().__init__(cluster or gpu_device_spec())
        if self.cluster.num_workers != 1:
            raise ValueError("a GPU device is a single worker")

    def _load(self, name: str, graph: Graph) -> GraphHandle:
        undirected = graph.to_undirected()
        storage = (
            undirected.num_vertices * VERTEX_BYTES
            + 2 * undirected.num_edges * EDGE_BYTES
        )
        # The CSR graph must fit device memory before anything runs.
        meter = CostMeter(self.cluster)
        meter.allocate_memory(0, storage)
        meter.release_memory(0, storage)
        # ETL: parse on the host, then copy over PCIe (disk_bandwidth
        # plays the transfer-link role in the device spec).
        file_bytes = etl.edge_file_bytes(undirected.num_edges)
        etl_time = (
            self.cluster.startup_seconds
            + etl.parse_seconds(undirected.num_edges, 4.0, self.cluster)
            + (file_bytes + storage) / self.cluster.disk_bandwidth
        )
        return GraphHandle(
            name=name,
            platform=self.name,
            graph=undirected,
            storage_bytes=storage,
            etl_simulated_seconds=etl_time,
        )

    def _execute(
        self, handle: GraphHandle, algorithm: Algorithm, params: AlgorithmParams
    ) -> tuple[object, RunProfile]:
        meter = CostMeter(self.cluster, faults=self.faults, sinks=self.sinks)
        meter.charge_startup()
        engine = GPUEngine(handle.graph, self.cluster, meter)
        program = self._build_program(handle.graph, algorithm, params)
        result = engine.run(program)
        output = self._extract_output(handle.graph, algorithm, params, result)
        return output, meter.profile
