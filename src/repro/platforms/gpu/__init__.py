"""GPU graph-processing platform (Medusa/Totem style).

The paper's conclusion counts GPU-enabled systems among the coming
additions: "will soon include 6 more platforms for which we already
have shown proof-of-concept implementations [4, 5]" — reference [5]
being Guo et al., *An empirical performance evaluation of gpu-enabled
graph-processing systems* (CCGRID 2015), which benchmarks Medusa and
Totem.

The GPU execution model implemented here differs from every CPU
platform in ways that matter for the choke points:

* **dense kernels** — each superstep launches a kernel over *all*
  vertices (GPUs have no cheap sparse frontier), so per-superstep work
  is Θ(V + E) regardless of activity;
* **warp divergence** — threads execute in lockstep groups of 32; a
  warp takes as long as its busiest thread, so skewed degrees waste
  lanes (the "skewed execution intensity" choke point, at warp
  granularity);
* **kernel-launch overhead** per superstep instead of network
  barriers;
* **device memory** — the whole graph, message buffers included, must
  fit the GPU's RAM, a far harder wall than a cluster's aggregate
  memory;
* **PCIe transfer** — ETL pays host-to-device copy.

The engine executes the *same vertex programs* as the Giraph
simulation (the Pregel semantics are identical; Medusa's API is
vertex-centric message passing), so outputs validate unchanged.
"""

from repro.platforms.gpu.engine import GPUEngine, gpu_device_spec
from repro.platforms.gpu.driver import MedusaPlatform

__all__ = ["GPUEngine", "gpu_device_spec", "MedusaPlatform"]
