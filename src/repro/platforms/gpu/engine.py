"""BSP execution on a (simulated) GPU device.

Runs the same :class:`~repro.platforms.pregel.engine.VertexProgram`
interface as the Giraph simulation, but with GPU execution semantics:

* every superstep is a dense kernel over all vertices (inactive
  vertices still occupy threads — they just return immediately);
* vertices are mapped to *warps* of 32 consecutive threads; a warp's
  cost is ``32 × max(per-thread work)``, which is how degree skew
  burns GPU cycles (divergence + load imbalance);
* a fixed kernel-launch overhead is charged per superstep;
* all state — vertex values, adjacency, and both message buffers —
  lives in device memory, enforced against the GPU's RAM.

Messages are exchanged through device-memory buffers, so there is no
"network": message handling is just more per-thread work.
"""

from __future__ import annotations

from typing import Any

from repro.core.cost import ClusterSpec, CostMeter
from repro.platforms.pregel.engine import (
    MESSAGE_BYTES,
    VertexProgram,
    PregelResult,
)

__all__ = ["gpu_device_spec", "GPUEngine", "WARP_SIZE"]

#: Threads per warp (lockstep execution group).
WARP_SIZE = 32
#: Device bytes per vertex (value slot + flags, structure-of-arrays).
VERTEX_BYTES = 24.0
#: Device bytes per directed edge (CSR column entry).
EDGE_BYTES = 8.0
#: Kernel launch + host synchronization per superstep, seconds.
KERNEL_LAUNCH_SECONDS = 0.002


def gpu_device_spec() -> ClusterSpec:
    """A 2014-era compute GPU (Tesla K20-class).

    2496 CUDA cores; modest per-core scalar rate; 5 GB device memory
    (the hard wall the paper's GPU study keeps hitting); no network.
    """
    return ClusterSpec.from_profile("gpu-k20")


class _GPUVertexContext:
    """The vertex-program view of the GPU engine (Pregel-compatible)."""

    def __init__(self, engine: "GPUEngine"):
        self._engine = engine
        self.vertex: int = -1
        self.superstep: int = -1
        self._value: Any = None
        self._halted = False

    @property
    def num_vertices(self) -> int:
        """Total vertices on the device."""
        return len(self._engine.adjacency)

    @property
    def num_edges(self) -> int:
        """Total directed edges on the device."""
        return self._engine.num_arcs

    def neighbors(self) -> list[int]:
        """The current vertex's out-neighbors."""
        return self._engine.adjacency[self.vertex]

    def weighted_neighbors(self) -> list[tuple[int, float]]:
        """The current vertex's out-edges as ``(neighbor, weight)``."""
        return self._engine.weighted_adjacency[self.vertex]

    def degree(self) -> int:
        """The current vertex's out-degree."""
        return len(self._engine.adjacency[self.vertex])

    @property
    def value(self) -> Any:
        """The vertex's current value."""
        return self._value

    @value.setter
    def value(self, new_value: Any) -> None:
        """The vertex's current value."""
        self._value = new_value

    def send(self, target: int, message: Any) -> None:
        """Append a message to the device outbox."""
        self._engine._send(self.vertex, target, message)

    def send_to_neighbors(self, message: Any) -> None:
        """Message every out-neighbor."""
        for neighbor in self._engine.adjacency[self.vertex]:
            self._engine._send(self.vertex, neighbor, message)

    def vote_to_halt(self) -> None:
        """Deactivate until a message arrives."""
        self._halted = True

    def aggregate(self, name: str, value: Any) -> None:
        """Contribute to a device-side aggregator."""
        self._engine._aggregate(name, value)

    def aggregated(self, name: str, default: Any = 0) -> Any:
        """Read an aggregator from the previous superstep."""
        return self._engine.aggregated.get(name, default)


class GPUEngine:
    """Executes Pregel vertex programs with GPU cost semantics."""

    def __init__(self, graph, spec: ClusterSpec, meter: CostMeter | None = None):
        undirected = graph.to_undirected()
        self.graph = undirected
        self.spec = spec
        self.meter = meter or CostMeter(spec)
        self.adjacency = {
            int(v): [int(u) for u in undirected.neighbors(int(v))]
            for v in undirected.vertices
        }
        self._weighted_adjacency: dict[int, list[tuple[int, float]]] | None = None
        self.num_arcs = sum(len(adj) for adj in self.adjacency.values())
        #: Dense thread order: consecutive vertex ids share a warp.
        self.thread_order = sorted(self.adjacency)
        self.aggregated: dict[str, Any] = {}
        self._pending_aggregates: dict[str, Any] = {}
        self._persistent_totals: dict[str, Any] = {}
        self._outbox: dict[int, list] = {}
        self._outbox_bytes = 0.0
        self._program: VertexProgram | None = None
        self._resident = 0.0

    @property
    def weighted_adjacency(self) -> dict[int, list[tuple[int, float]]]:
        """Out-adjacency with edge weights, built on first (SSSP) use."""
        if self._weighted_adjacency is None:
            self._weighted_adjacency = self.graph.weighted_adjacency()
        return self._weighted_adjacency

    # -- messaging ------------------------------------------------------

    def _send(self, source: int, target: int, message: Any) -> None:
        program = self._program
        combine = program.combiner()
        queue = self._outbox.setdefault(target, [])
        if combine is not None and queue:
            # Device-side combining (atomic min/add into a value slot).
            queue[0] = combine(queue[0], message)
            return
        queue.append(message)
        extra = program.message_size(message) + MESSAGE_BYTES
        self._outbox_bytes += extra
        self.meter.allocate_memory(0, extra)

    def _aggregate(self, name: str, value: Any) -> None:
        if name in self._pending_aggregates:
            self._pending_aggregates[name] += value
        else:
            self._pending_aggregates[name] = value

    # -- memory ------------------------------------------------------------

    def _load(self, program: VertexProgram) -> None:
        resident = (
            len(self.adjacency) * (VERTEX_BYTES + program.value_bytes)
            + self.num_arcs * EDGE_BYTES
        )
        self._resident = resident
        self.meter.allocate_memory(0, resident)

    def _unload(self) -> None:
        self.meter.release_memory(0, self._resident)
        self._resident = 0.0

    # -- execution -------------------------------------------------------------

    def run(self, program: VertexProgram) -> PregelResult:
        """Execute to halting; returns the Pregel-compatible result."""
        self._program = program
        self._load(program)
        try:
            return self._run_supersteps(program)
        finally:
            self._unload()
            self._program = None

    def _charge_kernel(self, work_per_vertex: dict[int, float]) -> None:
        """Warp-granular compute charging for one kernel launch.

        Each warp of 32 consecutive threads costs 32 × its maximum
        per-thread work; warps execute across the device's cores.
        """
        total_lane_ops = 0.0
        for start in range(0, len(self.thread_order), WARP_SIZE):
            warp = self.thread_order[start : start + WARP_SIZE]
            busiest = max(work_per_vertex.get(vertex, 1.0) for vertex in warp)
            total_lane_ops += WARP_SIZE * busiest
        self.meter.charge_compute(0, total_lane_ops / self.spec.cores_per_worker)

    def _run_supersteps(self, program: VertexProgram) -> PregelResult:
        meter = self.meter
        context = _GPUVertexContext(self)
        values: dict[int, Any] = {}
        halted: dict[int, bool] = {}

        meter.begin_round("h2d-and-init")
        for vertex in self.thread_order:
            context.vertex = vertex
            context.superstep = -1
            values[vertex] = program.initial_value(vertex, context)
            halted[vertex] = False
        self._charge_kernel({v: 1.0 for v in self.thread_order})
        meter.end_round(active_vertices=len(values))

        inbox: dict[int, list] = {}
        superstep = 0
        while superstep < program.max_supersteps():
            compute_set = [
                v for v in self.thread_order if not halted[v] or v in inbox
            ]
            if not compute_set:
                break
            meter.begin_round(f"kernel-{superstep}", barrier=False)
            self._outbox = {}
            self._pending_aggregates = {}
            work: dict[int, float] = {}
            inbox_bytes_released = self._outbox_bytes
            self._outbox_bytes = 0.0
            for vertex in compute_set:
                messages = inbox.pop(vertex, [])
                halted[vertex] = False
                context.vertex = vertex
                context.superstep = superstep
                context._value = values[vertex]
                context._halted = False
                program.compute(context, messages)
                values[vertex] = context._value
                halted[vertex] = context._halted
                # Thread work: the messages digested plus edges touched
                # (senders walk their adjacency).
                work[vertex] = 1.0 + len(messages) + len(self.adjacency[vertex])
            self._charge_kernel(work)
            meter.release_memory(0, inbox_bytes_released)
            inbox = self._outbox
            self._outbox = {}

            persistent = program.persistent_aggregators()
            regular: dict[str, Any] = {}
            for name, value in self._pending_aggregates.items():
                if name in persistent:
                    self._persistent_totals[name] = (
                        self._persistent_totals.get(name, 0) + value
                    )
                else:
                    regular[name] = value
            self.aggregated = regular

            # Kernel launch + host sync replaces the cluster barrier.
            meter.end_round(
                active_vertices=len(compute_set),
                barrier_seconds=KERNEL_LAUNCH_SECONDS,
            )
            superstep += 1
        else:
            raise RuntimeError(
                f"{type(program).__name__} exceeded "
                f"{program.max_supersteps()} supersteps"
            )

        self.meter.release_memory(0, self._outbox_bytes)
        self._outbox_bytes = 0.0
        return PregelResult(
            values=values,
            supersteps=superstep,
            aggregated={**self._persistent_totals, **self.aggregated},
        )
