"""The Gather-Apply-Scatter engine (GraphLab/PowerGraph model).

Synchronous GAS execution over a **vertex cut**:

* every (undirected) edge is hash-assigned to one worker;
* a vertex is *replicated* on every worker that owns one of its
  edges; one replica (by vertex hash) is the *master*;
* each round, active vertices **gather** over their incident edges —
  each edge's gather runs on the worker that owns the edge, against
  local replica state; per-worker partial sums travel mirror→master
  (one small message per mirror, *not* per edge — the reason
  PowerGraph beats Pregel on power-law hubs);
* the master **applies** the update and broadcasts the new value back
  to the mirrors;
* **scatter** runs per edge on the edge's worker and decides which
  neighbors activate next round.

Costs are charged per worker per round to the shared
:class:`~repro.core.cost.CostMeter`: gathers and scatters on the
edge's worker, mirror synchronization as network traffic, replicated
vertex state plus local edges as worker memory.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.cost import ClusterSpec, CostMeter
from repro.graph.graph import Graph

__all__ = ["GASProgram", "GASEngine", "GASResult", "edge_partition_of"]

#: Replicated vertex state per replica (value + activation + index).
REPLICA_BYTES = 48.0
#: Per-edge storage on the owning worker.
EDGE_BYTES = 16.0

_KNUTH = 2654435761


def edge_partition_of(source: int, target: int, num_workers: int) -> int:
    """Hash-assign an undirected edge to a worker (the vertex cut)."""
    low, high = (source, target) if source <= target else (target, source)
    mixed = ((low * _KNUTH) ^ (high * 0x9E3779B9)) & 0xFFFFFFFF
    return mixed % num_workers


class GASProgram(abc.ABC):
    """A GraphLab vertex program: gather, apply, scatter."""

    #: Serialized size of one partial gather sum (mirror→master).
    gather_bytes: float = 16.0
    #: Serialized size of one vertex value (master→mirror broadcast).
    value_bytes: float = 16.0

    @abc.abstractmethod
    def initial_value(self, vertex: int, degree: int) -> Any:
        """Vertex value before the first round."""

    @abc.abstractmethod
    def initially_active(self, vertex: int) -> bool:
        """Whether the vertex participates in round 0."""

    @abc.abstractmethod
    def gather(self, vertex: int, value: Any, neighbor: int,
               neighbor_value: Any, neighbor_degree: int) -> Any:
        """Contribution of one incident edge (``None`` contributes nothing)."""

    @abc.abstractmethod
    def gather_sum(self, left: Any, right: Any) -> Any:
        """Commutative, associative combination of gather contributions."""

    @abc.abstractmethod
    def apply(self, vertex: int, value: Any, gathered: Any) -> Any:
        """New vertex value from the combined gather (or ``None`` sum)."""

    @abc.abstractmethod
    def scatter(self, vertex: int, old_value: Any, new_value: Any,
                neighbor: int) -> bool:
        """Whether this edge activates ``neighbor`` for the next round."""

    def gather_size(self, partial: Any) -> float:
        """Bytes of one partial gather sum (override if variable)."""
        return self.gather_bytes

    def value_size(self, value: Any) -> float:
        """Bytes of one vertex value (override if variable)."""
        return self.value_bytes

    def max_rounds(self) -> int:
        """Safety bound on GAS rounds."""
        return 200

    def bulk_rounds(self):
        """Optional vectorized whole-round kernel.

        Programs whose gather/apply/scatter phases are elementwise
        expressions with a ``min`` gather sum and fixed message sizes
        may return a :class:`~repro.platforms.gas.bulk.GASBulkKernel`;
        the engine then executes synchronous rounds as numpy
        operations with bit-identical cost accounting. The default
        ``None`` keeps the scalar per-arc path.
        """
        return None

    def bulk_runner(self, engine: "GASEngine"):
        """The vectorized executor for this program, if any.

        The default wraps :meth:`bulk_rounds`'s kernel in the
        min-reducing :class:`~repro.platforms.gas.bulk.BulkRoundRunner`.
        Programs whose vectorized execution does not fit that shape —
        PageRank's order-sensitive float gather sum — override this to
        return a dedicated runner instead. ``None`` keeps the scalar
        per-arc path.
        """
        # Imported here: the bulk module depends on this one.
        from repro.platforms.gas.bulk import BulkRoundRunner

        kernel = self.bulk_rounds()
        if kernel is None:
            return None
        return BulkRoundRunner(engine, self, kernel)


@dataclass
class GASResult:
    """Output of one GAS run."""

    values: dict[int, Any]
    rounds: int
    replication_factor: float = 1.0


@dataclass
class _VertexTopology:
    """Replica placement of one vertex across the cut."""

    master: int
    mirrors: set[int] = field(default_factory=set)

    @property
    def replicas(self) -> set[int]:
        """All workers holding a copy of this vertex."""
        return self.mirrors | {self.master}


class GASEngine:
    """Runs GAS programs over a vertex-cut partitioning."""

    def __init__(
        self,
        graph: Graph,
        spec: ClusterSpec,
        meter: CostMeter | None = None,
        bulk: bool = True,
    ):
        undirected = graph.to_undirected()
        self.graph = undirected
        self.spec = spec
        self.meter = meter or CostMeter(spec)
        #: Take the vectorized round path for programs that offer a
        #: :meth:`GASProgram.bulk_rounds` kernel; ``False`` forces the
        #: scalar per-arc path (the escape hatch).
        self.bulk = bulk

        # The vertex cut, computed vectorized over the CSR arrays.
        # For non-negative ids, uint64 wraparound preserves the low 32
        # bits of each product, so these equal the scalar
        # :func:`edge_partition_of` / master hash element-wise.
        workers = np.uint64(spec.num_workers)
        ids = undirected.vertices
        n = undirected.num_vertices
        hashed = ids.astype(np.uint64) * np.uint64(_KNUTH)
        self._masters = (
            (hashed & np.uint64(0xFFFFFFFF)) % workers
        ).astype(np.int64)
        arc_source = np.repeat(
            np.arange(n, dtype=np.int64), undirected.out_degrees()
        )
        _, arc_target = undirected.csr()
        self._arc_workers = self._cut_workers(
            ids[arc_source], ids[arc_target], workers
        )
        edges = undirected.edges
        self._edges_per_worker = [
            int(count)
            for count in np.bincount(
                self._cut_workers(edges[:, 0], edges[:, 1], workers),
                minlength=spec.num_workers,
            )
        ]
        # Replica placement: a vertex lives on every worker owning one
        # of its arcs, plus its master.
        replica_pairs = np.unique(
            np.concatenate(
                [
                    arc_source * spec.num_workers + self._arc_workers,
                    np.arange(n, dtype=np.int64) * spec.num_workers
                    + self._masters,
                ]
            )
        )
        replica_vertices = replica_pairs // spec.num_workers
        replica_workers = replica_pairs % spec.num_workers
        self._replicas_per_worker = np.bincount(
            replica_workers, minlength=spec.num_workers
        )
        self._total_replicas = len(replica_pairs)
        mirror = replica_workers != self._masters[replica_vertices]
        self._mirror_workers = replica_workers[mirror]
        self._mirror_offsets = np.concatenate(
            [
                np.zeros(1, dtype=np.int64),
                np.cumsum(np.bincount(replica_vertices[mirror], minlength=n)),
            ]
        )
        # Per-vertex Python structures are built lazily: the bulk path
        # never touches them and skips their O(edges) construction.
        self._adjacency: dict[int, list[int]] | None = None
        self._degrees: dict[int, int] | None = None
        self._edge_worker: dict[tuple[int, int], int] | None = None
        self._topology: dict[int, _VertexTopology] | None = None
        self._resident = [0.0] * spec.num_workers

    @staticmethod
    def _cut_workers(
        source_ids: np.ndarray, target_ids: np.ndarray, num_workers: np.uint64
    ) -> np.ndarray:
        """Vectorized :func:`edge_partition_of` over id arrays."""
        low = np.minimum(source_ids, target_ids).astype(np.uint64)
        high = np.maximum(source_ids, target_ids).astype(np.uint64)
        mixed = (
            (low * np.uint64(_KNUTH)) ^ (high * np.uint64(0x9E3779B9))
        ) & np.uint64(0xFFFFFFFF)
        return (mixed % num_workers).astype(np.int64)

    # -- lazy per-vertex structures -----------------------------------------

    @property
    def adjacency(self) -> dict[int, list[int]]:
        """Neighbor lists as Python ints, built on first (scalar) use."""
        if self._adjacency is None:
            self._adjacency = {
                int(v): [int(u) for u in self.graph.neighbors(int(v))]
                for v in self.graph.vertices
            }
        return self._adjacency

    @property
    def degrees(self) -> dict[int, int]:
        """Vertex id -> degree, built on first (scalar) use."""
        if self._degrees is None:
            self._degrees = {v: len(adj) for v, adj in self.adjacency.items()}
        return self._degrees

    @property
    def edge_worker(self) -> dict[tuple[int, int], int]:
        """Canonical edge -> owning worker, built on first (scalar) use."""
        if self._edge_worker is None:
            self._build_cut_dicts()
        return self._edge_worker

    @property
    def topology(self) -> dict[int, _VertexTopology]:
        """Vertex id -> replica placement, built on first (scalar) use."""
        if self._topology is None:
            self._build_cut_dicts()
        return self._topology

    def _build_cut_dicts(self) -> None:
        """Materialize the scalar path's edge/replica dictionaries."""
        self._topology = {
            v: _VertexTopology(
                master=(v * _KNUTH & 0xFFFFFFFF) % self.spec.num_workers
            )
            for v in self.adjacency
        }
        self._edge_worker = {}
        # Placement bookkeeping for the scalar path, not simulated
        # work: the engine charges for graph loading in _load.
        for source, target in self.graph.iter_edges():  # quality: ignore[cost-accounting]
            worker = edge_partition_of(source, target, self.spec.num_workers)
            self._edge_worker[(source, target)] = worker
            for endpoint in (source, target):
                topo = self._topology[endpoint]
                if worker != topo.master:
                    topo.mirrors.add(worker)

    # -- placement metadata -------------------------------------------------

    @property
    def masters(self) -> np.ndarray:
        """Master worker of each vertex, ordered by dense vertex index."""
        return self._masters

    @property
    def arc_workers(self) -> np.ndarray:
        """Owning worker of each CSR arc (aligned with ``graph.csr()``)."""
        return self._arc_workers

    @property
    def mirror_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-vertex mirror workers as ``(offsets, workers)`` CSR arrays."""
        return self._mirror_offsets, self._mirror_workers

    @property
    def replication_factor(self) -> float:
        """Mean replicas per vertex (PowerGraph's key metric)."""
        if self.graph.num_vertices == 0:
            return 1.0
        return self._total_replicas / self.graph.num_vertices

    def _edge_owner(self, u: int, v: int) -> int:
        key = (u, v) if u <= v else (v, u)
        return self.edge_worker[key]

    # -- memory ---------------------------------------------------------------

    def _load(self, program: GASProgram) -> None:
        # count * integer-valued-bytes is exactly the scalar per-replica
        # accumulation (float64 integer arithmetic below 2**53).
        per_worker = self._replicas_per_worker * (
            REPLICA_BYTES + program.value_bytes
        ) + np.asarray(self._edges_per_worker, dtype=np.float64) * EDGE_BYTES
        for worker in range(self.spec.num_workers):
            resident = float(per_worker[worker])
            self._resident[worker] = resident
            self.meter.allocate_memory(worker, resident)

    def _unload(self) -> None:
        for worker in range(self.spec.num_workers):
            self.meter.release_memory(worker, self._resident[worker])
            self._resident[worker] = 0.0

    # -- execution --------------------------------------------------------------

    def run(self, program: GASProgram) -> GASResult:
        """Execute the program to quiescence; returns final values.

        Programs that provide a :meth:`GASProgram.bulk_runner`
        executor run through the vectorized round path (unless the
        engine was built with ``bulk=False``); the cost profile is
        identical either way.
        """
        runner = program.bulk_runner(self) if self.bulk else None
        self._load(program)
        try:
            if runner is not None:
                return runner.run()
            return self._run_rounds(program)
        finally:
            self._unload()

    def run_async(self, program: GASProgram) -> GASResult:
        """Asynchronous (Gauss-Seidel) execution for monotone programs.

        The paper lists "the use of asynchronous distributed query
        processing" among the remedies for the skew/synchronization
        choke point. This mode sweeps vertices in order, applying
        updates *immediately* — a gather late in the sweep sees values
        written earlier in the same sweep — so label/distance
        information crosses many hops per sweep instead of one hop per
        barriered round.

        Correct only for *monotone* programs (BFS, CONN: values only
        ever improve and the fixpoint is order-independent); programs
        like CD whose specification is synchronous must use
        :meth:`run`.
        """
        self._load(program)
        try:
            return self._run_async_sweeps(program)
        finally:
            self._unload()

    def _run_async_sweeps(self, program: GASProgram) -> GASResult:
        meter = self.meter
        values = {
            v: program.initial_value(v, self.degrees[v]) for v in self.adjacency
        }
        active = {v for v in self.adjacency if program.initially_active(v)}
        sweeps = 0
        while active and sweeps < program.max_rounds():
            meter.begin_round(f"async-sweep-{sweeps}")
            next_active: set[int] = set()
            for vertex in sorted(active):
                gathered = None
                for neighbor in self.adjacency[vertex]:
                    worker = self._edge_owner(vertex, neighbor)
                    contribution = program.gather(
                        vertex,
                        values[vertex],
                        neighbor,
                        values[neighbor],  # freshest value: async
                        self.degrees[neighbor],
                    )
                    meter.charge_compute(worker, 1)
                    if contribution is None:
                        continue
                    gathered = (
                        contribution
                        if gathered is None
                        else program.gather_sum(gathered, contribution)
                    )
                master = self.topology[vertex].master
                meter.charge_compute(master, 1)
                updated = program.apply(vertex, values[vertex], gathered)
                if updated != values[vertex]:
                    for mirror in self.topology[vertex].mirrors:
                        meter.charge_message(
                            master, mirror, program.value_size(updated)
                        )
                old_value = values[vertex]
                values[vertex] = updated  # applied immediately
                for neighbor in self.adjacency[vertex]:
                    worker = self._edge_owner(vertex, neighbor)
                    meter.charge_compute(worker, 1)
                    if program.scatter(vertex, old_value, updated, neighbor):
                        next_active.add(neighbor)
            meter.end_round(active_vertices=len(active))
            active = next_active
            sweeps += 1
        if active:
            raise RuntimeError(
                f"{type(program).__name__} exceeded {program.max_rounds()} sweeps"
            )
        return GASResult(
            values=values,
            rounds=sweeps,
            replication_factor=self.replication_factor,
        )

    def _run_rounds(self, program: GASProgram) -> GASResult:
        meter = self.meter
        values = {
            v: program.initial_value(v, self.degrees[v]) for v in self.adjacency
        }
        active = {v for v in self.adjacency if program.initially_active(v)}

        rounds = 0
        while active and rounds < program.max_rounds():
            meter.begin_round(f"gas-{rounds}")
            # ---- gather: per edge, on the edge's worker -------------------
            partials: dict[int, dict[int, Any]] = {}  # vertex -> worker -> sum
            for vertex in active:
                for neighbor in self.adjacency[vertex]:
                    worker = self._edge_owner(vertex, neighbor)
                    contribution = program.gather(
                        vertex,
                        values[vertex],
                        neighbor,
                        values[neighbor],
                        self.degrees[neighbor],
                    )
                    meter.charge_compute(worker, 1)
                    if contribution is None:
                        continue
                    per_worker = partials.setdefault(vertex, {})
                    if worker in per_worker:
                        per_worker[worker] = program.gather_sum(
                            per_worker[worker], contribution
                        )
                    else:
                        per_worker[worker] = contribution

            # ---- mirror→master partial-sum exchange ------------------------
            gathered: dict[int, Any] = {}
            for vertex, per_worker in partials.items():
                master = self.topology[vertex].master
                total = None
                for worker, partial in per_worker.items():
                    if worker != master:
                        meter.charge_message(
                            worker, master, program.gather_size(partial)
                        )
                    total = (
                        partial
                        if total is None
                        else program.gather_sum(total, partial)
                    )
                meter.charge_compute(master, len(per_worker))
                gathered[vertex] = total

            # ---- apply on masters + broadcast *changes* to mirrors ----------
            new_values = dict(values)
            for vertex in sorted(active):
                master = self.topology[vertex].master
                meter.charge_compute(master, 1)
                updated = program.apply(vertex, values[vertex], gathered.get(vertex))
                new_values[vertex] = updated
                if updated != values[vertex]:
                    # PowerGraph synchronizes mirrors only when the
                    # value actually changed.
                    for mirror in self.topology[vertex].mirrors:
                        meter.charge_message(
                            master, mirror, program.value_size(updated)
                        )

            # ---- scatter: per edge, on the edge's worker ----------------------
            next_active: set[int] = set()
            for vertex in active:
                old_value = values[vertex]
                new_value = new_values[vertex]
                for neighbor in self.adjacency[vertex]:
                    worker = self._edge_owner(vertex, neighbor)
                    meter.charge_compute(worker, 1)
                    if program.scatter(vertex, old_value, new_value, neighbor):
                        next_active.add(neighbor)

            values = new_values
            meter.end_round(active_vertices=len(active))
            active = next_active
            rounds += 1
        if active:
            raise RuntimeError(
                f"{type(program).__name__} exceeded {program.max_rounds()} rounds"
            )
        return GASResult(
            values=values,
            rounds=rounds,
            replication_factor=self.replication_factor,
        )
