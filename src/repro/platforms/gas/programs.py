"""The Graphalytics algorithms as Gather-Apply-Scatter programs.

Each program reproduces its reference output exactly (PageRank within
the validator's per-vertex tolerance); the GAS engine's synchronous
rounds read the previous round's values, so the update timing matches
the BSP platforms' supersteps.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms import evo as evo_ref
from repro.algorithms.bfs import UNREACHABLE
from repro.algorithms.lcc import lcc_value
from repro.algorithms.sssp import UNREACHABLE_DISTANCE
from repro.platforms.gas.bulk import GASBFSBulkKernel, GASConnBulkKernel
from repro.platforms.gas.engine import GASProgram

__all__ = [
    "GASBFSProgram",
    "GASConnProgram",
    "GASCDProgram",
    "GASStatsProgram",
    "GASEvoProgram",
    "GASPageRankProgram",
    "GASSSSPProgram",
    "GASLCCProgram",
]


class GASBFSProgram(GASProgram):
    """BFS: pull the minimum neighbor distance, spread level by level."""

    gather_bytes = 8.0
    value_bytes = 8.0

    def __init__(self, source: int):
        self.source = source

    def initial_value(self, vertex: int, degree: int) -> int:
        """Everyone starts unreached; the source bootstraps in apply."""
        return UNREACHABLE

    def initially_active(self, vertex: int) -> bool:
        """Only the source starts active."""
        return vertex == self.source

    def bulk_rounds(self):
        """Vectorized distance-pulling kernel (same semantics)."""
        return GASBFSBulkKernel(self.source)

    def gather(self, vertex, value, neighbor, neighbor_value, neighbor_degree):
        """A reached neighbor offers distance ``neighbor + 1``."""
        if neighbor_value == UNREACHABLE:
            return None
        return neighbor_value + 1

    def gather_sum(self, left, right):
        """Keep the smallest candidate distance."""
        return min(left, right)

    def apply(self, vertex, value, gathered):
        """Adopt the gathered distance on first reach (source: 0)."""
        if value != UNREACHABLE:
            return value
        if vertex == self.source:
            return 0
        if gathered is not None:
            return gathered
        return value

    def scatter(self, vertex, old_value, new_value, neighbor):
        """Only *newly* reached vertices activate their neighbors.

        An unchanged value must not re-activate, or reached vertices
        would ping-pong forever.
        """
        return new_value != old_value


class GASConnProgram(GASProgram):
    """CONN: minimum-label propagation over the vertex cut."""

    gather_bytes = 8.0
    value_bytes = 8.0

    def initial_value(self, vertex: int, degree: int) -> int:
        """Every vertex starts in its own component."""
        return vertex

    def initially_active(self, vertex: int) -> bool:
        """Everyone participates in round 0."""
        return True

    def bulk_rounds(self):
        """Vectorized HashMin propagation kernel (same semantics)."""
        return GASConnBulkKernel()

    def gather(self, vertex, value, neighbor, neighbor_value, neighbor_degree):
        """Offer the neighbor's current label."""
        return neighbor_value

    def gather_sum(self, left, right):
        """Keep the smallest label."""
        return min(left, right)

    def apply(self, vertex, value, gathered):
        """Adopt a smaller label when one arrived."""
        if gathered is not None and gathered < value:
            return gathered
        return value

    def scatter(self, vertex, old_value, new_value, neighbor):
        """A shrunken label wakes the neighbors that can still improve."""
        return new_value < old_value


class GASPageRankProgram(GASProgram):
    """Fixed-iteration PageRank as synchronous GAS rounds.

    The vertex value is ``(rank, completed-iterations)`` — the counter
    lets scatter stop activating after ``iterations`` rounds, exactly
    like :class:`GASCDProgram`. Every incident edge gathers the
    neighbor's rank share; apply performs the damped update. The
    gather sum is a float addition, so the engine's per-worker
    grouping gives a different (but tolerance-equal) summation order
    than the reference.
    """

    gather_bytes = 8.0
    value_bytes = 16.0

    def __init__(
        self,
        num_vertices: int,
        damping: float = 0.85,
        iterations: int = 10,
    ):
        self.num_vertices = num_vertices
        self.damping = damping
        self.iterations = iterations

    def max_rounds(self) -> int:
        """One GAS round per PageRank iteration, plus slack."""
        return self.iterations + 2

    def initial_value(self, vertex: int, degree: int) -> tuple[float, int]:
        """``(rank, completed-iterations)``; everyone starts at 1/n."""
        return (1.0 / self.num_vertices, 0)

    def initially_active(self, vertex: int) -> bool:
        """Everyone participates while iterations remain."""
        return self.iterations > 0

    def bulk_runner(self, engine):
        """Order-preserving float-summing runner (same semantics)."""
        from repro.platforms.gas.bulk import GASPageRankBulkRunner

        return GASPageRankBulkRunner(engine, self)

    def gather(self, vertex, value, neighbor, neighbor_value, neighbor_degree):
        """The neighbor's rank share over this edge."""
        return neighbor_value[0] / neighbor_degree

    def gather_sum(self, left, right):
        """Sum the rank shares."""
        return left + right

    def apply(self, vertex, value, gathered):
        """The damped PageRank update."""
        base = (1.0 - self.damping) / self.num_vertices
        total = gathered if gathered is not None else 0.0
        return (base + self.damping * total, value[1] + 1)

    def scatter(self, vertex, old_value, new_value, neighbor):
        """Keep iterating until the budget is spent."""
        return new_value[1] < self.iterations


class GASSSSPProgram(GASProgram):
    """Weighted single-source shortest paths (label-correcting pull).

    The vertex value is the best known distance. Reached neighbors
    offer ``their distance + edge weight``; a vertex adopts a strictly
    smaller offer and wakes its neighbors. Positive weights make the
    min-plus fixpoint unique, so converged distances equal the
    Dijkstra reference exactly.
    """

    gather_bytes = 8.0
    value_bytes = 8.0

    def __init__(
        self,
        source: int,
        weighted_adjacency: dict[int, list[tuple[int, float]]],
        num_vertices: int = 0,
    ):
        self.source = source
        self.weights = {
            vertex: dict(pairs) for vertex, pairs in weighted_adjacency.items()
        }
        self.num_vertices = num_vertices

    def max_rounds(self) -> int:
        """Shortest-path hop counts are bounded by the vertex count."""
        return max(200, self.num_vertices + 2)

    def initial_value(self, vertex: int, degree: int) -> float:
        """Everyone starts unreached; the source bootstraps in apply."""
        return UNREACHABLE_DISTANCE

    def initially_active(self, vertex: int) -> bool:
        """Only the source starts active."""
        return vertex == self.source

    def gather(self, vertex, value, neighbor, neighbor_value, neighbor_degree):
        """A reached neighbor offers its distance plus the edge weight."""
        if neighbor_value == UNREACHABLE_DISTANCE:
            return None
        return neighbor_value + self.weights[vertex][neighbor]

    def gather_sum(self, left, right):
        """Keep the smallest candidate distance."""
        return min(left, right)

    def apply(self, vertex, value, gathered):
        """Adopt any improvement (source: distance 0)."""
        best = value
        if vertex == self.source:
            best = min(best, 0.0)
        if gathered is not None and gathered < best:
            best = gathered
        return best

    def scatter(self, vertex, old_value, new_value, neighbor):
        """A shortened distance wakes the neighbors."""
        return new_value < old_value


class GASCDProgram(GASProgram):
    """CD: synchronous Leung et al. label propagation as GAS rounds.

    The gather sum is the concatenated vote list (no scalar combiner
    exists for CD), and the round counter lives in the vertex value so
    scatter can stop activating once ``max_iterations`` is reached —
    exactly the GraphX formulation, and the same fixpoint as the
    reference.
    """

    value_bytes = 24.0

    def __init__(
        self,
        max_iterations: int = 10,
        hop_attenuation: float = 0.1,
        node_preference: float = 0.1,
    ):
        self.max_iterations = max_iterations
        self.hop_attenuation = hop_attenuation
        self.node_preference = node_preference

    def max_rounds(self) -> int:
        """One GAS round per propagation step, plus slack."""
        return self.max_iterations + 2

    def initial_value(self, vertex: int, degree: int):
        """``(label, score, completed-iterations)``."""
        return (vertex, 1.0, 0)

    def initially_active(self, vertex: int) -> bool:
        """Everyone participates while iterations remain."""
        return self.max_iterations > 0

    def gather(self, vertex, value, neighbor, neighbor_value, neighbor_degree):
        """One vote: the neighbor's label, score, and degree."""
        label, score, _iteration = neighbor_value
        return ((label, score, neighbor_degree),)

    def gather_sum(self, left, right):
        """Concatenate vote lists."""
        return left + right

    def gather_size(self, partial) -> float:
        """Votes are 24 bytes each."""
        return 24.0 * len(partial)

    def apply(self, vertex, value, gathered):
        """The Leung et al. update rule (ties to the smallest label)."""
        label, score, iteration = value
        if gathered is None:
            return (label, score, iteration + 1)
        weight_by_label: dict[int, float] = {}
        best_score_by_label: dict[int, float] = {}
        for other_label, other_score, other_degree in gathered:
            vote = other_score * other_degree ** self.node_preference
            weight_by_label[other_label] = (
                weight_by_label.get(other_label, 0.0) + vote
            )
            best = best_score_by_label.get(other_label, float("-inf"))
            if other_score > best:
                best_score_by_label[other_label] = other_score
        best_label = min(
            weight_by_label, key=lambda lbl: (-weight_by_label[lbl], lbl)
        )
        if best_label != label:
            return (
                best_label,
                best_score_by_label[best_label] - self.hop_attenuation,
                iteration + 1,
            )
        return (label, score, iteration + 1)

    def scatter(self, vertex, old_value, new_value, neighbor):
        """Keep propagating until the iteration budget is spent."""
        return new_value[2] < self.max_iterations


class GASStatsProgram(GASProgram):
    """STATS: one gather round shipping neighbor adjacency lists.

    The vertex value becomes its local clustering coefficient; the
    driver aggregates counts and the mean. Adjacency comes from the
    loaded graph (GAS gathers can read edge-adjacent state).
    """

    def __init__(self, adjacency: dict[int, tuple[int, ...]]):
        self.adjacency = adjacency

    def initial_value(self, vertex: int, degree: int) -> float:
        """Local clustering, to be computed in apply."""
        return 0.0

    def initially_active(self, vertex: int) -> bool:
        """Single full round."""
        return True

    def gather(self, vertex, value, neighbor, neighbor_value, neighbor_degree):
        """Ship the neighbor's adjacency list over this edge."""
        return (self.adjacency[neighbor],)

    def gather_sum(self, left, right):
        """Concatenate adjacency lists."""
        return left + right

    def gather_size(self, partial) -> float:
        """8 bytes per shipped vertex id."""
        return 8.0 * sum(len(adj) for adj in partial)

    def apply(self, vertex, value, gathered):
        """Count edges among neighbors (each reported twice)."""
        own = self.adjacency[vertex]
        degree = len(own)
        if degree < 2 or gathered is None:
            return 0.0
        own_set = set(own)
        links_twice = sum(
            1 for neighbor_list in gathered for w in neighbor_list if w in own_set
        )
        return links_twice / (degree * (degree - 1))

    def scatter(self, vertex, old_value, new_value, neighbor):
        """One round only."""
        return False


class GASLCCProgram(GASStatsProgram):
    """LCC: per-vertex local clustering via adjacency-list exchange.

    Identical round structure to :class:`GASStatsProgram` — each edge
    ships the neighbor's adjacency list — but the vertex value is the
    coefficient derived from the integer link count through the shared
    :func:`~repro.algorithms.lcc.lcc_value`, so outputs match the
    reference bit for bit.
    """

    def apply(self, vertex, value, gathered):
        """Count each triangle edge twice, then derive the coefficient."""
        own = self.adjacency[vertex]
        degree = len(own)
        if degree < 2 or gathered is None:
            return 0.0
        own_set = set(own)
        links_twice = sum(
            1 for neighbor_list in gathered for w in neighbor_list if w in own_set
        )
        return lcc_value(links_twice // 2, degree)


class GASEvoProgram(GASProgram):
    """EVO: forest-fire burning as pull-based burn attempts.

    The value is ``(burned, fresh)`` arrival→depth dicts. A gather on
    edge (v, u) picks up u's fresh burns whose deterministic victim
    set includes v; scatter activates all neighbors of freshly burned
    vertices, so every victim gathers in the following round — the
    same timing as the push-based platforms.
    """

    def __init__(
        self,
        adjacency: dict[int, tuple[int, ...]],
        ambassadors: dict[int, int],
        p_forward: float,
        max_hops: int,
        seed: int,
    ):
        self.adjacency = adjacency
        self.p_forward = p_forward
        self.max_hops = max_hops
        self.seed = seed
        self._by_ambassador: dict[int, dict[int, int]] = {}
        for arrival, ambassador in ambassadors.items():
            self._by_ambassador.setdefault(ambassador, {})[arrival] = 0
        self._victim_cache: dict[tuple[int, int], frozenset] = {}

    def max_rounds(self) -> int:
        """One round per hop, plus the seeding round and slack."""
        return self.max_hops + 2

    def _victims_of(self, arrival: int, at_vertex: int) -> frozenset:
        key = (arrival, at_vertex)
        if key not in self._victim_cache:
            candidates = sorted(self.adjacency[at_vertex])
            budget = evo_ref.burn_budget(
                self.seed, arrival, at_vertex, self.p_forward
            )
            self._victim_cache[key] = frozenset(
                evo_ref.burn_victims(
                    candidates, budget, self.seed, arrival, at_vertex
                )
            )
        return self._victim_cache[key]

    def initial_value(self, vertex: int, degree: int):
        """Everyone starts unburned; ambassadors ignite in apply."""
        return ({}, {})

    def initially_active(self, vertex: int) -> bool:
        """Fires start at the ambassadors."""
        return vertex in self._by_ambassador

    def gather(self, vertex, value, neighbor, neighbor_value, neighbor_degree):
        """Pick up the neighbor's fresh burns that target this vertex."""
        _burned, fresh = neighbor_value
        attempts = tuple(
            (arrival, depth + 1)
            for arrival, depth in sorted(fresh.items())
            if depth < self.max_hops and vertex in self._victims_of(arrival, neighbor)
        )
        return attempts or None

    def gather_sum(self, left, right):
        """Concatenate burn attempts."""
        return left + right

    def gather_size(self, partial) -> float:
        """16 bytes per burn attempt."""
        return 16.0 * len(partial)

    def apply(self, vertex, value, gathered):
        """First receipt burns; later attempts are ignored.

        An ambassador's seed fires are injected here as depth-0
        attempts (guarded by the burned set, so the injection is
        idempotent): they must be *produced* by apply, not consumed —
        victims only gather the fresh set in the following round.
        """
        burned, _old_fresh = value
        burned = dict(burned)
        fresh: dict[int, int] = {}
        attempts = list(gathered or ())
        attempts.extend(
            (arrival, 0)
            for arrival in self._by_ambassador.get(vertex, {})
        )
        for arrival, depth in sorted(attempts):
            if arrival not in burned:
                burned[arrival] = depth
                fresh[arrival] = depth
        return (burned, fresh)

    def scatter(self, vertex, old_value, new_value, neighbor):
        """Freshly burned vertices wake their neighbors to gather."""
        return bool(new_value[1])
