"""GraphLab-style platform: Gather-Apply-Scatter on a vertex cut.

One of the paper's announced additions — "The reference Graphalytics
implementation covers currently 4 popular platforms, and will soon
include 6 more platforms for which we already have shown
proof-of-concept implementations [4, 5]" — reference [4] (Guo et al.,
IPDPS 2014) benchmarks GraphLab alongside the platforms reproduced
here.

GraphLab (PowerGraph) differs from Pregel in two fundamental ways,
both implemented by this package:

* the **GAS decomposition**: a vertex program is split into *gather*
  (collect and combine values over incident edges), *apply* (update
  the vertex value from the gathered sum), and *scatter* (decide,
  per edge, whether to activate the neighbor) — no arbitrary
  messaging;
* the **vertex cut**: edges (not vertices) are partitioned across
  workers, and high-degree vertices are replicated as *mirrors* that
  compute partial gathers locally and synchronize through their
  master — the design that tames power-law hubs (the "skewed
  execution intensity" choke point).
"""

from repro.platforms.gas.engine import GASEngine, GASProgram
from repro.platforms.gas.driver import GraphLabPlatform
from repro.platforms.gas.programs import (
    GASBFSProgram,
    GASCDProgram,
    GASConnProgram,
)

__all__ = [
    "GASEngine",
    "GASProgram",
    "GraphLabPlatform",
    "GASBFSProgram",
    "GASConnProgram",
    "GASCDProgram",
]
