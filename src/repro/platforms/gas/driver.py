"""GraphLab platform driver."""

from __future__ import annotations

from repro.algorithms.evo import ambassador_for
from repro.algorithms.stats import GraphStats
from repro.core import etl
from repro.core.cost import ClusterSpec, CostMeter, RunProfile
from repro.core.platform_api import GraphHandle, Platform
from repro.core.workload import Algorithm, AlgorithmParams
from repro.graph.graph import Graph
from repro.platforms.gas.engine import EDGE_BYTES, REPLICA_BYTES, GASEngine
from repro.platforms.gas.programs import (
    GASBFSProgram,
    GASCDProgram,
    GASConnProgram,
    GASEvoProgram,
    GASLCCProgram,
    GASPageRankProgram,
    GASSSSPProgram,
    GASStatsProgram,
)

__all__ = ["GraphLabPlatform"]


class GraphLabPlatform(Platform):
    """Gather-Apply-Scatter platform (GraphLab/PowerGraph stand-in).

    Edges are partitioned across workers (a vertex cut); hubs are
    replicated as mirrors that pre-combine gathers locally, so the
    per-round network cost of a hub is proportional to its replica
    count, not its degree — the behaviour that makes this model
    competitive on power-law graphs.
    """

    name = "graphlab"

    def __init__(self, cluster: ClusterSpec, bulk: bool = True):
        super().__init__(cluster)
        #: Vectorized round path for programs that support it;
        #: ``bulk=False`` forces the scalar per-arc path (the cost
        #: profile is identical either way).
        self.bulk = bulk

    def _load(self, name: str, graph: Graph) -> GraphHandle:
        undirected = graph.to_undirected()
        adjacency = {
            int(v): tuple(int(u) for u in undirected.neighbors(int(v)))
            for v in undirected.vertices
        }
        storage = (
            undirected.num_vertices * REPLICA_BYTES
            + undirected.num_edges * EDGE_BYTES
        )
        # ETL: read the edge file, hash every edge into the vertex
        # cut, and set up mirror replicas.
        file_bytes = etl.edge_file_bytes(undirected.num_edges)
        etl_time = (
            self.cluster.startup_seconds
            + etl.distributed_read_seconds(file_bytes, self.cluster)
            + etl.parse_seconds(undirected.num_edges, 6.0, self.cluster)
            + etl.partition_shuffle_seconds(storage, self.cluster)
        )
        return GraphHandle(
            name=name,
            platform=self.name,
            graph=undirected,
            storage_bytes=storage,
            etl_simulated_seconds=etl_time,
            detail={"adjacency": adjacency},
        )

    def _execute(
        self, handle: GraphHandle, algorithm: Algorithm, params: AlgorithmParams
    ) -> tuple[object, RunProfile]:
        meter = CostMeter(self.cluster, faults=self.faults, sinks=self.sinks)
        meter.charge_startup()
        engine = GASEngine(handle.graph, self.cluster, meter, bulk=self.bulk)
        adjacency: dict[int, tuple[int, ...]] = handle.detail["adjacency"]
        program = self._build_program(handle, adjacency, algorithm, params)
        result = engine.run(program)
        output = self._extract_output(adjacency, algorithm, params, result)
        return output, meter.profile

    def _build_program(self, handle, adjacency, algorithm, params):
        if algorithm is Algorithm.BFS:
            return GASBFSProgram(params.resolve_bfs_source(handle.graph))
        if algorithm is Algorithm.CONN:
            return GASConnProgram()
        if algorithm is Algorithm.CD:
            return GASCDProgram(
                max_iterations=params.cd_max_iterations,
                hop_attenuation=params.cd_hop_attenuation,
                node_preference=params.cd_node_preference,
            )
        if algorithm is Algorithm.STATS:
            return GASStatsProgram(adjacency)
        if algorithm is Algorithm.PR:
            return GASPageRankProgram(
                num_vertices=handle.graph.num_vertices,
                damping=params.pagerank_damping,
                iterations=params.pagerank_iterations,
            )
        if algorithm is Algorithm.SSSP:
            return GASSSSPProgram(
                params.resolve_sssp_source(handle.graph),
                handle.graph.weighted_adjacency(),
                num_vertices=handle.graph.num_vertices,
            )
        if algorithm is Algorithm.LCC:
            return GASLCCProgram(adjacency)
        if algorithm is Algorithm.EVO:
            existing = sorted(adjacency)
            next_id = existing[-1] + 1
            ambassadors = {
                next_id + arrival: ambassador_for(
                    params.evo_seed, next_id + arrival, existing
                )
                for arrival in range(params.evo_new_vertices)
            }
            return GASEvoProgram(
                adjacency,
                ambassadors,
                p_forward=params.evo_p_forward,
                max_hops=params.evo_max_hops,
                seed=params.evo_seed,
            )
        raise ValueError(f"unsupported algorithm {algorithm}")

    def _extract_output(self, adjacency, algorithm, params, result):
        if algorithm is Algorithm.STATS:
            num_vertices = len(adjacency)
            num_edges = sum(len(adj) for adj in adjacency.values()) // 2
            clustering_sum = sum(result.values.values())
            return GraphStats(
                num_vertices=num_vertices,
                num_edges=num_edges,
                mean_local_clustering=(
                    clustering_sum / num_vertices if num_vertices else 0.0
                ),
            )
        if algorithm in (Algorithm.CD, Algorithm.PR):
            # The vertex value carries an iteration counter; only the
            # label (CD) / rank (PR) is the output.
            return {v: value[0] for v, value in result.values.items()}
        if algorithm is Algorithm.EVO:
            existing = sorted(adjacency)
            next_id = existing[-1] + 1
            links: dict[int, list[int]] = {
                next_id + i: [] for i in range(params.evo_new_vertices)
            }
            for vertex, (burned, _fresh) in result.values.items():
                for arrival in burned:
                    links[arrival].append(vertex)
            return {arrival: sorted(targets) for arrival, targets in links.items()}
        return dict(result.values)
