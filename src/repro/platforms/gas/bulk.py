"""Vectorized (bulk) round execution for the GAS engine.

The scalar engine runs Python-level ``gather``/``apply``/``scatter``
calls per incident arc and per active vertex, with one ``CostMeter``
charge per event. For programs whose phases are elementwise numpy
expressions with a ``min`` gather sum — BFS distance pulling and
HashMin label propagation — a whole round collapses into a handful of
CSR array operations, with per-worker tallies computed by
``np.bincount`` and charged through the batched
:meth:`~repro.core.cost.CostMeter.charge_compute_bulk` /
:meth:`~repro.core.cost.CostMeter.charge_messages_bulk` APIs.

The contract, verified by ``tests/test_bulk_equivalence.py``: a bulk
run produces *bit-identical* outputs and cost profiles to the scalar
path. The charge structure below therefore mirrors
``GASEngine._run_rounds`` exactly:

* gather — one op per incident arc of every active vertex, on the
  worker that owns the edge (charged whether or not the arc
  contributes);
* mirror→master — per distinct ``(vertex, worker)`` pair holding a
  partial, one ``gather_bytes`` message to the master when the holder
  is not the master itself, plus one combine op on the master;
* apply — one op per active vertex on its master; when the value
  changed, one ``value_bytes`` message from the master to every
  mirror;
* scatter — one op per incident arc on the owning worker.

A program opts in by returning a :class:`GASBulkKernel` from
:meth:`~repro.platforms.gas.engine.GASProgram.bulk_rounds`; the engine
falls back to the scalar path for everything else (and always for
:meth:`~repro.platforms.gas.engine.GASEngine.run_async`).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.algorithms.bfs import UNREACHABLE

__all__ = [
    "GASBulkKernel",
    "GASBFSBulkKernel",
    "GASConnBulkKernel",
    "BulkRoundRunner",
    "GASPageRankBulkRunner",
]


class GASBulkKernel(abc.ABC):
    """Vectorized counterpart of a :class:`GASProgram`'s three phases.

    Kernels operate on dense vertex indices (positions in
    ``graph.vertices``) and integer-valued numpy arrays. The runner
    owns all cost accounting; a kernel only transforms values and
    decides which arcs contribute and which vertices activate.
    """

    #: Combination of gather contributions (``gather_sum`` semantics).
    reduce = np.minimum

    @abc.abstractmethod
    def initial_values(self, vertex_ids: np.ndarray) -> np.ndarray:
        """Dense initial value array (one entry per vertex id)."""

    @abc.abstractmethod
    def initially_active(
        self, vertex_ids: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """Sorted dense indices of the round-0 active set."""

    @abc.abstractmethod
    def gather_arcs(
        self, neighbor_values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-arc contributions from the neighbors' current values.

        Returns ``(mask, contributions)`` where ``mask`` marks the
        arcs that contribute (scalar ``gather`` returned non-``None``)
        and ``contributions`` holds one value per *masked* arc.
        """

    @abc.abstractmethod
    def apply(
        self,
        active: np.ndarray,
        old_values: np.ndarray,
        gathered_mask: np.ndarray,
        gathered: np.ndarray,
    ) -> np.ndarray:
        """New value per active vertex from the combined gathers.

        ``gathered`` is only meaningful where ``gathered_mask`` is
        set (vertices whose gather produced at least one
        contribution).
        """

    def scatter_flags(
        self, old_values: np.ndarray, new_values: np.ndarray
    ) -> np.ndarray:
        """Which active vertices activate their neighbors (per vertex).

        BFS and CONN scatter predicates depend only on the vertex's
        own old/new value, so one flag per active vertex expands to
        all of its incident arcs.
        """
        return new_values != old_values


class GASBFSBulkKernel(GASBulkKernel):
    """Vectorized GAS BFS (pull the minimum neighbor distance).

    Mirrors :class:`~repro.platforms.gas.programs.GASBFSProgram`: only
    the source starts active; reached neighbors offer ``distance + 1``;
    a newly reached vertex adopts the minimum offer and wakes its
    neighbors.
    """

    def __init__(self, source: int):
        self.source = source
        self._source_idx: int | None = None

    def initial_values(self, vertex_ids: np.ndarray) -> np.ndarray:
        """All vertices start unreached; remembers the source index."""
        position = int(np.searchsorted(vertex_ids, self.source))
        self._source_idx = (
            position
            if position < len(vertex_ids)
            and vertex_ids[position] == self.source
            else None
        )
        return np.full(len(vertex_ids), UNREACHABLE, dtype=np.int64)

    def initially_active(self, vertex_ids, values):
        """Only the source starts active (nothing if it is absent)."""
        if self._source_idx is None:
            return np.empty(0, dtype=np.int64)
        return np.array([self._source_idx], dtype=np.int64)

    def gather_arcs(self, neighbor_values):
        """Reached neighbors offer ``their distance + 1``."""
        mask = neighbor_values != UNREACHABLE
        return mask, neighbor_values[mask] + 1

    def apply(self, active, old_values, gathered_mask, gathered):
        """Adopt the gathered distance on first reach (source: 0)."""
        new_values = old_values.copy()
        unreached = old_values == UNREACHABLE
        adopt = unreached & gathered_mask
        new_values[adopt] = gathered[adopt]
        # The source bootstraps to 0 regardless of gathers, exactly
        # like the scalar apply's `vertex == source` branch.
        source_here = unreached & (active == self._source_idx)
        new_values[source_here] = 0
        return new_values


class GASConnBulkKernel(GASBulkKernel):
    """Vectorized GAS CONN (minimum-label propagation).

    Mirrors :class:`~repro.platforms.gas.programs.GASConnProgram`:
    everyone starts active in its own component; every arc offers the
    neighbor's label; a vertex adopts a strictly smaller label and
    wakes its neighbors.
    """

    def initial_values(self, vertex_ids: np.ndarray) -> np.ndarray:
        """Every vertex starts labeled with its own id."""
        return vertex_ids.astype(np.int64, copy=True)

    def initially_active(self, vertex_ids, values):
        """Everyone participates in round 0."""
        return np.arange(len(vertex_ids), dtype=np.int64)

    def gather_arcs(self, neighbor_values):
        """Every arc offers the neighbor's current label."""
        return np.ones(len(neighbor_values), dtype=bool), neighbor_values

    def apply(self, active, old_values, gathered_mask, gathered):
        """Adopt a smaller label when one arrived."""
        adopt = gathered_mask & (gathered < old_values)
        return np.where(adopt, gathered, old_values)

    def scatter_flags(self, old_values, new_values):
        """A shrunken label wakes the neighbors that can still improve."""
        return new_values < old_values


class BulkRoundRunner:
    """Drives a :class:`GASBulkKernel` with exact scalar-path costs.

    Instantiated by :meth:`GASEngine.run` when the program offers a
    kernel and the engine's bulk path is enabled; reads the engine's
    vectorized vertex-cut arrays (arc owners, masters, mirror lists)
    so every per-worker tally matches the scalar loops bit for bit.
    """

    def __init__(self, engine, program, kernel: GASBulkKernel):
        self.engine = engine
        self.program = program
        self.kernel = kernel
        graph = engine.graph
        self.ids = graph.vertices
        self.offsets, self.targets = graph.csr()
        self.n = graph.num_vertices
        self.num_workers = engine.spec.num_workers
        self.masters = engine.masters
        self.arc_workers = engine.arc_workers
        self.mirror_offsets, self.mirror_workers = engine.mirror_csr
        self.gather_payload = float(program.gather_bytes)
        self.value_payload = float(program.value_bytes)

    def run(self):
        """Execute to quiescence; returns a scalar-identical result."""
        from repro.platforms.gas.engine import GASResult

        meter, program, kernel = self.engine.meter, self.program, self.kernel
        values = kernel.initial_values(self.ids)
        active = kernel.initially_active(self.ids, values)

        rounds = 0
        while len(active) and rounds < program.max_rounds():
            meter.begin_round(f"gas-{rounds}")
            arc_owner, arc_neighbor, arc_counts = self._expand_arcs(active)
            # Gather: one op per incident arc, on the edge's worker,
            # contributing or not.
            arc_ops = np.bincount(arc_owner, minlength=self.num_workers)
            self._charge_ops(arc_ops)
            mask, contributions = kernel.gather_arcs(values[arc_neighbor])
            gathered_vertices, gathered = self._exchange_partials(
                np.repeat(active, arc_counts)[mask], arc_owner[mask], contributions
            )
            # Spread the per-vertex gathers over the active set.
            slots = np.searchsorted(active, gathered_vertices)
            gathered_mask = np.zeros(len(active), dtype=bool)
            gathered_mask[slots] = True
            gathered_full = np.zeros(len(active), dtype=np.int64)
            gathered_full[slots] = gathered
            # Apply: one op per active vertex on its master; broadcast
            # changed values to the mirrors.
            self._charge_ops(
                np.bincount(self.masters[active], minlength=self.num_workers)
            )
            old_values = values[active]
            new_values = kernel.apply(active, old_values, gathered_mask, gathered_full)
            self._broadcast_changes(active[new_values != old_values])
            # Scatter: one op per incident arc on the edge's worker.
            self._charge_ops(arc_ops)
            flags = kernel.scatter_flags(old_values, new_values)
            next_active = np.unique(arc_neighbor[np.repeat(flags, arc_counts)])
            values[active] = new_values
            meter.end_round(active_vertices=len(active))
            active = next_active
            rounds += 1
        if len(active):
            raise RuntimeError(
                f"{type(program).__name__} exceeded {program.max_rounds()} rounds"
            )
        return GASResult(
            values={
                int(vertex): int(value)
                for vertex, value in zip(self.ids, values)
            },
            rounds=rounds,
            replication_factor=self.engine.replication_factor,
        )

    # -- phase helpers ------------------------------------------------

    def _expand_arcs(
        self, active: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Incident arcs of the active set from the CSR arrays.

        Returns ``(owner_workers, neighbor_indices, per_vertex_counts)``
        grouped by active vertex — the same arc enumeration the scalar
        gather and scatter loops walk.
        """
        starts = self.offsets[active]
        counts = self.offsets[active + 1] - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, counts
        bounds = np.cumsum(counts)
        positions = np.arange(total, dtype=np.int64)
        positions += np.repeat(starts - (bounds - counts), counts)
        return self.arc_workers[positions], self.targets[positions], counts

    def _exchange_partials(
        self,
        contrib_vertices: np.ndarray,
        contrib_workers: np.ndarray,
        contributions: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Combine contributions per (vertex, worker), sync to masters.

        Charges one ``gather_bytes`` message per partial held off its
        vertex's master and one combine op per partial on the master,
        exactly like the scalar mirror→master exchange. Returns the
        sorted vertices that gathered anything and their combined
        values.
        """
        if len(contrib_vertices) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        key = contrib_vertices * self.num_workers + contrib_workers
        order = np.argsort(key, kind="stable")
        pair_keys, first = np.unique(key[order], return_index=True)
        partials = self.kernel.reduce.reduceat(contributions[order], first)
        pair_vertex = pair_keys // self.num_workers
        pair_worker = pair_keys % self.num_workers
        pair_master = self.masters[pair_vertex]
        remote = pair_worker != pair_master
        self._charge_pair_messages(
            pair_worker[remote], pair_master[remote], self.gather_payload
        )
        # One combine op on the master per per-worker partial.
        self._charge_ops(np.bincount(pair_master, minlength=self.num_workers))
        gathered_vertices, vertex_first = np.unique(pair_vertex, return_index=True)
        gathered = self.kernel.reduce.reduceat(partials, vertex_first)
        return gathered_vertices, gathered

    def _broadcast_changes(self, changed: np.ndarray) -> None:
        """Master→mirror value messages for every changed vertex."""
        if len(changed) == 0:
            return
        starts = self.mirror_offsets[changed]
        counts = self.mirror_offsets[changed + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return
        bounds = np.cumsum(counts)
        positions = np.arange(total, dtype=np.int64)
        positions += np.repeat(starts - (bounds - counts), counts)
        self._charge_pair_messages(
            np.repeat(self.masters[changed], counts),
            self.mirror_workers[positions],
            self.value_payload,
        )

    # -- charging helpers ---------------------------------------------

    def _charge_ops(self, ops_per_worker: np.ndarray) -> None:
        """Charge precomputed per-worker op tallies in bulk."""
        meter = self.engine.meter
        for worker in np.nonzero(ops_per_worker)[0]:
            meter.charge_compute_bulk(int(worker), float(ops_per_worker[worker]))

    def _charge_pair_messages(
        self, src_workers: np.ndarray, dst_workers: np.ndarray, payload: float
    ) -> None:
        """Bulk-charge one message per (src, dst) worker-pair member."""
        meter = self.engine.meter
        pair = src_workers * self.num_workers + dst_workers
        pair_counts = np.bincount(pair, minlength=self.num_workers ** 2)
        for index in np.nonzero(pair_counts)[0]:
            meter.charge_messages_bulk(
                int(index) // self.num_workers,
                int(index) % self.num_workers,
                int(pair_counts[index]),
                payload,
            )


class GASPageRankBulkRunner(BulkRoundRunner):
    """Vectorized fixed-iteration PageRank with exact scalar costs.

    PageRank's gather sum is a *float addition*, so the result depends
    on operand order and :class:`BulkRoundRunner`'s ``reduceat``-based
    exchange (pairwise summation) cannot reproduce the scalar path.
    The scalar engine folds contributions in two levels: per
    ``(vertex, worker)`` partial in incident-arc order, then
    mirror→master partials in dict-insertion (first-contributing-arc)
    order. ``np.add.at`` performs additions sequentially in index
    order, so streaming the arcs in that exact order gives bit-equal
    ranks.
    """

    def __init__(self, engine, program):
        super().__init__(engine, program, kernel=None)

    def run(self):
        """Execute ``iterations`` synchronous rounds; scalar-identical."""
        from repro.platforms.gas.engine import GASResult

        meter, program = self.engine.meter, self.program
        n = self.n
        damping, iterations = program.damping, program.iterations
        values = np.full(n, 1.0 / n if n else 0.0, dtype=np.float64)
        applied = np.zeros(n, dtype=np.int64)
        degrees = (self.offsets[1:] - self.offsets[:-1]).astype(np.float64)
        base = (1.0 - damping) / n if n else 0.0

        active = (
            np.arange(n, dtype=np.int64)
            if iterations > 0
            else np.empty(0, dtype=np.int64)
        )
        rounds = 0
        while len(active):
            meter.begin_round(f"gas-{rounds}")
            arc_owner, arc_neighbor, arc_counts = self._expand_arcs(active)
            arc_ops = np.bincount(arc_owner, minlength=self.num_workers)
            self._charge_ops(arc_ops)  # gather: one op per incident arc
            contributions = values[arc_neighbor] / degrees[arc_neighbor]
            gathered = self._exchange_sum_partials(
                np.repeat(active, arc_counts), arc_owner, contributions, active
            )
            # Apply on the masters; every vertex's (rank, iteration)
            # value changes, so every mirror hears about it.
            self._charge_ops(
                np.bincount(self.masters[active], minlength=self.num_workers)
            )
            values[active] = base + damping * gathered
            applied[active] += 1
            self._broadcast_changes(active)
            self._charge_ops(arc_ops)  # scatter: one op per incident arc
            meter.end_round(active_vertices=len(active))
            rounds += 1
            if rounds < iterations:
                active = np.unique(arc_neighbor)
            else:
                active = np.empty(0, dtype=np.int64)
        return GASResult(
            values={
                int(vertex): (float(rank), int(iteration))
                for vertex, rank, iteration in zip(self.ids, values, applied)
            },
            rounds=rounds,
            replication_factor=self.engine.replication_factor,
        )

    def _exchange_sum_partials(
        self,
        contrib_vertices: np.ndarray,
        contrib_workers: np.ndarray,
        contributions: np.ndarray,
        active: np.ndarray,
    ) -> np.ndarray:
        """Float-sum partials per (vertex, worker), sync to masters.

        Same charge structure as :meth:`BulkRoundRunner._exchange_partials`
        but with order-preserving summation: ``np.add.at`` folds each
        pair's contributions in arc order (the scalar per-worker
        accumulation) and then folds the pairs per vertex in
        first-contributing-arc order (the scalar dict-insertion merge).
        Returns a dense gather sum aligned with ``active`` (0.0 where
        nothing gathered, which is exactly what the PageRank apply
        uses for a ``None`` gather).
        """
        gathered = np.zeros(len(active), dtype=np.float64)
        if len(contrib_vertices) == 0:
            return gathered
        key = contrib_vertices * self.num_workers + contrib_workers
        pair_keys, first, inverse = np.unique(
            key, return_index=True, return_inverse=True
        )
        pair_partials = np.zeros(len(pair_keys), dtype=np.float64)
        np.add.at(pair_partials, inverse, contributions)
        pair_vertex = pair_keys // self.num_workers
        pair_worker = pair_keys % self.num_workers
        pair_master = self.masters[pair_vertex]
        remote = pair_worker != pair_master
        self._charge_pair_messages(
            pair_worker[remote], pair_master[remote], self.gather_payload
        )
        # One combine op on the master per per-worker partial.
        self._charge_ops(np.bincount(pair_master, minlength=self.num_workers))
        slots = np.searchsorted(active, pair_vertex)
        insertion = np.argsort(first, kind="stable")
        np.add.at(gathered, slots[insertion], pair_partials[insertion])
        return gathered
